#!/usr/bin/env python
"""Theorem 6 live: watch a local-priority list scheduler get forced to a
factor-d makespan on the Figure 2 instance family.

Builds the reconstructed tree instance for chosen (d, M), schedules it with
(a) the adversarial local tie-break and (b) the graph-aware order, prints
both Gantt charts for a small case, and the ratio trend as M grows.

Run:  python examples/lower_bound_demo.py
"""

from repro.core.list_scheduler import list_schedule
from repro.experiments.lb_instance import (
    adversarial_priority,
    informed_priority,
    lower_bound_instance,
    theoretical_makespans,
)
from repro.experiments.report import format_table
from repro.sim.gantt import ascii_gantt


def run(d: int, m: int):
    inst = lower_bound_instance(d, m)
    alloc = {j: inst.jobs[j].candidates[0] for j in inst.jobs}
    s_adv = list_schedule(inst, alloc, adversarial_priority(inst))
    s_opt = list_schedule(inst, alloc, informed_priority(inst))
    return inst, s_adv, s_opt


def main() -> None:
    # small case: show the two schedules
    d, m = 3, 3
    _, s_adv, s_opt = run(d, m)
    print(f"d = {d}, M = {m}: 'r' jobs release the next resource type;")
    print("a local priority cannot tell them apart from bulk 'b' jobs.\n")
    print("ADVERSARIAL local order (bulk first) — types serialize:")
    print(ascii_gantt(s_adv, width=60))
    print("\nINFORMED order (releases first) — types pipeline:")
    print(ascii_gantt(s_opt, width=60))

    # ratio trend
    rows = []
    for d in (2, 4, 6):
        for m in (12, 48, 192):
            _, s_adv, s_opt = run(d, m)
            theo = theoretical_makespans(d, m)
            rows.append((d, m, s_adv.makespan, s_opt.makespan,
                         s_adv.makespan / s_opt.makespan, theo["theorem6_bound"]))
    print("\n" + format_table(
        ["d", "M", "T adversarial", "T informed", "ratio", "Theorem 6 bound"], rows))
    print("\nThe ratio approaches d: no local-priority list scheduler can beat "
          "d-approximation (Theorem 6).")


if __name__ == "__main__":
    main()
