#!/usr/bin/env python
"""Dense linear algebra: schedule a tiled Cholesky factorization on three
resource types (cores, cache partitions, memory bandwidth).

This is the paper's motivating scenario — a runtime (StarPU/PaRSEC-style)
deciding, per task, how many cores, how much partitioned cache and how much
memory bandwidth to give each kernel.  Kernel shapes follow the classic
flop/byte profiles: GEMM scales well with cores, TRSM/SYRK saturate
earlier, POTRF is nearly sequential but cache-hungry.

The script compares the paper's two-phase algorithm against the baseline
heuristics and prints the resulting ratio table.

Run:  python examples/cholesky_workflow.py
"""

from repro import MoldableScheduler, ResourcePool, generators, make_instance
from repro.baselines import (
    balanced_scheduler,
    heft_moldable_scheduler,
    min_area_scheduler,
    min_time_scheduler,
    tetris_scheduler,
)
from repro.core.lower_bounds import lp_lower_bound
from repro.experiments.report import format_table
from repro.jobs.speedup import AmdahlSpeedup, MultiResourceTime, RooflineSpeedup

B = 5  # tile matrix dimension -> 55 tasks

#: per-kernel (work, speedup) profile on (cores, cache, membw)
KERNEL_PROFILES = {
    "potrf": ((8.0, 6.0, 2.0), (AmdahlSpeedup(0.4), RooflineSpeedup(4), RooflineSpeedup(2))),
    "trsm": ((12.0, 4.0, 6.0), (AmdahlSpeedup(0.15), RooflineSpeedup(6), RooflineSpeedup(4))),
    "syrk": ((12.0, 4.0, 6.0), (AmdahlSpeedup(0.12), RooflineSpeedup(6), RooflineSpeedup(4))),
    "gemm": ((24.0, 3.0, 8.0), (AmdahlSpeedup(0.05), RooflineSpeedup(8), RooflineSpeedup(6))),
}


def task_time_fn(task):
    kernel = task[0]
    works, speedups = KERNEL_PROFILES[kernel]
    return MultiResourceTime(works=works, speedups=speedups, combiner="max")


def main() -> None:
    pool = ResourcePool.of(32, 16, 8, names=("cores", "cache", "membw"))
    dag = generators.cholesky_dag(B)
    instance = make_instance(dag, pool, task_time_fn)
    print(f"tiled Cholesky {B}x{B}: {instance.n} tasks, d = {instance.d} resource types")

    lb = lp_lower_bound(instance)
    rows = []

    result = MoldableScheduler().schedule(instance)
    result.schedule.validate()
    rows.append(("two-phase (ours)", result.makespan, result.makespan / lb))

    for scheduler in (
        min_area_scheduler,
        min_time_scheduler,
        balanced_scheduler,
        tetris_scheduler,
        heft_moldable_scheduler,
    ):
        res = scheduler(instance)
        res.schedule.validate()
        rows.append((res.name, res.makespan, res.makespan / lb))

    print(f"\nLP lower bound on T_opt: {lb:.3f}")
    print(format_table(["algorithm", "makespan", "ratio vs LB"], rows))
    print(f"\nproven worst-case for ours at d=3: {result.proven_ratio:.3f}")
    print(f"per-type utilization (ours): "
          + ", ".join(f"{n}={u:.2f}" for (_, n, _), u in
                      zip(pool.iter_types(), result.schedule.utilization())))


if __name__ == "__main__":
    main()
