#!/usr/bin/env python
"""Independent moldable jobs on a shared cluster (Section 5.2 setting).

A batch of analytics jobs, each moldable over (nodes, burst-buffer
capacity), with no dependencies.  Compares three provable algorithms:

* ours — Lemma 8 optimal allocation + µ-adjustment + list scheduling
  (Theorem 5: d + 2*sqrt(d-1) for d >= 4, here d=2 -> 2d);
* Sun et al. [36] list (2d) and shelf (2d+1) algorithms.

Ratios are exact: the denominator is the true L_min from Lemma 8.

Run:  python examples/cluster_moldable.py
"""

from repro import MoldableScheduler, ResourcePool, generators, make_instance
from repro.baselines import sun_list_scheduler, sun_shelf_scheduler
from repro.experiments.report import format_table
from repro.jobs.speedup import random_multi_resource_time


def main() -> None:
    pool = ResourcePool.of(64, 32, names=("nodes", "burst_buffer"))
    n_jobs = 50
    dag = generators.independent(n_jobs)
    instance = make_instance(
        dag,
        pool,
        lambda j: random_multi_resource_time(
            pool.d, seed=1000 + j, model="mixed", total_work=(5.0, 500.0)
        ),
    )
    print(f"{n_jobs} independent moldable jobs on {tuple(pool.capacities)} "
          f"({', '.join(pool.names)})")

    ours = MoldableScheduler().schedule(instance)
    ours.schedule.validate()
    l_min = ours.lower_bound  # exact L_min via Lemma 8
    print(f"exact L_min (Lemma 8): {l_min:.3f}\n")

    rows = [("ours (Thm 5)", ours.makespan, ours.makespan / l_min, ours.proven_ratio)]
    for fn, proven in ((sun_list_scheduler, 2 * pool.d), (sun_shelf_scheduler, 2 * pool.d + 1)):
        res = fn(instance)
        res.schedule.validate()
        rows.append((res.name, res.makespan, res.makespan / l_min, proven))

    print(format_table(["algorithm", "makespan", "ratio (exact)", "proven bound"], rows))


if __name__ == "__main__":
    main()
