#!/usr/bin/env python
"""Quickstart: schedule a small moldable workflow on two resource types.

Builds a 12-job layered random DAG whose jobs are moldable over (cores,
memory bandwidth), runs the paper's two-phase algorithm with the
theorem-optimal parameters, and prints the schedule, its certified
approximation ratio, and an ASCII Gantt chart.

Run:  python examples/quickstart.py
"""

from repro import (
    MoldableScheduler,
    ResourcePool,
    ascii_gantt,
    generators,
    make_instance,
    random_multi_resource_time,
)


def main() -> None:
    # platform: 16 cores and 8 memory-bandwidth units
    pool = ResourcePool.of(16, 8, names=("cores", "membw"))

    # workflow: 4 layers x 3 jobs, random layer-to-layer dependencies
    dag = generators.layered_random(layers=4, width=3, p=0.4, seed=7)

    # moldable jobs: per-type work with mixed speedup families (Assumption 3)
    fns = {
        node: random_multi_resource_time(pool.d, seed=i, model="mixed")
        for i, node in enumerate(dag.topological_order())
    }
    instance = make_instance(dag, pool, lambda j: fns[j])

    result = MoldableScheduler().schedule(instance)
    result.schedule.validate()

    print(f"jobs: {instance.n}, resource types: d = {instance.d}")
    print(f"allocator used: {result.allocator} (mu = {result.mu:.4f}, rho = {result.rho:.4f})")
    print(f"makespan           : {result.makespan:.3f}")
    print(f"certified lower bnd: {result.lower_bound:.3f}")
    print(f"empirical ratio    : {result.ratio():.3f}  (proven <= {result.proven_ratio:.3f})")
    print()
    print(ascii_gantt(result.schedule, width=72))


if __name__ == "__main__":
    main()
