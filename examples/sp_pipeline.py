#!/usr/bin/env python
"""Series-parallel in-situ analytics pipeline scheduled with the FPTAS.

Models a simulation + in-situ analysis pipeline whose structure is
naturally series-parallel: per timestep, a simulation stage feeds a fan-out
of analysis kernels, whose results reduce into a checkpoint stage; steps
compose in series.  Jobs mold over (cores, I/O bandwidth).

The SP structure lets Phase 1 use the Lemma 7 FPTAS (near-optimal
allocation) instead of the LP rounding, improving the proven ratio from
Theorem 1's 1.619d + 2.545*sqrt(d) + 1 to Theorem 3's (1+eps)(1.619d + 1).

Run:  python examples/sp_pipeline.py
"""

from repro import MoldableScheduler, ResourcePool, make_instance, sp_to_dag
from repro.core import theory
from repro.dag.sp import SPLeaf, parallel, series
from repro.jobs.speedup import AmdahlSpeedup, MultiResourceTime, RooflineSpeedup

STEPS = 4
ANALYSES = 3


def build_pipeline():
    """SP tree: series over steps of (sim ; (analysis_0 || ... ) ; ckpt)."""
    stages = []
    for t in range(STEPS):
        sim = SPLeaf(("sim", t))
        fan = parallel(*[SPLeaf(("analysis", t, k)) for k in range(ANALYSES)])
        ckpt = SPLeaf(("ckpt", t))
        stages.append(series(sim, fan, ckpt))
    return series(*stages)


def time_fn(job):
    kind = job[0]
    if kind == "sim":
        return MultiResourceTime(works=(40.0, 4.0),
                                 speedups=(AmdahlSpeedup(0.05), RooflineSpeedup(2)))
    if kind == "analysis":
        return MultiResourceTime(works=(10.0, 8.0),
                                 speedups=(AmdahlSpeedup(0.2), RooflineSpeedup(4)))
    return MultiResourceTime(works=(4.0, 16.0),
                             speedups=(AmdahlSpeedup(0.5), RooflineSpeedup(8)))


def main() -> None:
    sp = build_pipeline()
    dag = sp_to_dag(sp)
    pool = ResourcePool.of(48, 16, names=("cores", "io_bw"))
    instance = make_instance(dag, pool, time_fn)
    print(f"in-situ pipeline: {instance.n} jobs "
          f"({STEPS} steps x (1 sim + {ANALYSES} analyses + 1 ckpt)), d = {pool.d}")

    eps = 0.2
    sp_result = MoldableScheduler(epsilon=eps).schedule(instance, sp_tree=sp)
    sp_result.schedule.validate()
    lp_result = MoldableScheduler(allocator="lp").schedule(instance)
    lp_result.schedule.validate()

    print(f"\nFPTAS allocator (Theorem 3, eps={eps}):")
    print(f"  makespan {sp_result.makespan:.3f}, ratio {sp_result.ratio():.3f} "
          f"<= proven {sp_result.proven_ratio:.3f}")
    print("LP allocator (Theorem 1, structure-oblivious):")
    print(f"  makespan {lp_result.makespan:.3f}, ratio {lp_result.ratio():.3f} "
          f"<= proven {lp_result.proven_ratio:.3f}")
    print(f"\nproven-bound improvement from exploiting SP structure: "
          f"{theory.theorem1_ratio(pool.d):.3f} -> {theory.theorem3_ratio(pool.d, eps):.3f}")


if __name__ == "__main__":
    main()
