#!/usr/bin/env python
"""Fault injection: how the dispatcher behaves under stragglers & failures.

Schedules an Epigenomics-shaped workflow, then replays the dispatch policy
under increasing fault pressure: straggling jobs (2x slower than modeled)
and transient failures (jobs re-execute from scratch).  Prints the makespan
degradation curve and the retry census, and saves the realized timeline as
a JSON trace.

Run:  python examples/fault_tolerant_run.py
"""

from repro import MoldableScheduler, ResourcePool
from repro.experiments.report import format_table
from repro.experiments.workflow_study import workflow_instance
from repro.sim.faults import execute_with_faults


def main() -> None:
    pool = ResourcePool.of(32, 8, names=("cores", "io_bw"))
    inst = workflow_instance("epigenomics", pool)
    plan = MoldableScheduler().schedule(inst)
    plan.schedule.validate()
    print(f"epigenomics workflow: {inst.n} jobs, planned makespan "
          f"{plan.makespan:.2f} (ratio {plan.ratio():.3f} <= {plan.proven_ratio:.3f})\n")

    rows = []
    for frac, factor, fail in [
        (0.0, 1.0, 0.0),
        (0.2, 2.0, 0.0),
        (0.5, 2.0, 0.0),
        (0.2, 2.0, 0.10),
        (0.5, 3.0, 0.20),
    ]:
        ex = execute_with_faults(
            inst, plan.allocation,
            straggler_fraction=frac, straggler_factor=factor,
            failure_prob=fail, max_retries=3, seed=42,
        )
        ex.validate()
        retries = sum(ex.retries().values())
        rows.append((f"{frac:.0%}", f"{factor:g}x", f"{fail:.0%}",
                     ex.makespan, ex.makespan / plan.makespan, retries))

    print(format_table(
        ["stragglers", "slowdown", "failure p", "makespan", "vs plan", "retries"],
        rows,
    ))
    print("\nDegradation stays within the slowdown envelope: the dispatcher "
          "reacts to completions,\nnot to the plan, so late jobs simply shift "
          "the schedule instead of breaking it.")


if __name__ == "__main__":
    main()
