"""The shared event-driven simulation engine.

* :mod:`repro.engine.kernel` — the discrete-event core: virtual time, one
  event heap (completions, releases, failures) and numpy-vector resource
  accounting;
* :mod:`repro.engine.dispatch` — the two queue disciplines over the
  compiled-instance lowering (:mod:`repro.instance.compiled`): Algorithm
  2's priority scan (packed-demand fused loop for ``d <= 4``, matrix
  fallback above) and dispatch-time allocation policies;
* :mod:`repro.engine.shelves` — first-fit shelf packing (pack scheduling);
* :mod:`repro.engine.profile` — future-availability reservations
  (conservative backfilling);
* :mod:`repro.engine.reference` — the frozen loops of earlier
  generations (pre-kernel python and the PR-1 kernel driver), kept only
  for differential tests and benchmarks.

Every scheduler in :mod:`repro.core`, :mod:`repro.baselines`,
:mod:`repro.malleable` and :mod:`repro.sim.faults` runs on this engine; the
named-scheduler registry in :mod:`repro.registry` is the front door.
"""

from repro.engine.dispatch import drive_policy_schedule, drive_priority_schedule
from repro.engine.kernel import COMPLETE, FAILURE, RELEASE, TIME_EPS, EventKernel
from repro.engine.profile import ReservationProfile
from repro.engine.shelves import Shelf, pack_shelves, stack_shelves

__all__ = [
    "COMPLETE",
    "FAILURE",
    "RELEASE",
    "TIME_EPS",
    "EventKernel",
    "ReservationProfile",
    "Shelf",
    "drive_policy_schedule",
    "drive_priority_schedule",
    "pack_shelves",
    "stack_shelves",
]
