"""Scheduling drivers on top of the compiled-instance lowering.

Two queue disciplines cover every event-driven scheduler in the repository:

* :func:`drive_priority_schedule` — Algorithm 2's discipline: allocations
  fixed up front, a ready queue kept in priority order, and every pass
  starting *every* queued job that fits (the ``for each job j ∈ Q`` loop).
  Used by the core list scheduler and the fault simulator.
* :func:`drive_policy_schedule` — dispatch-time allocation: a policy
  callback inspects the ready set and the availability vector and picks
  ``(job, allocation)`` pairs to start.  Used by the Tetris and HEFT
  baselines.

Both run on the **compiled instance** (:mod:`repro.instance.compiled`):
jobs are dense topological indices, adjacency is CSR, and priority keys
are lowered once into integer *ranks* realizing the ``(key, topological
index)`` total order.  The ready queue is a sorted int64 array of ranks —
insertion is a binary-search merge (``O(log n)`` comparisons per entry
plus one memmove) and the per-pass feasibility test is a single
whole-queue vector comparison, so dispatch is ``O((n + m) log n)`` array
work plus ``O(1)`` python per started job.

The priority discipline is implemented as **re-entrant loop objects**
rather than run-to-completion functions: each loop owns a resumable event
heap plus readiness state and exposes ``run(until)`` — run until the heap
drains (returns ``True``) or until the next event lies past ``until``
(returns ``False``, resume later).  ``drive_priority_schedule`` simply
builds one via :func:`priority_loop` and runs it to completion; streaming
front-ends (``repro schedule --follow``) and the online scheduling
service step the same loops incrementally.

Three loop bodies share that contract:

* :class:`PackedPriorityLoop` — the fused fast path (``ci.packable``:
  ``d <= 4``, capacities below ``2**15``): every demand vector is one
  ``uint64`` whose fields are the per-type amounts, the scalar admission
  test is ``((av + mask) - a) & mask == mask``, and the whole-queue
  prefilter is three 1-D vector ops.  One flat loop owns heap, readiness
  and dispatch with no per-event callback indirection — this is the hot
  path the benchmarks measure.
* :class:`GeneralPriorityLoop` — the matrix fallback (higher ``d`` or
  larger capacities): the same discipline over the ``(n, d)`` allocation
  matrix on the shared :class:`~repro.engine.kernel.EventKernel`.
* :class:`IncrementalPriorityLoop` — the growable form used by
  :mod:`repro.service`: runs on a
  :class:`~repro.instance.compiled.GrowableCompiledInstance`, admits jobs
  *while scheduling* (``admit``), supports cancellation of not-yet-started
  jobs, and keeps the ready queue as a list sorted by ``(key, index)`` —
  the identical total order the rank lowering realizes, so a session
  driven submission-order-faithfully reproduces the batch schedule event
  for event (the conformance service family asserts this).

All paths gate readiness on job release times (online arrivals) and
preserve the historical tie-breaking exactly: simultaneous completions are
processed as one batch, newly ready jobs enter the queue by ``(priority
key, topological index)``, and events pop in ``(time, submission)`` order.
The frozen predecessors (:mod:`repro.engine.reference`) pin that behavior
in the differential tests.
"""

from __future__ import annotations

import heapq
from typing import Callable, Hashable, Mapping, Sequence

import numpy as np

from repro.engine.backends import resolve_backend
from repro.engine.kernel import RELEASE, TIME_EPS, EventKernel
from repro.instance.compiled import PACK_BITS, compile_instance

__all__ = [
    "drive_priority_schedule",
    "drive_policy_schedule",
    "priority_loop",
    "PackedPriorityLoop",
    "GeneralPriorityLoop",
    "IncrementalPriorityLoop",
    "J_WAITING",
    "J_QUEUED",
    "J_RUNNING",
    "J_DONE",
    "J_CANCELLED",
]

JobId = Hashable

_EMPTY_QUEUE = np.empty(0, dtype=np.int64)


def drive_priority_schedule(
    instance,
    allocation: Mapping[JobId, Sequence[int]],
    keys: "Mapping[JobId, object] | np.ndarray",
    durations: "Mapping[JobId, float] | np.ndarray",
    on_start: Callable[[JobId, float, float], None],
    *,
    on_complete: Callable[[JobId, float], float | None] | None = None,
    alloc_mat: np.ndarray | None = None,
    backend: "str | object | None" = None,
) -> EventKernel:
    """Run Algorithm 2's queue discipline on the compiled instance.

    The ready queue is kept sorted by rank (the dense integer image of
    ``(key, topological tie-break)``); every scheduling pass tests the whole
    queue with one vectorized feasibility comparison and scans only the
    passing entries in priority order, starting every job that still fits as
    availability shrinks (exact: availability only shrinks within a pass, so
    a job failing the whole-queue test cannot start until the next event).

    ``keys`` and ``durations`` may be mappings over job ids or 1-D arrays
    aligned with the topological order (the vectorized fast path);
    ``alloc_mat`` optionally supplies the already-lowered ``(n, d)``
    allocation matrix (e.g. the one ``validate_allocation_map`` returns)
    so the allocation is not lowered twice per run.

    ``on_start(job, start, duration)`` records each dispatch.  When given,
    ``on_complete(job, now) -> float | None`` intercepts completions: a
    float re-runs the job immediately for that duration *without* releasing
    its resources (failure re-execution); ``None`` completes it normally.
    Returns a kernel whose clock holds the final virtual time.

    ``backend`` selects the dispatch backend for the packed hot loop
    (a registry name or backend object; see
    :mod:`repro.engine.backends`) — ``None`` resolves via the
    ``REPRO_BACKEND`` environment variable, then the default.
    """
    loop = priority_loop(
        instance, allocation, keys, durations, on_start,
        on_complete=on_complete, alloc_mat=alloc_mat, backend=backend,
    )
    loop.run()
    return loop.kernel


def priority_loop(
    instance,
    allocation: Mapping[JobId, Sequence[int]],
    keys: "Mapping[JobId, object] | np.ndarray",
    durations: "Mapping[JobId, float] | np.ndarray",
    on_start: Callable[[JobId, float, float], None],
    *,
    on_complete: Callable[[JobId, float], float | None] | None = None,
    alloc_mat: np.ndarray | None = None,
    backend: "str | object | None" = None,
) -> "PackedPriorityLoop | GeneralPriorityLoop":
    """Build the re-entrant dispatch loop for a fixed job set, unstarted.

    Same arguments as :func:`drive_priority_schedule`; the returned loop
    exposes ``run(until=None) -> bool`` (``True`` once drained), ``now``,
    ``next_time`` and ``kernel``.  Callers that only need the final
    schedule should prefer :func:`drive_priority_schedule`.

    ``on_start=None`` selects the **array start log**: instead of a python
    callback per dispatch, the loop records ``(topological index, start
    time)`` pairs into preallocated arrays, retrievable via
    ``start_log()``.  This keeps the hot loop free of per-job python
    object construction (the cost that grows with the resident working
    set at large ``n``); the compiled backend writes the log natively.
    """
    ci = compile_instance(instance)
    kernel = EventKernel(instance.pool.capacities)
    if backend is None or isinstance(backend, str):
        backend = resolve_backend(backend)

    if alloc_mat is None:
        alloc_mat = ci.alloc_matrix(allocation)
    if isinstance(durations, np.ndarray):
        dur = durations.tolist()
    else:
        order = ci.order
        dur = [durations[j] for j in order]
    rank_of, topo_of_rank = ci.rank_permutation(keys)

    if ci.n == 0 or ci.packable:
        return PackedPriorityLoop(
            ci, kernel, alloc_mat, dur, rank_of, topo_of_rank, on_start, on_complete,
            backend=backend,
        )
    return GeneralPriorityLoop(
        ci, kernel, alloc_mat, dur, rank_of, topo_of_rank, on_start, on_complete,
        backend=backend,
    )


class PackedPriorityLoop:
    """The fused packed-demand event loop, resumable (see module docstring).

    One flat loop owns the event heap, the readiness vector and the ready
    queue.  Heap entries are ``(time, seq, code)`` with ``code < n`` a
    completion of topological index ``code`` and ``code >= n`` the release
    of index ``code - n``; ``seq`` reproduces the kernel's FIFO order for
    simultaneous events, so ``on_complete`` sees completions in exactly
    the order the kernel-based loop delivered them.

    The loop object is a pure **state container**: every field the hot
    loop touches is either a dense array with a pinned dtype (readiness
    counts, CSR successors, packed demands, the rank permutation — the
    contiguity/dtype contract :meth:`CompiledInstance.kernel_layout
    <repro.instance.compiled.CompiledInstance>` guarantees) or a python
    scalar/list, so the execution strategy is swappable.  :meth:`run`
    delegates to the loop's **dispatch backend** (see
    :mod:`repro.engine.backends`): the ``python`` backend is the numpy
    loop this class always ran inline, the ``numba`` backend executes
    the same state machine as one njit-compiled kernel.  Both process
    all events at one time point as a single batch, apply
    completions/releases vectorized, and run the feasibility re-scan
    once per time point — identical schedules by construction, pinned
    by the conformance fuzz matrix.
    """

    __slots__ = (
        "kernel", "ci", "n", "order", "ip", "si", "remaining",
        "pk_by_rank", "pk_rank_l", "pk_topo", "pk_topo_l",
        "rank_a", "topo_a", "topo_l", "dur",
        "H", "H_u", "avh", "heap", "seq", "qb", "pb", "sq", "sp", "L",
        "now", "eps", "on_start", "on_complete", "done", "backend", "_scratch",
        "ns",
    )

    def __init__(
        self, ci, kernel, alloc_mat, dur, rank_of, topo_of_rank, on_start, on_complete,
        *, backend=None,
    ) -> None:
        self.kernel = kernel
        self.ci = ci
        cd = ci.cdag
        n = cd.n
        self.n = n
        self.order = cd.order
        self.ip, self.si = ci.kernel_layout()
        self.dur = dur
        self.on_start = on_start
        self.on_complete = on_complete
        self.backend = (
            resolve_backend(backend)
            if backend is None or isinstance(backend, str)
            else backend
        )
        self._scratch = None
        self.done = n == 0
        self.ns = 0  # start-log length (on_start=None mode)

        pk_topo = ci.pack_demands(alloc_mat) if n else np.empty(0, dtype=np.uint64)
        pk_by_rank = pk_topo[topo_of_rank] if n else pk_topo
        self.pk_topo = pk_topo
        self.pk_topo_l = pk_topo.tolist()  # python ints: scalar updates are one int op
        self.pk_by_rank = pk_by_rank
        self.pk_rank_l = pk_by_rank.tolist()
        self.rank_a = np.ascontiguousarray(rank_of, dtype=np.int64)
        self.topo_a = np.ascontiguousarray(topo_of_rank, dtype=np.int64)
        self.topo_l = (
            topo_of_rank if isinstance(topo_of_rank, list) else self.topo_a.tolist()
        )

        self.H = ci.fit_mask
        self.H_u = np.uint64(ci.fit_mask)
        # availability carried with the headroom bits pre-added: avh = av + H
        self.avh = ci.packed_capacities + ci.fit_mask

        remaining = cd.in_degree.astype(np.int64, copy=True)
        heap: list[tuple[float, int, int]] = []
        seq = 0
        if ci.has_releases:
            rel = ci.release
            late = np.flatnonzero(rel > 0.0)
            remaining[late] += 1  # a release acts as one extra virtual predecessor
            for i in late.tolist():
                heap.append((float(rel[i]), seq, n + i))
                seq += 1
            heapq.heapify(heap)
        self.remaining = remaining
        self.heap = heap
        self.seq = seq

        # the ready queue: parallel sorted-by-rank buffers of ranks and packed
        # demands, plus spares for the batched insertion merge
        self.qb = np.empty(n, dtype=np.int64)
        self.pb = np.empty(n, dtype=np.uint64)
        self.sq = np.empty(n, dtype=np.int64)
        self.sp = np.empty(n, dtype=np.uint64)
        r0 = rank_of[np.flatnonzero(remaining == 0)] if n else _EMPTY_QUEUE
        r0.sort()
        L = r0.size
        self.qb[:L] = r0
        self.pb[:L] = pk_by_rank[r0]
        self.L = L

        self.now = 0.0
        self.eps = kernel.time_eps

    @property
    def next_time(self) -> float | None:
        """Time of the earliest pending event (``None`` when drained)."""
        return self.heap[0][0] if self.heap else None

    @property
    def pending(self) -> int:
        return len(self.heap)

    def kernel_scratch(self):
        """Scratch arrays for compiled executors, allocated once per loop:
        ``(durations float64, newly-ready rank buffer, start-log indices,
        start-log times)``."""
        if self._scratch is None:
            n = self.n
            self._scratch = (
                np.ascontiguousarray(self.dur, dtype=np.float64),
                np.empty(n, dtype=np.int64),
                np.empty(n, dtype=np.int64),
                np.empty(n, dtype=np.float64),
            )
        return self._scratch

    def start_log(self) -> "tuple[np.ndarray, np.ndarray]":
        """The recorded ``(topological index, start time)`` arrays, in
        dispatch order — only populated when the loop was built with
        ``on_start=None`` (views into the loop's scratch; copy to keep)."""
        if self.on_start is not None:
            raise ValueError("start_log() requires a loop built with on_start=None")
        _, _, out_i, out_t = self.kernel_scratch()
        return out_i[: self.ns], out_t[: self.ns]

    def sync_kernel(self) -> None:
        """Mirror the loop clock and availability onto the kernel facade."""
        kernel = self.kernel
        kernel.now = self.now
        if self.ci.packable:
            av = self.avh - self.H
            field = (1 << PACK_BITS) - 1
            kernel._avail[:] = [
                (av >> (PACK_BITS * r)) & field for r in range(self.ci.d)
            ]

    def run(self, until: float | None = None) -> bool:
        """Dispatch and process events; stop once the heap drains (returns
        ``True``) or the earliest pending event lies past ``until``
        (returns ``False`` — call again to resume).  Executed by the
        loop's dispatch backend."""
        return self.backend.run_packed(self, until)


class GeneralPriorityLoop:
    """Matrix fallback for instances the packed lowering cannot carry
    (``d > 4`` or capacities ``>= 2**15``): same discipline over the
    ``(n, d)`` allocation matrix on the shared :class:`EventKernel`,
    resumable through :meth:`EventKernel.run_until`.

    Compiled backends do not cover the matrix path — whatever backend
    was requested, execution stays on this numpy loop (the selection is
    recorded on ``.backend`` so callers can see what actually ran).  The
    loop shares the packed path's time-point structure: the kernel
    delivers all events within ``time_eps`` as one batch,
    completions/releases drain as whole-vector updates at the next
    dispatch, and the feasibility re-scan runs once per time point with
    the same admit-then-refilter pass the python backend uses."""

    __slots__ = ("kernel", "_dispatch", "_handle", "done", "backend",
                 "ns", "_log_i", "_log_t", "_on_start")

    def __init__(
        self, ci, kernel, alloc_mat, dur, rank_of, topo_of_rank, on_start, on_complete,
        *, backend=None,
    ) -> None:
        self.kernel = kernel
        self.backend = (
            resolve_backend(backend)
            if backend is None or isinstance(backend, str)
            else backend
        )
        self.done = False
        self._on_start = on_start
        self.ns = 0
        if on_start is None:  # array start-log mode (see priority_loop)
            self._log_i = np.empty(ci.cdag.n, dtype=np.int64)
            self._log_t = np.empty(ci.cdag.n, dtype=np.float64)
        else:
            self._log_i = self._log_t = None
        log_i = self._log_i
        log_t = self._log_t
        cd = ci.cdag
        order = cd.order
        succ_indptr = cd.succ_indptr
        succ_indices = cd.succ_indices
        d = ci.d
        rng_d = range(d)

        alloc_rows = alloc_mat.tolist()  # python ints for the shrinking-scan
        alloc_by_rank = alloc_mat[topo_of_rank]

        remaining = cd.in_degree.copy()
        if ci.has_releases:
            rel = ci.release
            for i in np.flatnonzero(rel > 0.0).tolist():
                remaining[i] += 1  # the release acts as one extra virtual predecessor
                kernel.schedule_release(float(rel[i]), i)

        # the ready queue: a sorted int64 array of ranks
        state = {"q": np.sort(rank_of[np.flatnonzero(remaining == 0)])}

        # events of the current batch, drained as whole-vector updates at the
        # next dispatch pass (the batch boundary the loops have always used)
        done_events: list[int] = []
        released: list[int] = []

        def dispatch(k: EventKernel) -> None:
            q = state["q"]
            zeroed = None
            if done_events:
                k.release(alloc_mat[done_events].sum(axis=0))
                if len(done_events) == 1:
                    i = done_events[0]
                    targets = succ_indices[succ_indptr[i]:succ_indptr[i + 1]]
                    if targets.size:
                        remaining[targets] -= 1  # successors of one job are unique
                else:
                    targets = np.concatenate(
                        [
                            succ_indices[succ_indptr[i]:succ_indptr[i + 1]]
                            for i in done_events
                        ]
                    )
                    if targets.size:
                        np.subtract.at(remaining, targets, 1)
                done_events.clear()
                if targets.size:
                    zeroed = targets[remaining[targets] == 0]
            newly: list[int] = []
            if released:
                for i in released:
                    remaining[i] -= 1
                    if remaining[i] == 0:
                        newly.append(i)
                released.clear()
            if zeroed is not None and zeroed.size:
                new_ranks = rank_of[np.unique(zeroed)]
                if newly:
                    new_ranks = np.concatenate([new_ranks, rank_of[newly]])
            elif newly:
                new_ranks = rank_of[newly]
            else:
                new_ranks = None
            if new_ranks is not None and new_ranks.size:
                # parallel-buffer block insert (the packed path's merge):
                # one searchsorted + two scatters instead of np.insert's
                # O(queue) per-entry memmove — keeps deep DAGs linear
                new_ranks.sort()
                nk = new_ranks.size
                idx = q.searchsorted(new_ranks) + np.arange(nk)
                merged = np.empty(q.size + nk, dtype=np.int64)
                mask = np.ones(q.size + nk, dtype=bool)
                mask[idx] = False
                merged[idx] = new_ranks
                merged[mask] = q
                q = merged
                state["q"] = q

            if not q.size:
                return
            # whole-queue feasibility in one vector comparison
            fit = (alloc_by_rank[q] <= k.available).all(axis=1)
            if not fit.any():
                return
            # admit-then-refilter: the first candidate is the lowest-rank
            # fitting job; each admission shrinks availability, so the
            # candidate tail is re-filtered with one vector comparison
            # instead of a scalar recheck per snapshot hit
            av = k.available.astype(np.int64, copy=True)
            acq: list[int] | None = None
            started: list[int] | None = None
            cand = np.flatnonzero(fit)
            while True:
                pos = int(cand[0])
                i = topo_of_rank[q[pos]]
                a = alloc_rows[i]
                t = dur[i]
                k.hold(i, t)
                if acq is None:
                    acq = list(a)
                    started = [pos]
                else:
                    for r in rng_d:
                        acq[r] += a[r]
                    started.append(pos)
                for r in rng_d:
                    av[r] -= a[r]
                if log_i is None:
                    on_start(order[i], k.now, t)
                else:
                    ns = self.ns
                    log_i[ns] = i
                    log_t[ns] = k.now
                    self.ns = ns + 1
                cand = cand[1:]
                if not cand.size:
                    break
                cand = cand[(alloc_by_rank[q[cand]] <= av).all(axis=1)]
                if not cand.size:
                    break
            k.acquire(acq)
            if len(started) == q.size:
                state["q"] = _EMPTY_QUEUE
            else:
                keep = np.ones(q.size, dtype=bool)
                keep[started] = False
                state["q"] = q[keep]

        def handle(k: EventKernel, kind: str, payload) -> None:
            if kind == RELEASE:
                released.append(payload)
                return
            i = payload
            if on_complete is not None:
                retry = on_complete(order[i], k.now)
                if retry is not None:
                    k.hold(i, retry)
                    return
            done_events.append(i)

        self._dispatch = dispatch
        self._handle = handle

    @property
    def now(self) -> float:
        return self.kernel.now

    @property
    def next_time(self) -> float | None:
        return self.kernel.next_time

    @property
    def pending(self) -> int:
        return self.kernel.pending

    def start_log(self) -> "tuple[np.ndarray, np.ndarray]":
        """See :meth:`PackedPriorityLoop.start_log`."""
        if self._on_start is not None:
            raise ValueError("start_log() requires a loop built with on_start=None")
        return self._log_i[: self.ns], self._log_t[: self.ns]

    def run(self, until: float | None = None) -> bool:
        """See :meth:`PackedPriorityLoop.run`."""
        self.done = self.kernel.run_until(self._dispatch, self._handle, until)
        return self.done


# ----------------------------------------------------------------------
# the growable (online-session) loop
# ----------------------------------------------------------------------

#: Job states inside :class:`IncrementalPriorityLoop`.
J_WAITING, J_QUEUED, J_RUNNING, J_DONE, J_CANCELLED = range(5)


class IncrementalPriorityLoop:
    """Algorithm 2's discipline over a growing job set, resumable.

    The online form of the priority loops above: jobs are admitted with
    :meth:`admit` / :meth:`admit_batch` *at any point* — including between
    :meth:`run` calls with the clock mid-schedule — and not-yet-started
    jobs can be cancelled.  The ready queue is array-native in the style
    of :class:`PackedPriorityLoop`'s rank buffers: parallel sorted buffers
    of float64 key images, int64 row indices and (on packable platforms)
    packed uint64 demands, maintained incrementally with
    ``searchsorted``-based block insertion.  Lexicographic ``(key image,
    index)`` over the buffers is *exactly* the ``(key, index)`` total
    order the batch rank lowering realizes — keys are validated to be
    exactly float64-representable at submission, so the image is an order
    isomorphism — and event batching anchors on the first popped event
    with the same ``time_eps`` horizon.  A session driven
    submission-order-faithfully therefore reproduces the batch schedule
    event for event (the conformance service family asserts this at every
    step, including through :meth:`compact`).

    Instead of per-event callbacks, the loop appends event tuples to
    :attr:`log` (shared with the owning session): ``("start", id, t,
    duration, demand)`` and ``("finish", id, t)`` — ids, not row indices,
    so records stay valid across compactions.

    Heap codes: ``code >= 0`` is the completion of job index ``code``;
    ``code < 0`` is the release of index ``~code`` (the bitwise-complement
    encoding keeps codes valid as the job set grows — a ``code >= n``
    convention would not survive appends).
    """

    __slots__ = (
        "gi", "now", "eps", "heap", "seq", "state", "remaining",
        "start", "finish", "avh", "avail", "log", "ncompleted",
        "rk", "ri", "rp", "sk", "si", "sp", "L", "backend",
    )

    def __init__(
        self,
        gi,
        *,
        log: list | None = None,
        time_eps: float = TIME_EPS,
        backend=None,
    ) -> None:
        # Compiled backends do not cover the growable loop (admission and
        # cancellation interleave with dispatch); the selection is recorded
        # so the service can report which backend is live.
        self.backend = (
            resolve_backend(backend)
            if backend is None or isinstance(backend, str)
            else backend
        )
        self.gi = gi
        self.now = 0.0
        self.eps = time_eps
        self.heap: list[tuple[float, int, int]] = []
        self.seq = 0
        self.state: list[int] = []
        self.remaining: list[int] = []
        self.start: list[float | None] = []
        self.finish: list[float | None] = []
        # availability: packed with headroom pre-added (packable) and the
        # per-type vector (authoritative in general mode, derived otherwise)
        self.avh = gi.packed_capacities + gi.fit_mask
        self.avail = list(gi.capacities)
        self.log: list[tuple] = log if log is not None else []
        self.ncompleted = 0  # lifetime completions (survives compaction)
        # the ready queue: parallel sorted-by-(key, index) buffers plus
        # spares for the batched insertion merge; L is the live length
        cap = 16
        self.rk = np.empty(cap, dtype=np.float64)
        self.ri = np.empty(cap, dtype=np.int64)
        self.rp = np.empty(cap, dtype=np.uint64)
        self.sk = np.empty(cap, dtype=np.float64)
        self.si = np.empty(cap, dtype=np.int64)
        self.sp = np.empty(cap, dtype=np.uint64)
        self.L = 0

    # ------------------------------------------------------------------
    @property
    def next_time(self) -> float | None:
        return self.heap[0][0] if self.heap else None

    @property
    def pending(self) -> int:
        return len(self.heap)

    def available(self) -> tuple[int, ...]:
        """The per-type availability vector at the current clock."""
        if self.gi.packable:
            field = (1 << PACK_BITS) - 1
            av = self.avh - self.gi.fit_mask
            return tuple((av >> (PACK_BITS * r)) & field for r in range(self.gi.d))
        return tuple(self.avail)

    def ready_items(self) -> list[tuple[object, int]]:
        """The ready queue as ``(key, index)`` tuples in dispatch order —
        by construction the sorted ``(key, index)`` list of queued jobs
        (the PR-5 ``insort`` representation; tests and checkpoints pin the
        buffers to it)."""
        key = self.gi.key
        return [(key[i], i) for i in self.ri[:self.L].tolist()]

    # ------------------------------------------------------------------
    # ready-queue maintenance
    # ------------------------------------------------------------------
    def _reserve(self, need: int) -> None:
        cap = self.rk.shape[0]
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        for name in ("rk", "ri", "rp", "sk", "si", "sp"):
            buf = getattr(self, name)
            new = np.empty(cap, dtype=buf.dtype)
            new[:self.L] = buf[:self.L]
            setattr(self, name, new)

    def _position(self, k: float, i: int) -> int:
        """Insertion position of ``(k, i)`` in the lexicographic order."""
        L = self.L
        rk = self.rk
        lo = int(rk[:L].searchsorted(k, side="left"))
        hi = int(rk[:L].searchsorted(k, side="right"))
        if lo == hi:
            return lo
        return lo + int(self.ri[lo:hi].searchsorted(i))

    def _push_ready(self, i: int) -> None:
        """Insert one queued row: binary search plus one block move."""
        L = self.L
        self._reserve(L + 1)
        gi = self.gi
        k = float(gi.key[i])
        p = self._position(k, i)
        rk = self.rk
        ri = self.ri
        rk[p + 1:L + 1] = rk[p:L]
        rk[p] = k
        ri[p + 1:L + 1] = ri[p:L]
        ri[p] = i
        if gi.packable:
            rp = self.rp
            rp[p + 1:L + 1] = rp[p:L]
            rp[p] = gi.packed[i]
        self.L = L + 1

    def _push_ready_block(self, items: list[int]) -> None:
        """Insert a batch of queued rows with one searchsorted merge."""
        k = len(items)
        if k == 1:
            self._push_ready(items[0])
            return
        L = self.L
        self._reserve(L + k)
        gi = self.gi
        key = gi.key
        bi = np.asarray(items, dtype=np.int64)
        bk = np.array([float(key[i]) for i in items], dtype=np.float64)
        srt = np.lexsort((bi, bk))
        bi = bi[srt]
        bk = bk[srt]
        rk = self.rk
        ri = self.ri
        pos = rk[:L].searchsorted(bk, side="left")
        hi = rk[:L].searchsorted(bk, side="right")
        ties = np.flatnonzero(pos != hi)
        for t in ties.tolist():
            lo = int(pos[t])
            pos[t] = lo + int(ri[lo:int(hi[t])].searchsorted(int(bi[t])))
        idx = pos + np.arange(k)
        total = L + k
        mask = np.ones(total, dtype=bool)
        mask[idx] = False
        vk = self.sk[:total]
        vi = self.si[:total]
        vk[idx] = bk
        vk[mask] = rk[:L]
        vi[idx] = bi
        vi[mask] = ri[:L]
        self.rk, self.sk = self.sk, self.rk
        self.ri, self.si = self.si, self.ri
        if gi.packable:
            packed = gi.packed
            vp = self.sp[:total]
            vp[idx] = np.array([packed[i] for i in bi.tolist()], dtype=np.uint64)
            vp[mask] = self.rp[:L]
            self.rp, self.sp = self.sp, self.rp
        self.L = total

    def _pop_ready(self, i: int) -> None:
        """Remove row ``i`` from the ready queue (cancellation path)."""
        L = self.L
        p = self._position(float(self.gi.key[i]), i)
        if not (p < L and self.ri[p] == i):  # pragma: no cover - defensive
            raise RuntimeError(f"ready queue lost row {i}")
        rk = self.rk
        ri = self.ri
        rk[p:L - 1] = rk[p + 1:L]
        ri[p:L - 1] = ri[p + 1:L]
        if self.gi.packable:
            self.rp[p:L - 1] = self.rp[p + 1:L]
        self.L = L - 1

    def load_ready(self, items: Sequence[int]) -> None:
        """Restore the ready queue from stored row indices (already in
        dispatch order) — the checkpoint hot-restore path: no rebuild from
        per-job states, just a bulk gather of the key/packed images."""
        k = len(items)
        self.L = 0
        self._reserve(k)
        gi = self.gi
        key = gi.key
        idx = np.asarray(items, dtype=np.int64) if k else _EMPTY_QUEUE
        self.ri[:k] = idx
        self.rk[:k] = np.array([float(key[i]) for i in items], dtype=np.float64)
        if gi.packable:
            packed = gi.packed
            self.rp[:k] = np.array([packed[i] for i in items], dtype=np.uint64)
        self.L = k

    # ------------------------------------------------------------------
    def admit(self, i: int) -> None:
        """Register appended row ``i`` with the loop (once, in row order).

        Readiness counts predecessors not yet completed plus — when the
        job's release lies in the future — one virtual release
        predecessor.  The release event is only pushed on the heap when
        it is the *last* outstanding predecessor (here, or later when the
        final real predecessor completes): a release that fires while
        real predecessors are still pending could neither queue the job
        nor free capacity, so deferring it keeps those no-op events (and
        their dispatch passes) off the heap entirely.
        """
        if i != len(self.state):
            raise ValueError(f"admit out of order: row {i}, expected {len(self.state)}")
        self.admit_batch(i)

    def admit_batch(self, lo: int, rem_counts: "Sequence[int] | None" = None) -> None:
        """Register every appended row from ``lo`` to the end of the
        instance — the vectorized batch-admission entry point: readiness
        is counted per row, but all newly queued rows enter the ready
        buffers through one block insertion.

        ``rem_counts`` optionally supplies the per-row count of
        not-yet-completed predecessors (the session's ``submit`` already
        walks every predecessor to resolve ids, so it passes the counts
        along rather than having this method re-scan the rows).
        """
        gi = self.gi
        state = self.state
        remaining = self.remaining
        n = len(gi.order)
        if lo != len(state):
            raise ValueError(
                f"admit out of order: row {lo}, expected {len(state)}"
            )
        now = self.now
        heap = self.heap
        seq = self.seq
        push = heapq.heappush
        newly: list[int] = []
        preds = gi.preds
        release = gi.release
        self.start.extend([None] * (n - lo))
        self.finish.extend([None] * (n - lo))
        for i in range(lo, n):
            if rem_counts is not None:
                rem = rem_counts[i - lo]
            else:
                rem = 0
                for p in preds[i]:
                    st = state[p]
                    if st != J_DONE:
                        if st == J_CANCELLED:
                            raise ValueError(
                                f"job {gi.order[i]!r} depends on cancelled job "
                                f"{gi.order[p]!r}"
                            )
                        rem += 1
            if rem == 0:
                if release[i] > now:
                    # the release is the one outstanding virtual predecessor
                    push(heap, (release[i], seq, ~i))
                    seq += 1
                    remaining.append(1)
                    state.append(J_WAITING)
                else:
                    remaining.append(0)
                    state.append(J_QUEUED)
                    newly.append(i)
            else:
                # future release deferred: the last completing predecessor
                # pushes the release event if it is still in the future then
                remaining.append(rem)
                state.append(J_WAITING)
        self.seq = seq
        if newly:
            self._push_ready_block(newly)

    def cancel(self, i: int) -> bool:
        """Cancel job index ``i`` if it has not started; returns success.

        Callers must cancel a job's pending descendants too (their
        precedence constraint becomes unsatisfiable); the session layer
        owns that cascade.
        """
        st = self.state[i]
        if st in (J_RUNNING, J_DONE):
            return False
        if st == J_CANCELLED:
            return True
        if st == J_QUEUED:
            self._pop_ready(i)
        elif self.gi.release[i] > self.now:
            # purge the pending release event: a leftover entry would drag
            # the clock out to the cancelled job's release on drain
            code = ~i
            kept = [e for e in self.heap if e[2] != code]
            if len(kept) != len(self.heap):
                self.heap = kept
                heapq.heapify(kept)
        self.state[i] = J_CANCELLED
        return True

    def compact(self, keep: Sequence[int], old2new: np.ndarray) -> None:
        """Remap the loop's parallel state after the instance compacted.

        ``keep``/``old2new`` come from
        :meth:`~repro.instance.compiled.GrowableCompiledInstance.compact`.
        Every heap code and ready entry references a live (kept) row —
        completions point at running jobs, releases at waiting ones, the
        ready queue at queued ones — and ``old2new`` is increasing on
        survivors, so remapping indices preserves both the heap order
        (codes don't participate in it) and the ready queue's
        ``(key, index)`` order.
        """
        state = self.state
        self.state = [state[i] for i in keep]
        remaining = self.remaining
        self.remaining = [remaining[i] for i in keep]
        start = self.start
        self.start = [start[i] for i in keep]
        finish = self.finish
        self.finish = [finish[i] for i in keep]
        L = self.L
        if L:
            self.ri[:L] = old2new[self.ri[:L]]
        o2n = old2new.tolist()
        self.heap = [
            (t, s, o2n[c] if c >= 0 else ~o2n[~c]) for (t, s, c) in self.heap
        ]

    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> bool:
        """Dispatch and process events up to ``until`` (see the batch loops).

        Returns ``True`` when the event heap is empty after the final
        dispatch pass — queued jobs may remain only if the platform can
        never fit them concurrently with nothing running, which
        admission's bounds validation rules out, so an empty heap means
        every admitted, uncancelled job has completed.
        """
        # load the loop state into locals, PackedPriorityLoop-style: the
        # per-event path below is the hot loop the service benchmark times
        gi = self.gi
        packable = gi.packable
        heap = self.heap
        state = self.state
        remaining = self.remaining
        start_l = self.start
        finish_l = self.finish
        packed = gi.packed
        demand = gi.demand
        dur = gi.duration
        order = gi.order
        key = gi.key
        succ = gi.succ
        release_a = gi.release
        log = self.log
        append_log = log.append
        ncompleted = self.ncompleted
        H = gi.fit_mask
        H_u = np.uint64(H)
        uint64 = np.uint64
        avh = self.avh
        eps = self.eps
        now = self.now
        seq = self.seq
        rk = self.rk
        ri = self.ri
        rp = self.rp
        L = self.L
        pop = heapq.heappop
        push = heapq.heappush
        done = False
        # The pass below leaves only non-fitting jobs in the ready queue,
        # and availability only grows on completions — so between passes
        # the invariant "no queued job fits the current availability"
        # holds, and an event batch with no completion cannot make an
        # *old* queued job startable.  need_pass tracks exactly that.
        need_pass = True

        while True:
            # ------------------------- dispatch pass -------------------------
            if need_pass and L:
                started: list[int] | None = None
                if packable:
                    if L <= 8:
                        # short queue (the steady-state service regime):
                        # a python scan beats the fixed cost of the numpy
                        # machinery below, and the sequential packed test
                        # is exactly the vector pass (availability only
                        # shrinks, so snapshot-hits + recheck == in-order
                        # scan against the current availability)
                        for pos, i in enumerate(ri[:L].tolist()):
                            a = packed[i]
                            if (avh - a) & H == H:
                                avh -= a
                                state[i] = J_RUNNING
                                start_l[i] = now
                                t = dur[i]
                                push(heap, (now + t, seq, i))
                                seq += 1
                                append_log(("start", order[i], now, t, demand[i]))
                                if started is None:
                                    started = [pos]
                                else:
                                    started.append(pos)
                    else:
                        # whole-queue feasibility: one SWAR comparison over
                        # uint64s, then admit-then-refilter — each admission
                        # shrinks availability, so the hit tail is re-filtered
                        # with one small vector comparison instead of a
                        # scalar recheck per snapshot hit
                        hits = (((uint64(avh) - rp[:L]) & H_u) == H_u).nonzero()[0]
                        while hits.size:
                            pos = int(hits[0])
                            i = int(ri[pos])
                            avh -= packed[i]
                            state[i] = J_RUNNING
                            start_l[i] = now
                            t = dur[i]
                            push(heap, (now + t, seq, i))
                            seq += 1
                            append_log(("start", order[i], now, t, demand[i]))
                            if started is None:
                                started = [pos]
                            else:
                                started.append(pos)
                            hits = hits[1:]
                            if hits.size:
                                hits = hits[
                                    ((uint64(avh) - rp[hits]) & H_u) == H_u
                                ]
                else:
                    av = self.avail
                    for pos, i in enumerate(ri[:L].tolist()):
                        dem = demand[i]
                        if all(x <= y for x, y in zip(dem, av)):
                            for r, x in enumerate(dem):
                                av[r] -= x
                            state[i] = J_RUNNING
                            start_l[i] = now
                            t = dur[i]
                            push(heap, (now + t, seq, i))
                            seq += 1
                            append_log(("start", order[i], now, t, dem))
                            if started is None:
                                started = [pos]
                            else:
                                started.append(pos)
                if started is not None:
                    if len(started) == L:
                        L = 0
                    else:
                        for p in reversed(started):
                            rk[p:L - 1] = rk[p + 1:L]
                            ri[p:L - 1] = ri[p + 1:L]
                            if packable:
                                rp[p:L - 1] = rp[p + 1:L]
                            L -= 1
            need_pass = False
            if not heap:
                done = True
                break
            if until is not None and heap[0][0] > until:
                break
            # -------------------------- event batch --------------------------
            t0, _, c = pop(heap)
            now = t0
            horizon = t0 + eps
            batch = [c]
            while heap and heap[0][0] <= horizon:
                batch.append(pop(heap)[2])
            newly: list[int] | None = None
            freed = False
            for c in batch:
                if c < 0:  # release event: one virtual predecessor satisfied
                    i = ~c
                    if state[i] == J_CANCELLED:
                        continue
                    m = remaining[i] - 1
                    remaining[i] = m
                    if not m and state[i] == J_WAITING:
                        state[i] = J_QUEUED
                        if newly is None:
                            newly = [i]
                        else:
                            newly.append(i)
                    continue
                i = c
                freed = True
                state[i] = J_DONE
                finish_l[i] = now
                ncompleted += 1
                if packable:
                    avh += packed[i]
                else:
                    av = self.avail
                    for r, x in enumerate(demand[i]):
                        av[r] += x
                append_log(("finish", order[i], now))
                for s in succ[i]:
                    if state[s] != J_WAITING:
                        continue
                    m = remaining[s] - 1
                    if m:
                        remaining[s] = m
                        continue
                    r = release_a[s]
                    if r > now:
                        # deferred release: now that the last real
                        # predecessor finished, it becomes the one
                        # outstanding virtual predecessor
                        remaining[s] = 1
                        push(heap, (r, seq, ~s))
                        seq += 1
                        continue
                    remaining[s] = 0
                    state[s] = J_QUEUED
                    if newly is None:
                        newly = [s]
                    else:
                        newly.append(s)
            if freed:
                need_pass = True
            elif newly is not None:
                # Release-only batch: no capacity was freed, so by the
                # invariant no *old* queued job became startable — only
                # the newly released jobs need a fit test.  Scan them in
                # (key, index) order (the order the full pass would reach
                # them in, old jobs being guaranteed misses) and start
                # the fits in place; only the leftovers touch the queue.
                if len(newly) > 1:
                    newly.sort(key=lambda s, _k=key: (_k[s], s))
                leftovers: list[int] | None = None
                if packable:
                    for i in newly:
                        a = packed[i]
                        if (avh - a) & H == H:
                            avh -= a
                            state[i] = J_RUNNING
                            start_l[i] = now
                            t = dur[i]
                            push(heap, (now + t, seq, i))
                            seq += 1
                            append_log(("start", order[i], now, t, demand[i]))
                        elif leftovers is None:
                            leftovers = [i]
                        else:
                            leftovers.append(i)
                else:
                    av = self.avail
                    for i in newly:
                        dem = demand[i]
                        if all(x <= y for x, y in zip(dem, av)):
                            for r, x in enumerate(dem):
                                av[r] -= x
                            state[i] = J_RUNNING
                            start_l[i] = now
                            t = dur[i]
                            push(heap, (now + t, seq, i))
                            seq += 1
                            append_log(("start", order[i], now, t, dem))
                        elif leftovers is None:
                            leftovers = [i]
                        else:
                            leftovers.append(i)
                newly = leftovers
            if newly is not None:
                if len(newly) == 1:
                    # inline single insertion on the loaded locals
                    i = newly[0]
                    k = float(key[i])
                    lo = int(rk[:L].searchsorted(k, side="left"))
                    hi_p = int(rk[:L].searchsorted(k, side="right"))
                    p = lo if lo == hi_p else lo + int(ri[lo:hi_p].searchsorted(i))
                    if L == rk.shape[0]:
                        self.L = L
                        self._reserve(L + 1)
                        rk = self.rk
                        ri = self.ri
                        rp = self.rp
                    rk[p + 1:L + 1] = rk[p:L]
                    rk[p] = k
                    ri[p + 1:L + 1] = ri[p:L]
                    ri[p] = i
                    if packable:
                        rp[p + 1:L + 1] = rp[p:L]
                        rp[p] = packed[i]
                    L += 1
                else:
                    self.L = L
                    self._push_ready_block(newly)
                    rk = self.rk
                    ri = self.ri
                    rp = self.rp
                    L = self.L

        # store the loop state back
        self.avh = avh
        self.seq = seq
        self.now = now
        self.ncompleted = ncompleted
        self.L = L
        return done

    def advance_clock(self, until: float) -> None:
        """Move the clock forward to ``until`` with no events in between
        (the session's ``advance`` contract: time has progressed even when
        nothing happened)."""
        if until > self.now:
            if self.heap and self.heap[0][0] <= until:
                raise RuntimeError("advance_clock would skip pending events")
            self.now = until


#: Policy: (instance, ready job ids, available amounts) -> jobs to start now,
#: each with its chosen allocation.  Called repeatedly until it returns [].
DispatchPolicy = Callable[[object, Sequence[JobId], Sequence[int]], list[tuple[JobId, object]]]


def drive_policy_schedule(
    instance,
    policy: DispatchPolicy,
    on_start: Callable[[JobId, float, float, object], None],
) -> EventKernel:
    """Run the dispatch-time-allocation discipline on the kernel.

    ``policy(instance, ready, available)`` must only return jobs from the
    ready list with allocations that fit the available vector (validated
    here); returning ``[]`` yields until the next event.  ``on_start(job,
    start, duration, alloc)`` records each dispatch.  Readiness bookkeeping
    runs on the compiled instance: an in-degree vector decremented over CSR
    successor slices; the policy still sees plain job ids, in the same
    order the dict-based driver produced them.
    """
    ci = compile_instance(instance)
    cd = ci.cdag
    order = cd.order
    index = cd.index
    succ_indptr = cd.succ_indptr
    succ_indices = cd.succ_indices

    remaining = cd.in_degree.copy()
    kernel = EventKernel(instance.pool.capacities)
    if ci.has_releases:
        rel = ci.release
        for i in np.flatnonzero(rel > 0.0).tolist():
            remaining[i] += 1
            kernel.schedule_release(float(rel[i]), i)

    ready: list[JobId] = [j for j in instance.dag.sources() if remaining[index[j]] == 0]
    held: dict[int, np.ndarray] = {}

    def dispatch(k: EventKernel) -> None:
        while True:
            starts = policy(instance, list(ready), tuple(int(a) for a in k.available))
            if not starts:
                return
            for j, alloc in starts:
                if j not in ready:
                    raise RuntimeError(f"policy started non-ready job {j!r}")
                instance.pool.validate_allocation(alloc)
                row = np.asarray(tuple(alloc), dtype=np.int64)
                if not (row <= k.available).all():
                    raise RuntimeError(
                        f"policy overcommitted: {tuple(alloc)} vs available "
                        f"{tuple(int(a) for a in k.available)}"
                    )
                t = instance.time(j, alloc)
                i = index[j]
                k.start(i, row, t)
                held[i] = row
                on_start(j, k.now, t, alloc)
                ready.remove(j)

    def handle(k: EventKernel, kind: str, payload) -> None:
        i = payload
        if kind == RELEASE:
            remaining[i] -= 1
            if remaining[i] == 0:
                ready.append(order[i])
            return
        k.release(held.pop(i))
        sl = succ_indices[succ_indptr[i]:succ_indptr[i + 1]]
        if sl.size:
            remaining[sl] -= 1  # successors of one job are unique
            for t_idx in sl[remaining[sl] == 0].tolist():
                ready.append(order[t_idx])

    kernel.run(dispatch, handle)
    return kernel
