"""Scheduling drivers on top of :class:`~repro.engine.kernel.EventKernel`.

Two queue disciplines cover every event-driven scheduler in the repository:

* :func:`drive_priority_schedule` — Algorithm 2's discipline: allocations
  fixed up front, a ready queue kept in priority order, and every pass
  starting *every* queued job that fits (the ``for each job j ∈ Q`` loop).
  Used by the core list scheduler and the fault simulator.
* :func:`drive_policy_schedule` — dispatch-time allocation: a policy
  callback inspects the ready set and the availability vector and picks
  ``(job, allocation)`` pairs to start.  Used by the Tetris and HEFT
  baselines.

Both gate readiness on job release times (online arrivals) via kernel
release events, and both preserve the historical tie-breaking exactly:
simultaneous completions are processed as one batch, and newly ready jobs
enter the queue by ``(priority key, topological index)``.
"""

from __future__ import annotations

from bisect import insort
from operator import le as _le
from typing import Callable, Hashable, Mapping, Sequence

import numpy as np

from repro.engine.kernel import RELEASE, EventKernel

__all__ = ["drive_priority_schedule", "drive_policy_schedule"]

JobId = Hashable

#: Ready-queue length beyond which a whole-queue vectorized feasibility
#: prefilter is cheaper than scanning jobs one by one.
_VECTOR_SCAN_MIN = 32


def drive_priority_schedule(
    instance,
    allocation: Mapping[JobId, Sequence[int]],
    keys: Mapping[JobId, object],
    durations: Mapping[JobId, float],
    on_start: Callable[[JobId, float, float], None],
    *,
    on_complete: Callable[[JobId, float], float | None] | None = None,
) -> EventKernel:
    """Run Algorithm 2's queue discipline on the kernel.

    The ready queue is kept sorted by ``(key, topological tie-break)``; every
    scheduling pass scans the whole queue in that order and starts every job
    whose allocation fits.  Resource accounting is batched into whole-vector
    kernel operations — one acquire per pass, one release per event batch —
    and long queues are pruned with a single vectorized feasibility
    comparison before the scan (exact: availability only shrinks within a
    pass, so a job failing the prefilter cannot start until the next event).

    ``on_start(job, start, duration)`` records each dispatch.  When given,
    ``on_complete(job, now) -> float | None`` intercepts completions: a
    float re-runs the job immediately for that duration *without* releasing
    its resources (failure re-execution); ``None`` completes it normally.
    Returns the kernel (its clock holds the final virtual time).
    """
    dag = instance.dag
    order = dag.topological_order()
    index = {j: i for i, j in enumerate(order)}
    d = instance.d
    rng_d = range(d)
    alloc_mat = np.zeros((len(order), d), dtype=np.int64)
    for j, i in index.items():
        alloc_mat[i] = tuple(allocation[j])
    alloc_tup = [tuple(allocation[j]) for j in order]

    remaining = {j: dag.in_degree(j) for j in order}
    kernel = EventKernel(instance.pool.capacities)
    for j, r in instance.release_times().items():
        if r > 0.0:
            remaining[j] += 1  # the release acts as one extra virtual predecessor
            kernel.schedule_release(r, j)

    ready: list[tuple[object, int, JobId]] = []
    for j in dag.sources():
        if remaining[j] == 0:
            insort(ready, (keys[j], index[j], j))

    # resources freed by the current event batch, flushed as one vector op
    freed = [0] * d
    have_freed = False

    def dispatch(k: EventKernel) -> None:
        nonlocal have_freed
        if have_freed:
            k.release(freed)
            for r in rng_d:
                freed[r] = 0
            have_freed = False
        if not ready:
            return
        m = len(ready)
        fit = None
        if m > _VECTOR_SCAN_MIN:
            idxs = np.fromiter((e[1] for e in ready), dtype=np.int64, count=m)
            fit = (alloc_mat[idxs] <= k.available).all(axis=1).tolist()
            if True not in fit:
                return
        av = k.available.tolist()
        acq: list[int] | None = None
        keep: list[tuple[object, int, JobId]] = []
        for pos in range(m):
            entry = ready[pos]
            if fit is None or fit[pos]:
                a = alloc_tup[entry[1]]
                if all(map(_le, a, av)):
                    j = entry[2]
                    dur = durations[j]
                    k.hold(entry[1], dur)
                    if acq is None:
                        acq = list(a)
                    else:
                        for r in rng_d:
                            acq[r] += a[r]
                    for r in rng_d:
                        av[r] -= a[r]
                    on_start(j, k.now, dur)
                    continue
            keep.append(entry)
        if acq is not None:
            k.acquire(acq)
            ready[:] = keep

    def handle(k: EventKernel, kind: str, payload) -> None:
        nonlocal have_freed
        if kind == RELEASE:
            j = payload
            remaining[j] -= 1
            if remaining[j] == 0:
                insort(ready, (keys[j], index[j], j))
            return
        i = payload
        j = order[i]
        if on_complete is not None:
            retry = on_complete(j, k.now)
            if retry is not None:
                k.hold(i, retry)
                return
        a = alloc_tup[i]
        for r in rng_d:
            freed[r] += a[r]
        have_freed = True
        for s in dag.successors(j):
            remaining[s] -= 1
            if remaining[s] == 0:
                insort(ready, (keys[s], index[s], s))

    kernel.run(dispatch, handle)
    return kernel


#: Policy: (instance, ready job ids, available amounts) -> jobs to start now,
#: each with its chosen allocation.  Called repeatedly until it returns [].
DispatchPolicy = Callable[[object, Sequence[JobId], Sequence[int]], list[tuple[JobId, object]]]


def drive_policy_schedule(
    instance,
    policy: DispatchPolicy,
    on_start: Callable[[JobId, float, float, object], None],
) -> EventKernel:
    """Run the dispatch-time-allocation discipline on the kernel.

    ``policy(instance, ready, available)`` must only return jobs from the
    ready list with allocations that fit the available vector (validated
    here); returning ``[]`` yields until the next event.  ``on_start(job,
    start, duration, alloc)`` records each dispatch.
    """
    dag = instance.dag
    remaining = {j: dag.in_degree(j) for j in instance.jobs}
    kernel = EventKernel(instance.pool.capacities)
    for j, r in instance.release_times().items():
        if r > 0.0:
            remaining[j] += 1
            kernel.schedule_release(r, j)

    ready: list[JobId] = [j for j in dag.sources() if remaining[j] == 0]
    held: dict[JobId, np.ndarray] = {}
    d = instance.d

    def dispatch(k: EventKernel) -> None:
        while True:
            starts = policy(instance, list(ready), tuple(int(a) for a in k.available))
            if not starts:
                return
            for j, alloc in starts:
                if j not in ready:
                    raise RuntimeError(f"policy started non-ready job {j!r}")
                instance.pool.validate_allocation(alloc)
                row = np.asarray(tuple(alloc), dtype=np.int64)
                if not (row <= k.available).all():
                    raise RuntimeError(
                        f"policy overcommitted: {tuple(alloc)} vs available "
                        f"{tuple(int(a) for a in k.available)}"
                    )
                t = instance.time(j, alloc)
                k.start(j, row, t)
                held[j] = row
                on_start(j, k.now, t, alloc)
                ready.remove(j)

    def handle(k: EventKernel, kind: str, payload) -> None:
        if kind == RELEASE:
            remaining[payload] -= 1
            if remaining[payload] == 0:
                ready.append(payload)
            return
        j = payload
        k.release(held.pop(j))
        for s in dag.successors(j):
            remaining[s] -= 1
            if remaining[s] == 0:
                ready.append(s)

    kernel.run(dispatch, handle)
    return kernel
