"""Scheduling drivers on top of the compiled-instance lowering.

Two queue disciplines cover every event-driven scheduler in the repository:

* :func:`drive_priority_schedule` — Algorithm 2's discipline: allocations
  fixed up front, a ready queue kept in priority order, and every pass
  starting *every* queued job that fits (the ``for each job j ∈ Q`` loop).
  Used by the core list scheduler and the fault simulator.
* :func:`drive_policy_schedule` — dispatch-time allocation: a policy
  callback inspects the ready set and the availability vector and picks
  ``(job, allocation)`` pairs to start.  Used by the Tetris and HEFT
  baselines.

Both run on the **compiled instance** (:mod:`repro.instance.compiled`):
jobs are dense topological indices, adjacency is CSR, and priority keys
are lowered once into integer *ranks* realizing the ``(key, topological
index)`` total order.  The ready queue is a sorted int64 array of ranks —
insertion is a binary-search merge (``O(log n)`` comparisons per entry
plus one memmove) and the per-pass feasibility test is a single
whole-queue vector comparison, so dispatch is ``O((n + m) log n)`` array
work plus ``O(1)`` python per started job.

The priority driver has two bodies behind one contract:

* the **packed path** (``ci.packable``: ``d <= 4``, capacities below
  ``2**15``) lowers every demand vector into one ``uint64`` whose fields
  are the per-type amounts (see :class:`~repro.instance.compiled.CompiledInstance`).
  Resource accounting degenerates to integer adds/subtracts, the scalar
  admission test to ``((av + mask) - a) & mask == mask``, and the
  whole-queue prefilter to three 1-D vector ops.  The event loop is fused
  into a single flat loop (heap, readiness, dispatch) with no per-event
  callback indirection — this is the hot path the benchmarks measure.
* the **general path** (higher ``d`` or larger capacities) keeps the
  ``(n, d)`` allocation matrix and drives the shared
  :class:`~repro.engine.kernel.EventKernel` with whole-matrix feasibility
  comparisons.

Both paths gate readiness on job release times (online arrivals) and
preserve the historical tie-breaking exactly: simultaneous completions are
processed as one batch, newly ready jobs enter the queue by ``(priority
key, topological index)``, and events pop in ``(time, submission)`` order.
The frozen predecessors (:mod:`repro.engine.reference`) pin that behavior
in the differential tests.
"""

from __future__ import annotations

import heapq
from typing import Callable, Hashable, Mapping, Sequence

import numpy as np

from repro.engine.kernel import RELEASE, EventKernel
from repro.instance.compiled import PACK_BITS, compile_instance

__all__ = ["drive_priority_schedule", "drive_policy_schedule"]

JobId = Hashable

_EMPTY_QUEUE = np.empty(0, dtype=np.int64)


def drive_priority_schedule(
    instance,
    allocation: Mapping[JobId, Sequence[int]],
    keys: "Mapping[JobId, object] | np.ndarray",
    durations: "Mapping[JobId, float] | np.ndarray",
    on_start: Callable[[JobId, float, float], None],
    *,
    on_complete: Callable[[JobId, float], float | None] | None = None,
    alloc_mat: np.ndarray | None = None,
) -> EventKernel:
    """Run Algorithm 2's queue discipline on the compiled instance.

    The ready queue is kept sorted by rank (the dense integer image of
    ``(key, topological tie-break)``); every scheduling pass tests the whole
    queue with one vectorized feasibility comparison and scans only the
    passing entries in priority order, starting every job that still fits as
    availability shrinks (exact: availability only shrinks within a pass, so
    a job failing the whole-queue test cannot start until the next event).

    ``keys`` and ``durations`` may be mappings over job ids or 1-D arrays
    aligned with the topological order (the vectorized fast path);
    ``alloc_mat`` optionally supplies the already-lowered ``(n, d)``
    allocation matrix (e.g. the one ``validate_allocation_map`` returns)
    so the allocation is not lowered twice per run.

    ``on_start(job, start, duration)`` records each dispatch.  When given,
    ``on_complete(job, now) -> float | None`` intercepts completions: a
    float re-runs the job immediately for that duration *without* releasing
    its resources (failure re-execution); ``None`` completes it normally.
    Returns a kernel whose clock holds the final virtual time.
    """
    ci = compile_instance(instance)
    kernel = EventKernel(instance.pool.capacities)
    if ci.n == 0:
        return kernel

    if alloc_mat is None:
        alloc_mat = ci.alloc_matrix(allocation)
    if isinstance(durations, np.ndarray):
        dur = durations.tolist()
    else:
        order = ci.order
        dur = [durations[j] for j in order]
    rank_of, topo_of_rank = ci.rank_permutation(keys)

    if ci.packable:
        _drive_priority_packed(
            ci, kernel, alloc_mat, dur, rank_of, topo_of_rank, on_start, on_complete
        )
    else:
        _drive_priority_general(
            ci, kernel, alloc_mat, dur, rank_of, topo_of_rank, on_start, on_complete
        )
    return kernel


def _drive_priority_packed(
    ci, kernel, alloc_mat, dur, rank_of, topo_of_rank, on_start, on_complete
) -> None:
    """The fused packed-demand event loop (see module docstring).

    One flat loop owns the event heap, the readiness vector and the ready
    queue.  Heap entries are ``(time, seq, code)`` with ``code < n`` a
    completion of topological index ``code`` and ``code >= n`` the release
    of index ``code - n``; ``seq`` reproduces the kernel's FIFO order for
    simultaneous events, so ``on_complete`` sees completions in exactly
    the order the kernel-based loop delivered them.
    """
    cd = ci.cdag
    n = cd.n
    order = cd.order
    succ = cd.succ_lists()
    remaining = cd.in_degree.tolist()

    pk_by_rank = ci.pack_demands(alloc_mat)[topo_of_rank]
    pk_rank_l = pk_by_rank.tolist()  # python ints: scalar tests are one int op
    rank_l = rank_of.tolist()
    topo_l = topo_of_rank

    H = ci.fit_mask
    H_u = np.uint64(H)
    uint64 = np.uint64
    # availability carried with the headroom bits pre-added: avh = av + H
    avh = ci.packed_capacities + H

    heap: list[tuple[float, int, int]] = []
    seq = 0
    if ci.has_releases:
        rel = ci.release
        for i in np.flatnonzero(rel > 0.0).tolist():
            remaining[i] += 1  # the release acts as one extra virtual predecessor
            heap.append((float(rel[i]), seq, n + i))
            seq += 1
        heapq.heapify(heap)

    # the ready queue: parallel sorted-by-rank buffers of ranks and packed
    # demands, plus spares for the batched insertion merge
    qb = np.empty(n, dtype=np.int64)
    pb = np.empty(n, dtype=np.uint64)
    sq = np.empty(n, dtype=np.int64)
    sp = np.empty(n, dtype=np.uint64)
    r0 = rank_of[np.flatnonzero(np.asarray(remaining) == 0)]
    r0.sort()
    L = r0.size
    qb[:L] = r0
    pb[:L] = pk_by_rank[r0]

    now = 0.0
    eps = kernel.time_eps
    push = heapq.heappush
    pop = heapq.heappop

    while True:
        # ------------------------- dispatch pass -------------------------
        if L:
            # whole-queue feasibility: one SWAR comparison over uint64s
            hits = ((((uint64(avh) - pb[:L]) & H_u) == H_u).nonzero())[0]
            if hits.size:
                started = None
                for kpos, r in zip(hits.tolist(), qb[hits].tolist()):
                    a = pk_rank_l[r]
                    if (avh - a) & H == H:  # still fits as availability shrinks
                        avh -= a
                        i = topo_l[r]
                        t = dur[i]
                        push(heap, (now + t, seq, i))
                        seq += 1
                        on_start(order[i], now, t)
                        if started is None:
                            started = [kpos]
                        else:
                            started.append(kpos)
                if started is not None:
                    if len(started) == L:
                        L = 0
                    else:
                        for p in reversed(started):
                            qb[p:L - 1] = qb[p + 1:L]
                            pb[p:L - 1] = pb[p + 1:L]
                            L -= 1
        if not heap:
            break
        # -------------------------- event batch --------------------------
        t0, _, c = pop(heap)
        now = t0
        horizon = t0 + eps
        if heap and heap[0][0] <= horizon:
            batch = [c]
            while heap and heap[0][0] <= horizon:
                batch.append(pop(heap)[2])
        else:
            batch = (c,)
        newly = None
        for c in batch:
            if c >= n:  # release event: one virtual predecessor satisfied
                i = c - n
                m = remaining[i] - 1
                remaining[i] = m
                if not m:
                    if newly is None:
                        newly = [rank_l[i]]
                    else:
                        newly.append(rank_l[i])
                continue
            i = c
            if on_complete is not None:
                retry = on_complete(order[i], now)
                if retry is not None:
                    # re-run on the held allocation; nothing is released
                    push(heap, (now + retry, seq, i))
                    seq += 1
                    continue
            avh += pk_rank_l[rank_l[i]]
            for s in succ[i]:
                m = remaining[s] - 1
                remaining[s] = m
                if not m:
                    if newly is None:
                        newly = [rank_l[s]]
                    else:
                        newly.append(rank_l[s])
        if newly is not None:
            k = len(newly)
            if k == 1:
                r = newly[0]
                p = qb[:L].searchsorted(r)
                qb[p + 1:L + 1] = qb[p:L]
                qb[p] = r
                pb[p + 1:L + 1] = pb[p:L]
                pb[p] = pk_rank_l[r]
                L += 1
            else:
                nr = np.array(newly, dtype=np.int64)
                nr.sort()
                idx = qb[:L].searchsorted(nr) + np.arange(k)
                mask = np.ones(L + k, dtype=bool)
                mask[idx] = False
                oq = sq[:L + k]
                op = sp[:L + k]
                oq[idx] = nr
                op[idx] = pk_by_rank[nr]
                oq[mask] = qb[:L]
                op[mask] = pb[:L]
                qb, sq = sq, qb
                pb, sp = sp, pb
                L += k

    # leave the kernel facade consistent: final clock and availability
    kernel.now = now
    av = avh - H
    field = (1 << PACK_BITS) - 1
    kernel._avail[:] = [(av >> (PACK_BITS * r)) & field for r in range(ci.d)]


def _drive_priority_general(
    ci, kernel, alloc_mat, dur, rank_of, topo_of_rank, on_start, on_complete
) -> None:
    """Matrix fallback for instances the packed lowering cannot carry
    (``d > 4`` or capacities ``>= 2**15``): same discipline over the
    ``(n, d)`` allocation matrix on the shared :class:`EventKernel`."""
    cd = ci.cdag
    order = cd.order
    succ_indptr = cd.succ_indptr
    succ_indices = cd.succ_indices
    d = ci.d
    rng_d = range(d)

    alloc_rows = alloc_mat.tolist()  # python ints for the shrinking-scan
    alloc_by_rank = alloc_mat[topo_of_rank]

    remaining = cd.in_degree.copy()
    if ci.has_releases:
        rel = ci.release
        for i in np.flatnonzero(rel > 0.0).tolist():
            remaining[i] += 1  # the release acts as one extra virtual predecessor
            kernel.schedule_release(float(rel[i]), i)

    # the ready queue: a sorted int64 array of ranks
    q = np.sort(rank_of[np.flatnonzero(remaining == 0)])

    # events of the current batch, drained as whole-vector updates at the
    # next dispatch pass (the batch boundary the loops have always used)
    done: list[int] = []
    released: list[int] = []

    def dispatch(k: EventKernel) -> None:
        nonlocal q
        zeroed = None
        if done:
            k.release(alloc_mat[done].sum(axis=0))
            if len(done) == 1:
                i = done[0]
                targets = succ_indices[succ_indptr[i]:succ_indptr[i + 1]]
                if targets.size:
                    remaining[targets] -= 1  # successors of one job are unique
            else:
                targets = np.concatenate(
                    [succ_indices[succ_indptr[i]:succ_indptr[i + 1]] for i in done]
                )
                if targets.size:
                    np.subtract.at(remaining, targets, 1)
            done.clear()
            if targets.size:
                zeroed = targets[remaining[targets] == 0]
        newly: list[int] = []
        if released:
            for i in released:
                remaining[i] -= 1
                if remaining[i] == 0:
                    newly.append(i)
            released.clear()
        if zeroed is not None and zeroed.size:
            new_ranks = rank_of[np.unique(zeroed)]
            if newly:
                new_ranks = np.concatenate([new_ranks, rank_of[newly]])
        elif newly:
            new_ranks = rank_of[newly]
        else:
            new_ranks = None
        if new_ranks is not None and new_ranks.size:
            new_ranks.sort()
            q = np.insert(q, np.searchsorted(q, new_ranks), new_ranks)

        if not q.size:
            return
        # whole-queue feasibility in one vector comparison
        fit = (alloc_by_rank[q] <= k.available).all(axis=1)
        if not fit.any():
            return
        av = k.available.tolist()
        acq: list[int] | None = None
        started: list[int] | None = None
        cand = np.flatnonzero(fit)
        for pos, rnk in zip(cand.tolist(), q[cand].tolist()):
            i = topo_of_rank[rnk]
            a = alloc_rows[i]
            if all(x <= y for x, y in zip(a, av)):
                t = dur[i]
                k.hold(i, t)
                if acq is None:
                    acq = list(a)
                    started = [pos]
                else:
                    for r in rng_d:
                        acq[r] += a[r]
                    started.append(pos)
                for r in rng_d:
                    av[r] -= a[r]
                on_start(order[i], k.now, t)
        if started is not None:
            k.acquire(acq)
            if len(started) == q.size:
                q = _EMPTY_QUEUE
            else:
                keep = np.ones(q.size, dtype=bool)
                keep[started] = False
                q = q[keep]

    def handle(k: EventKernel, kind: str, payload) -> None:
        if kind == RELEASE:
            released.append(payload)
            return
        i = payload
        if on_complete is not None:
            retry = on_complete(order[i], k.now)
            if retry is not None:
                k.hold(i, retry)
                return
        done.append(i)

    kernel.run(dispatch, handle)


#: Policy: (instance, ready job ids, available amounts) -> jobs to start now,
#: each with its chosen allocation.  Called repeatedly until it returns [].
DispatchPolicy = Callable[[object, Sequence[JobId], Sequence[int]], list[tuple[JobId, object]]]


def drive_policy_schedule(
    instance,
    policy: DispatchPolicy,
    on_start: Callable[[JobId, float, float, object], None],
) -> EventKernel:
    """Run the dispatch-time-allocation discipline on the kernel.

    ``policy(instance, ready, available)`` must only return jobs from the
    ready list with allocations that fit the available vector (validated
    here); returning ``[]`` yields until the next event.  ``on_start(job,
    start, duration, alloc)`` records each dispatch.  Readiness bookkeeping
    runs on the compiled instance: an in-degree vector decremented over CSR
    successor slices; the policy still sees plain job ids, in the same
    order the dict-based driver produced them.
    """
    ci = compile_instance(instance)
    cd = ci.cdag
    order = cd.order
    index = cd.index
    succ_indptr = cd.succ_indptr
    succ_indices = cd.succ_indices

    remaining = cd.in_degree.copy()
    kernel = EventKernel(instance.pool.capacities)
    if ci.has_releases:
        rel = ci.release
        for i in np.flatnonzero(rel > 0.0).tolist():
            remaining[i] += 1
            kernel.schedule_release(float(rel[i]), i)

    ready: list[JobId] = [j for j in instance.dag.sources() if remaining[index[j]] == 0]
    held: dict[int, np.ndarray] = {}

    def dispatch(k: EventKernel) -> None:
        while True:
            starts = policy(instance, list(ready), tuple(int(a) for a in k.available))
            if not starts:
                return
            for j, alloc in starts:
                if j not in ready:
                    raise RuntimeError(f"policy started non-ready job {j!r}")
                instance.pool.validate_allocation(alloc)
                row = np.asarray(tuple(alloc), dtype=np.int64)
                if not (row <= k.available).all():
                    raise RuntimeError(
                        f"policy overcommitted: {tuple(alloc)} vs available "
                        f"{tuple(int(a) for a in k.available)}"
                    )
                t = instance.time(j, alloc)
                i = index[j]
                k.start(i, row, t)
                held[i] = row
                on_start(j, k.now, t, alloc)
                ready.remove(j)

    def handle(k: EventKernel, kind: str, payload) -> None:
        i = payload
        if kind == RELEASE:
            remaining[i] -= 1
            if remaining[i] == 0:
                ready.append(order[i])
            return
        k.release(held.pop(i))
        sl = succ_indices[succ_indptr[i]:succ_indptr[i + 1]]
        if sl.size:
            remaining[sl] -= 1  # successors of one job are unique
            for t_idx in sl[remaining[sl] == 0].tolist():
                ready.append(order[t_idx])

    kernel.run(dispatch, handle)
    return kernel
