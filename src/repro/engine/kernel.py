"""The shared discrete-event simulation kernel: virtual time + resources.

Every scheduler in this repository ultimately runs the same loop: start work
that fits the available resources, advance virtual time to the next event,
release what completed, repeat.  The paper proves its Phase-2 guarantee for
*any* queue order (Section 4.2), which makes this loop — not the priority
rule — the shared substrate of the core algorithm, the baselines and the
fault/malleable simulators.  :class:`EventKernel` owns that substrate once:

* a virtual clock and a single event heap carrying *completions*, *job
  releases* (online-arrival scenarios) and injected *failures*;
* numpy-vector resource accounting — acquisitions and releases are whole
  vector operations, and dispatchers can test feasibility of an entire
  ready queue with one vectorized comparison instead of per-type Python
  loops;
* the driving loop alternating dispatch passes with event batches.

Schedulers keep their *policy* (queue discipline, allocation choice) and
delegate time, events and resource bookkeeping here; the drivers in
:mod:`repro.engine.dispatch` cover the two recurring disciplines
(Algorithm 2's priority scan and dispatch-time allocation policies).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Sequence

import numpy as np

__all__ = ["COMPLETE", "RELEASE", "FAILURE", "TIME_EPS", "EventKernel"]

#: Event kinds carried on the kernel's heap.
COMPLETE = "complete"
RELEASE = "release"
FAILURE = "failure"

#: Events within this tolerance of the earliest pending one are popped and
#: processed as a single batch — the tolerance the scheduling loops have
#: always used for simultaneous completions.
TIME_EPS = 1e-12


class EventKernel:
    """Discrete-event core: virtual time, one event heap, vector resources.

    Parameters
    ----------
    capacities:
        Per-type total resource amounts ``P^(i)``.
    time_eps:
        Batch tolerance for simultaneous events (see :data:`TIME_EPS`).
    """

    __slots__ = ("now", "time_eps", "_heap", "_seq", "_avail", "_caps")

    def __init__(self, capacities: Sequence[int], *, time_eps: float = TIME_EPS) -> None:
        self._caps = np.asarray(tuple(capacities), dtype=np.int64)
        if self._caps.ndim != 1 or not len(self._caps) or (self._caps <= 0).any():
            raise ValueError(f"capacities must be a positive vector, got {capacities!r}")
        self._avail = self._caps.copy()
        self.now = 0.0
        self.time_eps = time_eps
        self._heap: list[tuple[float, int, str, Any]] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # resource accounting (numpy vectors)
    # ------------------------------------------------------------------
    @property
    def capacities(self) -> np.ndarray:
        """Per-type capacities (do not mutate)."""
        return self._caps

    @property
    def available(self) -> np.ndarray:
        """The live availability vector (a view — do not mutate directly)."""
        return self._avail

    def fits(self, demand: Sequence[int]) -> bool:
        """True when ``demand ⪯ available`` (the admission test)."""
        return bool((np.asarray(demand) <= self._avail).all())

    def acquire(self, demand: Sequence[int]) -> None:
        """Subtract ``demand`` from the availability vector."""
        self._avail -= demand
        if (self._avail < 0).any():
            self._avail += demand
            raise RuntimeError(
                f"overcommitted: demand {tuple(int(x) for x in np.asarray(demand))} "
                f"exceeds availability {tuple(int(x) for x in self._avail)}"
            )

    def release(self, demand: Sequence[int]) -> None:
        """Return ``demand`` to the availability vector."""
        self._avail += demand
        if (self._avail > self._caps).any():
            self._avail -= demand
            raise RuntimeError("released more resources than were acquired")

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def push_event(self, time: float, kind: str, payload: Any) -> None:
        """Schedule an event; ``payload`` is opaque to the kernel."""
        if time < self.now - self.time_eps:
            raise ValueError(f"cannot schedule an event in the past ({time} < {self.now})")
        heapq.heappush(self._heap, (float(time), self._seq, kind, payload))
        self._seq += 1

    def start(self, payload: Any, demand: Sequence[int], duration: float) -> float:
        """Acquire ``demand`` now and schedule completion after ``duration``."""
        self.acquire(demand)
        finish = self.now + duration
        self.push_event(finish, COMPLETE, payload)
        return finish

    def hold(self, payload: Any, duration: float) -> float:
        """Schedule a completion for work that already holds its resources
        (re-execution of a failed attempt on the same allocation)."""
        finish = self.now + duration
        self.push_event(finish, COMPLETE, payload)
        return finish

    def schedule_release(self, time: float, payload: Any) -> None:
        """Announce that ``payload`` becomes known/ready-eligible at ``time``."""
        self.push_event(time, RELEASE, payload)

    def schedule_failure(self, time: float, payload: Any) -> None:
        """Inject a failure event at ``time`` (platform-level fault models)."""
        self.push_event(time, FAILURE, payload)

    @property
    def pending(self) -> int:
        """Number of events still on the heap."""
        return len(self._heap)

    @property
    def next_time(self) -> float | None:
        """Time of the earliest pending event (``None`` when drained)."""
        return self._heap[0][0] if self._heap else None

    def pop_batch(self) -> list[tuple[str, Any]]:
        """Advance the clock to the next event and pop it together with every
        event within ``time_eps`` of it (anchored at the first event's time)."""
        heap = self._heap
        if not heap:
            raise RuntimeError("pop_batch called on an empty event heap")
        t, _, kind, payload = heapq.heappop(heap)
        self.now = t
        batch = [(kind, payload)]
        horizon = t + self.time_eps
        while heap and heap[0][0] <= horizon:
            _, _, k2, p2 = heapq.heappop(heap)
            batch.append((k2, p2))
        return batch

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def run(
        self,
        dispatch: Callable[["EventKernel"], None],
        handle: Callable[["EventKernel", str, Any], None],
    ) -> None:
        """Alternate dispatch passes and event batches until quiescent.

        ``dispatch(kernel)`` is called at time 0 and after every event batch;
        it starts work via :meth:`start`.  ``handle(kernel, kind, payload)``
        processes one popped event (releasing resources, updating readiness,
        resubmitting failed work).  The loop ends when the heap is empty and
        the final dispatch pass starts nothing; callers are responsible for
        detecting deadlock (work left unplaced) afterwards.
        """
        self.run_until(dispatch, handle)

    def run_until(
        self,
        dispatch: Callable[["EventKernel"], None],
        handle: Callable[["EventKernel", str, Any], None],
        until: float | None = None,
    ) -> bool:
        """:meth:`run`, resumable: stop once the earliest pending event lies
        past ``until`` without popping it (returns ``False`` — call again to
        resume) or the heap drains (returns ``True``).  A resumed call
        re-runs the dispatch pass at the current clock first, which starts
        nothing new unless work arrived in between — availability only
        changes through events."""
        dispatch(self)
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                return False
            for kind, payload in self.pop_batch():
                handle(self, kind, payload)
            dispatch(self)
        return True
