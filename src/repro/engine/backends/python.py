"""The default (pure numpy) dispatch backend.

This is the historical fused loop of
:class:`~repro.engine.dispatch.PackedPriorityLoop`, restructured around
time-point batches:

* **Admit-then-refilter dispatch pass.**  The whole-queue SWAR prefilter
  finds every queued job that fits the availability *snapshot*; the old
  loop then rechecked each hit with scalar big-int arithmetic as
  availability shrank — ~100 rechecks per started job on contended
  queues.  The pass now admits the first hit (the lowest rank, valid
  because availability has not shrunk yet) and re-filters the remaining
  hits with one small vector comparison, repeating until no hit
  survives.  Greedy-in-rank-order semantics are unchanged: a job outside
  the snapshot hit set can never fit later in the pass (availability
  only shrinks within a pass), and re-filtering the tail against the
  shrunk availability is exactly the scalar recheck, batched.

* **Vectorized batch application.**  All events within ``time_eps`` of
  the first popped event form one batch (they always did); batches of
  simultaneous completions/releases now apply as whole-array updates —
  one packed-demand sum for the freed capacity, one ragged CSR gather +
  ``subtract.at`` for the successor in-degrees — instead of a python
  loop per event.

* **Release-only fast path.**  Availability only grows on completions,
  so after a batch containing no completion the standing invariant "no
  queued job fits" still holds for every *old* queue entry: only the
  newly released jobs need a fit test.  They are scanned in rank order
  (exactly where the full pass would reach them) and the full-queue
  pass is skipped.

All three changes are schedule-preserving: admission order within a
time point remains the ``(key, topological index)`` total order, and
the conformance fuzz matrix races the result against the frozen
per-event references event for event.
"""

from __future__ import annotations

import gc
import heapq

import numpy as np

from repro.engine.backends import register_backend

__all__ = ["PythonBackend"]

#: Batches at least this large take the whole-array application path.
_VECTOR_BATCH = 8


@register_backend("python", description="pure numpy fused loop (default)")
class PythonBackend:
    """The numpy implementation of the packed hot loop (always available)."""

    name = "python"

    @staticmethod
    def is_available() -> bool:
        return True

    def run_packed(self, loop, until: "float | None" = None) -> bool:
        """Execute :class:`PackedPriorityLoop`'s hot loop (see class docs).

        The collector is paused for the duration of the run: the loop
        allocates only acyclic objects (event tuples, the caller's
        placement records), but each allocation-triggered generational
        collection scans *every* live object — with a million-job
        instance resident that is an O(n) cost paid every ~10k events,
        and it is what used to bend the jobs/s curve at large n.  No
        cycles are created, so nothing is ever missed; the prior
        collector state is restored on exit either way.
        """
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            return self._run_packed(loop, until)
        finally:
            if was_enabled:
                gc.enable()

    def _run_packed(self, loop, until: "float | None" = None) -> bool:
        remaining = loop.remaining
        ip = loop.ip
        si = loop.si
        pk_by_rank = loop.pk_by_rank
        pk_rank_l = loop.pk_rank_l
        pk_topo = loop.pk_topo
        pk_topo_l = loop.pk_topo_l
        rank_a = loop.rank_a
        topo_l = loop.topo_l
        dur = loop.dur
        order = loop.order
        on_start = loop.on_start
        on_complete = loop.on_complete
        n = loop.n
        H = loop.H
        H_u = loop.H_u
        uint64 = np.uint64
        avh = loop.avh
        heap = loop.heap
        seq = loop.seq
        qb = loop.qb
        pb = loop.pb
        sq = loop.sq
        sp = loop.sp
        L = loop.L
        now = loop.now
        eps = loop.eps
        push = heapq.heappush
        pop = heapq.heappop
        done = False
        log = on_start is None
        if log:
            # array start-log mode: record (topo index, start time) pairs
            # instead of calling back per dispatch (see priority_loop)
            _, _, log_i, log_t = loop.kernel_scratch()
            ns = loop.ns
        # Between passes the invariant "no queued job fits the current
        # availability" holds (the pass leaves only misses behind and
        # availability only grows on completions), so a batch that frees
        # no capacity cannot make an old queue entry startable.
        need_pass = True

        while True:
            # ------------------------- dispatch pass -------------------------
            if need_pass and L:
                # whole-queue feasibility: one SWAR comparison over uint64s
                hits = ((((uint64(avh) - pb[:L]) & H_u) == H_u).nonzero())[0]
                if hits.size:
                    started = None
                    while True:
                        # the first hit is the lowest-rank fitting job and
                        # availability has not shrunk since the filter ran
                        kpos = hits[0]
                        r = int(qb[kpos])
                        avh -= pk_rank_l[r]
                        i = topo_l[r]
                        t = dur[i]
                        push(heap, (now + t, seq, i))
                        seq += 1
                        if log:
                            log_i[ns] = i
                            log_t[ns] = now
                            ns += 1
                        else:
                            on_start(order[i], now, t)
                        if started is None:
                            started = [kpos]
                        else:
                            started.append(kpos)
                        hits = hits[1:]
                        if not hits.size:
                            break
                        # re-filter the tail against the shrunk availability
                        hits = hits[(((uint64(avh) - pb[hits]) & H_u) == H_u)]
                        if not hits.size:
                            break
                    if len(started) == L:
                        L = 0
                    else:
                        for p in reversed(started):
                            qb[p:L - 1] = qb[p + 1:L]
                            pb[p:L - 1] = pb[p + 1:L]
                            L -= 1
            need_pass = False
            if not heap:
                done = True
                break
            if until is not None and heap[0][0] > until:
                break
            # -------------------------- event batch --------------------------
            t0, _, c = pop(heap)
            now = t0
            horizon = t0 + eps
            if heap and heap[0][0] <= horizon:
                batch = [c]
                while heap and heap[0][0] <= horizon:
                    batch.append(pop(heap)[2])
            else:
                batch = (c,)
            newly = None
            freed = False
            if on_complete is None and len(batch) >= _VECTOR_BATCH:
                # whole-array application of one simultaneous batch
                codes = np.fromiter(batch, count=len(batch), dtype=np.int64)
                iscomp = codes < n
                rel = codes[~iscomp] - n
                comp = codes[iscomp]
                if rel.size:
                    remaining[rel] -= 1  # one release event per job: unique rows
                    z = rel[remaining[rel] == 0]
                    if z.size:
                        newly = rank_a[z].tolist()
                if comp.size:
                    freed = True
                    avh += int(pk_topo[comp].sum(dtype=np.uint64))
                    lo = ip[comp]
                    cnt = ip[comp + 1] - lo
                    total = int(cnt.sum())
                    if total:
                        # ragged CSR gather of every successor row
                        cum = np.cumsum(cnt)
                        cat = si[np.repeat(lo - (cum - cnt), cnt) + np.arange(total)]
                        np.subtract.at(remaining, cat, 1)  # parents may share children
                        cand = np.unique(cat)
                        z = cand[remaining[cand] == 0]
                        if z.size:
                            zr = rank_a[z].tolist()
                            if newly is None:
                                newly = zr
                            else:
                                newly.extend(zr)
            else:
                for c in batch:
                    if c >= n:  # release event: one virtual predecessor satisfied
                        i = c - n
                        m = remaining[i] - 1
                        remaining[i] = m
                        if not m:
                            if newly is None:
                                newly = [int(rank_a[i])]
                            else:
                                newly.append(int(rank_a[i]))
                        continue
                    i = c
                    if on_complete is not None:
                        retry = on_complete(order[i], now)
                        if retry is not None:
                            # re-run on the held allocation; nothing is released
                            push(heap, (now + retry, seq, i))
                            seq += 1
                            continue
                    freed = True
                    avh += pk_topo_l[i]
                    lo = ip[i]
                    hi = ip[i + 1]
                    if hi > lo:
                        tgt = si[lo:hi]
                        rem = remaining[tgt] - 1
                        remaining[tgt] = rem  # successors of one job are unique
                        z = tgt[rem == 0]
                        if z.size:
                            zr = rank_a[z].tolist()
                            if newly is None:
                                newly = zr
                            else:
                                newly.extend(zr)
            if freed:
                need_pass = True
            elif newly is not None:
                # Release-only batch: no old queue entry can have become
                # startable, so only the newly released jobs need a fit
                # test — in rank order, exactly where the full pass would
                # reach them (old entries being guaranteed misses).
                if len(newly) > 1:
                    newly.sort()
                leftovers = None
                for r in newly:
                    a = pk_rank_l[r]
                    if (avh - a) & H == H:
                        avh -= a
                        i = topo_l[r]
                        t = dur[i]
                        push(heap, (now + t, seq, i))
                        seq += 1
                        if log:
                            log_i[ns] = i
                            log_t[ns] = now
                            ns += 1
                        else:
                            on_start(order[i], now, t)
                    elif leftovers is None:
                        leftovers = [r]
                    else:
                        leftovers.append(r)
                newly = leftovers
            if newly is not None:
                k = len(newly)
                if k == 1:
                    r = newly[0]
                    p = qb[:L].searchsorted(r)
                    qb[p + 1:L + 1] = qb[p:L]
                    qb[p] = r
                    pb[p + 1:L + 1] = pb[p:L]
                    pb[p] = pk_rank_l[r]
                    L += 1
                else:
                    nr = np.array(newly, dtype=np.int64)
                    nr.sort()
                    idx = qb[:L].searchsorted(nr) + np.arange(k)
                    mask = np.ones(L + k, dtype=bool)
                    mask[idx] = False
                    oq = sq[:L + k]
                    op = sp[:L + k]
                    oq[idx] = nr
                    op[idx] = pk_by_rank[nr]
                    oq[mask] = qb[:L]
                    op[mask] = pb[:L]
                    qb, sq = sq, qb
                    pb, sp = sp, pb
                    L += k

        # store the loop state back and leave the kernel facade consistent
        loop.avh = avh
        loop.seq = seq
        loop.qb = qb
        loop.pb = pb
        loop.sq = sq
        loop.sp = sp
        loop.L = L
        loop.now = now
        loop.done = done
        if log:
            loop.ns = ns
        loop.sync_kernel()
        return done
