"""The ``numba`` dispatch backend: an njit-compiled packed kernel.

:func:`_packed_loop_kernel` is the whole hot loop of
:class:`~repro.engine.dispatch.PackedPriorityLoop` — heap advance,
SWAR feasibility scan, dispatch, time-point batch application — written
against plain arrays in nopython-compatible python.  When :mod:`numba`
is importable the function is ``@njit``-compiled on first use; when it
is not, the backend reports itself unavailable and
:func:`~repro.engine.backends.resolve_backend` falls back to the
``python`` backend (numba is an optional dependency, never required —
see the CI ``backend-numba`` job for the installed-path coverage).

Scope: the compiled path covers the **packed batch loop** (``d <= 4``,
capacities below ``2**15``) without completion interception — exactly
the regime the large-n benchmarks measure.  Runs that need
``on_complete`` callbacks (fault re-execution, ``--follow`` streaming)
and the general/incremental loops delegate to the python backend; the
schedules are identical either way, only the executor differs.

The kernel is schedule-preserving by construction: the dispatch pass is
a single in-order compaction scan over the rank-sorted queue (admit
what fits as availability shrinks — the same greedy the vectorized
admit-then-refilter realizes), the event heap is a binary heap over
``(time, seq)`` (``seq`` is unique, so the third tuple field never
participates in ordering and the python ``heapq`` list can be copied in
verbatim), and batch application follows pop order.  ``on_start``
callbacks are replayed after the kernel returns, from the recorded
start log, in dispatch order — the loop never reads anything the
callbacks write, so replay is observationally identical.
"""

from __future__ import annotations

import gc

import numpy as np

from repro.engine.backends import get_backend, register_backend

__all__ = ["NumbaBackend"]

_numba_checked = False
_numba_available = False


def _check_numba() -> bool:
    global _numba_checked, _numba_available
    if not _numba_checked:
        _numba_checked = True
        try:  # pragma: no cover - exercised only where numba is installed
            import numba  # noqa: F401

            _numba_available = True
        except Exception:
            _numba_available = False
    return _numba_available


def _packed_loop_kernel(
    ht, hs, hc, hlen,          # heap: times f8, seqs i8, codes i8, live length
    seq, avh, H,               # event sequence i8, availability+headroom u8, mask u8
    qb, pb, L,                 # ready queue: ranks i8, packed demands u8, live length
    remaining,                 # i8[n] outstanding predecessor counts
    ip, si,                    # CSR successors i8
    dur, pk_topo, pk_rank,     # f8[n] by topo, u8[n] by topo, u8[n] by rank
    rank_a, topo_a,            # i8[n] topo->rank, i8[n] rank->topo
    now, eps, until, bounded,  # clock f8, batch horizon f8, stop bound f8 + flag
    out_i, out_t,              # start log: topo index i8[n], start time f8[n]
    nbuf,                      # i8[n] scratch for newly ready ranks
    ns0,                       # i8 start-log write offset (log mode resumes here)
):
    n = remaining.shape[0]
    ns = ns0
    done = False
    while True:
        # ---------------------- dispatch pass ----------------------
        # one compaction scan in rank order: admit what fits as
        # availability shrinks, keep the misses packed to the left
        if L > 0:
            w = 0
            for k in range(L):
                a = pb[k]
                if (avh - a) & H == H:
                    avh = avh - a
                    r = qb[k]
                    i = topo_a[r]
                    ft = now + dur[i]
                    # heap push (ft, seq, i): sift up on (time, seq)
                    hp = hlen
                    hlen += 1
                    while hp > 0:
                        par = (hp - 1) >> 1
                        if ht[par] < ft or (ht[par] == ft and hs[par] < seq):
                            break
                        ht[hp] = ht[par]
                        hs[hp] = hs[par]
                        hc[hp] = hc[par]
                        hp = par
                    ht[hp] = ft
                    hs[hp] = seq
                    hc[hp] = i
                    seq += 1
                    out_i[ns] = i
                    out_t[ns] = now
                    ns += 1
                else:
                    if w != k:
                        qb[w] = qb[k]
                        pb[w] = pb[k]
                    w += 1
            L = w
        if hlen == 0:
            done = True
            break
        if bounded and ht[0] > until:
            break
        # ----------------------- event batch -----------------------
        t0 = ht[0]
        now = t0
        horizon = t0 + eps
        nnew = 0
        while hlen > 0 and ht[0] <= horizon:
            c = hc[0]
            # heap pop: move the last entry down from the root
            hlen -= 1
            lt = ht[hlen]
            ls = hs[hlen]
            lc = hc[hlen]
            if hlen > 0:
                hp = 0
                while True:
                    ch = 2 * hp + 1
                    if ch >= hlen:
                        break
                    rc = ch + 1
                    if rc < hlen and (
                        ht[rc] < ht[ch] or (ht[rc] == ht[ch] and hs[rc] < hs[ch])
                    ):
                        ch = rc
                    if ht[ch] < lt or (ht[ch] == lt and hs[ch] < ls):
                        ht[hp] = ht[ch]
                        hs[hp] = hs[ch]
                        hc[hp] = hc[ch]
                        hp = ch
                    else:
                        break
                ht[hp] = lt
                hs[hp] = ls
                hc[hp] = lc
            if c >= n:  # release: one virtual predecessor satisfied
                i = c - n
                remaining[i] -= 1
                if remaining[i] == 0:
                    nbuf[nnew] = rank_a[i]
                    nnew += 1
            else:  # completion: free capacity, ripen successors
                i = c
                avh = avh + pk_topo[i]
                for e in range(ip[i], ip[i + 1]):
                    s = si[e]
                    remaining[s] -= 1
                    if remaining[s] == 0:
                        nbuf[nnew] = rank_a[s]
                        nnew += 1
        # merge the newly ready ranks into the sorted queue, from the back
        if nnew > 0:
            seg = nbuf[:nnew]
            seg.sort()
            src = L - 1
            dst = L + nnew - 1
            jj = nnew - 1
            while jj >= 0:
                r = seg[jj]
                while src >= 0 and qb[src] > r:
                    qb[dst] = qb[src]
                    pb[dst] = pb[src]
                    src -= 1
                    dst -= 1
                qb[dst] = r
                pb[dst] = pk_rank[r]
                dst -= 1
                jj -= 1
            L += nnew
    return ns, seq, avh, L, hlen, now, done


@register_backend("numba", description="njit-compiled packed kernel (d <= 4)")
class NumbaBackend:
    """Compiled executor for the packed batch loop; python elsewhere.

    ``_jit=False`` runs the kernel uncompiled — slow, but it lets the
    test suite pin kernel/python identity on hosts without numba.
    """

    name = "numba"

    def __init__(self, *, _jit: bool = True) -> None:
        self._use_jit = _jit
        self._kernel = None

    def is_available(self) -> bool:
        return _check_numba() if self._use_jit else True

    def _compiled_kernel(self):
        if self._kernel is None:
            if self._use_jit:  # pragma: no cover - needs numba installed
                from numba import njit

                self._kernel = njit(cache=True, fastmath=False)(_packed_loop_kernel)
            else:
                self._kernel = _packed_loop_kernel
        return self._kernel

    def run_packed(self, loop, until: "float | None" = None) -> bool:
        if loop.on_complete is not None or loop.n == 0 or not self.is_available():
            # graceful fallback: interception hooks (and trivial instances)
            # stay on the python executor; schedules are identical
            return get_backend("python").run_packed(loop, until)
        # pause the collector like the python backend does: the start-log
        # replay allocates one placement record per started job, and each
        # allocation-triggered collection scans every live object of the
        # (possibly million-job) resident instance
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            return self._run_kernel(loop, until)
        finally:
            if was_enabled:
                gc.enable()

    def _run_kernel(self, loop, until: "float | None" = None) -> bool:
        n = loop.n
        # the heap holds at most one completion per running job plus one
        # release per not-yet-released job
        cap = 2 * n + 4
        ht = np.empty(cap, dtype=np.float64)
        hs = np.empty(cap, dtype=np.int64)
        hc = np.empty(cap, dtype=np.int64)
        hlen = len(loop.heap)
        for k, (t, s, c) in enumerate(loop.heap):
            ht[k] = t
            hs[k] = s
            hc[k] = c
        dur_a, nbuf, out_i, out_t = loop.kernel_scratch()
        on_start = loop.on_start
        log = on_start is None  # array start-log mode: the kernel's native output
        ns, seq, avh, L, hlen, now, done = self._compiled_kernel()(
            ht, hs, hc, hlen,
            loop.seq, np.uint64(loop.avh), loop.H_u,
            loop.qb, loop.pb, loop.L,
            loop.remaining, loop.ip, loop.si,
            dur_a, loop.pk_topo, loop.pk_by_rank,
            loop.rank_a, loop.topo_a,
            loop.now, loop.eps,
            0.0 if until is None else until, until is not None,
            out_i, out_t, nbuf,
            loop.ns if log else 0,
        )
        if log:
            loop.ns = int(ns)
        else:
            # replay the start log in dispatch order (the loop reads nothing
            # the callback writes, so post-hoc replay is observationally
            # identical to the inline call)
            order = loop.order
            dur = loop.dur
            for k in range(ns):
                i = int(out_i[k])
                on_start(order[i], float(out_t[k]), dur[i])
        loop.heap = [(float(ht[k]), int(hs[k]), int(hc[k])) for k in range(hlen)]
        loop.seq = int(seq)
        loop.avh = int(avh)
        loop.L = int(L)
        loop.now = float(now)
        loop.done = bool(done)
        loop.sync_kernel()
        return loop.done
