"""Pluggable dispatch backends for the packed event loop.

The hot kernel of :class:`~repro.engine.dispatch.PackedPriorityLoop` —
heap advance, SWAR feasibility scan and dispatch — sits behind a small
registry so alternative implementations can be swapped in without
touching the loop's state layout or its callers.  The registry mirrors
:mod:`repro.registry` (the scheduler registry): backends register under
a name via :func:`register_backend`, are looked up with
:func:`get_backend`, and the built-ins load lazily on first query.

Two built-ins ship:

* ``python`` — the numpy loop the repository has always run (the
  default).  Improved here with an admit-then-refilter dispatch pass
  and vectorized batch application of simultaneous events.
* ``numba`` — an ``@njit``-compiled kernel for the packed ``d <= 4``
  path.  :mod:`numba` is imported lazily; when it is absent (it is an
  optional dependency, never required) the backend reports itself
  unavailable and resolution falls back to ``python`` with a warning.

Selection order is **CLI flag > ``REPRO_BACKEND`` env var > default**
(see :func:`resolve_backend`); every run records the backend that
actually executed so operators can tell a fallback from a hit.

Backend objects implement::

    name: str                  # registry name
    is_available() -> bool     # can this backend execute here?
    run_packed(loop, until)    # execute PackedPriorityLoop's hot loop

``run_packed`` receives the loop object itself (all state lives on the
loop, see :class:`~repro.engine.dispatch.PackedPriorityLoop`), must
leave that state consistent on return — resumable exactly like the
historical inline loop — and returns ``True`` once the heap drains.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Callable

__all__ = [
    "BackendSpec",
    "register_backend",
    "get_backend",
    "backend_names",
    "available_backends",
    "resolve_backend",
    "DEFAULT_BACKEND",
    "BACKEND_ENV",
]

#: The backend used when neither the CLI nor the environment names one.
DEFAULT_BACKEND = "python"

#: Environment variable consulted when no explicit backend is passed.
BACKEND_ENV = "REPRO_BACKEND"


@dataclass(frozen=True)
class BackendSpec:
    """Registry record for one dispatch backend."""

    name: str
    factory: Callable[[], object]
    description: str = ""


_REGISTRY: dict[str, BackendSpec] = {}
_INSTANCES: dict[str, object] = {}
_BUILTINS_LOADED = False


def register_backend(name: str, *, description: str = ""):
    """Class/function decorator registering a backend factory under ``name``.

    The factory is called once, lazily, on first :func:`get_backend`;
    the instance is cached (backends are stateless between runs apart
    from compiled-kernel caches, which is exactly what the cache is for).
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")

    def deco(factory):
        if name in _REGISTRY:
            raise ValueError(f"backend {name!r} is already registered")
        _REGISTRY[name] = BackendSpec(name=name, factory=factory, description=description)
        return factory

    return deco


def _load_builtins() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.engine.backends import numba, python  # noqa: F401


def backend_names() -> list[str]:
    """All registered backend names, default first."""
    _load_builtins()
    names = sorted(_REGISTRY)
    if DEFAULT_BACKEND in names:
        names.remove(DEFAULT_BACKEND)
        names.insert(0, DEFAULT_BACKEND)
    return names


def get_backend(name: str):
    """The backend instance registered under ``name`` (KeyError if unknown)."""
    _load_builtins()
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise KeyError(f"unknown backend {name!r} (registered: {known})")
    if name not in _INSTANCES:
        _INSTANCES[name] = _REGISTRY[name].factory()
    return _INSTANCES[name]


def available_backends() -> dict[str, bool]:
    """Mapping of registered backend name to availability on this host."""
    _load_builtins()
    return {name: get_backend(name).is_available() for name in backend_names()}


def resolve_backend(name: "str | None" = None, *, warn: bool = True):
    """Resolve the backend to run with: CLI ``name`` > env > default.

    An explicitly named but *unregistered* backend is an error (a typo
    should not silently run something else).  A registered backend that
    is unavailable on this host (e.g. ``numba`` without numba installed)
    falls back to the default with a :class:`RuntimeWarning` — requested
    runs still complete, just uninlined, and the warning plus the
    recorded ``.name`` make the fallback visible.
    """
    requested = name or os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    backend = get_backend(requested)
    if backend.is_available():
        return backend
    if warn:
        warnings.warn(
            f"backend {requested!r} is not available on this host "
            f"(falling back to {DEFAULT_BACKEND!r})",
            RuntimeWarning,
            stacklevel=2,
        )
    return get_backend(DEFAULT_BACKEND)
