"""First-fit shelf packing shared by the shelf-based schedulers.

Shelf (a.k.a. pack) scheduling places jobs on horizontal shelves: every job
on a shelf starts at the same instant, a shelf's height is its first
(tallest, when the caller pre-sorts by non-increasing time) job's execution
time, and shelves run back-to-back.  Both the level-by-level baseline and
Sun et al. [36]'s pack scheduler used to carry private copies of this
packing loop; this module is now the single implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping, Sequence

import numpy as np

from repro.sim.schedule import ScheduledJob

__all__ = ["Shelf", "pack_shelves", "stack_shelves"]

JobId = Hashable


@dataclass
class Shelf:
    """One shelf: its members, per-type usage, and height (run time)."""

    jobs: list[JobId]
    used: np.ndarray = field(repr=False)
    height: float


def pack_shelves(
    jobs: Iterable[JobId],
    allocation: Mapping[JobId, Sequence[int]],
    times: Mapping[JobId, float],
    capacities: Sequence[int],
) -> list[Shelf]:
    """First-fit pack ``jobs`` (in the given order) onto shelves.

    A job joins the first open shelf whose remaining capacity admits its
    allocation in every resource type; otherwise it opens a new shelf whose
    height is its own execution time.
    """
    caps = np.asarray(tuple(capacities), dtype=np.int64)
    shelves: list[Shelf] = []
    for j in jobs:
        a = np.asarray(tuple(allocation[j]), dtype=np.int64)
        for shelf in shelves:
            if ((shelf.used + a) <= caps).all():
                shelf.jobs.append(j)
                shelf.used += a
                break
        else:
            shelves.append(Shelf(jobs=[j], used=a.copy(), height=times[j]))
    return shelves


def stack_shelves(
    shelves: Sequence[Shelf],
    allocation: Mapping[JobId, object],
    times: Mapping[JobId, float],
    *,
    t0: float = 0.0,
) -> tuple[dict[JobId, ScheduledJob], float]:
    """Run ``shelves`` back-to-back starting at ``t0``.

    Returns the placements and the finish time of the last shelf (so callers
    stacking several shelf groups — e.g. one per precedence level — can
    chain them).
    """
    placements: dict[JobId, ScheduledJob] = {}
    for shelf in shelves:
        for j in shelf.jobs:
            placements[j] = ScheduledJob(job_id=j, start=t0, time=times[j], alloc=allocation[j])
        t0 += shelf.height
    return placements, t0
