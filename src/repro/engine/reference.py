"""Frozen pre-kernel scheduling loops, kept for differential testing.

Before the :mod:`repro.engine` refactor, the event loop was re-implemented
(with subtle drift in tie-breaking and resource accounting) in the core list
scheduler, the dynamic-baseline engine, the shelf packers, the backfill
planner, the malleable scheduler and the fault simulator.  This module
preserves those original loops *verbatim in behavior* so that

* the equivalence tests (``tests/test_engine_equivalence.py``) can assert the
  kernel ports produce identical schedules, and
* ``benchmarks/bench_engine.py`` can measure the kernel against the loop it
  replaced.

The module holds two generations of frozen loops: the original pre-kernel
python loops (``reference_*``) and the PR-1 kernel driver
(:func:`reference_pr1_list_schedule`) — the ``insort``-queue, dict-bookkeeping
dispatch that the compiled-instance engine replaced.  Do not use this
module for scheduling — it exists only as an executable specification of
the old behavior.  Its consumers are the equivalence tests, the benchmark
harness and the conformance fuzzer (:mod:`repro.conformance.fuzz`), which
races the live engine against these loops event-for-event on every case
it sweeps.
"""

from __future__ import annotations

import heapq
from bisect import insort
from operator import le as _le
from typing import Hashable, Mapping

import numpy as np

from repro.engine.kernel import RELEASE, EventKernel
from repro.instance.instance import Instance
from repro.sim.schedule import Schedule, ScheduledJob
from repro.util.rng import ensure_rng

__all__ = [
    "reference_bottom_level_priority",
    "reference_list_schedule",
    "reference_pr1_list_schedule",
    "reference_run_dynamic",
    "reference_pack_shelf_placements",
    "reference_backfill_plan",
    "reference_malleable_task_starts",
    "reference_execute_with_faults",
]

JobId = Hashable

#: PR-1's ready-queue length threshold for its vectorized prefilter.
_PR1_VECTOR_SCAN_MIN = 32


# ----------------------------------------------------------------------
# era-faithful building blocks
#
# The frozen loops must not retroactively benefit from infrastructure the
# later refactors added (the DAG's cached topological order, the vectorized
# bottom levels, the whole-matrix allocation validation) — otherwise the
# benchmarks would measure a hybrid that never shipped.  These helpers
# reproduce the original implementations verbatim.
# ----------------------------------------------------------------------
def _era_topological_order(dag) -> list[JobId]:
    """Kahn order rebuilt from the adjacency dicts, exactly as the DAG
    computed it before the order was cached (one fresh O(n+m) pass)."""
    indeg = {n: dag.in_degree(n) for n in dag.nodes()}
    frontier = [n for n, k in indeg.items() if k == 0]
    order: list[JobId] = []
    while frontier:
        n = frontier.pop()
        order.append(n)
        for s in dag.successors(n):
            indeg[s] -= 1
            if indeg[s] == 0:
                frontier.append(s)
    if len(order) != len(dag):
        raise ValueError("precedence graph contains a cycle")
    return order


def _era_validate_allocation_map(instance, allocation) -> None:
    """The original per-job validation loop (python dominance tests)."""
    for j in instance.jobs:
        if j not in allocation:
            raise ValueError(f"allocation missing job {j!r}")
        instance.pool.validate_allocation(allocation[j])


def reference_bottom_level_priority(instance, allocation, times) -> dict[JobId, object]:
    """The pre-vectorization bottom-level priority rule: a per-node python
    sweep over the DAG, keyed exactly like the live rule."""
    order = _era_topological_order(instance.dag)
    b: dict[JobId, float] = {}
    for j in reversed(order):
        succ_best = max((b[s] for s in instance.dag.successors(j)), default=0.0)
        b[j] = times[j] + succ_best
    return {j: (-b[j], i) for i, j in enumerate(_era_topological_order(instance.dag))}


def reference_list_schedule(instance, allocation, priority=None) -> Schedule:
    """The pre-kernel Algorithm 2 loop (python per-type accounting, insort
    ready queue, full-queue scans).

    ``priority=None`` uses :func:`reference_bottom_level_priority`, the
    era-faithful default for benchmark comparisons.
    """
    if priority is None:
        priority = reference_bottom_level_priority
    _era_validate_allocation_map(instance, allocation)
    times = {j: instance.time(j, allocation[j]) for j in instance.jobs}
    keys = priority(instance, allocation, times)

    dag = instance.dag
    remaining_preds = {j: dag.in_degree(j) for j in instance.jobs}
    tie = {j: i for i, j in enumerate(_era_topological_order(dag))}
    ready: list[tuple[object, int, JobId]] = []
    for j in dag.sources():
        insort(ready, (keys[j], tie[j], j))

    avail = list(instance.pool.capacities)
    d = instance.d
    running: list[tuple[float, int, JobId]] = []
    seq = 0
    placements: dict[JobId, ScheduledJob] = {}
    now = 0.0

    while ready or running:
        still_waiting: list[tuple[object, int, JobId]] = []
        for entry in ready:
            j = entry[2]
            a = allocation[j]
            if all(a[r] <= avail[r] for r in range(d)):
                for r in range(d):
                    avail[r] -= a[r]
                placements[j] = ScheduledJob(job_id=j, start=now, time=times[j], alloc=a)
                heapq.heappush(running, (now + times[j], seq, j))
                seq += 1
            else:
                still_waiting.append(entry)
        ready = still_waiting

        if not running:
            if ready:
                raise RuntimeError("deadlock: ready jobs cannot fit an empty platform")
            break

        now, _, j = heapq.heappop(running)
        completed = [j]
        while running and running[0][0] <= now + 1e-12:
            completed.append(heapq.heappop(running)[2])
        for c in completed:
            a = allocation[c]
            for r in range(d):
                avail[r] += a[r]
            for s in dag.successors(c):
                remaining_preds[s] -= 1
                if remaining_preds[s] == 0:
                    insort(ready, (keys[s], tie[s], s))

    if len(placements) != len(instance.jobs):
        raise RuntimeError("list scheduling failed to place every job")
    return Schedule(instance=instance, placements=placements)


def reference_pr1_list_schedule(instance, allocation, priority=None) -> Schedule:
    """The PR-1 kernel list-schedule path, frozen verbatim.

    This is the ``drive_priority_schedule`` that shipped with the unified
    engine refactor: dict ``remaining`` bookkeeping, an ``insort``-sorted
    ready queue of ``(key, index, job)`` tuples, per-job tuple round-trips
    for resource accounting, and a vectorized feasibility prefilter for
    long queues — together with the era's per-run rebuilds (fresh Kahn
    order, python allocation validation, and, for ``priority=None``, the
    python bottom-level sweep).  The compiled-instance engine must
    reproduce its schedules exactly, and ``benchmarks/bench_engine.py``
    measures against it.
    """
    if priority is None:
        priority = reference_bottom_level_priority
    _era_validate_allocation_map(instance, allocation)
    durations = {j: instance.time(j, allocation[j]) for j in instance.jobs}
    keys = priority(instance, allocation, durations)

    placements: dict[JobId, ScheduledJob] = {}

    def on_start(j, start, duration):
        placements[j] = ScheduledJob(job_id=j, start=start, time=duration, alloc=allocation[j])

    dag = instance.dag
    order = _era_topological_order(dag)
    index = {j: i for i, j in enumerate(order)}
    d = instance.d
    rng_d = range(d)
    alloc_mat = np.zeros((len(order), d), dtype=np.int64)
    for j, i in index.items():
        alloc_mat[i] = tuple(allocation[j])
    alloc_tup = [tuple(allocation[j]) for j in order]

    remaining = {j: dag.in_degree(j) for j in order}
    kernel = EventKernel(instance.pool.capacities)
    for j, r in instance.release_times().items():
        if r > 0.0:
            remaining[j] += 1
            kernel.schedule_release(r, j)

    ready: list[tuple[object, int, JobId]] = []
    for j in dag.sources():
        if remaining[j] == 0:
            insort(ready, (keys[j], index[j], j))

    freed = [0] * d
    have_freed = False

    def dispatch(k: EventKernel) -> None:
        nonlocal have_freed
        if have_freed:
            k.release(freed)
            for r in rng_d:
                freed[r] = 0
            have_freed = False
        if not ready:
            return
        m = len(ready)
        fit = None
        if m > _PR1_VECTOR_SCAN_MIN:
            idxs = np.fromiter((e[1] for e in ready), dtype=np.int64, count=m)
            fit = (alloc_mat[idxs] <= k.available).all(axis=1).tolist()
            if True not in fit:
                return
        av = k.available.tolist()
        acq: list[int] | None = None
        keep: list[tuple[object, int, JobId]] = []
        for pos in range(m):
            entry = ready[pos]
            if fit is None or fit[pos]:
                a = alloc_tup[entry[1]]
                if all(map(_le, a, av)):
                    j = entry[2]
                    dur = durations[j]
                    kernel.hold(entry[1], dur)
                    if acq is None:
                        acq = list(a)
                    else:
                        for r in rng_d:
                            acq[r] += a[r]
                    for r in rng_d:
                        av[r] -= a[r]
                    on_start(j, k.now, dur)
                    continue
            keep.append(entry)
        if acq is not None:
            k.acquire(acq)
            ready[:] = keep

    def handle(k: EventKernel, kind: str, payload) -> None:
        nonlocal have_freed
        if kind == RELEASE:
            j = payload
            remaining[j] -= 1
            if remaining[j] == 0:
                insort(ready, (keys[j], index[j], j))
            return
        i = payload
        j = order[i]
        a = alloc_tup[i]
        for r in rng_d:
            freed[r] += a[r]
        have_freed = True
        for s in dag.successors(j):
            remaining[s] -= 1
            if remaining[s] == 0:
                insort(ready, (keys[s], index[s], s))

    kernel.run(dispatch, handle)

    if len(placements) != len(instance.jobs):
        raise RuntimeError("deadlock: ready jobs cannot fit an empty platform")
    return Schedule(instance=instance, placements=placements)


def reference_run_dynamic(instance, policy) -> Schedule:
    """The pre-kernel dynamic-allocation loop (Tetris/HEFT substrate)."""
    dag = instance.dag
    remaining = {j: dag.in_degree(j) for j in instance.jobs}
    ready: list[JobId] = list(dag.sources())
    avail = list(instance.pool.capacities)
    d = instance.d
    running: list[tuple[float, int, JobId]] = []
    seq = 0
    now = 0.0
    placements: dict[JobId, ScheduledJob] = {}

    while ready or running:
        while True:
            starts = policy(instance, list(ready), tuple(avail))
            if not starts:
                break
            for j, alloc in starts:
                if j not in ready:
                    raise RuntimeError(f"policy started non-ready job {j!r}")
                instance.pool.validate_allocation(alloc)
                if any(alloc[r] > avail[r] for r in range(d)):
                    raise RuntimeError(
                        f"policy overcommitted: {tuple(alloc)} vs available {tuple(avail)}"
                    )
                t = instance.time(j, alloc)
                for r in range(d):
                    avail[r] -= alloc[r]
                placements[j] = ScheduledJob(job_id=j, start=now, time=t, alloc=alloc)
                heapq.heappush(running, (now + t, seq, j))
                seq += 1
                ready.remove(j)

        if not running:
            if ready:
                raise RuntimeError("policy stalled with ready jobs and an idle platform")
            break

        now, _, j = heapq.heappop(running)
        done = [j]
        while running and running[0][0] <= now + 1e-12:
            done.append(heapq.heappop(running)[2])
        for c in done:
            a = placements[c].alloc
            for r in range(d):
                avail[r] += a[r]
            for s in dag.successors(c):
                remaining[s] -= 1
                if remaining[s] == 0:
                    ready.append(s)

    if len(placements) != len(instance.jobs):
        raise RuntimeError("dynamic engine failed to place every job")
    return Schedule(instance=instance, placements=placements)


def reference_pack_shelf_placements(
    jobs, allocation, times, capacities, *, t0: float = 0.0
) -> tuple[dict[JobId, ScheduledJob], float]:
    """The pre-kernel first-fit shelf loop shared (by copy) between the
    level-shelf baseline and Sun et al.'s pack scheduler."""
    caps = capacities
    d = len(caps)
    shelves: list[dict] = []
    for j in jobs:
        a = allocation[j]
        placed = False
        for shelf in shelves:
            if all(shelf["used"][r] + a[r] <= caps[r] for r in range(d)):
                shelf["jobs"].append(j)
                for r in range(d):
                    shelf["used"][r] += a[r]
                placed = True
                break
        if not placed:
            shelves.append({"jobs": [j], "used": list(a), "height": times[j]})
    placements: dict[JobId, ScheduledJob] = {}
    for shelf in shelves:
        for j in shelf["jobs"]:
            placements[j] = ScheduledJob(job_id=j, start=t0, time=times[j], alloc=allocation[j])
        t0 += shelf["height"]
    return placements, t0


def reference_backfill_plan(instance, allocation, times, order) -> dict[JobId, ScheduledJob]:
    """The pre-kernel conservative-backfilling reservation loop."""
    reserved: dict[JobId, ScheduledJob] = {}
    pending = list(order)
    caps = instance.pool.capacities
    d = instance.d

    def earliest_fit(est: float, alloc, duration: float) -> float:
        points = sorted({est} | {r.finish for r in reserved.values() if r.finish > est})
        for t in points:
            end = t + duration
            ok = True
            probes = [t] + [r.start for r in reserved.values() if t < r.start < end - 1e-12]
            for probe in probes:
                usage = [0] * d
                for r in reserved.values():
                    if r.start <= probe + 1e-12 and probe < r.finish - 1e-12:
                        for i in range(d):
                            usage[i] += r.alloc[i]
                if any(usage[i] + alloc[i] > caps[i] for i in range(d)):
                    ok = False
                    break
            if ok:
                return t
        return max((r.finish for r in reserved.values()), default=est)

    while pending:
        progressed = False
        for j in list(pending):
            preds = instance.dag.predecessors(j)
            if any(p not in reserved for p in preds):
                continue
            est = max((reserved[p].finish for p in preds), default=0.0)
            start = earliest_fit(est, allocation[j], times[j])
            reserved[j] = ScheduledJob(job_id=j, start=start, time=times[j], alloc=allocation[j])
            pending.remove(j)
            progressed = True
        if not progressed:
            raise RuntimeError("backfill planning stalled")
    return reserved


def reference_malleable_task_starts(instance) -> dict:
    """The pre-kernel unit-time-stepped malleable loop."""
    inst = instance
    outer_remaining = {j: inst.dag.in_degree(j) for j in inst.jobs}
    job_tasks_left = {j: inst.jobs[j].n_tasks for j in inst.jobs}
    open_jobs = [j for j in inst.dag.topological_order() if outer_remaining[j] == 0]

    intra_remaining = {
        j: {t: inst.jobs[j].tasks.in_degree(t) for t in inst.jobs[j].tasks.nodes()}
        for j in inst.jobs
    }
    ready = [
        (j, t)
        for j in open_jobs
        for t, k in intra_remaining[j].items()
        if k == 0
    ]
    task_start: dict = {}
    step = 0
    total = sum(job_tasks_left.values())

    while len(task_start) < total:
        if not ready:
            raise RuntimeError("malleable scheduler stalled")
        avail = list(inst.pool.capacities)
        started = []
        leftover = []
        for j, t in ready:
            r = inst.jobs[j].rtype[t]
            if avail[r] > 0:
                avail[r] -= 1
                task_start[(j, t)] = step
                started.append((j, t))
            else:
                leftover.append((j, t))
        ready = leftover
        newly_open = []
        for j, t in started:
            job_tasks_left[j] -= 1
            for s in inst.jobs[j].tasks.successors(t):
                intra_remaining[j][s] -= 1
                if intra_remaining[j][s] == 0:
                    ready.append((j, s))
            if job_tasks_left[j] == 0:
                for nxt in inst.dag.successors(j):
                    outer_remaining[nxt] -= 1
                    if outer_remaining[nxt] == 0:
                        newly_open.append(nxt)
        for j in newly_open:
            for t, k in intra_remaining[j].items():
                if k == 0:
                    ready.append((j, t))
        step += 1

    return task_start


def reference_execute_with_faults(
    instance: Instance,
    allocation: Mapping[JobId, object],
    *,
    priority,
    straggler_fraction: float = 0.0,
    straggler_factor: float = 1.0,
    failure_prob: float = 0.0,
    max_retries: int = 3,
    seed=0,
):
    """The pre-kernel fault-injection replay loop.

    Returns ``(attempts, completion)`` where ``attempts`` is a list of
    ``(job_id, start, duration, alloc, failed)`` tuples in dispatch order.
    """
    instance.validate_allocation_map(allocation)
    rng = ensure_rng(seed)

    base_times = {j: instance.time(j, allocation[j]) for j in instance.jobs}
    order = instance.dag.topological_order()
    is_straggler = {j: bool(rng.random() < straggler_fraction) for j in order}
    times = {
        j: base_times[j] * (straggler_factor if is_straggler[j] else 1.0) for j in order
    }
    keys = priority(instance, allocation, base_times)
    tie = {j: i for i, j in enumerate(order)}

    dag = instance.dag
    remaining = {j: dag.in_degree(j) for j in instance.jobs}
    ready = sorted(dag.sources(), key=lambda j: (keys[j], tie[j]))
    avail = list(instance.pool.capacities)
    d = instance.d
    running: list[tuple[float, int, JobId]] = []
    seq = 0
    now = 0.0
    retries_used = {j: 0 for j in instance.jobs}
    attempts: list[tuple] = []
    completion: dict[JobId, float] = {}

    while ready or running:
        still: list[JobId] = []
        for j in ready:
            a = allocation[j]
            if all(a[r] <= avail[r] for r in range(d)):
                for r in range(d):
                    avail[r] -= a[r]
                heapq.heappush(running, (now + times[j], seq, j))
                seq += 1
                attempts.append((j, now, times[j], a, False))
            else:
                still.append(j)
        ready = still

        if not running:
            break
        now, _, j = heapq.heappop(running)
        done = [j]
        while running and running[0][0] <= now + 1e-12:
            done.append(heapq.heappop(running)[2])
        for c in done:
            a = allocation[c]
            failed = retries_used[c] < max_retries and float(rng.random()) < failure_prob
            if failed:
                retries_used[c] += 1
                for idx in range(len(attempts) - 1, -1, -1):
                    at = attempts[idx]
                    if at[0] == c and not at[4] and c not in completion:
                        attempts[idx] = (at[0], at[1], at[2], at[3], True)
                        break
                heapq.heappush(running, (now + times[c], seq, c))
                seq += 1
                attempts.append((c, now, times[c], a, False))
                continue
            completion[c] = now
            for r in range(d):
                avail[r] += a[r]
            for s in dag.successors(c):
                remaining[s] -= 1
                if remaining[s] == 0:
                    ready.append(s)
                    ready.sort(key=lambda x: (keys[x], tie[x]))

    if len(completion) != len(instance.jobs):
        raise RuntimeError("fault simulation failed to complete every job")
    return attempts, completion
