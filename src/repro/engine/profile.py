"""Future-availability profile for reservation-based planning.

Conservative backfilling does not react to events — it *plans*: every job
gets a reservation at the earliest interval where its allocation fits the
d-type availability profile induced by all earlier reservations, and then
starts exactly there.  :class:`ReservationProfile` owns that profile (the
planning-time counterpart of the kernel's instantaneous availability
vector), with numpy-vector usage accounting over the reserved intervals.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["ReservationProfile"]

#: Tolerance for open/closed interval boundaries, matching the event loops.
_EPS = 1e-12


class ReservationProfile:
    """A set of reservations ``(start, finish, allocation)`` on a d-type pool."""

    def __init__(self, capacities: Sequence[int]) -> None:
        self._caps = np.asarray(tuple(capacities), dtype=np.int64)
        self._starts: list[float] = []
        self._finishes: list[float] = []
        self._allocs: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._starts)

    def usage_at(self, t: float) -> np.ndarray:
        """Total reserved amount per type at instant ``t`` (half-open
        intervals: a reservation occupies ``[start, finish)``)."""
        if not self._starts:
            return np.zeros_like(self._caps)
        starts = np.asarray(self._starts)
        finishes = np.asarray(self._finishes)
        active = (starts <= t + _EPS) & (t < finishes - _EPS)
        if not active.any():
            return np.zeros_like(self._caps)
        return np.asarray(self._allocs)[active].sum(axis=0)

    def fits_throughout(self, start: float, duration: float, demand: Sequence[int]) -> bool:
        """True when ``demand`` fits from ``start`` for ``duration`` given the
        existing reservations (checked at every usage change point)."""
        a = np.asarray(tuple(demand), dtype=np.int64)
        end = start + duration
        probes = [start] + [s for s in self._starts if start < s < end - _EPS]
        for probe in probes:
            if ((self.usage_at(probe) + a) > self._caps).any():
                return False
        return True

    def earliest_fit(self, est: float, demand: Sequence[int], duration: float) -> float:
        """Earliest ``t >= est`` where ``demand`` fits for ``duration``.

        Candidate starts are ``est`` and every reservation finish after it —
        availability only increases at finish times, so the scan is exact.
        """
        points = sorted({est} | {f for f in self._finishes if f > est})
        for t in points:
            if self.fits_throughout(t, duration, demand):
                return t
        return max(self._finishes, default=est)  # pragma: no cover - last point always fits

    def reserve(self, start: float, duration: float, demand: Sequence[int]) -> None:
        """Record a reservation (no feasibility re-check — callers use
        :meth:`earliest_fit` first)."""
        self._starts.append(start)
        self._finishes.append(start + duration)
        self._allocs.append(np.asarray(tuple(demand), dtype=np.int64))
