"""Strict, standalone schedule validation.

The validator re-derives every feasibility requirement of Section 3.2 from
the instance alone — deliberately independent of the scheduling algorithms
and of the engine that produced the schedule, so it can serve as the oracle
for the differential fuzz harness (:mod:`repro.conformance.fuzz`).

Invariant groups
----------------
Baseline (what :meth:`repro.sim.schedule.Schedule.validate` has always
checked, and now delegates here):

* **job-set equality** — the schedule places exactly the instance's jobs;
* **time-0 gating** — no job starts before time 0;
* **release gating** — no job starts before its release (online arrivals);
* **strict precedence** — ``finish(u) <= start(v)`` for every edge;
* **per-event-point capacity** — at every event point the running jobs use
  at most ``P^(i)`` of every resource type (releases apply before acquires
  at coincident times, so back-to-back reuse is legal);
* **allocation bounds** — every allocation has the platform's ``d``,
  requests at least one unit, and fits the capacities on its own (catches
  oversized zero-duration jobs the sweep cannot see).

Strict extras (``strict=True``, the fuzz harness's configuration):

* **candidate membership** — a job that pins its candidate set must be
  scheduled on one of its candidates, or (when the adjustment parameter
  ``mu`` is supplied) on the ``⌈µP^(i)⌉``-capped image of one (Eq. (5));
* **duration consistency** — the placement's execution time equals
  ``t_j(p_j)`` as the instance's time function evaluates it.

Unlike ``Schedule.validate``, the validator *collects* violations instead
of stopping at the first one: :func:`validate_schedule` returns a
:class:`ConformanceReport`; :func:`assert_conformant` (and the delegating
``Schedule.validate``) raises :class:`ScheduleConformanceError` — a
``ValueError`` — listing every violation found.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.schedule import Schedule

__all__ = [
    "TIME_RTOL",
    "Violation",
    "ConformanceReport",
    "ScheduleConformanceError",
    "validate_schedule",
    "assert_conformant",
]

JobId = Hashable

#: Relative tolerance for floating-point time comparisons.  The single
#: source of truth — ``repro.sim.schedule`` imports it for its delegating
#: ``validate()``.
TIME_RTOL = 1e-9

#: Per-kind cap on *recorded* violations: a grossly corrupt schedule can
#: breach at every edge or event point, and the first few carry all the
#: information — without a cap a 100k-job corruption would materialize
#: O(m) Violation objects and a multi-megabyte exception message.
_MAX_VIOLATIONS_PER_KIND = 20


@dataclass(frozen=True)
class Violation:
    """One broken invariant: which kind, where, and a human-readable why."""

    kind: str  #: "job-set" | "negative-start" | "release" | "precedence"
    #: | "capacity" | "allocation" | "candidate" | "duration"
    detail: str
    job_id: JobId | None = None
    time: float | None = None


class ScheduleConformanceError(ValueError):
    """Raised by :func:`assert_conformant`; carries the full violation list."""

    def __init__(self, violations: Iterable[Violation]):
        self.violations = tuple(violations)
        lines = "\n".join(f"  - [{v.kind}] {v.detail}" for v in self.violations)
        super().__init__(
            f"schedule violates {len(self.violations)} invariant(s):\n{lines}"
        )


@dataclass(frozen=True)
class ConformanceReport:
    """Outcome of a validation run: every violation found, in check order."""

    violations: tuple[Violation, ...]
    strict: bool

    @property
    def ok(self) -> bool:
        return not self.violations

    def kinds(self) -> set[str]:
        return {v.kind for v in self.violations}

    def raise_if_failed(self) -> None:
        if self.violations:
            raise ScheduleConformanceError(self.violations)


class _Collector:
    """Accumulates violations, eliding each kind past the per-kind cap."""

    def __init__(self, cap: int = _MAX_VIOLATIONS_PER_KIND):
        self.violations: list[Violation] = []
        self._cap = cap
        self._counts: dict[str, int] = {}

    def add(self, v: Violation) -> None:
        c = self._counts.get(v.kind, 0) + 1
        self._counts[v.kind] = c
        if c < self._cap:
            self.violations.append(v)
        elif c == self._cap:
            self.violations.append(
                Violation(
                    kind=v.kind,
                    detail=f"... further {v.kind} violations elided",
                )
            )

    def extend(self, vs: Iterable[Violation]) -> None:
        for v in vs:
            self.add(v)

    def saturated(self, kind: str) -> bool:
        return self._counts.get(kind, 0) >= self._cap


def validate_schedule(
    schedule: "Schedule",
    *,
    strict: bool = True,
    mu: float | None = None,
    rtol: float = TIME_RTOL,
) -> ConformanceReport:
    """Check every schedule invariant; return the full violation report.

    ``strict`` enables the candidate-membership and duration-consistency
    checks; ``mu`` (the Eq. (5) adjustment parameter, e.g. from a
    :class:`~repro.core.two_phase.ScheduleResult`) additionally admits the
    µ-capped image of each pinned candidate as a legal allocation.
    """
    inst = schedule.instance
    placements = schedule.placements
    col = _Collector()

    # ---------------------------------------------------------------- job set
    if set(placements) != set(inst.jobs):
        missing = sorted(map(repr, set(inst.jobs) - set(placements)))[:5]
        extra = sorted(map(repr, set(placements) - set(inst.jobs)))[:5]
        col.add(
            Violation(
                kind="job-set",
                detail=(
                    "schedule must place exactly the instance's jobs "
                    f"(missing: {missing}, unknown: {extra})"
                ),
            )
        )
    placed = [p for j, p in placements.items() if j in inst.jobs]
    tol = rtol * max(
        1.0, max((p.finish for p in placed), default=0.0)
    )

    # --------------------------------------------------- starts and releases
    for p in placed:
        if p.start < -tol:
            col.add(
                Violation(
                    kind="negative-start",
                    detail=f"job {p.job_id!r} starts before time 0 (at {p.start})",
                    job_id=p.job_id,
                    time=p.start,
                )
            )
        r = inst.jobs[p.job_id].release
        if r > 0.0 and p.start < r - tol:
            col.add(
                Violation(
                    kind="release",
                    detail=(
                        f"job {p.job_id!r} starts at {p.start} "
                        f"before its release at {r}"
                    ),
                    job_id=p.job_id,
                    time=p.start,
                )
            )

    # ------------------------------------------------------------ precedence
    for u, v in inst.dag.edges():
        if col.saturated("precedence"):
            break
        pu, pv = placements.get(u), placements.get(v)
        if pu is None or pv is None:
            continue  # already reported as a job-set violation
        if pv.start < pu.finish - tol:
            col.add(
                Violation(
                    kind="precedence",
                    detail=(
                        f"precedence violated: {v!r} starts at {pv.start} "
                        f"before {u!r} finishes at {pu.finish}"
                    ),
                    job_id=v,
                    time=pv.start,
                )
            )

    # ----------------------------------------------------- allocation bounds
    d = inst.d
    caps = inst.pool.capacities
    for p in placed:
        if col.saturated("allocation"):
            break
        a = tuple(p.alloc)
        if len(a) != d:
            col.add(
                Violation(
                    kind="allocation",
                    detail=(
                        f"job {p.job_id!r} allocation {a} has dimension "
                        f"{len(a)}, platform has {d}"
                    ),
                    job_id=p.job_id,
                )
            )
            continue
        if any(x < 0 for x in a) or sum(a) <= 0:
            col.add(
                Violation(
                    kind="allocation",
                    detail=(
                        f"job {p.job_id!r} allocation {a} must request at "
                        "least one unit and no negative amounts"
                    ),
                    job_id=p.job_id,
                )
            )
        elif any(x > c for x, c in zip(a, caps)):
            col.add(
                Violation(
                    kind="allocation",
                    detail=(
                        f"job {p.job_id!r} allocation {a} exceeds the "
                        f"platform capacities {tuple(caps)}"
                    ),
                    job_id=p.job_id,
                )
            )

    # ------------------------------------- per-event-point capacity sweep
    _capacity_sweep(col, placed, d, caps, tol)

    if strict:
        _candidate_membership(col, inst, placed, mu)
        _duration_consistency(col, inst, placed, rtol)

    return ConformanceReport(violations=tuple(col.violations), strict=strict)


def _capacity_sweep(col: _Collector, placed, d: int, caps, tol: float) -> None:
    """Joint event sweep over all resource types: at every event point,
    after applying the releases (first) and acquires at that time, usage
    must not exceed any capacity."""
    events: list[tuple[float, int, tuple[int, ...]]] = []
    for p in placed:
        a = tuple(p.alloc)
        if len(a) != d:
            continue  # reported as an allocation violation; sweep would crash
        # release (-1) sorts before acquire (+1) at equal times so that
        # back-to-back jobs may reuse resources at the same instant
        events.append((p.start, +1, a))
        events.append((p.finish, -1, a))
    events.sort(key=lambda e: (e[0], e[1]))
    usage = [0] * d
    i = 0
    n_events = len(events)
    while i < n_events:
        t = events[i][0]
        while i < n_events and abs(events[i][0] - t) <= tol and events[i][1] == -1:
            for r in range(d):
                usage[r] -= events[i][2][r]
            i += 1
        while i < n_events and abs(events[i][0] - t) <= tol and events[i][1] == +1:
            for r in range(d):
                usage[r] += events[i][2][r]
            i += 1
        for r in range(d):
            if usage[r] > caps[r]:
                col.add(
                    Violation(
                        kind="capacity",
                        detail=(
                            f"capacity violated at t={t}: type {r} uses "
                            f"{usage[r]} > {caps[r]}"
                        ),
                        time=t,
                    )
                )
                if col.saturated("capacity"):
                    return


def _candidate_membership(col: _Collector, inst, placed, mu: float | None) -> None:
    """Every pinned job must run on a candidate — or, when ``mu`` is given,
    on the ``⌈µP^(i)⌉``-capped image of one (the Eq. (5) adjustment)."""
    mu_caps = inst.pool.mu_caps(mu) if mu is not None else None
    for p in placed:
        if col.saturated("candidate"):
            return
        job = inst.jobs[p.job_id]
        if job.candidates is None:
            continue
        a = tuple(p.alloc)
        allowed = {tuple(c) for c in job.candidates}
        if mu_caps is not None:
            allowed |= {tuple(c.cap(mu_caps)) for c in job.candidates}
        if a not in allowed:
            col.add(
                Violation(
                    kind="candidate",
                    detail=(
                        f"job {p.job_id!r} runs on {a}, not in its pinned "
                        f"candidate set"
                        + ("" if mu_caps is None else " (nor a µ-capped image)")
                    ),
                    job_id=p.job_id,
                )
            )


def _duration_consistency(col: _Collector, inst, placed, rtol: float) -> None:
    """The placement's execution time must equal ``t_j(p_j)``."""
    for p in placed:
        if col.saturated("duration"):
            return
        if len(tuple(p.alloc)) != inst.d:
            continue  # reported as an allocation violation
        try:
            expected = inst.time(p.job_id, p.alloc)
        except Exception as exc:  # time_fn rejects the allocation outright
            col.add(
                Violation(
                    kind="duration",
                    detail=(
                        f"job {p.job_id!r}: time function rejects allocation "
                        f"{tuple(p.alloc)}: {exc}"
                    ),
                    job_id=p.job_id,
                )
            )
            continue
        if abs(p.time - expected) > rtol * max(1.0, abs(expected)):
            col.add(
                Violation(
                    kind="duration",
                    detail=(
                        f"job {p.job_id!r} scheduled for {p.time} but "
                        f"t_j({tuple(p.alloc)}) = {expected}"
                    ),
                    job_id=p.job_id,
                )
            )


def assert_conformant(
    schedule: "Schedule",
    *,
    strict: bool = True,
    mu: float | None = None,
    rtol: float = TIME_RTOL,
) -> None:
    """Validate and raise :class:`ScheduleConformanceError` on any violation."""
    validate_schedule(schedule, strict=strict, mu=mu, rtol=rtol).raise_if_failed()
