"""Seeded differential fuzzing of every registered scheduler.

PR 2 proved differential testing works (the compiled dispatch path against
two frozen reference generations); this module turns that ad-hoc pattern
into a subsystem.  A *fuzz case* is one fully-specified configuration —
``(scheduler, workload family, n, d, capacity, seed, scenario)`` — and
running it performs every conformance check that applies:

1. **strict validation** — the schedule passes
   :func:`repro.conformance.invariants.validate_schedule` (capacity at
   every event point, strict precedence, release gating, candidate
   membership with the result's µ when it carries one, duration
   consistency, job-set equality);
2. **differential dispatch** — when the result carries a fixed allocation,
   the live compiled engine (:func:`repro.core.list_scheduler.list_schedule`)
   is raced event-for-event against the frozen PR-1 kernel driver
   (:func:`repro.engine.reference.reference_pr1_list_schedule`) and — in
   offline scenarios — the original pre-kernel loop
   (:func:`repro.engine.reference.reference_list_schedule`);
3. **serialize round-trip identity** — the scheduler re-runs on
   ``instance_from_json(instance_to_json(inst))`` and must reproduce the
   schedule event-for-event through the ``repr`` id mapping;
4. **trace round-trip identity** — ``schedule_from_trace(inst,
   schedule_to_trace(s))`` must equal ``s`` placement-for-placement;
5. **fault replay** (``scenario="faults"``) — the kernel fault simulator
   (:func:`repro.sim.faults.execute_with_faults`) is raced attempt-for-
   attempt against the frozen pre-kernel loop under the same seed;
6. **service replay** (``scenario="service"``) — the scheduler's fixed
   allocation is driven through a live
   :class:`~repro.service.session.SchedulingSession` twice: once with a
   seeded *submission-order-faithful* interleaving of ``submit`` /
   ``advance`` calls (every job submitted before virtual time reaches its
   batch start) with a checkpoint → JSON → restore round-trip at a random
   midpoint, which must reproduce the batch compiled engine's schedule
   **event for event**; and once with an adversarial interleaving — random
   chunk sizes, advances past batch starts, cancellations, another
   checkpoint/restore — whose completed sub-schedule must strict-validate,
   place no cancelled job, and round-trip through the version-3 trace;
7. **crash recovery** (``scenario="crash"``) — the fixed allocation is
   driven through a *durable*
   :class:`~repro.service.journal.JournaledSession` under a seeded
   :class:`~repro.service.chaos.ChaosInjector` that kills the session at
   random injection points (mid-admission, mid-drain, torn journal
   appends, torn checkpoint writes); after every kill the client recovers
   (snapshot + journal replay) and retries, and the final drained
   schedule must equal the uninterrupted batch engine's run **event for
   event** and strict-validate;
8. **sharded routing** (``scenario="sharded"``) — the job set is
   partitioned by weakly-connected DAG component onto tenants and driven
   through a :class:`~repro.service.router.Router` over in-process
   workers; each shard's drained schedule must equal, **event for
   event**, a single-session reference fed the router's admission order
   restricted to that shard — once over plain workers, and once over
   *durable* workers where one seeded shard is killed mid-stream and
   replaced by a journal-recovered successor (no admitted job lost,
   surviving shards untouched).

The default matrix sweeps all registered schedulers × the 11 workload
families × ``d ∈ {1..6}`` × capacity regimes (including the degenerate
``cap=1`` platform and the packed/unpacked engine boundary at ``d=4/5``
and ``cap >= 2**15``) × offline / Poisson-arrival / fault-replay /
service / crash-recovery scenarios.  Offline-only planners (backfill, the shelf packers,
the malleable relaxation) are swept offline; a scheduler that *rejects* a
scenario with ``ValueError`` is recorded as a skip, never a failure.

Everything is deterministic in the case seed, so a failing case is its own
reproducer: ``python -m repro fuzz`` prints (and can dump as JSON) the
exact ``FuzzCase`` tuples that failed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import asdict, dataclass, field
from typing import Sequence

from repro.conformance.invariants import validate_schedule
from repro.core.list_scheduler import bottom_level_priority, fifo_priority, list_schedule
from repro.engine.backends import available_backends, resolve_backend
from repro.engine.reference import (
    reference_execute_with_faults,
    reference_list_schedule,
    reference_pr1_list_schedule,
)
from repro.experiments.workloads import WORKLOAD_FAMILIES, random_instance
from repro.instance.instance import Instance, with_poisson_arrivals
from repro.instance.serialize import instance_from_json, instance_to_json
from repro.jobs.candidates import make_candidates
from repro.registry import get_scheduler, scheduler_specs
from repro.resources.pool import ResourcePool
from repro.sim.faults import execute_with_faults
from repro.sim.schedule import Schedule
from repro.sim.trace import schedule_from_trace, schedule_to_trace

__all__ = [
    "SCENARIOS",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "portable_events",
    "default_matrix",
    "run_case",
    "run_fuzz",
]

SCENARIOS = ("offline", "poisson", "faults", "service", "crash", "sharded")

#: Schedulers that plan offline and reject release times by contract.
_OFFLINE_ONLY = frozenset({"backfill", "level_shelf", "sun_shelf", "malleable"})

#: Resource dimensions swept (d <= 4 exercises the packed engine path,
#: d = 5, 6 the general matrix path).
_D_VALUES = (1, 2, 3, 4, 5, 6)

#: Capacity past the packed field range (2**15): with d <= 4 this forces
#: the general engine path on an otherwise packable dimension — the
#: packed/unpacked boundary the compiled engine must agree across.
_UNPACKED_CAP = 1 << 15

#: O(levels) candidates regardless of d — keeps huge-capacity and d=6
#: grids tractable (the Cartesian strategies are exponential in d).
_DIAGONAL = make_candidates("diagonal", levels=6)

#: Fault-replay perturbation parameters (fixed; the case seed drives the
#: randomness).
_FAULT_KW = dict(
    straggler_fraction=0.3,
    straggler_factor=2.0,
    failure_prob=0.15,
    max_retries=2,
)


@dataclass(frozen=True)
class FuzzCase:
    """One fully-specified fuzz configuration (its own reproducer)."""

    scheduler: str
    family: str
    n: int
    d: int
    capacity: int
    seed: int
    scenario: str = "offline"
    arrival_rate: float = 2.0
    #: dispatch backend the differential engine races run under; the
    #: default keeps pre-backend reproducer JSON loading unchanged
    backend: str = "python"

    def describe(self) -> str:
        tail = f" backend={self.backend}" if self.backend != "python" else ""
        return (
            f"{self.scheduler} × {self.family} n={self.n} d={self.d} "
            f"cap={self.capacity} seed={self.seed} [{self.scenario}]{tail}"
        )


@dataclass(frozen=True)
class FuzzFailure:
    """One broken check: the case, which check broke, and why."""

    case: FuzzCase
    check: str  #: "crash" | "validator" | "differential" | "serialize" | "trace" | "faults" | "service" | "crash-recovery" | "sharded"
    detail: str


@dataclass
class FuzzReport:
    """Aggregate outcome of a sweep."""

    cases_run: int = 0
    cases_skipped: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    by_scenario: Counter = field(default_factory=Counter)
    by_scheduler: Counter = field(default_factory=Counter)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.cases_run} cases run, {self.cases_skipped} skipped "
            f"(unsupported scenario), {len(self.failures)} failure(s)",
            "  by scenario: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.by_scenario.items())),
            "  by scheduler: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.by_scheduler.items())),
        ]
        for f in self.failures:
            lines.append(f"  FAIL [{f.check}] {f.case.describe()}: {f.detail}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "cases_run": self.cases_run,
            "cases_skipped": self.cases_skipped,
            "by_scenario": dict(self.by_scenario),
            "by_scheduler": dict(self.by_scheduler),
            "failures": [
                {"case": asdict(f.case), "check": f.check, "detail": f.detail}
                for f in self.failures
            ],
        }


# ----------------------------------------------------------------------
# matrix generation
# ----------------------------------------------------------------------
def _capacities_for(d: int) -> tuple[int, ...]:
    """Capacity regimes per dimension: the degenerate single-unit platform,
    a small contended pool, a comfortable pool, and — where the packed
    lowering would otherwise apply (d <= 4) — a capacity past the packed
    field range, pinning the packed/unpacked boundary."""
    regimes = [1, 4, 16]
    if d <= 4:
        regimes.append(_UNPACKED_CAP)
    return tuple(regimes)


def default_matrix(
    *,
    quick: bool = False,
    n: int = 10,
    seed: int = 0,
    schedulers: Sequence[str] | None = None,
    families: Sequence[str] | None = None,
    backend: str | None = None,
) -> list[FuzzCase]:
    """The deterministic sweep matrix.

    Every valid (scheduler, family) pair is crossed with a rotating
    selection of ``(d, capacity, scenario, seed)`` variants — 5 per pair in
    ``--quick`` mode (≈500 cases over the full registry), 24 otherwise.
    The rotation covers every d, every capacity regime and every scenario
    across the matrix while keeping each pair's case count bounded.

    ``backend`` stamps every case with a dispatch backend (``None``
    resolves ``REPRO_BACKEND`` > default, falling back to ``python``
    when the requested backend is not importable); the differential
    checks additionally race the case's schedule across every *other*
    available backend, so one sweep pins event-for-event identity for
    the whole backend registry.
    """
    backend_name = resolve_backend(backend).name
    variants = 5 if quick else 24
    cases: list[FuzzCase] = []
    specs = list(scheduler_specs())
    if schedulers is not None:
        wanted = set(schedulers)
        unknown = wanted - {s.name for s in specs}
        if unknown:
            raise KeyError(f"unknown scheduler(s): {sorted(unknown)}")
        specs = [s for s in specs if s.name in wanted]
    wanted_families = tuple(families) if families is not None else WORKLOAD_FAMILIES
    for s_idx, spec in enumerate(specs):
        if spec.graphs == "independent":
            # honor the family filter: these schedulers only ever run the
            # independent family, so excluding it excludes them
            fams: Sequence[str] = tuple(
                f for f in ("independent",) if f in wanted_families
            )
        else:
            fams = wanted_families
        for f_idx, family in enumerate(fams):
            for k in range(variants):
                d = _D_VALUES[(s_idx + f_idx + k) % len(_D_VALUES)]
                caps = _capacities_for(d)
                capacity = caps[(s_idx + f_idx * 2 + k) % len(caps)]
                # the scenario rotation runs over a 7-slot ring (the 6
                # scenarios plus a second "offline" slot, offline being
                # the cheapest) so its modulus stays coprime with the
                # 6-value d rotation: every (d, scenario) combination
                # occurs across the matrix instead of locking into a
                # fixed d↔scenario correspondence
                ring = SCENARIOS + ("offline",)
                scenario = ring[(s_idx + 2 * f_idx + 2 * k) % len(ring)]
                if spec.name in _OFFLINE_ONLY and scenario == "poisson":
                    scenario = "offline"
                if spec.name == "malleable":
                    # the relaxation keeps no allocation to replay, and its
                    # unit-task model needs a real multi-unit pool
                    scenario = "offline"
                    capacity = min(max(capacity, 4), 64)
                cases.append(
                    FuzzCase(
                        scheduler=spec.name,
                        family=family,
                        n=n,
                        d=d,
                        capacity=capacity,
                        seed=seed + k,
                        scenario=scenario,
                        backend=backend_name,
                    )
                )
    return cases


# ----------------------------------------------------------------------
# case execution
# ----------------------------------------------------------------------
def _strategy_for(case: FuzzCase):
    """Diagonal candidates where Cartesian grids would blow up (huge
    capacities or d >= 5); the default geometric grid otherwise."""
    if case.capacity > 64 or case.d >= 5:
        return _DIAGONAL
    return None


def _run_scheduler(spec, instance: Instance, strategy):
    if spec.name == "ours":
        if strategy is not None:
            return spec.schedule(instance, candidate_strategy=strategy)
        return spec.schedule(instance)
    if spec.name == "malleable":
        return spec.schedule(instance)
    if strategy is not None:
        return spec.schedule(instance, strategy=strategy)
    return spec.schedule(instance)


def portable_events(schedule: Schedule, *, reprify: bool) -> list[tuple]:
    """Canonical event list under the serialize module's id mapping: pass
    ``reprify=True`` for the original instance (ids map to their ``repr``)
    and ``False`` for a round-tripped one (ids already *are* the reprs)."""
    return sorted(
        (
            p.start,
            p.time,
            tuple(p.alloc),
            repr(j) if reprify else j,
        )
        for j, p in schedule.placements.items()
    )


def _events_by_id(schedule: Schedule) -> dict:
    return {
        j: (p.start, p.time, tuple(p.alloc)) for j, p in schedule.placements.items()
    }


def build_case_instance(case: FuzzCase) -> Instance:
    """The (deterministic) instance a case runs on."""
    pool = ResourcePool.uniform(case.d, case.capacity)
    inst = random_instance(case.family, case.n, pool, seed=case.seed).instance
    if case.scenario == "poisson":
        inst = with_poisson_arrivals(inst, case.arrival_rate, seed=case.seed)
    elif case.scenario in ("service", "crash", "sharded"):
        # odd seeds add release times so sessions exercise online-arrival
        # gating too; offline-only planners keep the offline instance (they
        # reject releases by contract)
        if case.seed % 2 and case.scheduler not in _OFFLINE_ONLY:
            inst = with_poisson_arrivals(inst, case.arrival_rate, seed=case.seed)
    return inst


def _is_contractual_rejection(case: FuzzCase, spec) -> bool:
    """The only combinations a scheduler may reject by contract: an
    offline planner given release times, or an independent-jobs algorithm
    given a precedence-constrained family.  Everything else that raises —
    ``ValueError`` included (the codebase's universal error type) — is a
    failure; treating every ``ValueError`` as a skip would let a scheduler
    regression silently drain the sweep into ``cases_skipped``."""
    if case.scenario == "poisson" and spec.name in _OFFLINE_ONLY:
        return True
    if spec.graphs == "independent" and case.family != "independent":
        return True
    return False


def run_case(case: FuzzCase) -> tuple[list[FuzzFailure], bool]:
    """Run one case; returns ``(failures, skipped)``.

    ``skipped`` is True when the scheduler rejected the scenario by
    contract (see :func:`_is_contractual_rejection`) — that is conformant
    behavior, not a failure.
    """
    failures: list[FuzzFailure] = []
    try:
        inst = build_case_instance(case)
        spec = get_scheduler(case.scheduler)
    except Exception as exc:
        # a bad family name, an unknown scheduler or a workload-generator
        # corner must be a recorded crash, not a sweep-aborting traceback
        return [FuzzFailure(case, "crash", f"{type(exc).__name__}: {exc}")], False
    strategy = _strategy_for(case)

    try:
        result = _run_scheduler(spec, inst, strategy)
    except ValueError as exc:
        if _is_contractual_rejection(case, spec):
            return [], True
        return [
            FuzzFailure(case, "crash", f"{type(exc).__name__}: {exc}")
        ], False
    except Exception as exc:
        return [
            FuzzFailure(case, "crash", f"{type(exc).__name__}: {exc}")
        ], False

    schedule = getattr(result, "schedule", None)
    if schedule is None:
        return [
            FuzzFailure(
                case, "crash",
                "result carries no schedule (registry protocol broken)",
            )
        ], False
    if not isinstance(schedule, Schedule):
        # the malleable relaxation's timeline has its own validity oracle
        try:
            schedule.validate()
        except Exception as exc:
            failures.append(FuzzFailure(case, "validator", str(exc)))
        return failures, False

    # 1 — strict validation
    report = validate_schedule(schedule, mu=getattr(result, "mu", None))
    for v in report.violations:
        failures.append(FuzzFailure(case, "validator", f"[{v.kind}] {v.detail}"))

    allocation = getattr(result, "allocation", None)

    # 2 — differential dispatch across engine generations
    if allocation is not None:
        failures.extend(_check_differential(case, inst, allocation))

    # 3 — serialize round-trip schedule identity
    failures.extend(_check_serialize_roundtrip(case, spec, inst, strategy, schedule))

    # 4 — trace round-trip identity
    failures.extend(_check_trace_roundtrip(case, inst, schedule))

    # 5 — fault replay differential
    if case.scenario == "faults" and allocation is not None:
        failures.extend(_check_fault_replay(case, inst, allocation))

    # 6 — online-session replay (faithful identity + adversarial validity)
    if case.scenario == "service" and allocation is not None:
        failures.extend(_check_service(case, inst, allocation))

    # 7 — durable-session crash recovery (kill → recover → retry identity)
    if case.scenario == "crash" and allocation is not None:
        failures.extend(_check_crash(case, inst, allocation))

    # 8 — sharded routing (per-shard identity + kill-one-shard recovery)
    if case.scenario == "sharded" and allocation is not None:
        failures.extend(_check_sharded(case, inst, allocation))

    return failures, False


def _check_differential(case, inst, allocation) -> list[FuzzFailure]:
    try:
        live = list_schedule(inst, allocation, bottom_level_priority,
                             backend=case.backend)
        pr1 = reference_pr1_list_schedule(inst, allocation, None)
    except Exception as exc:
        return [FuzzFailure(case, "differential", f"{type(exc).__name__}: {exc}")]
    out: list[FuzzFailure] = []
    if _events_by_id(live) != _events_by_id(pr1):
        out.append(
            FuzzFailure(
                case,
                "differential",
                "compiled dispatch diverges from the frozen PR-1 kernel driver",
            )
        )
    # cross-backend identity: every *other* available backend must produce
    # the case's schedule event for event (one sweep covers the registry)
    for bname, ok in available_backends().items():
        if not ok or bname == case.backend:
            continue
        try:
            other = list_schedule(inst, allocation, bottom_level_priority,
                                  backend=bname)
        except Exception as exc:
            out.append(FuzzFailure(case, "differential",
                                   f"backend {bname!r}: {type(exc).__name__}: {exc}"))
            continue
        if _events_by_id(live) != _events_by_id(other):
            out.append(
                FuzzFailure(
                    case,
                    "differential",
                    f"backend {bname!r} diverges from backend "
                    f"{case.backend!r} (event streams differ)",
                )
            )
    if not inst.has_releases:  # the pre-kernel loop predates releases
        try:
            old = reference_list_schedule(inst, allocation, None)
        except Exception as exc:
            return out + [
                FuzzFailure(case, "differential", f"{type(exc).__name__}: {exc}")
            ]
        if _events_by_id(live) != _events_by_id(old):
            out.append(
                FuzzFailure(
                    case,
                    "differential",
                    "compiled dispatch diverges from the pre-kernel loop",
                )
            )
    return out


def _check_serialize_roundtrip(case, spec, inst, strategy, schedule) -> list[FuzzFailure]:
    from repro.jobs.candidates import geometric_grid

    try:
        back = instance_from_json(
            instance_to_json(inst, strategy if strategy is not None else geometric_grid)
        )
        result2 = _run_scheduler(spec, back, strategy)
    except Exception as exc:
        return [FuzzFailure(case, "serialize", f"{type(exc).__name__}: {exc}")]
    schedule2 = getattr(result2, "schedule", None)
    if not isinstance(schedule2, Schedule):
        return [FuzzFailure(case, "serialize", "round-trip lost the timeline")]
    if portable_events(schedule2, reprify=False) != portable_events(
        schedule, reprify=True
    ):
        return [
            FuzzFailure(
                case,
                "serialize",
                "round-tripped instance schedules differently "
                "(order-preserving serialization contract broken)",
            )
        ]
    return []


def _check_trace_roundtrip(case, inst, schedule) -> list[FuzzFailure]:
    try:
        back = schedule_from_trace(inst, schedule_to_trace(schedule))
    except Exception as exc:
        return [FuzzFailure(case, "trace", f"{type(exc).__name__}: {exc}")]
    if back.placements != schedule.placements:
        return [FuzzFailure(case, "trace", "trace round-trip changed the schedule")]
    return []


def _check_fault_replay(case, inst, allocation) -> list[FuzzFailure]:
    try:
        live = execute_with_faults(
            inst, allocation, priority=fifo_priority, seed=case.seed, **_FAULT_KW
        )
        live.validate()
        ref_attempts, ref_completion = reference_execute_with_faults(
            inst, allocation, priority=fifo_priority, seed=case.seed, **_FAULT_KW
        )
    except Exception as exc:
        return [FuzzFailure(case, "faults", f"{type(exc).__name__}: {exc}")]
    live_attempts = [
        (a.job_id, a.start, a.duration, tuple(a.alloc), a.failed)
        for a in live.attempts
    ]
    ref_attempts = [(j, s, t, tuple(a), f) for j, s, t, a, f in ref_attempts]
    out: list[FuzzFailure] = []
    if live_attempts != ref_attempts:
        out.append(
            FuzzFailure(
                case,
                "faults",
                "fault replay diverges from the frozen pre-kernel loop "
                "(attempt streams differ)",
            )
        )
    if live.completion != ref_completion:
        out.append(
            FuzzFailure(case, "faults", "fault replay completion times diverge")
        )
    return out


# ----------------------------------------------------------------------
# service-session replay (scenario="service")
# ----------------------------------------------------------------------
def service_specs(inst: Instance, allocation) -> list:
    """Lower ``(instance, allocation)`` to submittable service job specs.

    Ids become their ``repr`` (the portable key the serializers use),
    durations are the instance's times at the fixed allocation, and the
    priority key is the topological index — the FIFO order the batch
    comparison run uses.  Shared with the hypothesis checkpoint suite.
    """
    from repro.service.session import JobSpec

    order = inst.dag.topological_order()
    return [
        JobSpec(
            id=repr(j),
            demand=tuple(int(a) for a in allocation[j]),
            duration=inst.time(j, allocation[j]),
            preds=tuple(repr(u) for u in inst.dag.predecessors(j)),
            release=inst.jobs[j].release,
            key=i,
        )
        for i, j in enumerate(order)
    ]


def _roundtrip_restore(session):
    """checkpoint → JSON text → restore (the exact-resume path under test).

    Restores through the *hot* path (``strict=False``, no availability or
    ready-queue re-verification) — the one the service benchmark times —
    so any divergence it could hide is caught by the event-identity checks
    downstream; the hypothesis checkpoint suite covers ``strict=True``.
    """
    import json

    from repro.service.checkpoint import checkpoint_session, restore_session

    return restore_session(
        json.loads(json.dumps(checkpoint_session(session))), strict=False
    )


#: Compaction settings the fuzz drivers run under: aggressive enough that
#: every sampled case compacts at least once mid-stream, so batch identity
#: and strict validity are asserted *through* compactions, not around them.
_FUZZ_COMPACTION = {"compact_threshold": 0.3, "compact_min_rows": 4}


def drive_session_faithfully(
    inst: Instance, allocation, *, seed: int, checkpoint: bool = True, batch=None
):
    """Drive a session with a seeded submission-order-faithful interleaving.

    Jobs are submitted in random-size insertion-order chunks; between
    chunks, virtual time advances to a random point *strictly below* the
    earliest batch start among not-yet-submitted jobs — the faithfulness
    condition under which the session must reproduce the batch schedule.
    With ``checkpoint``, one random chunk boundary round-trips the session
    through checkpoint → JSON → restore.  ``batch`` optionally supplies the
    already-computed batch schedule (it anchors the advance horizons).
    Returns the drained session.

    The session runs with a metrics registry bound (and rebound across
    the checkpoint round-trip, exactly as ``restore`` does in the
    service), so the batch-identity assertion downstream also proves the
    instrumentation is observation-only.
    """
    import numpy as np

    from repro.obs import MetricsRegistry
    from repro.service.session import SchedulingSession

    if batch is None:
        batch = list_schedule(inst, allocation, fifo_priority)
    order = inst.dag.topological_order()
    specs = service_specs(inst, allocation)
    n = len(specs)
    rng = np.random.default_rng(seed)
    registry = MetricsRegistry()
    session = SchedulingSession(inst.pool.capacities, **_FUZZ_COMPACTION)
    session.bind_metrics(registry)
    ckpt_at = int(rng.integers(0, n + 1)) if checkpoint and n else None
    k = 0
    while k < n:
        size = int(rng.integers(1, n - k + 1))
        session.submit(specs[k:k + size])
        k += size
        if ckpt_at is not None and k >= ckpt_at:
            session = _roundtrip_restore(session)
            session.bind_metrics(registry)
            ckpt_at = None
        if k < n:
            horizon = min(batch.placements[order[i]].start for i in range(k, n))
            if horizon > session.now:
                # strictly below the next unsubmitted start: faithful
                t = session.now + float(rng.uniform(0.0, 0.999)) * (
                    horizon - session.now
                )
                session.advance(t)
    session.drain()
    return session


def _drive_session_adversarially(inst: Instance, allocation, *, seed: int):
    """Random submit/cancel/advance/checkpoint/restore interleaving.

    No identity can hold here (advances outrun submissions, jobs get
    cancelled); the session must stay *valid*: the drained sub-schedule of
    completed jobs strict-validates, cancelled jobs never appear in it,
    and the v3 trace round-trips.  Returns ``(session, cancelled_ids)``.
    """
    import numpy as np

    from repro.service.session import SchedulingSession

    specs = service_specs(inst, allocation)
    n = len(specs)
    rng = np.random.default_rng(seed)
    session = SchedulingSession(inst.pool.capacities, **_FUZZ_COMPACTION)
    scale = max((s.duration for s in specs), default=1.0)
    cancelled: set = set()  # withdrawn after submission
    dropped: set = set()    # never submitted: a predecessor was withdrawn first
    k = 0
    while k < n:
        size = int(rng.integers(1, n - k + 1))
        chunk = []
        for s in specs[k:k + size]:
            if any(p in cancelled or p in dropped for p in s.preds):
                dropped.add(s.id)
            else:
                chunk.append(s)
        if chunk:
            session.submit(chunk)
        k += size
        if rng.random() < 0.5:
            live = [s.id for s in specs[:k] if s.id not in dropped]
            if live:
                victim = live[int(rng.integers(0, len(live)))]
                cancelled.update(session.cancel(victim))
        if rng.random() < 0.3:
            session = _roundtrip_restore(session)
        if rng.random() < 0.7:
            session.advance(session.now + float(rng.exponential(scale)))
    session.drain()
    return session, cancelled


def _check_service(case, inst, allocation) -> list[FuzzFailure]:
    from repro.sim.trace import schedule_from_trace

    out: list[FuzzFailure] = []
    # faithful interleaving: event-for-event identity with the batch engine
    try:
        batch = list_schedule(inst, allocation, fifo_priority)
        session = drive_session_faithfully(
            inst, allocation, seed=case.seed + 9173, checkpoint=True, batch=batch
        )
        sched = session.to_schedule()
        session.validate()
    except Exception as exc:
        return [FuzzFailure(case, "service", f"{type(exc).__name__}: {exc}")]
    if portable_events(sched, reprify=False) != portable_events(batch, reprify=True):
        out.append(
            FuzzFailure(
                case,
                "service",
                "submission-order-faithful session diverges from the batch "
                "compiled engine",
            )
        )
    # adversarial interleaving: strict validity of whatever completed
    try:
        session, cancelled = _drive_session_adversarially(
            inst, allocation, seed=case.seed + 40123
        )
        sched = session.to_schedule()
        session.validate()
        placed_cancelled = cancelled & set(sched.placements)
        if placed_cancelled:
            out.append(
                FuzzFailure(
                    case,
                    "service",
                    f"cancelled jobs were placed: {sorted(placed_cancelled)[:5]}",
                )
            )
        back = schedule_from_trace(sched.instance, session.to_trace())
        if back.placements != sched.placements:
            out.append(
                FuzzFailure(
                    case, "service", "service trace round-trip changed the schedule"
                )
            )
    except Exception as exc:
        out.append(FuzzFailure(case, "service", f"{type(exc).__name__}: {exc}"))
    return out


# ----------------------------------------------------------------------
# durable-session crash recovery (scenario="crash")
# ----------------------------------------------------------------------
#: Per-point crash rates the fuzz driver injects with.  Every point is
#: armed; ``max_crashes`` (not the rates) bounds how many fire per case.
_CRASH_RATES = {
    "op-begin": 0.12,
    "op-applied": 0.12,
    "op-journaled": 0.12,
    "mid-drain": 0.12,
    "checkpoint-temp": 0.12,
    "journal-torn": 0.12,
}


def drive_session_with_crashes(
    inst: Instance,
    allocation,
    *,
    seed: int,
    dirpath: str,
    batch=None,
    rates=None,
    max_crashes: int = 4,
    checkpoint_every: int = 3,
):
    """Drive a durable session the way a crash-surviving client would.

    The submission-order-faithful interleaving of
    :func:`drive_session_faithfully`, but through a
    :class:`~repro.service.journal.JournaledSession` with a seeded
    :class:`~repro.service.chaos.ChaosInjector` armed at every crash
    point.  Whenever an operation dies mid-flight the client *recovers*
    (snapshot + journal replay — itself crashable at the checkpoint
    write) and retries exactly as the protocol prescribes: submits are
    re-sent minus the jobs recovery already knows (at-least-once,
    deduplicated by id), advances re-target the same horizon, the drain
    is re-issued.  ``checkpoint_every=3`` keeps journal rotation in the
    loop so recovery crosses compaction boundaries, not just appends.
    Returns ``(journaled_session, injector)`` after the final drain.
    """
    import numpy as np

    from repro.service.chaos import ChaosCrash, ChaosInjector
    from repro.service.journal import JournaledSession

    if batch is None:
        batch = list_schedule(inst, allocation, fifo_priority)
    order = inst.dag.topological_order()
    specs = service_specs(inst, allocation)
    n = len(specs)
    rng = np.random.default_rng(seed)
    chaos = ChaosInjector(
        dict(rates) if rates is not None else dict(_CRASH_RATES),
        seed=seed,
        max_crashes=max_crashes,
    )
    journal_path = f"{dirpath}/journal.jsonl"
    snapshot_path = f"{dirpath}/snapshot.json"

    def recover():
        while True:
            try:
                return JournaledSession.recover(
                    journal_path,
                    snapshot_path,
                    capacities=inst.pool.capacities,
                    checkpoint_every=checkpoint_every,
                    fsync=False,
                    chaos=chaos,
                    session_kwargs=_FUZZ_COMPACTION,
                )
            except ChaosCrash:
                continue  # recovery's own trailing checkpoint died: go again

    js = recover()
    k = 0
    while k < n:
        size = int(rng.integers(1, n - k + 1))
        chunk = specs[k:k + size]
        while True:
            todo = [s for s in chunk if s.id not in js.session]
            if not todo:
                break
            try:
                js.submit(todo)
            except ChaosCrash:
                js = recover()
        k += size
        if k < n:
            horizon = min(batch.placements[order[i]].start for i in range(k, n))
            if horizon > js.session.now:
                t = js.session.now + float(rng.uniform(0.0, 0.999)) * (
                    horizon - js.session.now
                )
                while js.session.now < t:
                    try:
                        js.advance(t, events=False)
                    except ChaosCrash:
                        js = recover()
    while True:
        try:
            js.drain()
            break
        except ChaosCrash:
            js = recover()
    return js, chaos


def _check_crash(case, inst, allocation) -> list[FuzzFailure]:
    import tempfile

    try:
        batch = list_schedule(inst, allocation, fifo_priority)
        with tempfile.TemporaryDirectory() as tmp:
            js, chaos = drive_session_with_crashes(
                inst, allocation, seed=case.seed + 55511, dirpath=tmp, batch=batch
            )
            sched = js.session.to_schedule()
            js.session.validate()
            js.close()
    except Exception as exc:
        return [FuzzFailure(case, "crash-recovery", f"{type(exc).__name__}: {exc}")]
    if portable_events(sched, reprify=False) != portable_events(batch, reprify=True):
        return [
            FuzzFailure(
                case,
                "crash-recovery",
                "recovered session diverges from the uninterrupted batch run "
                f"after {chaos.crashes} injected crash(es) at {chaos.fired}",
            )
        ]
    return []


# ----------------------------------------------------------------------
# sharded routing (scenario="sharded")
# ----------------------------------------------------------------------
def shard_tenancy(specs, *, tenants: int = 4) -> dict:
    """Partition job specs onto tenant names by weakly-connected DAG
    component (components round-robin onto ``t0..t{tenants-1}``).

    Every dependency edge stays inside one component, hence inside one
    tenant — so *any* tenant→shard placement is free of cross-shard
    edges, which the router refuses by design.  Returns ``{job id:
    tenant name}``.
    """
    parent = {s.id: s.id for s in specs}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for s in specs:
        for p in s.preds:
            parent[find(s.id)] = find(p)
    component: dict = {}
    tenancy = {}
    for s in specs:  # insertion order: deterministic component numbering
        root = find(s.id)
        if root not in component:
            component[root] = len(component)
        tenancy[s.id] = f"t{component[root] % tenants}"
    return tenancy


def _sharded_reference(caps, admitted, by_id, nshards, shard_of) -> list[list]:
    """Per-shard single-session baselines: shard ``i`` is one plain
    session fed the router's admission order restricted to its tenants."""
    from repro.service.session import SchedulingSession

    events = []
    for i in range(nshards):
        ref = SchedulingSession(caps, **_FUZZ_COMPACTION)
        mine = [by_id[j] for j in admitted if shard_of(by_id[j].tenant) == i]
        if mine:
            ref.submit(mine)
        ref.drain()
        events.append(portable_events(ref.to_schedule(), reprify=False))
    return events


def drive_router(
    inst: Instance,
    allocation,
    *,
    seed: int,
    nshards: int = 2,
    tenants: int = 4,
    dirpath: "str | None" = None,
):
    """Drive ``(instance, allocation)`` through a sharded router.

    Tenants are placed explicitly (``ti`` → shard ``i % nshards``); the
    workers are in-process, ``fifo``-admission front-ends.  With
    ``dirpath`` the workers are *durable* (journaled) and one seeded
    shard is killed mid-stream — dropped without cleanup and replaced by
    a journal-recovered successor via ``replace_worker``.  Returns
    ``(per_shard_events, reference_events, killed_shard)``.
    """
    import numpy as np

    from repro.service.frontend import ServiceFrontend
    from repro.service.journal import JournaledSession
    from repro.service.router import LocalWorker, Router
    from repro.service.session import SchedulingSession

    caps = inst.pool.capacities
    specs = service_specs(inst, allocation)
    tenancy = shard_tenancy(specs, tenants=tenants)
    from dataclasses import replace as _replace

    specs = [_replace(s, tenant=tenancy[s.id]) for s in specs]
    by_id = {s.id: s for s in specs}
    spec_str = ",".join(f"t{i}={i % nshards}" for i in range(tenants))
    rng = np.random.default_rng(seed)

    def make_worker(i):
        if dirpath is None:
            return LocalWorker(ServiceFrontend(
                SchedulingSession(caps, **_FUZZ_COMPACTION),
                batch_size=1, admission="fifo",
            ))
        durable = JournaledSession.recover(
            f"{dirpath}/journal.{i}.jsonl", f"{dirpath}/snapshot.{i}.json",
            capacities=caps, fsync=False, session_kwargs=_FUZZ_COMPACTION,
        )
        return LocalWorker(ServiceFrontend(
            durable=durable, batch_size=1, admission="fifo",
        ))

    router = Router(
        [make_worker(i) for i in range(nshards)],
        policy="explicit", policy_spec=spec_str,
        batch_size=len(specs) + 1, batch_interval=1e18,
    )
    with router:
        killed = None
        admitted: list = []  # the router's global fair admission order
        cut = int(rng.integers(0, len(specs) + 1)) if dirpath is not None else len(specs)
        for lo, hi in ((0, cut), (cut, len(specs))):
            chunk = [s.to_dict() for s in specs[lo:hi]]
            if chunk:
                resp = router.handle_request({"op": "submit", "jobs": chunk})
                assert resp["ok"] and not resp.get("errors"), resp
                admitted.extend(resp.get("admitted", ()))
                resp = router.handle_request({"op": "flush"})
                assert resp["ok"] and not resp.get("errors"), resp
                admitted.extend(resp.get("admitted", ()))
            if dirpath is not None and killed is None:
                # SIGKILL equivalent: drop the worker without any cleanup
                # and recover a successor from its journal alone
                killed = int(rng.integers(0, nshards))
                router.replace_worker(killed, make_worker(killed))
        drain = router.handle_request({"op": "drain"})
        assert drain["ok"], drain
        got = [
            portable_events(
                w.frontend.session.to_schedule(), reprify=False
            )
            for w in router.workers
        ]
        want = _sharded_reference(
            caps, admitted, by_id, nshards,
            lambda t: int(t[1:]) % nshards,
        )
    return got, want, killed


def _check_sharded(case, inst, allocation) -> list[FuzzFailure]:
    import tempfile

    out: list[FuzzFailure] = []
    # plain workers: per-shard event identity with single-session baselines
    try:
        got, want, _ = drive_router(inst, allocation, seed=case.seed + 77003)
    except Exception as exc:
        return [FuzzFailure(case, "sharded", f"{type(exc).__name__}: {exc}")]
    for i, (g, w) in enumerate(zip(got, want)):
        if g != w:
            out.append(
                FuzzFailure(
                    case, "sharded",
                    f"shard {i} diverges from its single-session reference "
                    f"({len(g)} vs {len(w)} events)",
                )
            )
    # durable workers + kill-one-shard: recovery must preserve identity
    try:
        with tempfile.TemporaryDirectory() as tmp:
            got, want, killed = drive_router(
                inst, allocation, seed=case.seed + 77003, dirpath=tmp
            )
    except Exception as exc:
        return out + [FuzzFailure(case, "sharded", f"{type(exc).__name__}: {exc}")]
    for i, (g, w) in enumerate(zip(got, want)):
        if g != w:
            out.append(
                FuzzFailure(
                    case, "sharded",
                    f"shard {i} diverges from its single-session reference "
                    f"after shard {killed} was killed and recovered "
                    f"({len(g)} vs {len(w)} events)",
                )
            )
    return out


# ----------------------------------------------------------------------
# sweep driver
# ----------------------------------------------------------------------
def run_fuzz(
    cases: Sequence[FuzzCase],
    *,
    progress=None,
    max_failures: int | None = None,
) -> FuzzReport:
    """Run a case list; returns the aggregate report.

    ``progress(i, total, case)`` is called before each case (the CLI's
    ticker); ``max_failures`` stops the sweep early once that many cases
    have failed (every failure is still a seeded reproducer).
    """
    report = FuzzReport()
    total = len(cases)
    for i, case in enumerate(cases):
        if progress is not None:
            progress(i, total, case)
        failures, skipped = run_case(case)
        if skipped:
            report.cases_skipped += 1
            continue
        report.cases_run += 1
        report.by_scenario[case.scenario] += 1
        report.by_scheduler[case.scheduler] += 1
        report.failures.extend(failures)
        if max_failures is not None and len(report.failures) >= max_failures:
            break
    return report
