"""Conformance subsystem: strict schedule validation + differential fuzzing.

The paper's claims (the (d·φ)-approximation, the Lemma 5/6 bounds, every
baseline comparison) are only as trustworthy as the schedules the kernel
emits.  This package is the machinery that keeps them trustworthy:

* :mod:`repro.conformance.invariants` — a strict, standalone schedule
  validator (per-event-point capacity feasibility for every resource type,
  strict precedence, release-time gating, candidate-set membership,
  duration consistency, job-set equality).  It subsumes
  :meth:`repro.sim.schedule.Schedule.validate`, which delegates to it.
* :mod:`repro.conformance.fuzz` — a seeded differential fuzz harness that
  sweeps every registered scheduler across the workload families ×
  resource dimensions × capacity regimes × arrival/fault scenarios, runs
  the strict validator on every schedule, cross-checks the compiled
  dispatch path against the frozen reference generations event-for-event,
  and asserts serialize/trace round-trip schedule identity.

Run it from the CLI: ``python -m repro fuzz --quick``.
"""

from repro.conformance.invariants import (
    ConformanceReport,
    ScheduleConformanceError,
    Violation,
    assert_conformant,
    validate_schedule,
)

__all__ = [
    "ConformanceReport",
    "ScheduleConformanceError",
    "Violation",
    "assert_conformant",
    "validate_schedule",
]
