"""Baseline schedulers the paper compares against or builds upon.

* :mod:`repro.baselines.naive` — fixed-allocation policies (minimum-area,
  minimum-time, balanced knee) + list scheduling;
* :mod:`repro.baselines.sun2018` — Sun et al. [36]: the 2d-approximation
  list algorithm and the (2d+1)-approximation shelf algorithm for
  independent jobs;
* :mod:`repro.baselines.tetris` — a Tetris-style packing heuristic [19];
* :mod:`repro.baselines.heft` — a moldable HEFT-like global-priority
  heuristic (bottom-level priority + earliest-finish allocation choice).
"""

from repro.baselines.naive import (
    min_area_scheduler,
    min_time_scheduler,
    balanced_scheduler,
    BaselineResult,
)
from repro.baselines.sun2018 import sun_list_scheduler, sun_shelf_scheduler
from repro.baselines.tetris import tetris_scheduler
from repro.baselines.heft import heft_moldable_scheduler
from repro.baselines.backfill import backfill_scheduler
from repro.baselines.level_shelf import level_shelf_scheduler

__all__ = [
    "BaselineResult",
    "min_area_scheduler",
    "min_time_scheduler",
    "balanced_scheduler",
    "sun_list_scheduler",
    "sun_shelf_scheduler",
    "tetris_scheduler",
    "heft_moldable_scheduler",
    "backfill_scheduler",
    "level_shelf_scheduler",
]
