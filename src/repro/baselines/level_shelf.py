"""Level-by-level shelf scheduling for precedence DAGs.

A classic simple baseline for DAG scheduling: decompose the graph into
precedence levels (every job's predecessors sit in strictly earlier
levels), then schedule each level as an independent-jobs instance using
the engine's shared shelf packer, executing levels back-to-back.  The
inter-level barriers cost parallelism — exactly the loss list scheduling
avoids — which makes this a sharp foil for Phase 2 in the comparisons.
"""

from __future__ import annotations

from typing import Hashable

from repro.baselines.naive import BaselineResult
from repro.dag.analysis import node_levels
from repro.engine.shelves import pack_shelves, stack_shelves
from repro.instance.instance import Instance
from repro.jobs.candidates import CandidateStrategy
from repro.registry import register_scheduler
from repro.sim.schedule import Schedule, ScheduledJob

__all__ = ["level_shelf_scheduler"]

JobId = Hashable


@register_scheduler("level_shelf", kind="baseline", graphs="any")
def level_shelf_scheduler(
    instance: Instance,
    strategy: CandidateStrategy | None = None,
) -> BaselineResult:
    """Shelf-pack each precedence level; run levels sequentially."""
    if instance.has_releases:
        raise ValueError(
            "level-shelf is an offline planner and cannot honor release times"
        )
    table = instance.candidate_table(strategy)
    allocation = {
        j: min(es, key=lambda e: e.time * e.area).alloc for j, es in table.items()
    }
    times = {j: instance.time(j, allocation[j]) for j in instance.jobs}
    levels = node_levels(instance.dag)
    by_level: dict[int, list[JobId]] = {}
    for j, l in levels.items():
        by_level.setdefault(l, []).append(j)

    placements: dict[JobId, ScheduledJob] = {}
    t0 = 0.0
    for level in sorted(by_level):
        jobs = sorted(by_level[level], key=lambda j: -times[j])
        shelves = pack_shelves(jobs, allocation, times, instance.pool.capacities)
        placed, t0 = stack_shelves(shelves, allocation, times, t0=t0)
        placements.update(placed)

    schedule = Schedule(instance=instance, placements=placements)
    return BaselineResult(name="level_shelf", schedule=schedule, allocation=allocation)
