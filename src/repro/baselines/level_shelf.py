"""Level-by-level shelf scheduling for precedence DAGs.

A classic simple baseline for DAG scheduling: decompose the graph into
precedence levels (every job's predecessors sit in strictly earlier
levels), then schedule each level as an independent-jobs instance using
shelf packing, executing levels back-to-back.  The inter-level barriers
cost parallelism — exactly the loss list scheduling avoids — which makes
this a sharp foil for Phase 2 in the comparisons.
"""

from __future__ import annotations

from typing import Hashable

from repro.baselines.naive import BaselineResult
from repro.dag.analysis import node_levels
from repro.instance.instance import Instance
from repro.jobs.candidates import CandidateStrategy
from repro.sim.schedule import Schedule, ScheduledJob

__all__ = ["level_shelf_scheduler"]

JobId = Hashable


def level_shelf_scheduler(
    instance: Instance,
    strategy: CandidateStrategy | None = None,
) -> BaselineResult:
    """Shelf-pack each precedence level; run levels sequentially."""
    table = instance.candidate_table(strategy)
    allocation = {
        j: min(es, key=lambda e: e.time * e.area).alloc for j, es in table.items()
    }
    times = {j: instance.time(j, allocation[j]) for j in instance.jobs}
    levels = node_levels(instance.dag)
    by_level: dict[int, list[JobId]] = {}
    for j, l in levels.items():
        by_level.setdefault(l, []).append(j)

    caps = instance.pool.capacities
    d = instance.d
    placements: dict[JobId, ScheduledJob] = {}
    t0 = 0.0
    for level in sorted(by_level):
        jobs = sorted(by_level[level], key=lambda j: -times[j])
        shelves: list[dict] = []
        for j in jobs:
            a = allocation[j]
            placed = False
            for shelf in shelves:
                if all(shelf["used"][r] + a[r] <= caps[r] for r in range(d)):
                    shelf["jobs"].append(j)
                    for r in range(d):
                        shelf["used"][r] += a[r]
                    placed = True
                    break
            if not placed:
                shelves.append({"jobs": [j], "used": list(a), "height": times[j]})
        for shelf in shelves:
            for j in shelf["jobs"]:
                placements[j] = ScheduledJob(
                    job_id=j, start=t0, time=times[j], alloc=allocation[j]
                )
            t0 += shelf["height"]

    schedule = Schedule(instance=instance, placements=placements)
    return BaselineResult(name="level_shelf", schedule=schedule, allocation=allocation)
