"""Tetris-style multi-resource packing heuristic (Grandl et al. [19]).

Tetris scores each (job, allocation) pair by the alignment between the
allocation's normalized demand and the currently available normalized
capacity — the dot product — preferring placements that consume resources
the platform has in surplus.  We extend it to moldable jobs by letting the
score range over the job's non-dominated candidates, dividing by execution
time so cheap-but-endless placements do not dominate (the "packing +
shortest-remaining-work" blend of the original paper).
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.baselines._dynamic import run_dynamic
from repro.baselines.naive import BaselineResult
from repro.instance.instance import Instance
from repro.jobs.candidates import CandidateStrategy
from repro.registry import register_scheduler
from repro.resources.vector import ResourceVector

__all__ = ["tetris_scheduler", "make_tetris_policy"]

JobId = Hashable


def make_tetris_policy(instance: Instance, table) -> callable:
    """The alignment-scoring dispatch policy over ``table``'s candidates."""
    caps = instance.pool.capacities
    d = instance.d

    def policy(
        inst: Instance, ready: Sequence[JobId], avail: Sequence[int]
    ) -> list[tuple[JobId, ResourceVector]]:
        best: tuple[float, JobId, ResourceVector] | None = None
        for j in ready:
            for e in table[j]:
                a = e.alloc
                if any(a[r] > avail[r] for r in range(d)):
                    continue
                align = sum((a[r] / caps[r]) * (avail[r] / caps[r]) for r in range(d))
                score = align / e.time
                if best is None or score > best[0]:
                    best = (score, j, a)
        if best is None:
            return []
        return [(best[1], best[2])]

    return policy


@register_scheduler("tetris", kind="baseline", graphs="any")
def tetris_scheduler(
    instance: Instance,
    strategy: CandidateStrategy | None = None,
) -> BaselineResult:
    """Schedule with the Tetris alignment heuristic; returns the result."""
    table = instance.candidate_table(strategy)
    schedule = run_dynamic(instance, make_tetris_policy(instance, table))
    return BaselineResult(name="tetris", schedule=schedule, allocation=schedule.allocation)
