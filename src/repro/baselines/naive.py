"""Fixed-allocation baseline policies.

Each policy picks one allocation per job from its non-dominated frontier and
then runs the same Phase 2 list scheduler, isolating the value of the
paper's *allocation* phase in comparisons:

* ``min_area`` — the cheapest (slowest) candidate: maximizes throughput,
  ignores the critical path;
* ``min_time`` — the fastest candidate: minimizes the critical path,
  hogs resources;
* ``balanced`` — the knee of the ``(t, a)`` frontier: minimizes ``t·a``
  (a common practical compromise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from repro.core.list_scheduler import PriorityRule, fifo_priority, list_schedule
from repro.instance.instance import Instance
from repro.jobs.candidates import CandidateStrategy
from repro.registry import register_scheduler
from repro.resources.vector import ResourceVector
from repro.sim.schedule import Schedule

__all__ = ["BaselineResult", "min_area_scheduler", "min_time_scheduler", "balanced_scheduler"]

JobId = Hashable


@dataclass(frozen=True)
class BaselineResult:
    """A baseline's schedule and the allocation it chose."""

    name: str
    schedule: Schedule
    allocation: dict[JobId, ResourceVector]

    @property
    def makespan(self) -> float:
        return self.schedule.makespan


def _fixed_allocation_scheduler(
    name: str,
    pick: Callable[[list], object],
) -> Callable[..., BaselineResult]:
    def scheduler(
        instance: Instance,
        strategy: CandidateStrategy | None = None,
        priority: PriorityRule = fifo_priority,
    ) -> BaselineResult:
        table = instance.candidate_table(strategy)
        allocation = {j: pick(entries).alloc for j, entries in table.items()}
        schedule = list_schedule(instance, allocation, priority)
        return BaselineResult(name=name, schedule=schedule, allocation=allocation)

    scheduler.__name__ = f"{name}_scheduler"
    scheduler.__doc__ = f"The {name!r} fixed-allocation baseline (see module docstring)."
    return scheduler


#: Cheapest candidate per job (last on the frontier: max time, min area).
min_area_scheduler = register_scheduler(
    "min_area", kind="baseline", description="cheapest-candidate allocation + list scheduling"
)(_fixed_allocation_scheduler("min_area", lambda entries: entries[-1]))

#: Fastest candidate per job (first on the frontier: min time, max area).
min_time_scheduler = register_scheduler(
    "min_time", kind="baseline", description="fastest-candidate allocation + list scheduling"
)(_fixed_allocation_scheduler("min_time", lambda entries: entries[0]))

#: Knee of the frontier: minimize the time-area product.
balanced_scheduler = register_scheduler(
    "balanced", kind="baseline", description="knee-candidate allocation + list scheduling"
)(_fixed_allocation_scheduler("balanced", lambda entries: min(entries, key=lambda e: e.time * e.area)))
