"""A moldable, multi-resource HEFT-like heuristic.

Classic HEFT ranks tasks by *upward rank* (bottom level) and assigns each,
in rank order, to the processor minimizing its earliest finish time.  Our
moldable analogue: among ready jobs, repeatedly dispatch the highest
bottom-level job using the candidate allocation that minimizes its finish
time right now (ties broken toward smaller area, to leave room for others).
Jobs whose every candidate overflows the current availability wait, but do
not block lower-ranked ready jobs (insertion-based relaxation).

This is a *global-priority* heuristic — it reads the precedence graph — so
it is the natural practical comparison point for the paper's graph-oblivious
Phase 2 (cf. Theorem 6's local-vs-global distinction).
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.baselines._dynamic import run_dynamic
from repro.baselines.naive import BaselineResult
from repro.dag.paths import bottom_levels
from repro.instance.instance import Instance
from repro.jobs.candidates import CandidateStrategy
from repro.registry import register_scheduler
from repro.resources.vector import ResourceVector

__all__ = ["heft_moldable_scheduler", "make_heft_policy"]

JobId = Hashable


def make_heft_policy(instance: Instance, table) -> callable:
    """The rank-ordered earliest-finish dispatch policy over ``table``."""
    d = instance.d
    # rank with each job's balanced (knee) time — a standard HEFT-style
    # estimate that does not depend on the dispatch-time molding decision
    est_times = {j: min(table[j], key=lambda e: e.time * e.area).time for j in instance.jobs}
    rank = bottom_levels(instance.dag, est_times)

    def policy(
        inst: Instance, ready: Sequence[JobId], avail: Sequence[int]
    ) -> list[tuple[JobId, ResourceVector]]:
        for j in sorted(ready, key=lambda x: -rank[x]):
            best: tuple[float, float, ResourceVector] | None = None
            for e in table[j]:
                a = e.alloc
                if any(a[r] > avail[r] for r in range(d)):
                    continue
                key = (e.time, e.area)
                if best is None or key < (best[0], best[1]):
                    best = (e.time, e.area, a)
            if best is not None:
                return [(j, best[2])]
        return []

    return policy


@register_scheduler("heft", kind="baseline", graphs="any")
def heft_moldable_scheduler(
    instance: Instance,
    strategy: CandidateStrategy | None = None,
) -> BaselineResult:
    """Schedule with the moldable HEFT heuristic; returns the result."""
    table = instance.candidate_table(strategy)
    schedule = run_dynamic(instance, make_heft_policy(instance, table))
    return BaselineResult(name="heft_moldable", schedule=schedule, allocation=schedule.allocation)
