"""Conservative backfilling — the production-HPC dispatching baseline.

Batch schedulers (Slurm, PBS) order jobs by priority and give each a
*reservation*: the earliest time interval where its allocation fits given
all earlier reservations.  A lower-priority job may start early ("backfill")
only at its own reserved slot computation — under *conservative*
backfilling every queued job gets a reservation, so no job is ever delayed
past it.  We adapt it to moldable multi-resource jobs by fixing each job's
allocation to its frontier knee (as production sites fix user requests) and
reserving on the engine's :class:`~repro.engine.profile.ReservationProfile`
(the d-type availability profile).

Because every job starts exactly at its reservation, the schedule equals
the reservation plan; planning happens in bottom-level priority order with
precedence-aware earliest starts.
"""

from __future__ import annotations

from typing import Hashable

from repro.baselines.naive import BaselineResult
from repro.dag.paths import bottom_levels
from repro.engine.profile import ReservationProfile
from repro.instance.instance import Instance
from repro.jobs.candidates import CandidateStrategy
from repro.registry import register_scheduler
from repro.sim.schedule import Schedule, ScheduledJob

__all__ = ["backfill_scheduler"]

JobId = Hashable


@register_scheduler("backfill", kind="baseline", graphs="any")
def backfill_scheduler(
    instance: Instance,
    strategy: CandidateStrategy | None = None,
) -> BaselineResult:
    """Conservative backfilling with knee allocations and bottom-level order."""
    if instance.has_releases:
        raise ValueError(
            "backfill is an offline planner: it reserves every job up front and "
            "cannot honor release times (use an event-driven scheduler instead)"
        )
    table = instance.candidate_table(strategy)
    allocation = {
        j: min(es, key=lambda e: e.time * e.area).alloc for j, es in table.items()
    }
    times = {j: instance.time(j, allocation[j]) for j in instance.jobs}
    rank = bottom_levels(instance.dag, times)
    # reservation order: priority (bottom level) within topological feasibility
    order = sorted(
        instance.dag.topological_order(),
        key=lambda j: (-rank[j],),
    )
    # topological feasibility: process jobs so predecessors are reserved first
    profile = ReservationProfile(instance.pool.capacities)
    reserved: dict[JobId, ScheduledJob] = {}
    pending = list(order)

    while pending:
        progressed = False
        for j in list(pending):
            preds = instance.dag.predecessors(j)
            if any(p not in reserved for p in preds):
                continue
            est = max((reserved[p].finish for p in preds), default=0.0)
            start = profile.earliest_fit(est, allocation[j], times[j])
            profile.reserve(start, times[j], allocation[j])
            reserved[j] = ScheduledJob(job_id=j, start=start, time=times[j],
                                       alloc=allocation[j])
            pending.remove(j)
            progressed = True
        if not progressed:  # pragma: no cover - DAG guarantees progress
            raise RuntimeError("backfill planning stalled")

    schedule = Schedule(instance=instance, placements=reserved)
    return BaselineResult(name="backfill", schedule=schedule, allocation=allocation)
