"""Dispatch-time-allocation substrate for the dynamic baseline heuristics.

Unlike Algorithm 2 (fixed allocations from Phase 1), Tetris- and HEFT-style
heuristics choose each job's allocation at dispatch time based on the
resources currently available.  The event loop itself — readiness tracking,
the event heap, resource accounting, release gating — lives in
:mod:`repro.engine`; this module adapts its policy driver to the baseline
result shape.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

from repro.engine.dispatch import drive_policy_schedule
from repro.instance.instance import Instance
from repro.resources.vector import ResourceVector
from repro.sim.schedule import Schedule, ScheduledJob

__all__ = ["run_dynamic"]

JobId = Hashable

#: Policy: (instance, ready job ids, available amounts) -> jobs to start now,
#: each with its chosen allocation.  Called repeatedly until it returns [].
DispatchPolicy = Callable[
    [Instance, Sequence[JobId], Sequence[int]],
    list[tuple[JobId, ResourceVector]],
]


def run_dynamic(instance: Instance, policy: DispatchPolicy) -> Schedule:
    """Run the shared kernel with ``policy`` deciding dispatches.

    The policy must only return jobs from the ready list with allocations
    that fit the available vector (validated by the engine); returning
    ``[]`` yields until the next event.
    """
    placements: dict[JobId, ScheduledJob] = {}

    def on_start(j: JobId, start: float, duration: float, alloc) -> None:
        placements[j] = ScheduledJob(job_id=j, start=start, time=duration, alloc=alloc)

    drive_policy_schedule(instance, policy, on_start)

    if len(placements) != len(instance.jobs):
        raise RuntimeError("policy stalled with ready jobs and an idle platform")
    return Schedule(instance=instance, placements=placements)
