"""Shared event-driven engine for *dynamic-allocation* baseline heuristics.

Unlike Algorithm 2 (fixed allocations from Phase 1), Tetris- and HEFT-style
heuristics choose each job's allocation at dispatch time based on the
resources currently available.  The engine owns readiness tracking, the
event heap and resource accounting; a policy callback decides what to start.
"""

from __future__ import annotations

import heapq
from typing import Callable, Hashable, Sequence

from repro.instance.instance import Instance
from repro.resources.vector import ResourceVector
from repro.sim.schedule import Schedule, ScheduledJob

__all__ = ["run_dynamic"]

JobId = Hashable

#: Policy: (instance, ready job ids, available amounts) -> jobs to start now,
#: each with its chosen allocation.  Called repeatedly until it returns [].
DispatchPolicy = Callable[
    [Instance, Sequence[JobId], Sequence[int]],
    list[tuple[JobId, ResourceVector]],
]


def run_dynamic(instance: Instance, policy: DispatchPolicy) -> Schedule:
    """Run the event loop with ``policy`` deciding dispatches.

    The policy must only return jobs from the ready list with allocations
    that fit the available vector (validated here); returning ``[]`` yields
    until the next completion event.
    """
    dag = instance.dag
    remaining = {j: dag.in_degree(j) for j in instance.jobs}
    ready: list[JobId] = list(dag.sources())
    avail = list(instance.pool.capacities)
    d = instance.d
    running: list[tuple[float, int, JobId]] = []
    seq = 0
    now = 0.0
    placements: dict[JobId, ScheduledJob] = {}

    while ready or running:
        while True:
            starts = policy(instance, list(ready), tuple(avail))
            if not starts:
                break
            for j, alloc in starts:
                if j not in ready:
                    raise RuntimeError(f"policy started non-ready job {j!r}")
                instance.pool.validate_allocation(alloc)
                if any(alloc[r] > avail[r] for r in range(d)):
                    raise RuntimeError(
                        f"policy overcommitted: {tuple(alloc)} vs available {tuple(avail)}"
                    )
                t = instance.time(j, alloc)
                for r in range(d):
                    avail[r] -= alloc[r]
                placements[j] = ScheduledJob(job_id=j, start=now, time=t, alloc=alloc)
                heapq.heappush(running, (now + t, seq, j))
                seq += 1
                ready.remove(j)

        if not running:
            if ready:
                raise RuntimeError("policy stalled with ready jobs and an idle platform")
            break

        now, _, j = heapq.heappop(running)
        done = [j]
        while running and running[0][0] <= now + 1e-12:
            done.append(heapq.heappop(running)[2])
        for c in done:
            a = placements[c].alloc
            for r in range(d):
                avail[r] += a[r]
            for s in dag.successors(c):
                remaining[s] -= 1
                if remaining[s] == 0:
                    ready.append(s)

    if len(placements) != len(instance.jobs):  # pragma: no cover - invariant
        raise RuntimeError("dynamic engine failed to place every job")
    return Schedule(instance=instance, placements=placements)
