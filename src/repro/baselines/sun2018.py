"""Sun et al. [36] — "Scheduling Parallel Tasks under Multiple Resources:
List Scheduling vs. Pack Scheduling" (IPDPS 2018), for independent jobs.

Two algorithms, both starting from the Lemma 8 optimal allocation
(``L(p') = L_min``) but **without** the paper's µ-adjustment:

* :func:`sun_list_scheduler` — plain greedy list scheduling of the allocated
  jobs, proven 2d-approximation in [36];
* :func:`sun_shelf_scheduler` — pack/shelf scheduling: sort jobs by
  non-increasing execution time, pack first-fit with the engine's shared
  shelf packer, run shelves back-to-back; proven (2d+1)-approximation
  in [36].

These are the head-to-head baselines for Theorem 5's improvement.
"""

from __future__ import annotations

from typing import Hashable

from repro.baselines.naive import BaselineResult
from repro.core.independent import optimal_independent_allocation
from repro.core.list_scheduler import PriorityRule, fifo_priority, list_schedule
from repro.engine.shelves import pack_shelves, stack_shelves
from repro.instance.instance import Instance
from repro.jobs.candidates import CandidateStrategy
from repro.registry import register_scheduler
from repro.sim.schedule import Schedule

__all__ = ["sun_list_scheduler", "sun_shelf_scheduler"]

JobId = Hashable


@register_scheduler("sun_list", kind="baseline", graphs="independent")
def sun_list_scheduler(
    instance: Instance,
    strategy: CandidateStrategy | None = None,
    priority: PriorityRule = fifo_priority,
) -> BaselineResult:
    """[36]'s 2d-approximation: optimal allocation + greedy list scheduling."""
    if not instance.dag.is_independent():
        raise ValueError("Sun et al. [36] algorithms apply to independent jobs")
    ind = optimal_independent_allocation(instance, strategy)
    schedule = list_schedule(instance, ind.allocation, priority)
    return BaselineResult(name="sun2018_list", schedule=schedule, allocation=ind.allocation)


@register_scheduler("sun_shelf", kind="baseline", graphs="independent")
def sun_shelf_scheduler(
    instance: Instance,
    strategy: CandidateStrategy | None = None,
) -> BaselineResult:
    """[36]'s (2d+1)-approximation shelf (pack) scheduler.

    Jobs are sorted by non-increasing execution time and packed first-fit
    into shelves; a shelf's height is its tallest (first) job, and shelves
    execute sequentially.
    """
    if not instance.dag.is_independent():
        raise ValueError("Sun et al. [36] algorithms apply to independent jobs")
    if instance.has_releases:
        raise ValueError(
            "shelf (pack) scheduling is an offline planner and cannot honor release times"
        )
    ind = optimal_independent_allocation(instance, strategy)
    allocation = ind.allocation
    times = {j: instance.time(j, allocation[j]) for j in instance.jobs}
    order = sorted(instance.jobs, key=lambda j: -times[j])

    shelves = pack_shelves(order, allocation, times, instance.pool.capacities)
    placements, _ = stack_shelves(shelves, allocation, times)
    schedule = Schedule(instance=instance, placements=placements)
    return BaselineResult(name="sun2018_shelf", schedule=schedule, allocation=allocation)
