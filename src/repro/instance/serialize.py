"""Instance (de)serialization: portable JSON descriptions of workloads.

Enables the reproducibility workflow evaluation papers need: generate a
workload once, save it, and re-run every algorithm on the identical
instance later (or elsewhere).  Execution-time functions are serialized as
*tabulated profiles* over the candidate grid — exact for the schedulers,
since they only ever evaluate candidates (plus their µ-capped versions,
covered by monotone completion).
"""

from __future__ import annotations

import json
from typing import Hashable

from repro.dag.graph import DAG
from repro.instance.instance import Instance
from repro.jobs.candidates import CandidateStrategy, candidates_for_job, full_grid
from repro.jobs.job import Job
from repro.jobs.profiles import TabulatedTimeFunction
from repro.resources.pool import ResourcePool
from repro.resources.vector import ResourceVector

__all__ = ["instance_to_json", "instance_from_json"]

JobId = Hashable

FORMAT_VERSION = 1


def instance_to_json(
    instance: Instance,
    strategy: CandidateStrategy | None = None,
    *,
    indent: int | None = 2,
) -> str:
    """Serialize the instance with tabulated profiles over the strategy grid.

    The grid defaults to the full grid so the round-tripped instance is
    exact for *any* downstream candidate strategy; pass the strategy you
    will actually use to keep files small.
    """
    strat = strategy if strategy is not None else full_grid
    jobs_out = []
    for j, job in sorted(instance.jobs.items(), key=lambda kv: repr(kv[0])):
        cands = candidates_for_job(job, instance.pool, strat)
        rec = {
            "id": repr(j),
            "pinned": job.candidates is not None,
            "profile": [
                {"alloc": list(c), "time": job.time(c)} for c in cands
            ],
        }
        if job.release > 0.0:
            rec["release"] = job.release
        jobs_out.append(rec)
    payload = {
        "version": FORMAT_VERSION,
        "platform": {
            "capacities": list(instance.pool.capacities),
            "names": list(instance.pool.names),
        },
        "jobs": jobs_out,
        "edges": [[repr(u), repr(v)] for u, v in instance.dag.edges()],
    }
    return json.dumps(payload, indent=indent)


def instance_from_json(text: str | dict) -> Instance:
    """Rebuild an :class:`Instance` from :func:`instance_to_json` output.

    Job ids become their ``repr`` strings (portable keys); profiles load as
    :class:`TabulatedTimeFunction` with monotone completion, and every job
    pins its candidate set to the serialized grid.
    """
    data = json.loads(text) if isinstance(text, str) else text
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported instance format version {data.get('version')!r}")
    pool = ResourcePool(
        ResourceVector(data["platform"]["capacities"]),
        tuple(data["platform"]["names"]),
    )
    jobs: dict[JobId, Job] = {}
    dag = DAG()
    for rec in data["jobs"]:
        jid = rec["id"]
        table = {
            ResourceVector(e["alloc"]): float(e["time"]) for e in rec["profile"]
        }
        fn = TabulatedTimeFunction(table, extend_monotone=True)
        jobs[jid] = Job(
            id=jid,
            time_fn=fn,
            candidates=tuple(table),
            release=float(rec.get("release", 0.0)),
        )
        dag.add_node(jid)
    for u, v in data["edges"]:
        if u not in jobs or v not in jobs:
            raise ValueError(f"edge ({u}, {v}) references unknown job")
        dag.add_edge(u, v)
    return Instance(jobs=jobs, dag=dag, pool=pool)
