"""Instance (de)serialization: portable JSON descriptions of workloads.

Enables the reproducibility workflow evaluation papers need: generate a
workload once, save it, and re-run every algorithm on the identical
instance later (or elsewhere).  Execution-time functions are serialized as
*tabulated profiles* over the candidate grid **plus the µ-cap closure**:
for the theorem-optimal µ of this ``d`` (every graph class), the
``⌈µP^(i)⌉``-capped image of each candidate is tabulated with the *true*
execution time, so the Eq. (5) adjustment evaluates exactly on the
round-tripped instance rather than through monotone completion.  (A
scheduler run with a hand-picked, non-theorem µ may still hit off-table
points; those fall back to monotone completion.)

Round-trip identity contract
----------------------------
``instance_from_json(instance_to_json(inst, strat))`` is **schedule
preserving**: every registered scheduler, run with the same candidate
strategy, produces the identical schedule (same makespan, same event
order) on the round-tripped instance as on the original.  Two properties
make this hold:

* jobs and DAG nodes are serialized — and restored — in the instance's
  **insertion order** (each record carries an explicit ``index``), so the
  topological order, and with it every priority tie-break, is identical.
  Earlier versions sorted records lexicographically by ``repr``
  (``"10" < "2"``), which silently reshuffled the tie-break order and
  changed schedules on round-trip;
* the ``pinned`` flag is honored on load: a job that pinned its own
  candidate set stays pinned to it, and an unpinned job stays unpinned
  (its candidates re-enumerate from the strategy grid, whose points the
  tabulated profile reproduces exactly).

Job ids themselves become their ``repr`` strings (portable keys); the
conformance harness compares schedules through that mapping.
"""

from __future__ import annotations

import json
from typing import Hashable

from repro.dag.graph import DAG
from repro.instance.instance import Instance
from repro.jobs.candidates import CandidateStrategy, candidates_for_job, full_grid
from repro.jobs.job import Job
from repro.jobs.profiles import TabulatedTimeFunction
from repro.resources.pool import ResourcePool
from repro.resources.vector import ResourceVector

__all__ = ["instance_to_json", "instance_from_json"]

JobId = Hashable

#: Format 2 added the explicit insertion-order ``index`` per job record
#: (restoring schedule identity) and honors ``pinned`` on load.  Version-1
#: files still load with their original semantics — records are taken in
#: file order (the order the version-1 writer produced) and every job is
#: pinned to its serialized grid, exactly as the version-1 loader did.
FORMAT_VERSION = 2

_KNOWN_VERSIONS = (1, 2)


def _mu_cap_vectors(pool: ResourcePool) -> list[ResourceVector]:
    """The ``⌈µP^(i)⌉`` cap vectors for the theorem-optimal µ of this ``d``
    (one per graph class; deduplicated).  These are the only off-grid
    points the default two-phase scheduler can evaluate."""
    from repro.core.theory import best_parameters

    caps: list[ResourceVector] = []
    seen: set[tuple[int, ...]] = set()
    for graph_class in ("general", "sp", "independent"):
        mu, _, _ = best_parameters(pool.d, graph_class)
        v = pool.mu_caps(mu)
        if tuple(v) not in seen:
            seen.add(tuple(v))
            caps.append(v)
    return caps


def instance_to_json(
    instance: Instance,
    strategy: CandidateStrategy | None = None,
    *,
    indent: int | None = 2,
) -> str:
    """Serialize the instance with tabulated profiles over the strategy grid.

    The grid defaults to the full grid so the round-tripped instance is
    exact for *any* downstream candidate strategy; pass the strategy you
    will actually use to keep files small.  Jobs are written in the
    instance's insertion order with an explicit ``index`` so the load side
    can restore the exact topological tie-break order, and each profile
    carries the µ-cap closure of its grid as extra tabulation points (see
    the module docstring's identity contract).
    """
    strat = strategy if strategy is not None else full_grid
    cap_vectors = _mu_cap_vectors(instance.pool)
    jobs_out = []
    for idx, (j, job) in enumerate(instance.jobs.items()):
        cands = candidates_for_job(job, instance.pool, strat)
        on_grid = {tuple(c) for c in cands}
        capped = []
        for caps in cap_vectors:
            for c in cands:
                v = c.cap(caps)
                if tuple(v) in on_grid:
                    continue
                on_grid.add(tuple(v))
                try:
                    t = job.time(v)
                except Exception:
                    # a pinned job's time function may reject off-candidate
                    # allocations (a sanctioned pattern); its capped points
                    # then fall back to monotone completion on load
                    continue
                capped.append((v, t))
        rec = {
            "id": repr(j),
            "index": idx,
            "pinned": job.candidates is not None,
            "profile": [
                {"alloc": list(c), "time": job.time(c)} for c in cands
            ],
        }
        if capped:
            rec["mu_capped"] = [
                {"alloc": list(c), "time": t} for c, t in capped
            ]
        if job.release > 0.0:
            rec["release"] = job.release
        jobs_out.append(rec)
    payload = {
        "version": FORMAT_VERSION,
        "platform": {
            "capacities": list(instance.pool.capacities),
            "names": list(instance.pool.names),
        },
        "jobs": jobs_out,
        "edges": [[repr(u), repr(v)] for u, v in instance.dag.edges()],
    }
    return json.dumps(payload, indent=indent)


def instance_from_json(text: str | dict) -> Instance:
    """Rebuild an :class:`Instance` from :func:`instance_to_json` output.

    Job ids become their ``repr`` strings (portable keys); profiles load as
    :class:`TabulatedTimeFunction` with monotone completion.  Jobs are
    restored in serialization (insertion) order — records are sorted by
    their explicit ``index`` — and a job's candidate set is pinned to the
    serialized grid only when it was pinned at serialization time
    (``pinned: true``); unpinned jobs stay unpinned, so downstream
    candidate strategies re-enumerate exactly as on the original instance.
    """
    data = json.loads(text) if isinstance(text, str) else text
    if data.get("version") not in _KNOWN_VERSIONS:
        raise ValueError(f"unsupported instance format version {data.get('version')!r}")
    pool = ResourcePool(
        ResourceVector(data["platform"]["capacities"]),
        tuple(data["platform"]["names"]),
    )
    version = data["version"]
    records = list(data["jobs"])
    if version >= 2:
        # the explicit index is mandatory in v2: a record missing it (or a
        # duplicated index) must error, never silently load in file order —
        # silent reordering is the exact failure mode v2 eliminates
        try:
            indices = [rec["index"] for rec in records]
        except KeyError:
            raise ValueError(
                "version-2 instance file has a job record without an 'index'"
            ) from None
        if sorted(indices) != list(range(len(records))):
            raise ValueError(
                "version-2 instance file has duplicate or gapped job indices"
            )
        records.sort(key=lambda rec: rec["index"])
    jobs: dict[JobId, Job] = {}
    dag = DAG()
    for rec in records:
        jid = rec["id"]
        grid = {
            ResourceVector(e["alloc"]): float(e["time"]) for e in rec["profile"]
        }
        table = dict(grid)
        for e in rec.get("mu_capped", ()):
            table[ResourceVector(e["alloc"])] = float(e["time"])
        fn = TabulatedTimeFunction(table, extend_monotone=True)
        # the version-1 loader pinned every job to the serialized grid
        # regardless of the flag; preserve that for v1 archives so results
        # saved under the old format reproduce unchanged
        pinned = True if version < 2 else rec.get("pinned", False)
        jobs[jid] = Job(
            id=jid,
            time_fn=fn,
            # pinned jobs pin the *grid* (the µ-cap closure entries are
            # tabulation points only, never candidates)
            candidates=tuple(grid) if pinned else None,
            release=float(rec.get("release", 0.0)),
        )
        dag.add_node(jid)
    for u, v in data["edges"]:
        if u not in jobs or v not in jobs:
            raise ValueError(f"edge ({u}, {v}) references unknown job")
        dag.add_edge(u, v)
    return Instance(jobs=jobs, dag=dag, pool=pool)
