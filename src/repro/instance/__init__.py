"""Problem instances: jobs + precedence DAG + resource pool (Section 3)."""

from repro.instance.instance import Instance, AllocationMap, make_instance

__all__ = ["Instance", "AllocationMap", "make_instance"]
