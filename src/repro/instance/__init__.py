"""Problem instances: jobs + precedence DAG + resource pool (Section 3).

:mod:`repro.instance.compiled` holds the array-native lowering of an
instance (CSR adjacency, degree/release vectors, priority-rank maps) that
the scheduling engine's hot paths run on.
"""

from repro.instance.compiled import (
    CompiledDAG,
    CompiledInstance,
    compile_dag,
    compile_instance,
)
from repro.instance.instance import Instance, AllocationMap, make_instance

__all__ = [
    "Instance",
    "AllocationMap",
    "make_instance",
    "CompiledDAG",
    "CompiledInstance",
    "compile_dag",
    "compile_instance",
]
