"""The compiled-instance layer: array-native lowering of DAGs and instances.

The schedulers' hot loops — readiness bookkeeping, feasibility tests,
priority queues, level sweeps — are pure structure: they never need the
hashable job ids, only *which* jobs relate to which.  This module lowers
that structure once into dense numpy arrays and caches the result, so every
run over the same instance reuses it:

* :class:`CompiledDAG` — topological order, id ↔ index maps, CSR successor
  and predecessor adjacency, in/out-degree vectors and (lazily) the
  longest-path level decomposition.  Cached on the :class:`~repro.dag.graph.DAG`
  itself and invalidated on mutation.
* :class:`CompiledInstance` — a :class:`CompiledDAG` plus the per-job release
  vector, allocation-matrix / duration-vector builders and the integer
  *rank* permutation that turns arbitrary priority keys into dense ints
  (heap/array queues then compare machine integers, not python tuples).
  Cached on the :class:`~repro.instance.instance.Instance`.
* level-batched array sweeps for the classic DAG quantities —
  :func:`node_levels_array`, :func:`bottom_levels_array`,
  :func:`top_levels_array` — each a single pass over the CSR arrays
  grouped by level (every edge crosses strictly downward in the level
  decomposition, so one vectorized segmented reduction per level suffices).

Everything here is exact: the topological order, tie-breaking and float
arithmetic reproduce the dict-based code paths bit for bit (the engine
equivalence tests hold the lowering to that).
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import numpy as np

__all__ = [
    "CompiledDAG",
    "CompiledInstance",
    "GrowableCompiledInstance",
    "compile_dag",
    "compile_instance",
    "node_levels_array",
    "bottom_levels_array",
    "top_levels_array",
    "critical_path_length_array",
    "PACK_BITS",
    "PACK_MAX_D",
    "PACK_MAX_CAPACITY",
    "pack_layout",
]

JobId = Hashable


class CompiledDAG:
    """Array-native form of a precedence DAG.

    Attributes
    ----------
    n:
        Number of nodes.
    order:
        The job ids in the graph's canonical topological order (exactly
        ``dag.topological_order()`` — all tie-breaking downstream keys on
        positions in this order).
    index:
        Mapping job id → position in ``order``.
    succ_indptr / succ_indices:
        CSR successor adjacency over topological indices: the successors of
        node ``i`` are ``succ_indices[succ_indptr[i]:succ_indptr[i+1]]``,
        listed in the same order as ``dag.successors(order[i])``.
    pred_indptr / pred_indices:
        The transposed (predecessor) adjacency, same conventions.
    in_degree / out_degree:
        Per-node degree vectors (int64).
    """

    __slots__ = (
        "n", "order", "index",
        "succ_indptr", "succ_indices", "pred_indptr", "pred_indices",
        "in_degree", "out_degree",
        "_levels", "_level_groups", "_succ_lists",
        "_succ_gathers", "_pred_gathers",
    )

    def __init__(self, dag) -> None:
        order = dag.topological_order()
        n = len(order)
        index = {j: i for i, j in enumerate(order)}
        self.n = n
        self.order = order
        self.index = index

        succ_indptr = np.zeros(n + 1, dtype=np.int64)
        pred_indptr = np.zeros(n + 1, dtype=np.int64)
        for i, j in enumerate(order):
            succ_indptr[i + 1] = succ_indptr[i] + dag.out_degree(j)
            pred_indptr[i + 1] = pred_indptr[i] + dag.in_degree(j)
        m = int(succ_indptr[-1])
        succ_indices = np.empty(m, dtype=np.int64)
        pred_indices = np.empty(m, dtype=np.int64)
        for i, j in enumerate(order):
            s = succ_indptr[i]
            for k, v in enumerate(dag.successors(j)):
                succ_indices[s + k] = index[v]
            s = pred_indptr[i]
            for k, u in enumerate(dag.predecessors(j)):
                pred_indices[s + k] = index[u]
        self.succ_indptr = succ_indptr
        self.succ_indices = succ_indices
        self.pred_indptr = pred_indptr
        self.pred_indices = pred_indices
        self.in_degree = np.diff(pred_indptr)
        self.out_degree = np.diff(succ_indptr)
        self._levels: np.ndarray | None = None
        self._level_groups: list[np.ndarray] | None = None
        self._succ_lists: list[list[int]] | None = None
        self._succ_gathers: list[tuple] | None = None
        self._pred_gathers: list[tuple] | None = None

    # ------------------------------------------------------------------
    def successors_of(self, i: int) -> np.ndarray:
        """CSR slice of the successors of topological index ``i`` (a view)."""
        return self.succ_indices[self.succ_indptr[i]:self.succ_indptr[i + 1]]

    def predecessors_of(self, i: int) -> np.ndarray:
        """CSR slice of the predecessors of topological index ``i`` (a view)."""
        return self.pred_indices[self.pred_indptr[i]:self.pred_indptr[i + 1]]

    def succ_lists(self) -> list[list[int]]:
        """Successor adjacency as plain python int lists, one per node.

        The event loops decrement a handful of successor in-degrees per
        completion; for the typical fan-outs (tens of edges) a C-backed
        python loop over ints beats the fixed dispatch cost of the numpy
        CSR slice.  Built once per DAG, shared across runs.
        """
        if self._succ_lists is None:
            indptr = self.succ_indptr.tolist()
            flat = self.succ_indices.tolist()
            self._succ_lists = [
                flat[indptr[i]:indptr[i + 1]] for i in range(self.n)
            ]
        return self._succ_lists

    @property
    def levels(self) -> np.ndarray:
        """Longest-path level of every node (0 for sources); lazy, cached."""
        if self._levels is None:
            self._levels = node_levels_array(self)
        return self._levels

    def level_groups(self) -> list[np.ndarray]:
        """Topological indices grouped by level, ``groups[l]`` sorted ascending."""
        if self._level_groups is None:
            lv = self.levels
            if self.n == 0:
                self._level_groups = []
            else:
                srt = np.argsort(lv, kind="stable")
                bounds = np.searchsorted(lv[srt], np.arange(int(lv.max()) + 2))
                self._level_groups = [
                    srt[bounds[l]:bounds[l + 1]] for l in range(len(bounds) - 1)
                ]
        return self._level_groups

    def level_succ_gathers(self) -> list[tuple]:
        """Per-level ``(targets, seg_starts, sources)`` successor gathers.

        ``sources`` are the level's nodes with at least one successor and
        ``targets``/``seg_starts`` their concatenated adjacency ready for
        ``np.ufunc.reduceat`` — the structure-constant part of every
        level-batched sweep, built once per DAG.
        """
        if self._succ_gathers is None:
            self._succ_gathers = [
                self._gather(self.succ_indptr, self.succ_indices, nodes)
                for nodes in self.level_groups()
            ]
        return self._succ_gathers

    def level_pred_gathers(self) -> list[tuple]:
        """Per-level predecessor gathers (see :meth:`level_succ_gathers`)."""
        if self._pred_gathers is None:
            self._pred_gathers = [
                self._gather(self.pred_indptr, self.pred_indices, nodes)
                for nodes in self.level_groups()
            ]
        return self._pred_gathers

    @staticmethod
    def _gather(indptr, indices, nodes) -> tuple:
        targets, seg_starts, nz = _ragged_gather(indptr, indices, nodes)
        return targets, seg_starts, nodes[nz]


def compile_dag(dag) -> CompiledDAG:
    """Lower ``dag`` to its array form, cached on the DAG until it mutates."""
    cd = getattr(dag, "_compiled", None)
    if cd is None:
        cd = CompiledDAG(dag)
        dag._compiled = cd
    return cd


# ----------------------------------------------------------------------
# ragged adjacency gather: the workhorse of the level-batched sweeps
# ----------------------------------------------------------------------
def _ragged_gather(
    indptr: np.ndarray, indices: np.ndarray, nodes: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenated adjacency of ``nodes``.

    Returns ``(targets, seg_starts, nz)`` where ``nz`` masks the nodes with
    at least one neighbor, ``targets`` is their concatenated neighbor list
    and ``seg_starts`` the start offset of each nonempty segment inside it
    (ready for ``np.ufunc.reduceat``).
    """
    starts = indptr[nodes]
    lens = indptr[nodes + 1] - starts
    nz = lens > 0
    ln = lens[nz]
    if ln.size == 0:
        return np.empty(0, dtype=indices.dtype), np.empty(0, dtype=np.int64), nz
    seg_ends = np.cumsum(ln)
    seg_starts = seg_ends - ln
    total = int(seg_ends[-1])
    rep = np.repeat(np.arange(ln.size), ln)
    pos = np.arange(total) - seg_starts[rep]
    targets = indices[starts[nz][rep] + pos]
    return targets, seg_starts, nz


def node_levels_array(cdag: CompiledDAG) -> np.ndarray:
    """Longest-path level per node: 0 for sources, else 1 + max over preds.

    Computed by synchronous Kahn peeling: the round in which a node's
    in-degree reaches zero *is* its longest-path level.
    """
    n = cdag.n
    level = np.zeros(n, dtype=np.int64)
    if n == 0:
        return level
    cnt = cdag.in_degree.copy()
    frontier = np.flatnonzero(cnt == 0)
    seen = 0
    l = 0
    while frontier.size:
        level[frontier] = l
        seen += frontier.size
        targets, _, _ = _ragged_gather(cdag.succ_indptr, cdag.succ_indices, frontier)
        if targets.size == 0:
            break
        np.subtract.at(cnt, targets, 1)
        frontier = np.unique(targets[cnt[targets] == 0])
        l += 1
    if seen < n:  # pragma: no cover - compile_dag already validated acyclicity
        raise ValueError("precedence graph contains a cycle")
    return level


def bottom_levels_array(cdag: CompiledDAG, times: np.ndarray) -> np.ndarray:
    """``b(j) = t_j + max_{s ∈ succ(j)} b(s)`` for every node, one sweep.

    Every edge goes to a strictly deeper level, so sweeping levels deepest
    first makes each level a single segmented ``maximum.reduceat``.
    """
    b = np.asarray(times, dtype=np.float64).copy()
    for targets, seg_starts, src in reversed(cdag.level_succ_gathers()):
        if targets.size:
            seg_max = np.maximum.reduceat(b[targets], seg_starts)
            b[src] = times[src] + seg_max
    return b


def top_levels_array(cdag: CompiledDAG, times: np.ndarray) -> np.ndarray:
    """``top(j) = max_{p ∈ pred(j)} (top(p) + t_p)``, one forward sweep."""
    t = np.asarray(times, dtype=np.float64)
    tl = np.zeros(cdag.n, dtype=np.float64)
    for targets, seg_starts, src in cdag.level_pred_gathers()[1:]:
        if targets.size:
            seg_max = np.maximum.reduceat(tl[targets] + t[targets], seg_starts)
            tl[src] = seg_max
    return tl


def critical_path_length_array(cdag: CompiledDAG, times: np.ndarray) -> float:
    """``C(p)`` — the maximum bottom level (0.0 for an empty graph)."""
    if cdag.n == 0:
        return 0.0
    return float(bottom_levels_array(cdag, times).max())


# ----------------------------------------------------------------------
# instance-level lowering
# ----------------------------------------------------------------------

#: Bit width of one resource field in the packed-demand representation.
PACK_BITS = 16
#: Most resource types a 64-bit packed demand can carry.
PACK_MAX_D = 4
#: Largest capacity a packed field can represent (one headroom bit is
#: reserved per field for the borrow-free dominance test).
PACK_MAX_CAPACITY = (1 << (PACK_BITS - 1)) - 1


def pack_layout(capacities) -> tuple[bool, int, int]:
    """``(packable, fit_mask, packed_capacities)`` for a capacity vector.

    The single source of truth for the SWAR lowering shared by the batch
    (:class:`CompiledInstance`) and online (:class:`GrowableCompiledInstance`)
    engines — the two admission tests must agree bit for bit.
    """
    caps = [int(c) for c in capacities]
    d = len(caps)
    if not (1 <= d <= PACK_MAX_D) or max(caps, default=0) > PACK_MAX_CAPACITY:
        return False, 0, 0
    fit_mask = sum(1 << (PACK_BITS * r + PACK_BITS - 1) for r in range(d))
    packed = sum(c << (PACK_BITS * r) for r, c in enumerate(caps))
    return True, fit_mask, packed


class CompiledInstance:
    """Array form of an :class:`~repro.instance.instance.Instance`.

    Owns the structural arrays (via ``cdag``) and the per-job release
    vector; provides the per-run builders the dispatch drivers consume —
    allocation matrices, duration vectors, the integer rank permutation
    for priority keys and (when ``packable``) the packed-demand lowering.

    **Packed demands.**  For ``d <= 4`` resource types with capacities
    below ``2**15``, a whole demand vector fits one ``uint64`` — field
    ``r`` occupies bits ``[16r, 16r+15)`` with the top bit of each field
    kept clear.  The dominance test ``a ⪯ av`` then becomes the classic
    borrow-free SWAR comparison::

        ((av + fit_mask) - a) & fit_mask == fit_mask

    where ``fit_mask`` carries the headroom bit of every field: field
    arithmetic cannot borrow across fields (``0x8000 + av_r - a_r > 0``
    always), so each field's headroom bit survives the subtraction iff
    ``a_r <= av_r``.  One integer op replaces a ``d``-wide vector
    comparison — as a scalar test in the dispatch scan and as a single
    1-D vector op over the whole ready queue.
    """

    __slots__ = (
        "cdag", "d", "capacities", "release", "has_releases",
        "packable", "fit_mask", "packed_capacities",
    )

    def __init__(self, instance) -> None:
        self.cdag = compile_dag(instance.dag)
        self.d = instance.d
        self.capacities = np.asarray(tuple(instance.pool.capacities), dtype=np.int64)
        self.release = np.array(
            [instance.jobs[j].release for j in self.cdag.order], dtype=np.float64
        )
        self.has_releases = bool((self.release > 0.0).any())
        self.packable, self.fit_mask, self.packed_capacities = pack_layout(
            self.capacities
        )

    # convenience pass-throughs -----------------------------------------
    @property
    def n(self) -> int:
        return self.cdag.n

    @property
    def order(self) -> list[JobId]:
        return self.cdag.order

    @property
    def index(self) -> dict[JobId, int]:
        return self.cdag.index

    # per-run builders ---------------------------------------------------
    def alloc_matrix(self, allocation: Mapping[JobId, Sequence[int]]) -> np.ndarray:
        """``(n, d)`` int64 allocation matrix in topological order."""
        n, d = self.cdag.n, self.d
        return np.fromiter(
            (a for j in self.cdag.order for a in allocation[j]),
            dtype=np.int64,
            count=n * d,
        ).reshape(n, d)

    def duration_vector(self, durations: Mapping[JobId, float]) -> np.ndarray:
        """Per-job durations as float64, topological order."""
        return np.fromiter(
            (durations[j] for j in self.cdag.order),
            dtype=np.float64,
            count=self.cdag.n,
        )

    def pack_demands(self, alloc_mat: np.ndarray) -> np.ndarray:
        """Packed ``uint64`` demand per job (see class docstring).

        ``alloc_mat`` is the ``(n, d)`` matrix from :meth:`alloc_matrix`;
        only valid when :attr:`packable` (demands above the field range
        would corrupt adjacent fields).
        """
        if not self.packable:
            raise ValueError(
                f"instance is not packable (d={self.d}, "
                f"max capacity {int(self.capacities.max(initial=0))})"
            )
        shifts = np.arange(self.d, dtype=np.uint64) * np.uint64(PACK_BITS)
        return (alloc_mat.astype(np.uint64) << shifts).sum(axis=1, dtype=np.uint64)

    def kernel_layout(self) -> tuple[np.ndarray, np.ndarray]:
        """The CSR successor arrays under the **kernel layout contract**:
        C-contiguous ``int64`` ``(succ_indptr, succ_indices)``.

        Compiled dispatch backends (:mod:`repro.engine.backends`) index
        these arrays from nopython code and need the dtype and memory
        layout pinned, not merely conventional.  Construction already
        produces this layout; this accessor *guarantees* it — if an
        upstream transformation ever replaced the arrays with a view or
        a different dtype, they are normalized (and re-cached) here
        rather than handed to a kernel that would misread them.
        """
        cd = self.cdag
        ip, si = cd.succ_indptr, cd.succ_indices
        if ip.dtype != np.int64 or not ip.flags["C_CONTIGUOUS"]:
            ip = np.ascontiguousarray(ip, dtype=np.int64)
            cd.succ_indptr = ip
        if si.dtype != np.int64 or not si.flags["C_CONTIGUOUS"]:
            si = np.ascontiguousarray(si, dtype=np.int64)
            cd.succ_indices = si
        return ip, si

    def rank_permutation(
        self, keys: "Mapping[JobId, object] | np.ndarray"
    ) -> tuple[np.ndarray, list[int]]:
        """Dense integer ranks realizing the ``(key, topological index)`` order.

        Returns ``(rank_of, topo_of_rank)``: ``rank_of[i]`` is the rank of
        topological index ``i`` and ``topo_of_rank[r]`` its inverse.  Ranks
        are a *total* order — ties in ``keys`` resolve by topological index
        (the sort is stable), exactly the historical ``insort`` key
        ``(keys[j], index[j])`` — so priority queues can carry bare ints.

        ``keys`` may be a mapping over job ids or a 1-D array aligned with
        the topological order (the fast path used by the vectorized
        priority rules; a stable argsort realizes the identical order).
        """
        n = self.cdag.n
        if isinstance(keys, np.ndarray):
            if keys.shape != (n,):
                raise ValueError(
                    f"key array must have shape ({n},), got {keys.shape}"
                )
            topo_arr = np.argsort(keys, kind="stable")
            rank_of = np.empty(n, dtype=np.int64)
            rank_of[topo_arr] = np.arange(n, dtype=np.int64)
            return rank_of, topo_arr.tolist()
        order = self.cdag.order
        topo_of_rank = sorted(range(n), key=lambda i: keys[order[i]])
        rank_of = np.empty(n, dtype=np.int64)
        rank_of[topo_of_rank] = np.arange(n, dtype=np.int64)
        return rank_of, topo_of_rank


def compile_instance(instance) -> CompiledInstance:
    """Lower ``instance`` once; cached on the instance (and its DAG)."""
    ci = instance._compiled
    # the DAG cache is authoritative: if the DAG mutated, recompile
    if ci is None or ci.cdag is not getattr(instance.dag, "_compiled", None):
        ci = CompiledInstance(instance)
        instance._compiled = ci
    return ci


# ----------------------------------------------------------------------
# growable lowering (online sessions)
# ----------------------------------------------------------------------


class GrowableCompiledInstance:
    """Append-only array form of an instance that grows while scheduling.

    :class:`CompiledInstance` lowers a *frozen* job set once; an online
    session admits jobs continuously, so recompiling per submission would
    be O(n) per job.  This class keeps the same lowering — topological
    order, successor adjacency, per-job demand / duration / release rows,
    and the packed uint64 demand when the platform is packable — in
    append-only python lists: :meth:`append` is O(1 + in-degree) and never
    touches existing rows.

    Invariants the session relies on:

    * jobs are appended in a valid topological order — every predecessor
      of a job must already have an index when the job is appended, so
      ``order`` *is* a topological order of the growing DAG and downstream
      tie-breaks key on positions in it, exactly like the batch lowering;
    * priority ``key`` values are totally ordered by ``(key, index)``;
      keys must be mutually comparable (the service protocol uses floats);
    * demand rows are validated against the capacities at append time, so
      the dispatch loop's admission test never sees an infeasible row.

    **Compaction.**  Long-lived sessions accumulate rows for jobs that are
    finished or cancelled; :meth:`compact` rebuilds the contiguous layout
    over a surviving subset, preserving relative order (so the ``(key,
    index)`` total order over survivors is unchanged) and returning the
    old→new index mapping for the owner to remap its own structures.
    Predecessors that were dropped are recorded by *id* in
    :attr:`ext_preds` — they were satisfied before being dropped, so the
    surviving row owes them no readiness bookkeeping, only provenance.
    """

    __slots__ = (
        "d", "capacities", "packable", "fit_mask", "packed_capacities",
        "order", "index", "succ", "preds", "ext_preds", "demand", "packed",
        "duration", "key", "release",
    )

    def __init__(self, capacities: Sequence[int]) -> None:
        caps = tuple(int(c) for c in capacities)
        if not caps or any(c <= 0 for c in caps):
            raise ValueError(f"capacities must be a positive vector, got {capacities!r}")
        self.d = len(caps)
        self.capacities = caps
        self.packable, self.fit_mask, self.packed_capacities = pack_layout(caps)
        self.order: list[JobId] = []          # job ids, append (topological) order
        self.index: dict[JobId, int] = {}     # id -> topological index
        self.succ: list[list[int]] = []       # successor indices per job
        self.preds: list[tuple[int, ...]] = []  # predecessor indices per job
        self.ext_preds: list[tuple[JobId, ...]] = []  # satisfied preds dropped by compact()
        self.demand: list[tuple[int, ...]] = []
        self.packed: list[int] = []           # packed uint64 demand (packable only)
        self.duration: list[float] = []
        self.key: list[object] = []           # priority key; order is (key, index)
        self.release: list[float] = []

    @property
    def n(self) -> int:
        return len(self.order)

    def pack(self, demand: Sequence[int]) -> int:
        """The uint64 packed image of one demand row (packable platforms)."""
        return sum(int(a) << (PACK_BITS * r) for r, a in enumerate(demand))

    def validate_row(
        self,
        job_id: JobId,
        demand: Sequence[int],
        duration: float,
        release: float = 0.0,
    ) -> tuple[int, ...]:
        """Check one prospective row without appending it; returns the
        normalized demand tuple.  Lets callers validate a whole batch
        before admitting any of it (all-or-nothing submission)."""
        if job_id in self.index:
            raise ValueError(f"job {job_id!r} was already submitted")
        dem = tuple(int(a) for a in demand)
        if len(dem) != self.d:
            raise ValueError(
                f"job {job_id!r}: demand {dem} has dimension {len(dem)}, "
                f"platform has {self.d}"
            )
        if any(a < 0 for a in dem) or sum(dem) <= 0:
            raise ValueError(
                f"job {job_id!r}: demand {dem} must request at least one "
                "unit and no negative amounts"
            )
        if any(a > c for a, c in zip(dem, self.capacities)):
            raise ValueError(
                f"job {job_id!r}: demand {dem} exceeds capacities {self.capacities}"
            )
        duration = float(duration)
        if not duration > 0.0 or duration != duration or duration == float("inf"):
            raise ValueError(
                f"job {job_id!r}: duration must be positive and finite, got {duration}"
            )
        release = float(release)
        if not 0.0 <= release < float("inf"):
            raise ValueError(
                f"job {job_id!r}: release must be finite and >= 0, got {release}"
            )
        return dem

    def append(
        self,
        job_id: JobId,
        preds: Sequence[int],
        demand: Sequence[int],
        duration: float,
        key: object,
        release: float = 0.0,
    ) -> int:
        """Append one job row; returns its topological index.

        ``preds`` are topological indices of already-appended jobs (the
        online precedence model: a new job may depend only on jobs the
        session already knows).  Validates id uniqueness, demand bounds
        and duration/release finiteness (:meth:`validate_row`) so the
        dispatch loop can trust every row it reads.
        """
        dem = self.validate_row(job_id, demand, duration, release)
        duration = float(duration)
        release = float(release)
        i = len(self.order)
        pred_idx = tuple(int(p) for p in preds)
        for p in pred_idx:
            if not 0 <= p < i:
                raise ValueError(
                    f"job {job_id!r}: predecessor index {p} is not an "
                    "already-appended job"
                )
        self.order.append(job_id)
        self.index[job_id] = i
        self.succ.append([])
        self.preds.append(pred_idx)
        self.ext_preds.append(())
        self.demand.append(dem)
        self.packed.append(self.pack(dem) if self.packable else 0)
        self.duration.append(duration)
        self.key.append(key)
        self.release.append(release)
        for p in pred_idx:
            self.succ[p].append(i)
        return i

    def append_batch(
        self,
        ids: Sequence[JobId],
        preds_idx: Sequence[tuple[int, ...]],
        demands: Sequence[tuple[int, ...]],
        durations: Sequence[float],
        keys: Sequence[object],
        releases: Sequence[float],
        ext_preds: "Sequence[tuple[JobId, ...]] | None" = None,
    ) -> int:
        """Append a pre-validated batch of rows in one shot; returns the
        first new index.

        The batch-lowering fast path: the caller (the session's ``submit``
        or the checkpoint restorer) has already validated every row — this
        method only extends the column lists in bulk and packs the demand
        matrix with one vectorized shift-and-sum instead of ``k`` python
        packs.  ``preds_idx`` rows may reference earlier rows of the same
        batch (indices are absolute), and double as the successor wiring
        source — callers that already know a dependency is satisfied pass
        it through ``ext_preds`` by id instead, keeping the wiring loop
        proportional to the dependencies that can still fire.
        """
        k = len(ids)
        if k == 0:
            return len(self.order)
        base = len(self.order)
        self.order.extend(ids)
        index = self.index
        for off, jid in enumerate(ids):
            index[jid] = base + off
        succ = self.succ
        succ.extend([] for _ in range(k))
        self.preds.extend(preds_idx)
        self.ext_preds.extend(
            ext_preds if ext_preds is not None else ((),) * k
        )
        self.demand.extend(demands)
        if self.packable:
            dm = np.asarray(demands, dtype=np.uint64).reshape(k, self.d)
            shifts = np.arange(self.d, dtype=np.uint64) * np.uint64(PACK_BITS)
            self.packed.extend((dm << shifts).sum(axis=1, dtype=np.uint64).tolist())
        else:
            self.packed.extend([0] * k)
        self.duration.extend(durations)
        self.key.extend(keys)
        self.release.extend(releases)
        for off, pt in enumerate(preds_idx):
            if pt:
                i = base + off
                for p in pt:
                    succ[p].append(i)
        return base

    def kernel_layout(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """A frozen array snapshot of the growable state under the kernel
        layout contract: C-contiguous ``(succ_indptr int64, succ_indices
        int64, packed uint64, duration float64)``.

        The growable lowering lives in append-only python lists (O(1)
        admission); compiled backends need dense pinned-dtype arrays, so
        this builds the same CSR view :class:`CompiledDAG` carries
        natively.  The snapshot reflects the rows present *now* — it is
        invalidated by the next :meth:`append`/:meth:`append_batch` and
        must be rebuilt after :meth:`compact` (indices are remapped);
        callers snapshot per run, they do not cache across growth.
        """
        n = len(self.order)
        indptr = np.zeros(n + 1, dtype=np.int64)
        for i, s in enumerate(self.succ):
            indptr[i + 1] = indptr[i] + len(s)
        indices = np.fromiter(
            (t for s in self.succ for t in s), dtype=np.int64, count=int(indptr[-1])
        )
        packed = np.asarray(self.packed, dtype=np.uint64)
        duration = np.asarray(self.duration, dtype=np.float64)
        return (
            np.ascontiguousarray(indptr),
            np.ascontiguousarray(indices),
            np.ascontiguousarray(packed),
            np.ascontiguousarray(duration),
        )

    def compact(self, keep: Sequence[int]) -> np.ndarray:
        """Rebuild the contiguous layout over the surviving rows ``keep``.

        ``keep`` must be strictly increasing (relative order — and with it
        the ``(key, index)`` total order over survivors — is preserved).
        Dropped predecessors of a surviving row move into its
        :attr:`ext_preds` by id; dropped successors simply disappear.
        Returns the old→new index map as an int64 array with ``-1`` for
        dropped rows, so owners (the incremental loop, the session) can
        remap their parallel state.
        """
        n = len(self.order)
        old2new = np.full(n, -1, dtype=np.int64)
        old2new[np.asarray(keep, dtype=np.int64)] = np.arange(len(keep))
        o2n = old2new.tolist()
        old_order = self.order
        self.order = [old_order[i] for i in keep]
        self.index = {j: k for k, j in enumerate(self.order)}
        new_preds: list[tuple[int, ...]] = []
        new_ext: list[tuple[JobId, ...]] = []
        for i in keep:
            surv = tuple(o2n[p] for p in self.preds[i] if o2n[p] >= 0)
            dropped = tuple(old_order[p] for p in self.preds[i] if o2n[p] < 0)
            new_preds.append(surv)
            new_ext.append(self.ext_preds[i] + dropped)
        self.preds = new_preds
        self.ext_preds = new_ext
        succ: list[list[int]] = [[] for _ in range(len(keep))]
        for i, pt in enumerate(new_preds):
            for p in pt:
                succ[p].append(i)
        self.succ = succ
        self.demand = [self.demand[i] for i in keep]
        self.packed = [self.packed[i] for i in keep]
        self.duration = [self.duration[i] for i in keep]
        self.key = [self.key[i] for i in keep]
        self.release = [self.release[i] for i in keep]
        return old2new
