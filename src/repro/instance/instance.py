"""The scheduling problem instance and the quantities of Definitions 1-2.

An :class:`Instance` bundles the moldable jobs, their precedence DAG and the
platform pool, and evaluates the paper's allocation functionals:

* per job (Definition 1): work ``w_j^(i)(p) = p^(i) t_j(p)``, area
  ``a_j^(i) = w_j^(i)/P^(i)``, average area ``a_j = (1/d) Σ_i a_j^(i)``;
* per allocation decision (Definition 2): total area ``A(p)``, critical
  path ``C(p)``, and the lower-bound functional ``L(p) = max(A(p), C(p))``.

It also owns the cached per-job candidate tables (Pareto-filtered per
Eq. (2)), shared by Phase 1, the FPTAS and the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping

from repro.dag.graph import DAG
from repro.dag.paths import critical_path_length
from repro.jobs.candidates import CandidateStrategy, candidates_for_job, geometric_grid
from repro.jobs.job import Job
from repro.jobs.profiles import ProfileEntry, pareto_filter
from repro.resources.pool import ResourcePool
from repro.resources.vector import ResourceVector

__all__ = [
    "Instance",
    "AllocationMap",
    "make_instance",
    "with_release_times",
    "with_poisson_arrivals",
]

JobId = Hashable
AllocationMap = Mapping[JobId, ResourceVector]


@dataclass
class Instance:
    """A multi-resource moldable scheduling instance.

    Attributes
    ----------
    jobs:
        Mapping job id → :class:`~repro.jobs.job.Job`.
    dag:
        Precedence constraints over exactly the job ids.
    pool:
        The platform (``d`` resource types with capacities).
    """

    jobs: dict[JobId, Job]
    dag: DAG
    pool: ResourcePool
    _candidate_cache: dict[int, dict[JobId, list[ProfileEntry]]] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: array-native lowering (see :mod:`repro.instance.compiled`); built on
    #: first use by :func:`~repro.instance.compiled.compile_instance`.
    _compiled: object | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        dag_nodes = set(self.dag.nodes())
        job_ids = set(self.jobs)
        if dag_nodes != job_ids:
            missing = job_ids - dag_nodes
            extra = dag_nodes - job_ids
            raise ValueError(
                f"DAG nodes must match job ids (missing from DAG: {sorted(map(repr, missing))[:5]}, "
                f"unknown in DAG: {sorted(map(repr, extra))[:5]})"
            )
        self.dag.validate()

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of jobs."""
        return len(self.jobs)

    @property
    def d(self) -> int:
        """Number of resource types."""
        return self.pool.d

    def time(self, job_id: JobId, alloc: ResourceVector) -> float:
        """``t_j(p_j)``."""
        return self.jobs[job_id].time(alloc)

    def compiled(self):
        """The cached array-native lowering of this instance.

        See :mod:`repro.instance.compiled`; equivalent to
        ``compile_instance(self)``.
        """
        from repro.instance.compiled import compile_instance

        return compile_instance(self)

    # ------------------------------------------------------------------
    # release times (online-arrival scenarios)
    # ------------------------------------------------------------------
    def release_times(self) -> dict[JobId, float]:
        """Per-job release (arrival) times; all 0.0 in the offline model."""
        return {j: job.release for j, job in self.jobs.items()}

    @property
    def has_releases(self) -> bool:
        """True when any job arrives after time 0 (online scenario)."""
        return any(job.release > 0.0 for job in self.jobs.values())

    # ------------------------------------------------------------------
    # Definition 1
    # ------------------------------------------------------------------
    def work(self, job_id: JobId, alloc: ResourceVector, rtype: int) -> float:
        """``w_j^(i)(p) = p^(i) · t_j(p)``."""
        return alloc[rtype] * self.time(job_id, alloc)

    def area(self, job_id: JobId, alloc: ResourceVector, rtype: int) -> float:
        """``a_j^(i)(p) = w_j^(i)(p) / P^(i)``."""
        return self.work(job_id, alloc, rtype) / self.pool.capacities[rtype]

    def avg_area(self, job_id: JobId, alloc: ResourceVector) -> float:
        """``a_j(p) = (1/d) Σ_i a_j^(i)(p)`` — the DTCT cost of the allocation."""
        t = self.time(job_id, alloc)
        caps = self.pool.capacities
        return t * sum(alloc[i] / caps[i] for i in range(self.d)) / self.d

    # ------------------------------------------------------------------
    # Definition 2
    # ------------------------------------------------------------------
    def times(self, allocation: AllocationMap) -> dict[JobId, float]:
        """Per-job execution times under ``allocation``."""
        return {j: self.time(j, allocation[j]) for j in self.jobs}

    def total_area(self, allocation: AllocationMap) -> float:
        """``A(p) = Σ_j a_j(p_j)`` — average total area over resource types."""
        return sum(self.avg_area(j, allocation[j]) for j in self.jobs)

    def total_area_per_type(self, allocation: AllocationMap) -> list[float]:
        """``A^(i)(p)`` for each resource type ``i``."""
        out = [0.0] * self.d
        for j in self.jobs:
            t = self.time(j, allocation[j])
            for i in range(self.d):
                out[i] += allocation[j][i] * t / self.pool.capacities[i]
        return out

    def critical_path(self, allocation: AllocationMap) -> float:
        """``C(p)`` — longest total execution time along a precedence path."""
        return critical_path_length(self.dag, self.times(allocation))

    def lower_bound_functional(self, allocation: AllocationMap) -> float:
        """``L(p) = max(A(p), C(p))`` (Definition 2); ``min_p L(p) <= T_opt``."""
        return max(self.total_area(allocation), self.critical_path(allocation))

    # ------------------------------------------------------------------
    # candidate tables (Eq. (2) applied)
    # ------------------------------------------------------------------
    def candidate_table(
        self, strategy: CandidateStrategy | None = None
    ) -> dict[JobId, list[ProfileEntry]]:
        """Per-job non-dominated candidate frontiers, cached per strategy.

        Each entry list is sorted by strictly increasing time / strictly
        decreasing average area (see :func:`repro.jobs.profiles.pareto_filter`).
        """
        strategy = strategy if strategy is not None else geometric_grid
        key = id(strategy)
        cached = self._candidate_cache.get(key)
        if cached is not None:
            return cached
        from repro.jobs.speedup import MultiResourceTime
        from repro.jobs.vectorized import evaluate_entries

        table: dict[JobId, list[ProfileEntry]] = {}
        for j, job in self.jobs.items():
            cands = candidates_for_job(job, self.pool, strategy)
            if isinstance(job.time_fn, MultiResourceTime):
                try:
                    table[j] = evaluate_entries(job.time_fn, cands, self.pool)
                    continue
                except TypeError:
                    pass  # custom speedup model without an array form
            entries = [
                ProfileEntry(alloc=c, time=job.time(c), area=self.avg_area(j, c))
                for c in cands
            ]
            table[j] = pareto_filter(entries)
        self._candidate_cache[key] = table
        return table

    def validate_allocation_map(self, allocation: AllocationMap):
        """Check that ``allocation`` covers every job and fits the pool.

        The check is one whole-matrix comparison over the compiled order;
        any failure re-runs the per-job loop so error messages (missing
        job, dimension mismatch, over-capacity, zero allocation) stay
        exactly as before.

        Returns the validated ``(n, d)`` allocation matrix in topological
        order when the vectorized path ran (``None`` after the fallback
        loop) — the dispatch drivers reuse it instead of lowering the
        allocation a second time.
        """
        import numpy as np

        try:
            ci = self.compiled()
            lens = np.fromiter(
                (len(allocation[j]) for j in ci.order), dtype=np.int64, count=ci.n
            )
            if (lens == self.d).all():
                m = ci.alloc_matrix(allocation)
                if bool(
                    ((0 <= m) & (m <= ci.capacities)).all()
                    and (m.sum(axis=1) > 0).all()
                ):
                    return m
        except (KeyError, TypeError, ValueError):
            pass
        for j in self.jobs:
            if j not in allocation:
                raise ValueError(f"allocation missing job {j!r}")
            self.pool.validate_allocation(allocation[j])
        return None


def make_instance(
    dag: DAG,
    pool: ResourcePool,
    time_fn_factory: Callable[[JobId], Callable[[ResourceVector], float]],
    *,
    candidates_factory: Callable[[JobId], tuple[ResourceVector, ...] | None] | None = None,
) -> Instance:
    """Build an :class:`Instance` from a DAG by instantiating one job per node.

    ``time_fn_factory(job_id)`` returns the execution-time function;
    ``candidates_factory`` optionally pins per-job candidate allocations.
    """
    jobs: dict[JobId, Job] = {}
    for node in dag.nodes():
        cands = candidates_factory(node) if candidates_factory else None
        jobs[node] = Job(id=node, time_fn=time_fn_factory(node), candidates=cands)
    return Instance(jobs=jobs, dag=dag, pool=pool)


def with_release_times(instance: Instance, releases: Mapping[JobId, float]) -> Instance:
    """A copy of ``instance`` whose jobs carry the given release times.

    Jobs absent from ``releases`` keep their current release.  The DAG and
    pool are shared; candidate caches are not (they rebuild on demand).
    """
    jobs: dict[JobId, Job] = {}
    for j, job in instance.jobs.items():
        r = float(releases.get(j, job.release))
        jobs[j] = Job(
            id=j, time_fn=job.time_fn, candidates=job.candidates, release=r, name=job.name
        )
    return Instance(jobs=jobs, dag=instance.dag, pool=instance.pool)


def with_poisson_arrivals(
    instance: Instance, rate: float, seed: int | None = 0
) -> Instance:
    """An online-arrival variant: jobs arrive as a Poisson process.

    Exponential inter-arrival times (mean ``1/rate``) are assigned in
    topological order, so a job never arrives before its predecessors —
    the natural shape of a workflow submission stream.  Deterministic for a
    fixed seed.
    """
    if not rate > 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    from repro.util.rng import ensure_rng

    rng = ensure_rng(seed)
    t = 0.0
    releases: dict[JobId, float] = {}
    for j in instance.dag.topological_order():
        t += float(rng.exponential(1.0 / rate))
        releases[j] = t
    return with_release_times(instance, releases)
