"""Weighted path computations on precedence DAGs (Definition 2).

Given per-job execution times ``t_j`` these compute the critical-path
length ``C(p) = max_f Σ_{j∈f} t_j`` and the standard *top level* /
*bottom level* quantities used by global list-scheduling priorities.

All three run on the cached array lowering of the DAG
(:mod:`repro.instance.compiled`): one level-batched numpy sweep over the
CSR adjacency instead of a per-node python recursion, with bit-identical
results (only ``max`` and ``+`` are involved).
"""

from __future__ import annotations

from typing import Hashable, Mapping

import numpy as np

from repro.dag.graph import DAG

__all__ = ["critical_path_length", "critical_path", "bottom_levels", "top_levels"]

JobId = Hashable


def _times_vector(order: list[JobId], times: Mapping[JobId, float]) -> np.ndarray:
    return np.array([times[j] for j in order], dtype=np.float64)


def bottom_levels(dag: DAG, times: Mapping[JobId, float]) -> dict[JobId, float]:
    """Bottom level ``b(j)``: longest total time of a path starting at ``j``
    (inclusive of ``t_j``).  ``max_j b(j)`` is the critical-path length."""
    from repro.instance.compiled import bottom_levels_array, compile_dag

    cd = compile_dag(dag)
    b = bottom_levels_array(cd, _times_vector(cd.order, times))
    return dict(zip(cd.order, b.tolist()))


def top_levels(dag: DAG, times: Mapping[JobId, float]) -> dict[JobId, float]:
    """Top level ``top(j)``: longest total time of a path ending just before
    ``j`` (exclusive of ``t_j``) — the earliest possible start of ``j`` with
    unlimited resources."""
    from repro.instance.compiled import compile_dag, top_levels_array

    cd = compile_dag(dag)
    t = top_levels_array(cd, _times_vector(cd.order, times))
    return dict(zip(cd.order, t.tolist()))


def critical_path_length(dag: DAG, times: Mapping[JobId, float]) -> float:
    """``C(p)`` — the total execution time along a longest path."""
    from repro.instance.compiled import compile_dag, critical_path_length_array

    if len(dag) == 0:
        return 0.0
    cd = compile_dag(dag)
    return critical_path_length_array(cd, _times_vector(cd.order, times))


def critical_path(dag: DAG, times: Mapping[JobId, float]) -> list[JobId]:
    """One longest (critical) path, as a list of job ids source→sink."""
    if len(dag) == 0:
        return []
    b = bottom_levels(dag, times)
    # start at a source with maximal bottom level, then greedily follow the
    # successor that preserves b(j) = t_j + b(successor).
    start = max(dag.sources(), key=lambda j: b[j])
    path = [start]
    cur = start
    while dag.successors(cur):
        cur = max(dag.successors(cur), key=lambda s: b[s])
        path.append(cur)
    return path
