"""Weighted path computations on precedence DAGs (Definition 2).

Given per-job execution times ``t_j`` these compute the critical-path
length ``C(p) = max_f Σ_{j∈f} t_j`` and the standard *top level* /
*bottom level* quantities used by global list-scheduling priorities.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.dag.graph import DAG

__all__ = ["critical_path_length", "critical_path", "bottom_levels", "top_levels"]

JobId = Hashable


def bottom_levels(dag: DAG, times: Mapping[JobId, float]) -> dict[JobId, float]:
    """Bottom level ``b(j)``: longest total time of a path starting at ``j``
    (inclusive of ``t_j``).  ``max_j b(j)`` is the critical-path length."""
    order = dag.topological_order()
    b: dict[JobId, float] = {}
    for j in reversed(order):
        succ_best = max((b[s] for s in dag.successors(j)), default=0.0)
        b[j] = times[j] + succ_best
    return b


def top_levels(dag: DAG, times: Mapping[JobId, float]) -> dict[JobId, float]:
    """Top level ``top(j)``: longest total time of a path ending just before
    ``j`` (exclusive of ``t_j``) — the earliest possible start of ``j`` with
    unlimited resources."""
    order = dag.topological_order()
    t: dict[JobId, float] = {}
    for j in order:
        t[j] = max((t[p] + times[p] for p in dag.predecessors(j)), default=0.0)
    return t


def critical_path_length(dag: DAG, times: Mapping[JobId, float]) -> float:
    """``C(p)`` — the total execution time along a longest path."""
    if len(dag) == 0:
        return 0.0
    return max(bottom_levels(dag, times).values())


def critical_path(dag: DAG, times: Mapping[JobId, float]) -> list[JobId]:
    """One longest (critical) path, as a list of job ids source→sink."""
    if len(dag) == 0:
        return []
    b = bottom_levels(dag, times)
    # start at a source with maximal bottom level, then greedily follow the
    # successor that preserves b(j) = t_j + b(successor).
    start = max(dag.sources(), key=lambda j: b[j])
    path = [start]
    cur = start
    while dag.successors(cur):
        cur = max(dag.successors(cur), key=lambda s: b[s])
        path.append(cur)
    return path
