"""Synthetic precedence-graph generators.

These cover the workload families scheduling evaluations traditionally draw
from:

* structureless: :func:`independent`, :func:`erdos_renyi_dag`,
  :func:`layered_random`;
* classic shapes: :func:`chain`, :func:`fork_join`, :func:`random_out_tree`,
  :func:`random_in_tree`, :func:`random_sp_dag`;
* dense linear-algebra workflows (the paper's HPC motivation):
  :func:`cholesky_dag`, :func:`lu_dag`, :func:`qr_dag`;
* iterative/stencil workflows: :func:`stencil_dag`, :func:`fft_dag`.

All generators return a :class:`~repro.dag.graph.DAG`; stochastic ones take a
``seed`` (int / Generator / None) and are deterministic for a fixed seed.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.dag.graph import DAG
from repro.dag.sp import random_sp_tree, sp_to_dag
from repro.util.rng import ensure_rng

__all__ = [
    "independent",
    "chain",
    "fork_join",
    "layered_random",
    "erdos_renyi_dag",
    "random_out_tree",
    "random_in_tree",
    "random_sp_dag",
    "cholesky_dag",
    "lu_dag",
    "qr_dag",
    "stencil_dag",
    "fft_dag",
]

JobId = Hashable


def independent(n: int) -> DAG:
    """``n`` jobs, no precedence constraints (Section 5.2 workloads)."""
    return DAG(nodes=range(n))


def chain(n: int) -> DAG:
    """A linear chain ``0 -> 1 -> ... -> n-1`` (fully sequential)."""
    g = DAG(nodes=range(n))
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def fork_join(width: int, stages: int = 1) -> DAG:
    """``stages`` repetitions of fork → ``width`` parallel jobs → join.

    Node ids: ``("fork", s)``, ``("work", s, k)``, ``("join", s)``.  The join
    of stage ``s`` is the fork of stage ``s+1``'s predecessor.
    """
    if width < 1 or stages < 1:
        raise ValueError("width and stages must be >= 1")
    g = DAG()
    prev_join: JobId | None = None
    for s in range(stages):
        fork = ("fork", s)
        join = ("join", s)
        if prev_join is not None:
            g.add_edge(prev_join, fork)
        for k in range(width):
            w = ("work", s, k)
            g.add_edge(fork, w)
            g.add_edge(w, join)
        prev_join = join
    return g


def layered_random(
    layers: int,
    width: int,
    p: float = 0.3,
    seed: int | np.random.Generator | None = None,
    *,
    connect_all: bool = True,
) -> DAG:
    """A layered random DAG: ``layers × width`` jobs, edges only between
    consecutive layers, each present with probability ``p``.

    With ``connect_all`` every non-first-layer job is guaranteed at least one
    predecessor (a uniformly random one), avoiding degenerate wide graphs.
    Node ids are ``(layer, index)``.
    """
    if not 0 <= p <= 1:
        raise ValueError("p must be in [0, 1]")
    rng = ensure_rng(seed)
    g = DAG(nodes=((l, i) for l in range(layers) for i in range(width)))
    for l in range(layers - 1):
        for j in range(width):
            preds = np.nonzero(rng.random(width) < p)[0]
            for i in preds:
                g.add_edge((l, int(i)), (l + 1, j))
            if connect_all and len(preds) == 0:
                g.add_edge((l, int(rng.integers(width))), (l + 1, j))
    return g


def erdos_renyi_dag(n: int, p: float, seed: int | np.random.Generator | None = None) -> DAG:
    """A random DAG: fix the order ``0..n-1`` and add each edge ``i -> j``
    (``i < j``) independently with probability ``p``."""
    if not 0 <= p <= 1:
        raise ValueError("p must be in [0, 1]")
    rng = ensure_rng(seed)
    g = DAG(nodes=range(n))
    for i in range(n):
        js = i + 1 + np.nonzero(rng.random(n - i - 1) < p)[0]
        for j in js:
            g.add_edge(i, int(j))
    return g


def random_out_tree(n: int, seed: int | np.random.Generator | None = None) -> DAG:
    """A uniformly-attached random out-tree: node ``i >= 1`` has a single
    parent chosen uniformly from ``0..i-1`` (dependencies flow root→leaves)."""
    rng = ensure_rng(seed)
    g = DAG(nodes=range(n))
    for i in range(1, n):
        g.add_edge(int(rng.integers(i)), i)
    return g


def random_in_tree(n: int, seed: int | np.random.Generator | None = None) -> DAG:
    """Mirror of :func:`random_out_tree`: dependencies flow leaves→root
    (every node has at most one successor)."""
    rng = ensure_rng(seed)
    g = DAG(nodes=range(n))
    for i in range(1, n):
        g.add_edge(i, int(rng.integers(i)))
    return g


def random_sp_dag(
    n: int,
    seed: int | np.random.Generator | None = None,
    *,
    p_series: float = 0.5,
) -> DAG:
    """A random series-parallel DAG with ``n`` jobs (see :mod:`repro.dag.sp`)."""
    return sp_to_dag(random_sp_tree(n, seed, p_series=p_series))


# ----------------------------------------------------------------------
# dense linear algebra task graphs
# ----------------------------------------------------------------------
def cholesky_dag(b: int) -> DAG:
    """Tiled Cholesky factorization task graph on a ``b × b`` tile matrix.

    Tasks: ``("potrf", k)``, ``("trsm", k, i)`` for ``i > k``,
    ``("syrk", k, i)``, and ``("gemm", k, i, j)`` for ``j < i``; standard
    dependency pattern of the right-looking tiled algorithm (as scheduled by
    StarPU / PaRSEC, the runtimes cited in the paper's introduction).
    """
    if b < 1:
        raise ValueError("b must be >= 1")
    g = DAG()
    for k in range(b):
        potrf = ("potrf", k)
        g.add_node(potrf)
        if k > 0:
            g.add_edge(("syrk", k - 1, k), potrf)
        for i in range(k + 1, b):
            trsm = ("trsm", k, i)
            g.add_edge(potrf, trsm)
            if k > 0:
                g.add_edge(("gemm", k - 1, i, k), trsm)
        for i in range(k + 1, b):
            syrk = ("syrk", k, i)
            g.add_edge(("trsm", k, i), syrk)
            if k > 0:
                g.add_edge(("syrk", k - 1, i), syrk)
            for j in range(k + 1, i):
                gemm = ("gemm", k, i, j)
                g.add_edge(("trsm", k, i), gemm)
                g.add_edge(("trsm", k, j), gemm)
                if k > 0:
                    g.add_edge(("gemm", k - 1, i, j), gemm)
    return g


def lu_dag(b: int) -> DAG:
    """Tiled LU factorization (no pivoting) task graph on ``b × b`` tiles.

    Tasks: ``("getrf", k)``, row/column solves ``("trsm_r", k, j)`` /
    ``("trsm_c", k, i)``, and trailing updates ``("gemm", k, i, j)``.
    """
    if b < 1:
        raise ValueError("b must be >= 1")
    g = DAG()
    for k in range(b):
        getrf = ("getrf", k)
        g.add_node(getrf)
        if k > 0:
            g.add_edge(("gemm", k - 1, k, k), getrf)
        for j in range(k + 1, b):
            tr = ("trsm_r", k, j)
            g.add_edge(getrf, tr)
            if k > 0:
                g.add_edge(("gemm", k - 1, k, j), tr)
        for i in range(k + 1, b):
            tc = ("trsm_c", k, i)
            g.add_edge(getrf, tc)
            if k > 0:
                g.add_edge(("gemm", k - 1, i, k), tc)
        for i in range(k + 1, b):
            for j in range(k + 1, b):
                gm = ("gemm", k, i, j)
                g.add_edge(("trsm_c", k, i), gm)
                g.add_edge(("trsm_r", k, j), gm)
                if k > 0:
                    g.add_edge(("gemm", k - 1, i, j), gm)
    return g


def qr_dag(b: int) -> DAG:
    """Tiled QR factorization task graph (flat-tree TS kernels) on ``b × b``
    tiles: ``("geqrt", k)``, ``("ormqr", k, j)``, ``("tsqrt", k, i)``,
    ``("tsmqr", k, i, j)``."""
    if b < 1:
        raise ValueError("b must be >= 1")
    g = DAG()

    def upd(k: int, i: int, j: int) -> JobId:
        """The task producing tile (i, j) at the end of step k."""
        if i == k:
            return ("ormqr", k, j)
        return ("tsmqr", k, i, j)

    for k in range(b):
        geqrt = ("geqrt", k)
        g.add_node(geqrt)
        if k > 0:
            g.add_edge(upd(k - 1, k, k), geqrt)
        for j in range(k + 1, b):
            orm = ("ormqr", k, j)
            g.add_edge(geqrt, orm)
            if k > 0:
                g.add_edge(upd(k - 1, k, j), orm)
        prev = geqrt
        for i in range(k + 1, b):
            ts = ("tsqrt", k, i)
            g.add_edge(prev, ts)
            if k > 0:
                g.add_edge(upd(k - 1, i, k), ts)
            prev = ts
            for j in range(k + 1, b):
                tm = ("tsmqr", k, i, j)
                g.add_edge(ts, tm)
                g.add_edge(upd(k, i - 1, j) if i - 1 > k else ("ormqr", k, j), tm)
                if k > 0:
                    g.add_edge(upd(k - 1, i, j), tm)
    return g


# ----------------------------------------------------------------------
# iterative / spectral workflows
# ----------------------------------------------------------------------
def stencil_dag(width: int, steps: int) -> DAG:
    """A 1-D 3-point stencil unrolled over time: job ``(t, i)`` depends on
    ``(t-1, i-1)``, ``(t-1, i)``, ``(t-1, i+1)`` (clamped at borders)."""
    if width < 1 or steps < 1:
        raise ValueError("width and steps must be >= 1")
    g = DAG(nodes=((t, i) for t in range(steps) for i in range(width)))
    for t in range(1, steps):
        for i in range(width):
            for di in (-1, 0, 1):
                j = i + di
                if 0 <= j < width:
                    g.add_edge((t - 1, j), (t, i))
    return g


def fft_dag(log2n: int) -> DAG:
    """Butterfly (Cooley-Tukey FFT) task graph on ``2**log2n`` lanes:
    job ``(s, i)`` at stage ``s`` depends on ``(s-1, i)`` and
    ``(s-1, i XOR 2**(s-1))``."""
    if log2n < 1:
        raise ValueError("log2n must be >= 1")
    n = 1 << log2n
    g = DAG(nodes=((s, i) for s in range(log2n + 1) for i in range(n)))
    for s in range(1, log2n + 1):
        stride = 1 << (s - 1)
        for i in range(n):
            g.add_edge((s - 1, i), (s, i))
            g.add_edge((s - 1, i ^ stride), (s, i))
    return g
