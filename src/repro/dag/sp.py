"""Series-parallel (SP) precedence structures (Section 5.1).

We model SP precedence as *series-parallel posets*, the form required by the
FPTAS of Lemma 7: a decomposition tree whose leaves are jobs and whose
internal nodes are

* ``SPSeries(left, right)`` — every job of ``left`` precedes every job of
  ``right`` (critical path adds: ``C = C_left + C_right``);
* ``SPParallel(left, right)`` — no constraints across the two sides
  (critical path maxes: ``C = max(C_left, C_right)``).

:func:`sp_to_dag` materializes the transitive reduction (sinks of the left
series operand to sources of the right).  :func:`tree_to_sp` converts rooted
in/out-trees — the paper's other special class — into SP-trees, so the same
FPTAS covers both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator

import numpy as np

from repro.dag.graph import DAG
from repro.util.rng import ensure_rng

__all__ = [
    "SPNode",
    "SPLeaf",
    "SPSeries",
    "SPParallel",
    "sp_to_dag",
    "tree_to_sp",
    "random_sp_tree",
]

JobId = Hashable


class SPNode:
    """Base class of SP decomposition-tree nodes."""

    def leaves(self) -> Iterator[JobId]:
        """Yield the job ids at the leaves, left to right."""
        raise NotImplementedError

    def size(self) -> int:
        """Number of jobs (leaves)."""
        return sum(1 for _ in self.leaves())


@dataclass(frozen=True)
class SPLeaf(SPNode):
    """A single job."""

    job: JobId

    def leaves(self) -> Iterator[JobId]:
        yield self.job


@dataclass(frozen=True)
class SPSeries(SPNode):
    """Series composition: ``left`` entirely before ``right``."""

    left: SPNode
    right: SPNode

    def leaves(self) -> Iterator[JobId]:
        yield from self.left.leaves()
        yield from self.right.leaves()


@dataclass(frozen=True)
class SPParallel(SPNode):
    """Parallel composition: no cross constraints."""

    left: SPNode
    right: SPNode

    def leaves(self) -> Iterator[JobId]:
        yield from self.left.leaves()
        yield from self.right.leaves()


def series(*parts: SPNode) -> SPNode:
    """Left fold of :class:`SPSeries` over two or more parts."""
    if not parts:
        raise ValueError("series() needs at least one operand")
    node = parts[0]
    for p in parts[1:]:
        node = SPSeries(node, p)
    return node


def parallel(*parts: SPNode) -> SPNode:
    """Left fold of :class:`SPParallel` over two or more parts."""
    if not parts:
        raise ValueError("parallel() needs at least one operand")
    node = parts[0]
    for p in parts[1:]:
        node = SPParallel(node, p)
    return node


# ----------------------------------------------------------------------
# materialization
# ----------------------------------------------------------------------
def sp_to_dag(root: SPNode) -> DAG:
    """Materialize the SP-poset as a DAG (transitive reduction of series).

    Raises ``ValueError`` on duplicate job ids.
    """
    dag = DAG()
    seen: set[JobId] = set()

    def rec(node: SPNode) -> tuple[list[JobId], list[JobId]]:
        """Return (sources, sinks) of the sub-poset, adding edges as we go."""
        if isinstance(node, SPLeaf):
            if node.job in seen:
                raise ValueError(f"duplicate job id {node.job!r} in SP tree")
            seen.add(node.job)
            dag.add_node(node.job)
            return [node.job], [node.job]
        if isinstance(node, SPSeries):
            lsrc, lsink = rec(node.left)
            rsrc, rsink = rec(node.right)
            for u in lsink:
                for v in rsrc:
                    dag.add_edge(u, v)
            return lsrc, rsink
        if isinstance(node, SPParallel):
            lsrc, lsink = rec(node.left)
            rsrc, rsink = rec(node.right)
            return lsrc + rsrc, lsink + rsink
        raise TypeError(f"unknown SP node {node!r}")

    rec(root)
    return dag


# ----------------------------------------------------------------------
# trees
# ----------------------------------------------------------------------
def tree_to_sp(dag: DAG, *, direction: str = "auto") -> SPNode:
    """Convert a rooted tree/forest DAG into an equivalent SP-tree.

    ``direction`` is ``"out"`` (every node has ≤1 predecessor: out-tree,
    dependencies flow root→leaves), ``"in"`` (every node has ≤1 successor),
    or ``"auto"`` to detect.  A forest is combined with parallel composition.

    Raises ``ValueError`` when the DAG is not a tree/forest in the requested
    orientation.
    """
    if len(dag) == 0:
        raise ValueError("empty graph has no SP decomposition")
    is_out = all(dag.in_degree(n) <= 1 for n in dag.nodes())
    is_in = all(dag.out_degree(n) <= 1 for n in dag.nodes())
    if direction == "auto":
        if is_out:
            direction = "out"
        elif is_in:
            direction = "in"
        else:
            raise ValueError("graph is neither an out-tree/forest nor an in-tree/forest")
    if direction == "out" and not is_out:
        raise ValueError("graph is not an out-tree/forest")
    if direction == "in" and not is_in:
        raise ValueError("graph is not an in-tree/forest")

    def out_rec(v: JobId) -> SPNode:
        kids = list(dag.successors(v))
        if not kids:
            return SPLeaf(v)
        return SPSeries(SPLeaf(v), parallel(*[out_rec(c) for c in kids]))

    def in_rec(v: JobId) -> SPNode:
        kids = list(dag.predecessors(v))
        if not kids:
            return SPLeaf(v)
        return SPSeries(parallel(*[in_rec(c) for c in kids]), SPLeaf(v))

    if direction == "out":
        roots = [n for n in dag.nodes() if dag.in_degree(n) == 0]
        return parallel(*[out_rec(r) for r in roots])
    roots = [n for n in dag.nodes() if dag.out_degree(n) == 0]
    return parallel(*[in_rec(r) for r in roots])


# ----------------------------------------------------------------------
# random generation
# ----------------------------------------------------------------------
def random_sp_tree(
    n: int,
    seed: int | np.random.Generator | None = None,
    *,
    p_series: float = 0.5,
    id_prefix: str = "j",
) -> SPNode:
    """A random SP-tree with ``n`` leaf jobs.

    The tree is built by recursive random bisection; each internal node is a
    series composition with probability ``p_series`` (else parallel).  Leaf
    job ids are ``f"{id_prefix}{k}"`` for ``k = 0..n-1``.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = ensure_rng(seed)
    counter = iter(range(n))

    def build(k: int) -> SPNode:
        if k == 1:
            return SPLeaf(f"{id_prefix}{next(counter)}")
        split = int(rng.integers(1, k))
        left = build(split)
        right = build(k - split)
        if rng.random() < p_series:
            return SPSeries(left, right)
        return SPParallel(left, right)

    return build(n)
