"""A minimal, validated directed-acyclic-graph container for job precedence.

Nodes are arbitrary hashable job identifiers.  The class stores forward and
backward adjacency, guarantees acyclicity on demand, and exposes the
traversal primitives the schedulers need: topological order, ready-set
seeding (sources), and immediate predecessor/successor queries.

We deliberately do not depend on :mod:`networkx` here — the scheduler's hot
path iterates these structures heavily and plain dict/list adjacency is both
faster and dependency-free.  (:mod:`networkx` is used only in tests as an
independent oracle.)
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence

__all__ = ["DAG"]

JobId = Hashable


class DAG:
    """Directed acyclic graph of job precedence constraints.

    An edge ``u -> v`` means job ``v`` cannot start before job ``u``
    completes (Section 3.1).
    """

    def __init__(self, nodes: Iterable[JobId] = (), edges: Iterable[tuple[JobId, JobId]] = ()):
        self._succ: dict[JobId, list[JobId]] = {}
        self._pred: dict[JobId, list[JobId]] = {}
        self._edge_set: set[tuple[JobId, JobId]] = set()
        # lazily filled structural caches, dropped on any mutation:
        # the Kahn order and the array-native lowering (repro.instance.compiled)
        self._topo_cache: list[JobId] | None = None
        self._compiled = None
        for n in nodes:
            self.add_node(n)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _invalidate_caches(self) -> None:
        self._topo_cache = None
        self._compiled = None

    def add_node(self, node: JobId) -> None:
        """Insert ``node`` (idempotent)."""
        if node not in self._succ:
            self._succ[node] = []
            self._pred[node] = []
            self._invalidate_caches()

    def add_edge(self, u: JobId, v: JobId) -> None:
        """Insert precedence ``u -> v`` (idempotent); nodes are auto-created."""
        if u == v:
            raise ValueError(f"self-loop on {u!r} is not a valid precedence")
        self.add_node(u)
        self.add_node(v)
        if (u, v) not in self._edge_set:
            self._edge_set.add((u, v))
            self._succ[u].append(v)
            self._pred[v].append(u)
            self._invalidate_caches()

    def copy(self) -> "DAG":
        return DAG(self.nodes(), self.edges())

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, node: JobId) -> bool:
        return node in self._succ

    def nodes(self) -> list[JobId]:
        return list(self._succ)

    def edges(self) -> Iterator[tuple[JobId, JobId]]:
        for u, vs in self._succ.items():
            for v in vs:
                yield (u, v)

    @property
    def num_edges(self) -> int:
        return len(self._edge_set)

    def successors(self, node: JobId) -> Sequence[JobId]:
        """Immediate successors of ``node``."""
        return self._succ[node]

    def predecessors(self, node: JobId) -> Sequence[JobId]:
        """Immediate predecessors of ``node``."""
        return self._pred[node]

    def in_degree(self, node: JobId) -> int:
        return len(self._pred[node])

    def out_degree(self, node: JobId) -> int:
        return len(self._succ[node])

    def sources(self) -> list[JobId]:
        """Jobs with no predecessor — initially ready (Algorithm 2)."""
        return [n for n in self._succ if not self._pred[n]]

    def sinks(self) -> list[JobId]:
        """Jobs with no successor."""
        return [n for n in self._succ if not self._succ[n]]

    def has_edge(self, u: JobId, v: JobId) -> bool:
        return (u, v) in self._edge_set

    def is_independent(self) -> bool:
        """True when there are no precedence constraints at all."""
        return not self._edge_set

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def topological_order(self) -> list[JobId]:
        """Kahn topological order; raises ``ValueError`` if a cycle exists.

        The order is cached until the graph mutates (schedulers ask for it
        repeatedly — priority rules, tie-breaking, the compiled lowering);
        callers receive a fresh list they may mutate freely.
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        indeg = {n: len(ps) for n, ps in self._pred.items()}
        frontier = [n for n, k in indeg.items() if k == 0]
        order: list[JobId] = []
        while frontier:
            n = frontier.pop()
            order.append(n)
            for s in self._succ[n]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    frontier.append(s)
        if len(order) != len(self._succ):
            raise ValueError("precedence graph contains a cycle")
        self._topo_cache = order
        return list(order)

    def validate(self) -> None:
        """Raise ``ValueError`` on cycles (acyclicity check)."""
        self.topological_order()

    def ancestors(self, node: JobId) -> set[JobId]:
        """All transitive predecessors of ``node``."""
        out: set[JobId] = set()
        stack = list(self._pred[node])
        while stack:
            u = stack.pop()
            if u not in out:
                out.add(u)
                stack.extend(self._pred[u])
        return out

    def descendants(self, node: JobId) -> set[JobId]:
        """All transitive successors of ``node``."""
        out: set[JobId] = set()
        stack = list(self._succ[node])
        while stack:
            u = stack.pop()
            if u not in out:
                out.add(u)
                stack.extend(self._succ[u])
        return out

    def relabel(self, mapping: dict[JobId, JobId]) -> "DAG":
        """A copy with node ids mapped through ``mapping`` (must be injective)."""
        if len(set(mapping.values())) != len(mapping):
            raise ValueError("relabel mapping must be injective")
        g = DAG((mapping.get(n, n) for n in self.nodes()))
        for u, v in self.edges():
            g.add_edge(mapping.get(u, u), mapping.get(v, v))
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DAG(n={len(self)}, m={self.num_edges})"
