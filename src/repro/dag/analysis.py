"""Structural DAG metrics used by the experiment reports.

Workload structure drives scheduling difficulty; these metrics summarize
it: depth (hop count of the longest chain), width (peak parallelism of the
level decomposition), average degree, and the *parallelism profile* (ready
width per level) — the quantities evaluation sections tabulate when
describing their workload mix.

The level decomposition comes from the cached array lowering of the DAG
(:mod:`repro.instance.compiled`): one vectorized Kahn peel over the CSR
adjacency, shared with the scheduling engine.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.dag.graph import DAG

__all__ = ["node_levels", "depth", "level_widths", "width", "edge_density", "summarize"]

JobId = Hashable


def node_levels(dag: DAG) -> dict[JobId, int]:
    """Precedence level of each node: 0 for sources, else 1 + max over preds."""
    from repro.instance.compiled import compile_dag

    cd = compile_dag(dag)
    return dict(zip(cd.order, cd.levels.tolist()))


#: Backwards-compatible private alias.
_levels = node_levels


def depth(dag: DAG) -> int:
    """Number of levels (hop-longest chain length); 0 for an empty graph."""
    from repro.instance.compiled import compile_dag

    if len(dag) == 0:
        return 0
    return int(compile_dag(dag).levels.max()) + 1


def level_widths(dag: DAG) -> list[int]:
    """Node count per precedence level (the parallelism profile)."""
    from repro.instance.compiled import compile_dag

    if len(dag) == 0:
        return []
    return np.bincount(compile_dag(dag).levels).tolist()


def width(dag: DAG) -> int:
    """Peak level width — an upper-bound estimate of exploitable parallelism.

    (The true maximum antichain can be larger; the level decomposition is
    the standard cheap proxy used in scheduling evaluations.)
    """
    widths = level_widths(dag)
    return max(widths) if widths else 0


def edge_density(dag: DAG) -> float:
    """Edges divided by the maximum possible ``n(n−1)/2`` (0 for n < 2)."""
    n = len(dag)
    if n < 2:
        return 0.0
    return dag.num_edges / (n * (n - 1) / 2)


def summarize(dag: DAG) -> dict[str, float]:
    """All metrics in one dict (for workload tables)."""
    return {
        "n": len(dag),
        "edges": dag.num_edges,
        "depth": depth(dag),
        "width": width(dag),
        "edge_density": edge_density(dag),
        "sources": len(dag.sources()),
        "sinks": len(dag.sinks()),
    }
