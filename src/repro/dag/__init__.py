"""Precedence-constraint DAGs (Section 3.1) and workload graph generators."""

from repro.dag.graph import DAG
from repro.dag.paths import critical_path, critical_path_length, bottom_levels, top_levels
from repro.dag.sp import SPNode, SPLeaf, SPSeries, SPParallel, sp_to_dag, tree_to_sp, random_sp_tree
from repro.dag import generators

__all__ = [
    "DAG",
    "critical_path",
    "critical_path_length",
    "bottom_levels",
    "top_levels",
    "SPNode",
    "SPLeaf",
    "SPSeries",
    "SPParallel",
    "sp_to_dag",
    "tree_to_sp",
    "random_sp_tree",
    "generators",
]
