"""Scientific-workflow graph shapes (Pegasus benchmark suite, simplified).

Scheduling evaluations routinely use the structural skeletons of real
Pegasus workflows — Montage (astronomy mosaics), CyberShake (seismic
hazard), Epigenomics (genome sequencing) and LIGO Inspiral (gravitational
waves).  These generators reproduce the published shapes (fan-out widths,
aggregation points, pipeline depths) parameterized by the degree of
parallelism; node ids are ``(stage_name, *indices)`` tuples.

References: Juve et al., "Characterizing and profiling scientific
workflows", FGCS 2013 (the canonical shape descriptions).
"""

from __future__ import annotations

from repro.dag.graph import DAG

__all__ = ["montage_dag", "cybershake_dag", "epigenomics_dag", "ligo_dag"]


def montage_dag(n: int) -> DAG:
    """Montage mosaic workflow with ``n`` input images.

    Shape: ``n`` `mProject` jobs; `mDiffFit` jobs on overlapping image pairs
    (here: consecutive pairs); a single `mConcatFit` → `mBgModel` chain;
    ``n`` parallel `mBackground` jobs; then the `mImgtbl` → `mAdd` →
    `mShrink` → `mJPEG` aggregation chain.
    """
    if n < 2:
        raise ValueError("montage needs n >= 2 input images")
    g = DAG()
    for i in range(n):
        g.add_node(("mProject", i))
    for i in range(n - 1):
        diff = ("mDiffFit", i)
        g.add_edge(("mProject", i), diff)
        g.add_edge(("mProject", i + 1), diff)
        g.add_edge(diff, ("mConcatFit", 0))
    g.add_edge(("mConcatFit", 0), ("mBgModel", 0))
    for i in range(n):
        bg = ("mBackground", i)
        g.add_edge(("mBgModel", 0), bg)
        g.add_edge(("mProject", i), bg)
        g.add_edge(bg, ("mImgtbl", 0))
    g.add_edge(("mImgtbl", 0), ("mAdd", 0))
    g.add_edge(("mAdd", 0), ("mShrink", 0))
    g.add_edge(("mShrink", 0), ("mJPEG", 0))
    return g


def cybershake_dag(n: int) -> DAG:
    """CyberShake seismic-hazard workflow with ``n`` rupture variations.

    Shape: two `ExtractSGT` roots feeding ``n`` `SeismogramSynthesis` jobs,
    each followed by a `PeakValCalc`; two zip aggregators collect the two
    result families.
    """
    if n < 1:
        raise ValueError("cybershake needs n >= 1 variations")
    g = DAG()
    for e in range(2):
        g.add_node(("ExtractSGT", e))
    for i in range(n):
        synth = ("SeismogramSynthesis", i)
        g.add_edge(("ExtractSGT", i % 2), synth)
        peak = ("PeakValCalc", i)
        g.add_edge(synth, peak)
        g.add_edge(synth, ("ZipSeis", 0))
        g.add_edge(peak, ("ZipPSA", 0))
    return g


def epigenomics_dag(lanes: int, width: int) -> DAG:
    """Epigenomics sequencing workflow: ``lanes`` parallel pipelines of
    ``width`` chunk-streams each, merging per lane and then globally.

    Per lane: `fastqSplit` fans into ``width`` chains
    `filterContams` → `sol2sanger` → `fastq2bfq` → `map`, merged by
    `mapMerge`; lane merges feed the global `mapMergeGlobal` →
    `maqIndex` → `pileup` chain.
    """
    if lanes < 1 or width < 1:
        raise ValueError("epigenomics needs lanes >= 1 and width >= 1")
    g = DAG()
    for l in range(lanes):
        split = ("fastqSplit", l)
        merge = ("mapMerge", l)
        for w in range(width):
            chain = ["filterContams", "sol2sanger", "fastq2bfq", "map"]
            prev = split
            for stage in chain:
                node = (stage, l, w)
                g.add_edge(prev, node)
                prev = node
            g.add_edge(prev, merge)
        g.add_edge(merge, ("mapMergeGlobal", 0))
    g.add_edge(("mapMergeGlobal", 0), ("maqIndex", 0))
    g.add_edge(("maqIndex", 0), ("pileup", 0))
    return g


def ligo_dag(n: int, group: int = 3) -> DAG:
    """LIGO Inspiral gravitational-wave workflow with ``n`` data segments.

    Shape: per segment a `TmpltBank` → `Inspiral` chain; inspirals aggregate
    in groups of ``group`` into `Thinca` jobs; each Thinca fans back out to
    its group's `TrigBank` → `Inspiral2` chains, collected by second-level
    `Thinca2` jobs.
    """
    if n < 1 or group < 1:
        raise ValueError("ligo needs n >= 1 and group >= 1")
    g = DAG()
    for i in range(n):
        g.add_edge(("TmpltBank", i), ("Inspiral", i))
        g.add_edge(("Inspiral", i), ("Thinca", i // group))
    n_groups = (n + group - 1) // group
    for i in range(n):
        gid = i // group
        g.add_edge(("Thinca", gid), ("TrigBank", i))
        g.add_edge(("TrigBank", i), ("Inspiral2", i))
        g.add_edge(("Inspiral2", i), ("Thinca2", gid))
    assert len([x for x in g.nodes() if x[0] == "Thinca"]) == n_groups
    return g
