"""Deterministic random-number-generator plumbing.

Every stochastic entry point in the library accepts either a seed (``int``),
an existing :class:`numpy.random.Generator`, or ``None`` (fresh OS entropy),
and normalizes it through :func:`ensure_rng`.  This keeps experiments
reproducible end-to-end: a single integer seed pins the whole pipeline.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng"]


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` seed, or an existing generator
        (returned unchanged so callers can thread one RNG through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
