"""Ordering helpers used across the scheduling code."""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["argsort_by", "stable_unique"]


def argsort_by(items: Sequence[T], key: Callable[[T], object]) -> list[int]:
    """Indices that sort ``items`` by ``key`` (stable)."""
    return sorted(range(len(items)), key=lambda i: key(items[i]))


def stable_unique(items: Iterable[T]) -> list[T]:
    """Unique items preserving first-seen order (items must be hashable)."""
    seen: set[T] = set()
    out: list[T] = []
    for x in items:
        if x not in seen:
            seen.add(x)
            out.append(x)
    return out
