"""Small shared utilities: seeded RNG handling and ordering helpers."""

from repro.util.rng import ensure_rng
from repro.util.order import argsort_by, stable_unique

__all__ = ["ensure_rng", "argsort_by", "stable_unique"]
