"""Small shared utilities: seeded RNG handling, ordering helpers and
crash-safe file replacement."""

from repro.util.atomic import atomic_write_text, fsync_directory
from repro.util.rng import ensure_rng
from repro.util.order import argsort_by, stable_unique

__all__ = [
    "ensure_rng",
    "argsort_by",
    "stable_unique",
    "atomic_write_text",
    "fsync_directory",
]
