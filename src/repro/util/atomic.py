"""Crash-safe file replacement: temp file + fsync + atomic rename.

Every artifact the service persists (checkpoints, traces, journal
headers) goes through :func:`atomic_write_text`: the bytes land in a
temporary file in the destination directory, are flushed and fsynced,
and only then atomically renamed over the destination (followed by a
directory fsync so the rename itself is durable).  A crash at any point
leaves either the old file or the new file — never a torn mix — which
is the property the recovery path (`snapshot + journal replay`) builds
on.
"""

from __future__ import annotations

import os
import tempfile
from typing import Callable

__all__ = ["atomic_write_text", "fsync_directory"]


def fsync_directory(path: str) -> None:
    """fsync a directory so a rename inside it survives power loss.

    Platforms/filesystems that cannot open directories for reading
    (or reject fsync on them) are silently tolerated — the rename is
    still atomic, just not guaranteed ordered against the crash.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: str,
    text: str,
    *,
    fsync: bool = True,
    before_replace: "Callable[[str], None] | None" = None,
) -> None:
    """Atomically replace ``path`` with ``text`` (temp + fsync + rename).

    ``before_replace`` is called with the temp file's path after it is
    durable but before the rename — the chaos harness hooks it to
    simulate a crash between "new checkpoint written" and "new
    checkpoint visible"; production callers leave it ``None``.  On any
    failure the temp file is removed and ``path`` is untouched.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        if before_replace is not None:
            before_replace(tmp)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        fsync_directory(directory)
