"""Greedy list scheduling for the malleable model, on the shared kernel.

He et al. [21] prove that greedy list scheduling of unit-task DAGs on
``d`` resource types is a (d+1)-approximation.  The scheduler runs on
:class:`repro.engine.kernel.EventKernel` with every task a unit-duration
start: at each step it starts as many ready tasks as capacities allow
(tasks are ready when their intra-job predecessors, and all tasks of the
job's outer-DAG predecessors, have completed).  Priorities follow the
outer topological order (any order preserves the bound) — readiness
bookkeeping stays here, while virtual time, the completion heap and the
resource vectors live in the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from repro.engine.kernel import EventKernel
from repro.malleable.model import MalleableInstance
from repro.registry import register_scheduler

__all__ = ["MalleableSchedule", "MalleableResult", "malleable_list_schedule"]

JobId = Hashable
TaskId = Hashable


@dataclass
class MalleableSchedule:
    """Result of the malleable scheduler: per-task start steps."""

    instance: MalleableInstance
    task_start: dict[tuple[JobId, TaskId], int] = field(default_factory=dict)

    @property
    def makespan(self) -> int:
        if not self.task_start:
            return 0
        return max(self.task_start.values()) + 1  # unit tasks

    def validate(self) -> None:
        """Capacity per step + both levels of precedence."""
        inst = self.instance
        usage: dict[int, list[int]] = {}
        for (j, t), s in self.task_start.items():
            u = usage.setdefault(s, [0] * inst.d)
            u[inst.jobs[j].rtype[t]] += 1
        for s, u in usage.items():
            for r in range(inst.d):
                if u[r] > inst.pool.capacities[r]:
                    raise ValueError(f"capacity violated at step {s}, type {r}")
        for j, job in inst.jobs.items():
            for u, v in job.tasks.edges():
                if self.task_start[(j, v)] < self.task_start[(j, u)] + 1:
                    raise ValueError(f"intra-job precedence violated in {j!r}")
        for a, b in inst.dag.edges():
            end_a = max(self.task_start[(a, t)] for t in inst.jobs[a].tasks.nodes()) + 1
            start_b = min(self.task_start[(b, t)] for t in inst.jobs[b].tasks.nodes())
            if start_b < end_a:
                raise ValueError(f"outer precedence violated: {a!r} -> {b!r}")
        expected = {(j, t) for j, job in inst.jobs.items() for t in job.tasks.nodes()}
        if set(self.task_start) != expected:
            raise ValueError("schedule must place exactly the instance's tasks")


@dataclass(frozen=True)
class MalleableResult:
    """Registry-protocol wrapper around a :class:`MalleableSchedule`."""

    name: str
    schedule: MalleableSchedule
    allocation: None = None

    @property
    def makespan(self) -> int:
        return self.schedule.makespan


def malleable_list_schedule(instance: MalleableInstance) -> MalleableSchedule:
    """Greedy unit-step list scheduling ((d+1)-approximation, [21])."""
    inst = instance
    d = inst.d
    # outer-DAG gating: a job's tasks become available once all predecessors'
    # tasks completed
    outer_remaining = {j: inst.dag.in_degree(j) for j in inst.jobs}
    job_tasks_left = {j: inst.jobs[j].n_tasks for j in inst.jobs}
    open_jobs = [j for j in inst.dag.topological_order() if outer_remaining[j] == 0]

    # per-job intra readiness
    intra_remaining = {
        j: {t: inst.jobs[j].tasks.in_degree(t) for t in inst.jobs[j].tasks.nodes()}
        for j in inst.jobs
    }
    ready: list[tuple[JobId, TaskId]] = [
        (j, t)
        for j in open_jobs
        for t, k in intra_remaining[j].items()
        if k == 0
    ]
    task_start: dict[tuple[JobId, TaskId], int] = {}
    unit_rows = np.eye(d, dtype=np.int64)  # one unit of a single type
    kernel = EventKernel(inst.pool.capacities)
    # jobs whose outer predecessors completed mid-batch; their ready tasks
    # enter the queue only after the batch, preserving the historical
    # "completions release successors at the end of the step" order
    newly_open: list[JobId] = []

    def dispatch(k: EventKernel) -> None:
        for j in newly_open:
            for t, left in intra_remaining[j].items():
                if left == 0:
                    ready.append((j, t))
        newly_open.clear()
        if not ready:
            return
        avail = k.available
        leftover: list[tuple[JobId, TaskId]] = []
        for j, t in ready:
            r = inst.jobs[j].rtype[t]
            if avail[r] > 0:
                k.start((j, t), unit_rows[r], 1.0)
                task_start[(j, t)] = int(round(k.now))
            else:
                leftover.append((j, t))
        ready[:] = leftover

    def handle(k: EventKernel, kind: str, payload) -> None:
        j, t = payload
        k.release(unit_rows[inst.jobs[j].rtype[t]])
        job_tasks_left[j] -= 1
        for s in inst.jobs[j].tasks.successors(t):
            intra_remaining[j][s] -= 1
            if intra_remaining[j][s] == 0:
                ready.append((j, s))
        if job_tasks_left[j] == 0:
            for nxt in inst.dag.successors(j):
                outer_remaining[nxt] -= 1
                if outer_remaining[nxt] == 0:
                    newly_open.append(nxt)

    kernel.run(dispatch, handle)

    total = sum(inst.jobs[j].n_tasks for j in inst.jobs)
    if len(task_start) != total:  # pragma: no cover - a DAG always progresses
        raise RuntimeError("malleable scheduler stalled")
    return MalleableSchedule(instance=inst, task_start=task_start)


@register_scheduler(
    "malleable",
    kind="malleable",
    description="He et al.'s (d+1)-approximation on the malleable relaxation",
)
def malleable_scheduler(instance, **opts) -> MalleableResult:
    """Registry entry point: accepts a :class:`MalleableInstance` directly,
    or relaxes a moldable :class:`~repro.instance.instance.Instance` via
    :func:`~repro.malleable.model.moldable_to_malleable` first."""
    from repro.instance.instance import Instance
    from repro.malleable.model import moldable_to_malleable

    if isinstance(instance, Instance):
        if instance.has_releases:
            raise ValueError(
                "the malleable relaxation drops release times; use an "
                "event-driven moldable scheduler for online-arrival scenarios"
            )
        instance = moldable_to_malleable(instance, **opts)
    sched = malleable_list_schedule(instance)
    return MalleableResult(name="malleable", schedule=sched)
