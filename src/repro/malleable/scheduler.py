"""Time-stepped greedy list scheduling for the malleable model.

He et al. [21] prove that greedy list scheduling of unit-task DAGs on
``d`` resource types is a (d+1)-approximation.  The scheduler below runs in
unit time steps: at each step it starts as many ready tasks as capacities
allow (tasks are ready when their intra-job predecessors, and all tasks of
the job's outer-DAG predecessors, have completed).  Priorities follow the
outer topological order (any order preserves the bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.malleable.model import MalleableInstance

__all__ = ["MalleableSchedule", "malleable_list_schedule"]

JobId = Hashable
TaskId = Hashable


@dataclass
class MalleableSchedule:
    """Result of the malleable scheduler: per-task start steps."""

    instance: MalleableInstance
    task_start: dict[tuple[JobId, TaskId], int] = field(default_factory=dict)

    @property
    def makespan(self) -> int:
        if not self.task_start:
            return 0
        return max(self.task_start.values()) + 1  # unit tasks

    def validate(self) -> None:
        """Capacity per step + both levels of precedence."""
        inst = self.instance
        usage: dict[int, list[int]] = {}
        for (j, t), s in self.task_start.items():
            u = usage.setdefault(s, [0] * inst.d)
            u[inst.jobs[j].rtype[t]] += 1
        for s, u in usage.items():
            for r in range(inst.d):
                if u[r] > inst.pool.capacities[r]:
                    raise ValueError(f"capacity violated at step {s}, type {r}")
        for j, job in inst.jobs.items():
            for u, v in job.tasks.edges():
                if self.task_start[(j, v)] < self.task_start[(j, u)] + 1:
                    raise ValueError(f"intra-job precedence violated in {j!r}")
        for a, b in inst.dag.edges():
            end_a = max(self.task_start[(a, t)] for t in inst.jobs[a].tasks.nodes()) + 1
            start_b = min(self.task_start[(b, t)] for t in inst.jobs[b].tasks.nodes())
            if start_b < end_a:
                raise ValueError(f"outer precedence violated: {a!r} -> {b!r}")
        expected = {(j, t) for j, job in inst.jobs.items() for t in job.tasks.nodes()}
        if set(self.task_start) != expected:
            raise ValueError("schedule must place exactly the instance's tasks")


def malleable_list_schedule(instance: MalleableInstance) -> MalleableSchedule:
    """Greedy unit-step list scheduling ((d+1)-approximation, [21])."""
    inst = instance
    # outer-DAG gating: a job's tasks become available once all predecessors'
    # tasks completed
    outer_remaining = {j: inst.dag.in_degree(j) for j in inst.jobs}
    job_tasks_left = {j: inst.jobs[j].n_tasks for j in inst.jobs}
    open_jobs = [j for j in inst.dag.topological_order() if outer_remaining[j] == 0]

    # per-job intra readiness
    intra_remaining = {
        j: {t: inst.jobs[j].tasks.in_degree(t) for t in inst.jobs[j].tasks.nodes()}
        for j in inst.jobs
    }
    ready: list[tuple[JobId, TaskId]] = [
        (j, t)
        for j in open_jobs
        for t, k in intra_remaining[j].items()
        if k == 0
    ]
    task_start: dict[tuple[JobId, TaskId], int] = {}
    step = 0
    total = sum(job_tasks_left.values())

    while len(task_start) < total:
        if not ready:  # pragma: no cover - a DAG always has ready tasks left
            raise RuntimeError("malleable scheduler stalled")
        avail = list(inst.pool.capacities)
        started: list[tuple[JobId, TaskId]] = []
        leftover: list[tuple[JobId, TaskId]] = []
        for j, t in ready:
            r = inst.jobs[j].rtype[t]
            if avail[r] > 0:
                avail[r] -= 1
                task_start[(j, t)] = step
                started.append((j, t))
            else:
                leftover.append((j, t))
        ready = leftover
        # completions at end of this step release successors
        newly_open: list[JobId] = []
        for j, t in started:
            job_tasks_left[j] -= 1
            for s in inst.jobs[j].tasks.successors(t):
                intra_remaining[j][s] -= 1
                if intra_remaining[j][s] == 0:
                    ready.append((j, s))
            if job_tasks_left[j] == 0:
                for nxt in inst.dag.successors(j):
                    outer_remaining[nxt] -= 1
                    if outer_remaining[nxt] == 0:
                        newly_open.append(nxt)
        for j in newly_open:
            for t, k in intra_remaining[j].items():
                if k == 0:
                    ready.append((j, t))
        step += 1

    return MalleableSchedule(instance=inst, task_start=task_start)
