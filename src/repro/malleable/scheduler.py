"""Greedy list scheduling for the malleable model, on the shared kernel.

He et al. [21] prove that greedy list scheduling of unit-task DAGs on
``d`` resource types is a (d+1)-approximation.  The scheduler runs on
:class:`repro.engine.kernel.EventKernel` with every task a unit-duration
start: at each step it starts as many ready tasks as capacities allow
(tasks are ready when their intra-job predecessors, and all tasks of the
job's outer-DAG predecessors, have completed).  Priorities follow the
outer topological order (any order preserves the bound) — readiness
bookkeeping stays here, while virtual time, the completion heap and the
resource vectors live in the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from repro.engine.kernel import EventKernel
from repro.malleable.model import MalleableInstance
from repro.registry import register_scheduler

__all__ = ["MalleableSchedule", "MalleableResult", "malleable_list_schedule"]

JobId = Hashable
TaskId = Hashable


@dataclass
class MalleableSchedule:
    """Result of the malleable scheduler: per-task start steps."""

    instance: MalleableInstance
    task_start: dict[tuple[JobId, TaskId], int] = field(default_factory=dict)

    @property
    def makespan(self) -> int:
        if not self.task_start:
            return 0
        return max(self.task_start.values()) + 1  # unit tasks

    def validate(self) -> None:
        """Capacity per step + both levels of precedence."""
        inst = self.instance
        usage: dict[int, list[int]] = {}
        for (j, t), s in self.task_start.items():
            u = usage.setdefault(s, [0] * inst.d)
            u[inst.jobs[j].rtype[t]] += 1
        for s, u in usage.items():
            for r in range(inst.d):
                if u[r] > inst.pool.capacities[r]:
                    raise ValueError(f"capacity violated at step {s}, type {r}")
        for j, job in inst.jobs.items():
            for u, v in job.tasks.edges():
                if self.task_start[(j, v)] < self.task_start[(j, u)] + 1:
                    raise ValueError(f"intra-job precedence violated in {j!r}")
        for a, b in inst.dag.edges():
            end_a = max(self.task_start[(a, t)] for t in inst.jobs[a].tasks.nodes()) + 1
            start_b = min(self.task_start[(b, t)] for t in inst.jobs[b].tasks.nodes())
            if start_b < end_a:
                raise ValueError(f"outer precedence violated: {a!r} -> {b!r}")
        expected = {(j, t) for j, job in inst.jobs.items() for t in job.tasks.nodes()}
        if set(self.task_start) != expected:
            raise ValueError("schedule must place exactly the instance's tasks")


@dataclass(frozen=True)
class MalleableResult:
    """Registry-protocol wrapper around a :class:`MalleableSchedule`."""

    name: str
    schedule: MalleableSchedule
    allocation: None = None

    @property
    def makespan(self) -> int:
        return self.schedule.makespan


def malleable_list_schedule(instance: MalleableInstance) -> MalleableSchedule:
    """Greedy unit-step list scheduling ((d+1)-approximation, [21]).

    Readiness bookkeeping runs on the compiled (array) form: the outer DAG
    is lowered once via :func:`~repro.instance.compiled.compile_dag` and
    each job's intra-task DAG into index lists, so the per-step work is
    list/int operations instead of nested dict lookups.  Queue orders are
    identical to the dict-based original (outer jobs open in topological
    order, tasks enter in ``tasks.nodes()`` order).
    """
    from repro.instance.compiled import compile_dag

    inst = instance
    d = inst.d
    # outer-DAG gating, on the compiled lowering: a job's tasks become
    # available once all predecessors' tasks completed
    outer = compile_dag(inst.dag)
    outer_order = outer.order
    outer_index = outer.index
    outer_succ = outer.succ_lists()
    outer_remaining = outer.in_degree.tolist()
    job_tasks_left = [inst.jobs[j].n_tasks for j in outer_order]
    open_jobs = [j for oi, j in enumerate(outer_order) if outer_remaining[oi] == 0]

    # per-job intra readiness as index lists over tasks.nodes() order
    task_nodes: dict[JobId, list[TaskId]] = {}
    task_index: dict[JobId, dict[TaskId, int]] = {}
    intra_remaining: dict[JobId, list[int]] = {}
    intra_succ: dict[JobId, list[list[int]]] = {}
    rtype_of: dict[JobId, list[int]] = {}
    for j, job in inst.jobs.items():
        nodes = list(job.tasks.nodes())
        idx = {t: k for k, t in enumerate(nodes)}
        task_nodes[j] = nodes
        task_index[j] = idx
        intra_remaining[j] = [job.tasks.in_degree(t) for t in nodes]
        intra_succ[j] = [[idx[s] for s in job.tasks.successors(t)] for t in nodes]
        rtype_of[j] = [job.rtype[t] for t in nodes]

    ready: list[tuple[JobId, TaskId]] = [
        (j, t)
        for j in open_jobs
        for k, t in enumerate(task_nodes[j])
        if intra_remaining[j][k] == 0
    ]
    task_start: dict[tuple[JobId, TaskId], int] = {}
    unit_rows = np.eye(d, dtype=np.int64)  # one unit of a single type
    kernel = EventKernel(inst.pool.capacities)
    # jobs whose outer predecessors completed mid-batch; their ready tasks
    # enter the queue only after the batch, preserving the historical
    # "completions release successors at the end of the step" order
    newly_open: list[JobId] = []

    def dispatch(k: EventKernel) -> None:
        for j in newly_open:
            left = intra_remaining[j]
            for ti, t in enumerate(task_nodes[j]):
                if left[ti] == 0:
                    ready.append((j, t))
        newly_open.clear()
        if not ready:
            return
        avail = k.available
        leftover: list[tuple[JobId, TaskId]] = []
        for j, t in ready:
            r = rtype_of[j][task_index[j][t]]
            if avail[r] > 0:
                k.start((j, t), unit_rows[r], 1.0)
                task_start[(j, t)] = int(round(k.now))
            else:
                leftover.append((j, t))
        ready[:] = leftover

    def handle(k: EventKernel, kind: str, payload) -> None:
        j, t = payload
        ti = task_index[j][t]
        k.release(unit_rows[rtype_of[j][ti]])
        oi = outer_index[j]
        job_tasks_left[oi] -= 1
        left = intra_remaining[j]
        nodes = task_nodes[j]
        for si in intra_succ[j][ti]:
            left[si] -= 1
            if left[si] == 0:
                ready.append((j, nodes[si]))
        if job_tasks_left[oi] == 0:
            for ni in outer_succ[oi]:
                outer_remaining[ni] -= 1
                if outer_remaining[ni] == 0:
                    newly_open.append(outer_order[ni])

    kernel.run(dispatch, handle)

    total = sum(inst.jobs[j].n_tasks for j in inst.jobs)
    if len(task_start) != total:  # pragma: no cover - a DAG always progresses
        raise RuntimeError("malleable scheduler stalled")
    return MalleableSchedule(instance=inst, task_start=task_start)


@register_scheduler(
    "malleable",
    kind="malleable",
    description="He et al.'s (d+1)-approximation on the malleable relaxation",
)
def malleable_scheduler(instance, **opts) -> MalleableResult:
    """Registry entry point: accepts a :class:`MalleableInstance` directly,
    or relaxes a moldable :class:`~repro.instance.instance.Instance` via
    :func:`~repro.malleable.model.moldable_to_malleable` first."""
    from repro.instance.instance import Instance
    from repro.malleable.model import moldable_to_malleable

    if isinstance(instance, Instance):
        if instance.has_releases:
            raise ValueError(
                "the malleable relaxation drops release times; use an "
                "event-driven moldable scheduler for online-arrival scenarios"
            )
        instance = moldable_to_malleable(instance, **opts)
    sched = malleable_list_schedule(instance)
    return MalleableResult(name="malleable", schedule=sched)
