"""The malleable task-DAG model (He et al. [21]).

A :class:`MalleableJob` is a DAG of unit-duration tasks; task ``t`` carries
``rtype(t)`` — the single resource type it needs one unit of.  Jobs
themselves are precedence-constrained in an outer DAG (as in the paper's
model); the scheduler may run any number of a job's ready tasks at each
time step, subject to the per-type capacities — allocations effectively
change every step, which is exactly malleability.

:func:`moldable_to_malleable` relaxes a moldable instance into this model
for comparison: each moldable job becomes a bag of unit tasks, one bag per
resource type it uses, sized ``⌈w_i⌉`` (its type-``i`` work under the
balanced candidate).  Work and precedence are preserved; the moldable
model's "fixed allocation for the whole run" restriction is dropped.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable

from repro.dag.graph import DAG
from repro.instance.instance import Instance
from repro.resources.pool import ResourcePool

__all__ = ["MalleableJob", "MalleableInstance", "moldable_to_malleable"]

JobId = Hashable
TaskId = Hashable


@dataclass
class MalleableJob:
    """One malleable job: a DAG of unit tasks labelled with resource types."""

    id: JobId
    tasks: DAG
    rtype: dict[TaskId, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.tasks.validate()
        missing = [t for t in self.tasks.nodes() if t not in self.rtype]
        if missing:
            raise ValueError(f"job {self.id!r}: tasks without resource type: {missing[:5]}")

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    def work_per_type(self, d: int) -> list[int]:
        """Unit-task count per resource type."""
        out = [0] * d
        for t in self.tasks.nodes():
            out[self.rtype[t]] += 1
        return out


@dataclass
class MalleableInstance:
    """Malleable jobs under an outer precedence DAG on a d-type pool."""

    jobs: dict[JobId, MalleableJob]
    dag: DAG
    pool: ResourcePool

    def __post_init__(self) -> None:
        if set(self.dag.nodes()) != set(self.jobs):
            raise ValueError("outer DAG nodes must match job ids")
        self.dag.validate()
        for job in self.jobs.values():
            for t, r in job.rtype.items():
                if not 0 <= r < self.pool.d:
                    raise ValueError(f"task {t!r} of job {job.id!r} uses invalid type {r}")

    @property
    def d(self) -> int:
        return self.pool.d

    def total_work_per_type(self) -> list[int]:
        out = [0] * self.d
        for job in self.jobs.values():
            for i, w in enumerate(job.work_per_type(self.d)):
                out[i] += w
        return out

    def lower_bound(self) -> float:
        """max(area bound, task critical path through the outer DAG)."""
        area = max(
            w / p for w, p in zip(self.total_work_per_type(), self.pool.capacities)
        )
        # per-job internal critical path (unit tasks)
        from repro.dag.paths import critical_path_length

        job_cp = {
            j: critical_path_length(job.tasks, {t: 1.0 for t in job.tasks.nodes()})
            for j, job in self.jobs.items()
        }
        outer_cp = critical_path_length(self.dag, job_cp)
        return max(area, outer_cp)


def moldable_to_malleable(instance: Instance, *, max_tasks_per_job: int = 10_000) -> MalleableInstance:
    """Relax a moldable instance into the malleable task model.

    Uses each job's balanced (knee) candidate to size the per-type work,
    rounding up to integral unit tasks.  Tasks of one job are arranged as
    ``height`` layers of parallel tasks where ``height = ⌈t_j⌉`` under the
    balanced candidate — preserving both the job's work and (approximately)
    its minimum execution time, so neither model gets a free lunch on the
    critical path.
    """
    table = instance.candidate_table()
    jobs: dict[JobId, MalleableJob] = {}
    for j in instance.jobs:
        entries = table[j]
        knee = min(entries, key=lambda e: e.time * e.area)
        height = max(1, math.ceil(knee.time))
        tasks = DAG()
        rtype: dict[TaskId, int] = {}
        count = 0
        for i in range(instance.d):
            work = knee.alloc[i] * knee.time
            n_units = math.ceil(work)
            if n_units == 0:
                continue
            # split the type's units into `height` layers chained in series,
            # spreading units as evenly as possible
            base, extra = divmod(n_units, height)
            prev_layer: list[TaskId] = []
            for layer in range(height):
                width = base + (1 if layer < extra else 0)
                cur_layer: list[TaskId] = []
                for k in range(width):
                    t = (i, layer, k)
                    tasks.add_node(t)
                    rtype[t] = i
                    cur_layer.append(t)
                    count += 1
                    if count > max_tasks_per_job:
                        raise ValueError(
                            f"job {j!r} unrolls to > {max_tasks_per_job} tasks; "
                            "scale the workload down"
                        )
                for u in prev_layer:
                    for v in cur_layer:
                        tasks.add_edge(u, v)
                if cur_layer:
                    prev_layer = cur_layer
        if len(tasks) == 0:  # pragma: no cover - knee always has positive work
            t = (0, 0, 0)
            tasks.add_node(t)
            rtype[t] = 0
        jobs[j] = MalleableJob(id=j, tasks=tasks, rtype=rtype)
    return MalleableInstance(jobs=jobs, dag=instance.dag.copy(), pool=instance.pool)
