"""The malleable job model of He et al. [21, 20] (related-work comparison).

The paper positions moldable scheduling between two related models:

* **rigid** jobs (Garey-Graham [16]): fixed allocations — representable here
  by pinning a single candidate per job;
* **malleable** jobs (He et al. [21]): each job is a DAG of *unit-size
  tasks*, each requesting one unit of a single resource type, and the
  amount of resource a job uses may change at every time step.  List
  scheduling achieves (d+1)-approximation in that model.

This subpackage implements the malleable model faithfully (task-level
DAGs, greedy time-stepped list scheduling, the (d+1) bound) and provides a
*moldable → malleable relaxation* so the two schedulers can be compared on
the same workloads: each moldable job unrolls into ``⌈work⌉`` unit tasks
per resource type it uses, preserving total work and precedence while
discarding the moldable model's allocation rigidity.  The relaxation's
makespan is therefore an (often optimistic) reference point — malleability
is strictly more powerful — quantifying what the moldable restriction
costs (see ``bench_malleable.py``).
"""

from repro.malleable.model import MalleableJob, MalleableInstance, moldable_to_malleable
from repro.malleable.scheduler import malleable_list_schedule, MalleableSchedule

__all__ = [
    "MalleableJob",
    "MalleableInstance",
    "moldable_to_malleable",
    "malleable_list_schedule",
    "MalleableSchedule",
]
