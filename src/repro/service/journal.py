"""Write-ahead request journal: crash recovery = snapshot + replay.

The durable service wraps its :class:`~repro.service.session.SchedulingSession`
in a :class:`JournaledSession`.  Every mutating verb (``submit`` /
``cancel`` / ``advance`` / ``drain`` / ``prune``) is applied in memory
and then appended to an on-disk journal — flushed and fsynced — *before*
the call returns, so an acknowledged operation is always recoverable:

    recovered state = latest snapshot + replay of the journal suffix.

Each record carries a monotonic sequence id (``seq``) and the session
RNG cursor after the operation; snapshots store the ``applied_seq`` they
contain, so replay skips records the snapshot already covers
(deduplication) and fails loudly on a gap.  An operation that died
before its journal append was never acknowledged; the client re-submits
and, if the record *did* land (crash between append and ack), the
duplicate-id rejection tells it the work is already admitted —
**at-least-once admission**, deduplicated by job id.

Journal format (``repro-journal/1``): JSON lines — one header
``{"format": "repro-journal/1", "base_seq": N}`` then one object per
record ``{"seq": N, "op": ..., ..., "rng": {...}}``.  A torn tail (the
final line lacking its newline — a crash mid-append) is dropped on scan
and truncated away before new appends; any other malformed line is
corruption and fails recovery loudly.  After every durable snapshot
(:meth:`JournaledSession.checkpoint`, or automatically every
``checkpoint_every`` records) the journal *rotates*: it is atomically
replaced by a fresh header, so its length is bounded by the checkpoint
interval.

Fault injection: pass a :class:`~repro.service.chaos.ChaosInjector` and
every verb runs through the ``op-begin`` / ``op-applied`` /
``op-journaled`` / ``mid-drain`` / ``checkpoint-temp`` /
``journal-torn`` crash points (see :mod:`repro.service.chaos`).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Iterable, Mapping, Sequence

from repro.service.checkpoint import load_session, save_session
from repro.service.chaos import ChaosInjector
from repro.service.session import JobSpec, SchedulingSession
from repro.util.atomic import atomic_write_text

__all__ = ["JOURNAL_FORMAT", "Journal", "JournaledSession", "scan_journal"]

#: Journal file format tag (bump on schema change).
JOURNAL_FORMAT = "repro-journal/1"

_COMPACT = {"separators": (",", ":")}


def scan_journal(path: str) -> tuple["dict[str, Any] | None", list[dict[str, Any]], int]:
    """Read a journal: ``(header, records, valid_bytes)``.

    ``valid_bytes`` is the length of the well-formed prefix — a torn
    final line (no trailing newline: a crash mid-append, before the
    fsync that precedes every acknowledgment) is excluded, so callers
    can truncate to it before appending.  Anything malformed *before*
    the tail is real corruption and raises ``ValueError``.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    header: "dict[str, Any] | None" = None
    records: list[dict[str, Any]] = []
    valid = 0
    last_seq = 0
    pos = 0
    size = len(data)
    while pos < size:
        nl = data.find(b"\n", pos)
        if nl < 0:
            break  # torn tail: written but never newline-terminated, never acked
        raw = data[pos:nl]
        line_no = len(records) + (1 if header is not None else 0) + 1
        try:
            rec = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ValueError(
                f"corrupt journal {path!r}: line {line_no} is not JSON ({exc})"
            ) from None
        if not isinstance(rec, dict):
            raise ValueError(
                f"corrupt journal {path!r}: line {line_no} is not an object"
            )
        if header is None:
            if rec.get("format") != JOURNAL_FORMAT:
                raise ValueError(
                    f"journal {path!r} has unsupported format "
                    f"{rec.get('format')!r} (expected {JOURNAL_FORMAT!r})"
                )
            header = rec
            last_seq = int(rec.get("base_seq", 0))
        else:
            seq = rec.get("seq")
            if not isinstance(seq, int) or isinstance(seq, bool):
                raise ValueError(
                    f"corrupt journal {path!r}: line {line_no} has no integer seq"
                )
            if seq <= last_seq:
                raise ValueError(
                    f"corrupt journal {path!r}: seq {seq} at line {line_no} "
                    f"does not increase (previous {last_seq})"
                )
            last_seq = seq
            records.append(rec)
        pos = nl + 1
        valid = pos
    return header, records, valid


class Journal:
    """Append-only fsynced record log with rotation (see module doc).

    ``fsync=False`` trades durability for speed — the in-process fuzz
    and hypothesis harnesses use it (what they test is replay logic,
    not the disk); the served process keeps the default.
    """

    def __init__(
        self,
        path: str,
        *,
        base_seq: int = 0,
        fsync: bool = True,
        chaos: "ChaosInjector | None" = None,
    ) -> None:
        self.path = os.fspath(path)
        self.base_seq = int(base_seq)
        self.fsync = fsync
        self.chaos = chaos
        self.appended = 0  # records since open/rotate: the auto-checkpoint counter
        self._fh = None
        self._m_appends = None  # bound instruments (None = uninstrumented)
        self._m_append_s = None
        self._m_fsync_s = None
        self._m_rotations = None

    def bind_metrics(self, registry) -> None:
        """Publish append/fsync timings and rotation counts (opt-in; the
        fuzz and hypothesis harnesses run uninstrumented)."""
        self._m_appends = registry.counter(
            "repro_journal_appends_total", "Write-ahead records appended"
        )
        self._m_append_s = registry.histogram(
            "repro_journal_append_seconds",
            "Full journal append latency (serialize + write + flush + fsync)",
        )
        self._m_fsync_s = registry.histogram(
            "repro_journal_fsync_seconds", "fsync portion of each journal append"
        )
        self._m_rotations = registry.counter(
            "repro_journal_rotations_total", "Journal rotations after durable snapshots"
        )

    # ------------------------------------------------------------------
    def _open(self):
        if self._fh is not None:
            return self._fh
        have_header = False
        if os.path.exists(self.path):
            header, _, valid = scan_journal(self.path)
            have_header = header is not None
            if valid < os.path.getsize(self.path):
                # drop the torn tail so the next append starts a clean line
                with open(self.path, "r+b") as fh:
                    fh.truncate(valid)
        self._fh = open(self.path, "a", encoding="utf-8")
        if not have_header:
            self._write(
                json.dumps(
                    {"format": JOURNAL_FORMAT, "base_seq": self.base_seq}, **_COMPACT
                )
                + "\n"
            )
        return self._fh

    def _write(self, text: str) -> None:
        fh = self._fh
        fh.write(text)
        fh.flush()
        if self.fsync:
            if self._m_fsync_s is not None:
                t0 = time.perf_counter()
                os.fsync(fh.fileno())
                self._m_fsync_s.observe(time.perf_counter() - t0)
            else:
                os.fsync(fh.fileno())

    def append(self, record: Mapping[str, Any]) -> None:
        """Durably append one record; returns only once it would survive
        a crash (write + flush + fsync) — the acknowledgment barrier."""
        t0 = time.perf_counter() if self._m_append_s is not None else 0.0
        fh = self._open()
        line = json.dumps(record, **_COMPACT) + "\n"
        chaos = self.chaos
        if chaos is not None:
            chaos.maybe_delay("flush-delay")
            if chaos.fires("journal-torn"):
                # a torn append: only a byte prefix reaches the file
                fh.write(line[: max(1, len(line) // 2)])
                fh.flush()
                chaos.crash("journal-torn")
        self._write(line)
        self.appended += 1
        if self._m_append_s is not None:
            self._m_append_s.observe(time.perf_counter() - t0)
            self._m_appends.inc()

    def rotate(self, base_seq: int) -> None:
        """Atomically reset to a fresh header after a durable snapshot at
        ``base_seq`` — every dropped record has ``seq <= base_seq`` and
        would be deduplicated on replay anyway."""
        self.close()
        self.base_seq = int(base_seq)
        atomic_write_text(
            self.path,
            json.dumps({"format": JOURNAL_FORMAT, "base_seq": self.base_seq}, **_COMPACT)
            + "\n",
            fsync=self.fsync,
        )
        self.appended = 0
        if self._m_rotations is not None:
            self._m_rotations.inc()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def _apply_record(session: SchedulingSession, rec: Mapping[str, Any]) -> None:
    """Replay one journal record against ``session`` (events are not
    materialized — replay is state reconstruction, not serving)."""
    op = rec.get("op")
    try:
        if op == "submit":
            session.submit([JobSpec.from_dict(r) for r in rec["jobs"]])
        elif op == "cancel":
            session.cancel(rec["id"])
        elif op == "advance":
            session.advance(float(rec["until"]), events=False)
        elif op == "drain":
            session.drain()
        elif op == "prune":
            session.prune_events()
        else:
            raise ValueError(f"unknown journal op {op!r}")
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(
            f"journal record seq {rec.get('seq')} failed to replay: {exc!r}"
        ) from exc


class JournaledSession:
    """A :class:`SchedulingSession` with write-ahead durability.

    Wraps the mutating verbs; reads go straight to :attr:`session`.
    ``checkpoint_every`` snapshots (and rotates the journal) after that
    many journaled records; :meth:`checkpoint` does it on demand.
    """

    def __init__(
        self,
        session: SchedulingSession,
        journal_path: str,
        snapshot_path: str,
        *,
        checkpoint_every: "int | None" = None,
        fsync: bool = True,
        chaos: "ChaosInjector | None" = None,
    ) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        self.session = session
        self.snapshot_path = os.fspath(snapshot_path)
        self.checkpoint_every = checkpoint_every
        self.fsync = fsync
        self.chaos = chaos
        self.journal = Journal(
            journal_path, base_seq=session.applied_seq, fsync=fsync, chaos=chaos
        )
        # recovery stats (filled by :meth:`recover`)
        self.recovered = False
        self.replayed = 0
        self.deduped = 0
        self._spans = None  # bound span log (None = untraced)
        self._span_rid = None  # callable giving the in-flight request's rid

    def bind_observability(self, registry, spans=None, rid_provider=None) -> None:
        """Wire metrics (and optionally a span log) through the durable
        layer: journal append/fsync instruments, recovery replay/dedup
        gauges, and a ``journal-commit`` span per acknowledged record
        (keyed by ``rid_provider()`` — the front-end supplies the rid of
        the request being served — falling back to the record's seq)."""
        self.journal.bind_metrics(registry)
        registry.gauge(
            "repro_journal_replayed_records",
            "Journal records replayed by the last recovery",
        ).set(self.replayed)
        registry.gauge(
            "repro_journal_deduped_records",
            "Journal records the last recovery's snapshot already covered",
        ).set(self.deduped)
        self._spans = spans
        self._span_rid = rid_provider

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        journal_path: str,
        snapshot_path: str,
        *,
        capacities: "Sequence[int] | None" = None,
        checkpoint_every: "int | None" = None,
        fsync: bool = True,
        chaos: "ChaosInjector | None" = None,
        checkpoint: bool = True,
        session_kwargs: "Mapping[str, Any] | None" = None,
    ) -> "JournaledSession":
        """Restore the latest snapshot and replay the journal suffix.

        Records with ``seq <= snapshot.applied_seq`` are skipped
        (dedup); the suffix must then continue contiguously — a gap
        means the snapshot/journal pair diverged and recovery fails
        loudly rather than resuming silently wrong.  With neither file
        present a fresh session is built from ``capacities``.  Unless
        ``checkpoint=False`` (timing harnesses), recovery ends with a
        fresh snapshot + journal rotation so repeated crashes never
        replay an ever-growing suffix.
        """
        if os.path.exists(snapshot_path):
            session = load_session(snapshot_path)
            recovered = True
        else:
            if capacities is None:
                raise ValueError(
                    "no snapshot to recover from and no capacities for a fresh session"
                )
            session = SchedulingSession(capacities, **dict(session_kwargs or {}))
            recovered = False
        replayed = deduped = 0
        if os.path.exists(journal_path):
            _, records, _ = scan_journal(journal_path)
            last_rng = None
            for rec in records:
                seq = rec["seq"]
                if seq <= session.applied_seq:
                    deduped += 1
                    continue
                if seq != session.applied_seq + 1:
                    raise ValueError(
                        f"journal gap: record seq {seq} cannot follow "
                        f"applied_seq {session.applied_seq} — snapshot and "
                        "journal are from different lineages"
                    )
                _apply_record(session, rec)
                session.applied_seq = seq
                last_rng = rec.get("rng")
                replayed += 1
            if last_rng is not None:
                # the client's RNG cursor as of the last acknowledged op
                session.rng.bit_generator.state = last_rng
        js = cls(
            session,
            journal_path,
            snapshot_path,
            checkpoint_every=checkpoint_every,
            fsync=fsync,
            chaos=chaos,
        )
        js.recovered, js.replayed, js.deduped = recovered, replayed, deduped
        if checkpoint:
            js.checkpoint()
        return js

    # ------------------------------------------------------------------
    # durability plumbing
    # ------------------------------------------------------------------
    def _point(self, point: str) -> None:
        if self.chaos is not None:
            self.chaos.maybe_crash(point)

    def _commit(self, op: str, payload: Mapping[str, Any]) -> None:
        session = self.session
        session.applied_seq += 1
        rec: dict[str, Any] = {"seq": session.applied_seq, "op": op}
        rec.update(payload)
        rec["rng"] = session.rng.bit_generator.state
        spans = self._spans
        if spans is not None:
            rid = self._span_rid() if self._span_rid is not None else None
            t0 = spans.now()
            self.journal.append(rec)
            spans.record(op, "journal-commit", t0, spans.now() - t0,
                         rid=rid if rid is not None else session.applied_seq)
        else:
            self.journal.append(rec)
        if (
            self.checkpoint_every is not None
            and self.journal.appended >= self.checkpoint_every
        ):
            self.checkpoint()

    def checkpoint(self) -> None:
        """Atomically snapshot the session and rotate the journal."""
        before = None
        if self.chaos is not None:
            chaos = self.chaos

            def before(tmp: str) -> None:
                chaos.maybe_crash("checkpoint-temp")

        save_session(
            self.session,
            self.snapshot_path,
            indent=None,
            fsync=self.fsync,
            before_replace=before,
        )
        self.journal.rotate(self.session.applied_seq)

    def adopt(self, session: SchedulingSession) -> None:
        """Adopt a replacement session (the ``restore`` op): snapshot it
        and rotate the journal so durability tracks the new lineage."""
        self.session = session
        self.checkpoint()

    def close(self) -> None:
        self.journal.close()

    # ------------------------------------------------------------------
    # the journaled verbs
    # ------------------------------------------------------------------
    def submit(self, jobs: "Iterable[JobSpec | Mapping[str, Any]]"):
        specs = [
            s if isinstance(s, JobSpec) else JobSpec.from_dict(s) for s in jobs
        ]
        self._point("op-begin")
        ids = self.session.submit(specs)
        self.record_submit(specs)
        return ids

    def record_submit(self, specs: Sequence[JobSpec]) -> None:
        """Journal an admission batch that was already applied (the
        front-end applies per-spec under fair sharing, then journals the
        successfully admitted batch once, in admission order)."""
        self._point("op-applied")
        self._commit("submit", {"jobs": [s.to_dict() for s in specs]})
        self._point("op-journaled")

    def cancel(self, job_id):
        self._point("op-begin")
        gone = self.session.cancel(job_id)
        self._point("op-applied")
        self._commit("cancel", {"id": job_id})
        self._point("op-journaled")
        return gone

    def advance(self, until: float, *, events: bool = True):
        self._point("op-begin")
        out = self.session.advance(until, events=events)
        self._point("op-applied")
        self._commit("advance", {"until": float(until)})
        self._point("op-journaled")
        return out

    def drain(self) -> None:
        self._point("op-begin")
        chaos = self.chaos
        if chaos is not None and chaos.fires("mid-drain"):
            # crash with the drain half done: some events processed in
            # memory, nothing journaled — recovery replays to the last
            # acknowledged op and the client's drain retry finishes it
            nxt = self.session.loop.next_time
            if nxt is not None:
                self.session.advance(max(nxt, self.session.now), events=False)
            chaos.crash("mid-drain")
        self.session.drain()
        self._point("op-applied")
        self._commit("drain", {})
        self._point("op-journaled")

    def prune_events(self) -> int:
        self._point("op-begin")
        dropped = self.session.prune_events()
        self._point("op-applied")
        self._commit("prune", {})
        self._point("op-journaled")
        return dropped
