"""Child-process supervision with bounded exponential backoff.

``repro serve --supervise`` does not serve directly: it spawns the real
worker (the same command line minus the supervision flags) as a child
process and restarts it whenever it dies abnormally — SIGKILL, an
injected chaos crash, an OOM kill — with exponential backoff between
attempts (``base`` doubling up to ``cap``).  The worker recovers its
state from the durable snapshot + journal on every start, so the
restart is *replay*, not best-effort.  A child that exits 0 (clean
``shutdown``) ends supervision; one that stays up ``healthy_seconds``
resets the backoff and the retry budget, so ``max_restarts`` bounds
*consecutive* failures, not lifetime restarts.

Restart counts are published through the metrics registry
(:mod:`repro.obs`): pass ``registry`` and the supervisor keeps
``repro_supervisor_restarts_total`` / ``repro_supervisor_backoff_seconds``
/ ``repro_supervisor_last_exit_code`` current across the restart loop.
The child's environment still carries ``REPRO_SERVICE_RESTARTS`` (total
restarts so far) — the supervisor and the worker are separate processes,
so the env var is the boot-time seed from which the worker's front-end
fills its own ``repro_restarts`` gauge; ``status`` reads that gauge (the
field stays byte-compatible), together with its ``pid`` — that is how
the CI chaos stage finds the worker to SIGKILL and observes that
supervision brought it back.

Everything is injectable (``spawn``, ``sleep``, ``clock``) so the tests
drive supervision with fake children and a fake clock.
"""

from __future__ import annotations

import os
import subprocess
import time
from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = ["BackoffPolicy", "supervise"]

#: Environment variable carrying the restart count into the worker.
RESTARTS_ENV = "REPRO_SERVICE_RESTARTS"


@dataclass(frozen=True)
class BackoffPolicy:
    """Bounded exponential backoff: ``base`` doubling up to ``cap``,
    giving up after ``max_restarts`` consecutive abnormal exits."""

    base: float = 0.5
    cap: float = 10.0
    max_restarts: int = 5
    healthy_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.base <= 0 or self.cap < self.base:
            raise ValueError(
                f"backoff needs 0 < base <= cap, got base={self.base} cap={self.cap}"
            )
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {self.max_restarts}")


def supervise(
    cmd: Sequence[str],
    *,
    policy: BackoffPolicy = BackoffPolicy(),
    spawn: "Callable[..., subprocess.Popen] | None" = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    on_restart: "Callable[[int, int, float], None] | None" = None,
    registry=None,
) -> int:
    """Run ``cmd`` under supervision; returns the final exit code.

    0 on clean child exit; the child's last abnormal code once
    ``max_restarts`` consecutive failures exhaust the budget; 130 on
    KeyboardInterrupt (the child is terminated first).  ``on_restart``
    is called with ``(restarts, exit_code, delay)`` before each backoff
    sleep.  ``registry`` (a :class:`~repro.obs.MetricsRegistry`)
    publishes the restart loop as metrics.
    """
    spawn_fn = spawn if spawn is not None else subprocess.Popen
    restarts = 0  # lifetime count, exported to the child
    consecutive = 0
    delay = policy.base
    m_restarts = m_backoff = m_exit = None
    if registry is not None:
        m_restarts = registry.counter(
            "repro_supervisor_restarts_total", "Worker restarts after abnormal exits"
        )
        m_backoff = registry.gauge(
            "repro_supervisor_backoff_seconds", "Backoff slept before the last restart"
        )
        m_exit = registry.gauge(
            "repro_supervisor_last_exit_code", "Exit code of the last worker death"
        )
    while True:
        env = dict(os.environ)
        env[RESTARTS_ENV] = str(restarts)
        proc = spawn_fn(list(cmd), env=env)
        started = clock()
        try:
            code = proc.wait()
        except KeyboardInterrupt:
            proc.terminate()
            try:
                proc.wait(timeout=5)
            except Exception:
                proc.kill()
            return 130
        if code == 0:
            return 0
        if clock() - started >= policy.healthy_seconds:
            # the child did real work before dying: fresh budget
            consecutive = 0
            delay = policy.base
        if consecutive >= policy.max_restarts:
            return code
        consecutive += 1
        restarts += 1
        if m_restarts is not None:
            m_restarts.inc()
            m_backoff.set(delay)
            m_exit.set(code)
        if on_restart is not None:
            on_restart(restarts, code, delay)
        sleep(delay)
        delay = min(delay * 2.0, policy.cap)
