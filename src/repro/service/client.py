"""The typed Python client for the `repro serve` wire protocol.

:class:`ServiceClient` wraps the JSON-lines protocol (both wire
versions, v2 by default) behind typed verbs — ``submit``, ``cancel``,
``advance``, ``drain``, ``stats``, … — that **raise** on failure instead
of handing callers ``{"ok": false}`` dicts to pattern-match:

* :class:`ServiceError` — the service answered with a stable error code
  (``exc.code`` ∈ :data:`repro.service.wire.ERROR_CODES`, ``exc.detail``
  carries the diagnostic, ``exc.response`` the full body);
* :class:`Backpressure` — the service is shedding load (the
  ``backpressure`` error code, or a ``submit`` whose response refused
  jobs past a bounded buffer; ``exc.refused`` lists the job ids to back
  off and resubmit);
* :class:`Disconnected` — the transport died mid-call.  With
  ``retry_deadline`` the TCP client reconnects and resends instead
  (rid correlation makes the resend safe; the server's journal dedups a
  replayed submit).

Transports: ``ServiceClient.connect(host, port)`` for TCP,
``ServiceClient.over_streams(writer, reader)`` for an existing pipe
pair, ``ServiceClient.launch([...argv])`` to spawn a ``repro serve``
child on stdio.  All three speak the same protocol, so a scripted
client works identically against a single session, a supervised durable
worker or a sharded router.
"""

from __future__ import annotations

import json
import socket
import subprocess
import time
from typing import Any, Sequence

from repro.service.wire import BACKPRESSURE, WIRE_VERSION

__all__ = [
    "Backpressure",
    "Disconnected",
    "ServiceClient",
    "ServiceError",
]


class ServiceError(Exception):
    """The service answered ``ok: false``; dispatch on :attr:`code`."""

    def __init__(self, response: "dict[str, Any] | None" = None, message: str = "") -> None:
        self.response = response or {}
        self.code = str(self.response.get("error", "internal"))
        self.detail = str(self.response.get("detail", message))
        self.op = self.response.get("op")
        super().__init__(message or f"{self.code}: {self.detail}")


class Backpressure(ServiceError):
    """Shed load: back off and resubmit :attr:`refused` (possibly empty)."""

    def __init__(
        self,
        response: "dict[str, Any] | None" = None,
        refused: "Sequence[Any] | None" = None,
    ) -> None:
        super().__init__(response)
        self.code = BACKPRESSURE
        self.refused = list(refused if refused is not None else self.response.get("backpressure", ()))


class Disconnected(ServiceError):
    """The transport died mid-call; nothing is known about the request."""

    def __init__(self, message: str) -> None:
        super().__init__(None, message)
        self.code = "disconnected"
        self.detail = message


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------
class _StreamTransport:
    """A writer/reader text-stream pair (stdio pipes, test buffers)."""

    def __init__(self, writer, reader, proc: "subprocess.Popen | None" = None) -> None:
        self.writer = writer
        self.reader = reader
        self.proc = proc

    reconnectable = False

    def send_line(self, line: str) -> None:
        try:
            self.writer.write(line + "\n")
            self.writer.flush()
        except (OSError, ValueError) as exc:
            raise Disconnected(f"write failed: {exc}") from None

    def recv_line(self) -> str:
        try:
            line = self.reader.readline()
        except (OSError, ValueError) as exc:
            raise Disconnected(f"read failed: {exc}") from None
        if not line:
            raise Disconnected("service closed the stream")
        return line

    def close(self) -> None:
        for stream in (self.writer, self.reader):
            try:
                stream.close()
            except (OSError, ValueError):
                pass
        if self.proc is not None:
            try:
                self.proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                self.proc.terminate()
                try:
                    self.proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    self.proc.kill()
                    self.proc.wait()


class _TcpTransport:
    """A reconnectable TCP line connection."""

    reconnectable = True

    def __init__(self, host: str, port: int, *, io_timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.io_timeout = io_timeout
        self._sock: "socket.socket | None" = None
        self._fh = None

    def connect(self, deadline_at: float) -> None:
        delay = 0.05
        while True:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=min(self.io_timeout, 5.0)
                )
                sock.settimeout(self.io_timeout)
                self._sock = sock
                self._fh = sock.makefile("rw", encoding="utf-8", newline="\n")
                return
            except OSError as exc:
                if time.monotonic() >= deadline_at:
                    raise Disconnected(f"connect failed: {exc}") from None
                time.sleep(min(delay, max(0.0, deadline_at - time.monotonic())))
                delay = min(delay * 2, 0.5)

    def drop(self) -> None:
        for closer in (self._fh, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._fh = self._sock = None

    def send_line(self, line: str) -> None:
        if self._fh is None:
            raise Disconnected("not connected")
        try:
            self._fh.write(line + "\n")
            self._fh.flush()
        except (OSError, ValueError) as exc:
            self.drop()
            raise Disconnected(f"write failed: {exc}") from None

    def recv_line(self) -> str:
        if self._fh is None:
            raise Disconnected("not connected")
        try:
            line = self._fh.readline()
        except (OSError, ValueError) as exc:
            self.drop()
            raise Disconnected(f"read failed: {exc}") from None
        if not line:
            self.drop()
            raise Disconnected("service closed the connection")
        return line

    def close(self) -> None:
        self.drop()


# ----------------------------------------------------------------------
# the client
# ----------------------------------------------------------------------
class ServiceClient:
    """Typed verbs over one service connection (wire v2 by default).

    ``wire_version=1`` speaks the legacy bare-op shape (kept for
    compatibility tests; new code should stay on 2).  ``retry_deadline``
    (seconds, TCP only) makes every call survive worker restarts:
    disconnect → reconnect → resend, correlated by rid.
    """

    def __init__(
        self,
        transport,
        *,
        wire_version: int = WIRE_VERSION,
        retry_deadline: "float | None" = None,
    ) -> None:
        if wire_version not in (1, WIRE_VERSION):
            raise ValueError(f"unsupported wire version {wire_version!r}")
        self.transport = transport
        self.wire_version = wire_version
        self.retry_deadline = retry_deadline
        self._rid = 0

    # -- constructors ---------------------------------------------------
    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        *,
        connect_deadline: float = 30.0,
        io_timeout: float = 120.0,
        **kw,
    ) -> "ServiceClient":
        """Connect to a ``repro serve --tcp`` service (or sharded router)."""
        transport = _TcpTransport(host, port, io_timeout=io_timeout)
        transport.connect(time.monotonic() + connect_deadline)
        return cls(transport, **kw)

    @classmethod
    def over_streams(cls, writer, reader, **kw) -> "ServiceClient":
        """Wrap an existing text-stream pair (e.g. a child's stdio pipes)."""
        return cls(_StreamTransport(writer, reader), **kw)

    @classmethod
    def launch(cls, argv: "Sequence[str]", **kw) -> "ServiceClient":
        """Spawn ``argv`` (a ``repro serve`` command line) and speak over
        its stdio.  ``close()`` waits for the child to exit; the exit
        status is available as ``client.transport.proc.returncode``."""
        proc = subprocess.Popen(
            list(argv),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            bufsize=1,
        )
        return cls(_StreamTransport(proc.stdin, proc.stdout, proc=proc), **kw)

    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- core request path ----------------------------------------------
    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """Send one op; return the (envelope-stripped) response body.

        Raises :class:`ServiceError`/:class:`Backpressure` on an
        ``ok: false`` response and :class:`Disconnected` on transport
        death (unless ``retry_deadline`` absorbs it).
        """
        payload = {"op": op, **fields}
        if self.wire_version >= WIRE_VERSION:
            self._rid += 1
            rid = self._rid
            wire = json.dumps({"v": WIRE_VERSION, "rid": rid, **payload})
        else:
            rid = None
            wire = json.dumps(payload)
        resp = self._exchange(wire, rid)
        resp.pop("v", None)
        resp.pop("rid", None)
        if not resp.get("ok", True):
            if resp.get("error") == BACKPRESSURE:
                raise Backpressure(resp)
            raise ServiceError(resp)
        return resp

    def _exchange(self, wire: str, rid: "int | None") -> dict[str, Any]:
        deadline_at = (
            time.monotonic() + self.retry_deadline
            if self.retry_deadline is not None and self.transport.reconnectable
            else None
        )
        while True:
            try:
                self.transport.send_line(wire)
                while True:
                    line = self.transport.recv_line()
                    try:
                        resp = json.loads(line)
                    except json.JSONDecodeError as exc:
                        raise Disconnected(f"undecodable response: {exc}") from None
                    if rid is None or "rid" not in resp or resp.get("rid") == rid:
                        return resp
                    # a stale reply from before a reconnect: skip it
            except Disconnected:
                if deadline_at is None or time.monotonic() >= deadline_at:
                    raise
                self.transport.connect(deadline_at)

    # -- typed verbs ------------------------------------------------------
    def submit(self, jobs: "Sequence[dict[str, Any]]", **fields: Any) -> dict[str, Any]:
        """Submit job records; raises :class:`Backpressure` when any were
        refused by a bounded buffer (``exc.refused`` lists them,
        ``exc.response`` still carries what *was* buffered/admitted)."""
        resp = self.request("submit", jobs=list(jobs), **fields)
        if resp.get("backpressure"):
            raise Backpressure(resp)
        return resp

    def flush(self) -> dict[str, Any]:
        return self.request("flush")

    def cancel(self, job_id: Any, *, tenant: "str | None" = None) -> dict[str, Any]:
        fields: dict[str, Any] = {"id": job_id}
        if tenant is not None:
            fields["tenant"] = tenant  # routes the cancel under a sharded router
        return self.request("cancel", **fields)

    def advance(self, until: float, *, events: bool = True) -> dict[str, Any]:
        return self.request("advance", until=until, events=events)

    def drain(self) -> dict[str, Any]:
        return self.request("drain")

    def status(self) -> dict[str, Any]:
        return self.request("status")

    def stats(self) -> dict[str, Any]:
        return self.request("stats")

    def validate(self) -> dict[str, Any]:
        return self.request("validate")

    def tenant(self, name: str, weight: float) -> dict[str, Any]:
        return self.request("tenant", name=name, weight=weight)

    def checkpoint(self, path: "str | None" = None) -> dict[str, Any]:
        return self.request("checkpoint", **({"path": path} if path is not None else {}))

    def restore(
        self, *, path: "str | None" = None, snapshot: "dict[str, Any] | None" = None
    ) -> dict[str, Any]:
        fields: dict[str, Any] = {}
        if path is not None:
            fields["path"] = path
        if snapshot is not None:
            fields["snapshot"] = snapshot
        return self.request("restore", **fields)

    def trace(self, path: "str | None" = None) -> dict[str, Any]:
        return self.request("trace", **({"path": path} if path is not None else {}))

    def prune(self) -> dict[str, Any]:
        return self.request("prune")

    def metrics(self) -> dict[str, Any]:
        """The service's metrics: ``"text"`` is the Prometheus exposition,
        ``"families"`` the structured dump (a sharded router merges every
        reachable worker under ``shard`` labels)."""
        return self.request("metrics")

    def metrics_text(self) -> str:
        """Just the rendered Prometheus exposition."""
        return self.metrics()["text"]

    def spans(
        self, *, for_rid: Any = None, limit: "int | None" = None
    ) -> dict[str, Any]:
        """The request-span ring: ``"spans"`` (oldest first), ``"count"``
        (currently retained) and ``"recorded"`` (lifetime).  ``for_rid``
        filters to the spans of one wire request; ``limit`` keeps only
        the newest N after filtering."""
        fields: dict[str, Any] = {}
        if for_rid is not None:
            fields["for_rid"] = for_rid
        if limit is not None:
            fields["limit"] = limit
        return self.request("spans", **fields)

    def dump_spans(
        self, path: str, *, for_rid: Any = None, limit: "int | None" = None
    ) -> int:
        """Write the span ring to ``path`` as JSON lines (one span per
        line); returns how many spans were written."""
        spans = self.spans(for_rid=for_rid, limit=limit)["spans"]
        with open(path, "w", encoding="utf-8") as fh:
            for span in spans:
                fh.write(json.dumps(span) + "\n")
        return len(spans)

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown")
