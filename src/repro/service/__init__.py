"""The online scheduling service: long-running sessions over the engine.

Every entry point before this package was batch — build a full
:class:`~repro.instance.instance.Instance`, run one scheduler, exit.  The
service subsystem runs *indefinitely*: a :class:`SchedulingSession` admits,
cancels and completes jobs while scheduling (the incremental form of
Algorithm 2's dispatch loop), :mod:`repro.service.checkpoint` snapshots
full session state with an exact-resume guarantee, and
:mod:`repro.service.frontend` serves a JSON-lines request protocol over
stdin/stdout or TCP (``repro serve``) with batched admission and weighted
fair sharing across tenants.  :mod:`repro.service.router` shards tenants
across N worker processes (``repro serve --workers N``) behind the same
protocol, :mod:`repro.service.wire` defines the versioned envelope and
the stable error-code vocabulary, and :mod:`repro.service.client` is the
typed Python client.  Every front-end is instrumented through
:mod:`repro.obs` (metrics registry, Prometheus exposition, request
spans): the ``metrics``/``spans`` ops expose them on the wire and
``repro serve --metrics-port`` over HTTP.
"""

from repro.service.chaos import ChaosCrash, ChaosInjector
from repro.service.checkpoint import (
    SESSION_FORMAT,
    checkpoint_session,
    load_session,
    restore_session,
    save_session,
)
from repro.service.client import Backpressure, Disconnected, ServiceClient, ServiceError
from repro.service.fairshare import FairQueue
from repro.service.frontend import ServiceFrontend, serve_stdio, serve_tcp, write_trace
from repro.service.journal import JOURNAL_FORMAT, Journal, JournaledSession, scan_journal
from repro.service.router import (
    ROUTING_POLICIES,
    LocalWorker,
    RemoteWorker,
    Router,
    ShardUnavailable,
    register_policy,
    resolve_policy,
    stable_shard,
)
from repro.service.session import JobSpec, SchedulingSession
from repro.service.supervisor import BackoffPolicy, supervise
from repro.service.wire import ERROR_CODES, WIRE_FORMAT, WIRE_VERSION

__all__ = [
    "JobSpec",
    "SchedulingSession",
    "SESSION_FORMAT",
    "JOURNAL_FORMAT",
    "WIRE_FORMAT",
    "WIRE_VERSION",
    "ERROR_CODES",
    "checkpoint_session",
    "restore_session",
    "save_session",
    "load_session",
    "Journal",
    "JournaledSession",
    "scan_journal",
    "ChaosCrash",
    "ChaosInjector",
    "ServiceFrontend",
    "FairQueue",
    "serve_stdio",
    "serve_tcp",
    "write_trace",
    "BackoffPolicy",
    "supervise",
    "Router",
    "LocalWorker",
    "RemoteWorker",
    "ShardUnavailable",
    "ROUTING_POLICIES",
    "register_policy",
    "resolve_policy",
    "stable_shard",
    "ServiceClient",
    "ServiceError",
    "Backpressure",
    "Disconnected",
]
