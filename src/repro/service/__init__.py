"""The online scheduling service: long-running sessions over the engine.

Every entry point before this package was batch — build a full
:class:`~repro.instance.instance.Instance`, run one scheduler, exit.  The
service subsystem runs *indefinitely*: a :class:`SchedulingSession` admits,
cancels and completes jobs while scheduling (the incremental form of
Algorithm 2's dispatch loop), :mod:`repro.service.checkpoint` snapshots
full session state with an exact-resume guarantee, and
:mod:`repro.service.frontend` serves a JSON-lines request protocol over
stdin/stdout or TCP (``repro serve``) with batched admission and weighted
fair sharing across tenants.
"""

from repro.service.chaos import ChaosCrash, ChaosInjector
from repro.service.checkpoint import (
    SESSION_FORMAT,
    checkpoint_session,
    load_session,
    restore_session,
    save_session,
)
from repro.service.frontend import ServiceFrontend, serve_stdio, serve_tcp, write_trace
from repro.service.journal import JOURNAL_FORMAT, Journal, JournaledSession, scan_journal
from repro.service.session import JobSpec, SchedulingSession
from repro.service.supervisor import BackoffPolicy, supervise

__all__ = [
    "JobSpec",
    "SchedulingSession",
    "SESSION_FORMAT",
    "JOURNAL_FORMAT",
    "checkpoint_session",
    "restore_session",
    "save_session",
    "load_session",
    "Journal",
    "JournaledSession",
    "scan_journal",
    "ChaosCrash",
    "ChaosInjector",
    "ServiceFrontend",
    "serve_stdio",
    "serve_tcp",
    "write_trace",
    "BackoffPolicy",
    "supervise",
]
