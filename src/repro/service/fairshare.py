"""Weighted fair-share admission queue (stride scheduling over tenants).

Extracted from the single-session front-end so the same discipline can
run at either tier: a standalone :class:`ServiceFrontend` runs it over
its own session's tenants, and the sharded router runs it *once, across
all shards*, so cross-shard tenant weights still hold (workers under a
router run in ``fifo`` mode and preserve the order the router decided).

Each tenant owns a FIFO buffer; draining interleaves tenants by stride
scheduling: tenant ``T`` with weight ``w`` pays ``1/w`` virtual admission
time per job, and the pending job with the smallest ``(vtime, tenant
name)`` goes next.  A tenant (re)entering after idling starts at the
current virtual floor, so saved-up idle time cannot be hoarded into a
burst.  In ``fifo`` mode the stride order is bypassed and jobs drain in
global arrival order — weights are kept but inert.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable

from repro.service.session import JobSpec

__all__ = ["FairQueue", "Tenant"]


class Tenant:
    """One tenant's FIFO buffer and its stride-scheduling state."""

    __slots__ = ("name", "weight", "buffer", "vtime")

    def __init__(self, name: str, weight: float = 1.0) -> None:
        self.name = name
        self.weight = weight
        self.buffer: deque[JobSpec] = deque()
        self.vtime = 0.0


class FairQueue:
    """Per-tenant buffers with weighted-fair (or global-FIFO) draining."""

    def __init__(self, *, fifo: bool = False) -> None:
        self.fifo = fifo
        self.tenants: dict[str, Tenant] = {}
        self.buffered = 0
        self._vfloor = 0.0  # virtual admission time of the last drained job
        self._seq = 0  # global arrival counter (fifo mode ordering)
        self._arrival: dict[Any, int] = {}
        self._m_depth = None  # bound gauges (None = uninstrumented)
        self._m_lag = None

    def bind_metrics(self, registry, prefix: str = "repro") -> None:
        """Publish per-tenant queue depth and stride lag as gauges.

        ``prefix`` namespaces the family names so the router's global
        queue (``repro_router_*``) and a worker's local queue
        (``repro_*``) stay distinct families when merged in one scrape.
        """
        self._m_depth = registry.gauge(
            f"{prefix}_queue_depth",
            "Buffered submissions per tenant awaiting admission",
            labels=("tenant",),
        )
        self._m_lag = registry.gauge(
            f"{prefix}_queue_stride_lag",
            "Tenant virtual admission time minus the queue's virtual floor",
            labels=("tenant",),
        )
        for t in self.tenants.values():
            self._m_depth.set(len(t.buffer), tenant=t.name)
            self._m_lag.set(t.vtime - self._vfloor, tenant=t.name)

    def _observe(self, t: Tenant) -> None:
        self._m_depth.set(len(t.buffer), tenant=t.name)
        self._m_lag.set(t.vtime - self._vfloor, tenant=t.name)

    def tenant(self, name: str) -> Tenant:
        t = self.tenants.get(name)
        if t is None:
            t = self.tenants[name] = Tenant(name)
        return t

    def set_weight(self, name: str, weight: float) -> None:
        if not weight > 0:
            raise ValueError(f"tenant weight must be positive, got {weight}")
        self.tenant(name).weight = float(weight)

    def weight_of(self, name: str) -> float:
        t = self.tenants.get(name)
        return t.weight if t is not None else 1.0

    def depth(self, name: str) -> int:
        t = self.tenants.get(name)
        return len(t.buffer) if t is not None else 0

    def enqueue(self, spec: JobSpec) -> None:
        """Buffer one job in its tenant's FIFO queue."""
        t = self.tenant(spec.tenant)
        if not t.buffer:
            # (re)activation: start at the virtual floor — idle time is
            # not banked into an admission burst
            t.vtime = max(t.vtime, self._vfloor)
        t.buffer.append(spec)
        self._arrival[spec.id] = self._seq
        self._seq += 1
        self.buffered += 1
        if self._m_depth is not None:
            self._observe(t)

    def buffered_ids(self) -> set[Any]:
        return {spec.id for t in self.tenants.values() for spec in t.buffer}

    def drain_fair(self) -> list[JobSpec]:
        """Pop *everything* buffered, in the admission order.

        Weighted-fair stride order by default; global arrival order in
        ``fifo`` mode (vtimes still advance so a later switch of mode —
        or a status report — stays coherent).
        """
        out: list[JobSpec] = []
        active = [t for t in self.tenants.values() if t.buffer]
        if self.fifo:
            for t in active:
                out.extend(t.buffer)
                t.vtime = max(t.vtime, self._vfloor) + len(t.buffer) / t.weight
                self._vfloor = max(self._vfloor, t.vtime)
                t.buffer.clear()
            out.sort(key=lambda s: self._arrival[s.id])
        else:
            while active:
                t = min(active, key=lambda t: (t.vtime, t.name))
                out.append(t.buffer.popleft())
                t.vtime += 1.0 / t.weight
                self._vfloor = t.vtime
                if not t.buffer:
                    active.remove(t)
        self.buffered = 0
        self._arrival.clear()
        if self._m_depth is not None:
            for t in self.tenants.values():
                self._observe(t)
        return out

    def remove_ids(self, gone: Iterable[Any]) -> list[Any]:
        """Drop the given buffered ids; returns those actually removed."""
        gone = set(gone)
        removed: list[Any] = []
        for t in self.tenants.values():
            for spec in list(t.buffer):
                if spec.id in gone:
                    t.buffer.remove(spec)
                    removed.append(spec.id)
                    self.buffered -= 1
                    self._arrival.pop(spec.id, None)
            if self._m_depth is not None:
                self._observe(t)
        return removed

    def cascade(self, gone: set[Any]) -> set[Any]:
        """Grow ``gone`` with every buffered dependent (transitively)."""
        grew = True
        while grew:
            grew = False
            for t in self.tenants.values():
                for spec in t.buffer:
                    if spec.id not in gone and any(p in gone for p in spec.preds):
                        gone.add(spec.id)
                        grew = True
        return gone

    def describe(self) -> dict[str, dict[str, Any]]:
        """The ``status`` view: weight, queue depth and vtime per tenant."""
        return {
            t.name: {"weight": t.weight, "buffered": len(t.buffer), "vtime": t.vtime}
            for t in self.tenants.values()
        }

    def depths(self) -> dict[str, int]:
        """The ``stats`` view: queue depth per tenant."""
        return {t.name: len(t.buffer) for t in self.tenants.values()}
