"""The sharded routing tier: tenants partitioned across worker sessions.

``repro serve --workers N`` runs this front-end instead of a single
:class:`~repro.service.frontend.ServiceFrontend`: N worker processes each
own a journaled, supervised :class:`SchedulingSession` for a disjoint
subset of tenants, and the :class:`Router` speaks the *same* JSON-lines
protocol (both wire versions) to clients while fanning requests out.

**Deterministic partitioning.**  A routing policy maps a tenant name to
a shard index; ``submit``/``cancel``/``tenant`` for one tenant always
land on the same worker, so a sharded run is replayable.  Policies are
pluggable through a small registry (:func:`register_policy`, the same
idiom as the dispatch-backend registry):

``hash``
    a *stable* hash of the tenant name (BLAKE2, never Python's seeded
    ``hash()``) mod N — deterministic across processes and runs;
``explicit``
    an operator-supplied map ``"acme=0,lab=1,*=2"`` (``*`` is the
    fallback; without it an unmapped tenant is refused) — deterministic
    by construction;
``least-loaded``
    sticky assignment of each *new* tenant to the shard with the fewest
    jobs forwarded so far.  The assignment depends on arrival order and
    load, so a re-run only reproduces it if the request stream is
    identical — use it for stateless fan-out work where replayability
    does not matter, and one of the deterministic policies otherwise.

**Fairness at the routing tier.**  The stride-fair admission queue runs
*once, here, across all shards* (the promotion of the frontend's
fair-share scheduler): the router buffers submissions per tenant,
drains them in weighted-fair order, and forwards each shard its slice
of that order.  Workers run with ``admission="fifo"`` and
``batch_size=1`` so they preserve exactly the order the router decided —
cross-shard tenant weights therefore hold globally.

**Fan-out and failover.**  Tenant-bound ops route to one worker;
``advance``/``drain``/``stats``/``status``/``validate``/``checkpoint``/
``trace``/``prune``/``metrics``/``spans``/``shutdown`` broadcast in
parallel and merge the responses (rid correlation on the worker wire
makes the merge safe across reconnects).  The ``metrics`` merge
re-labels each worker's families under a leading ``shard`` label and
appends the router's own ``repro_router_*`` families, so one scrape
covers the whole topology.  Each worker journals to its own ``--journal`` path,
so a SIGKILLed shard is restarted by its supervisor and recovers from
its own snapshot + journal suffix while the other shards keep serving;
while a shard is down, ops that need it fail fast with the
``backpressure`` error code (bounded by ``call_deadline``) instead of
head-of-line blocking the whole service.  Cross-shard dependencies are
refused at submit time (``admission_failed``): a dependency edge never
spans two workers.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.obs import (
    MetricsRegistry,
    SpanLog,
    merge_dumps,
    process_rss_bytes,
    render_dump,
)
from repro.service.fairshare import FairQueue
from repro.service.session import JobSpec
from repro.service.wire import (
    ADMISSION_FAILED,
    BACKPRESSURE,
    INTERNAL,
    INVALID_REQUEST,
    WIRE_VERSION,
    error_response,
    unwrap_request,
    wrap_response,
)

__all__ = [
    "LocalWorker",
    "RemoteWorker",
    "Router",
    "ShardUnavailable",
    "pick_free_port",
    "register_policy",
    "resolve_policy",
    "stable_shard",
    "ROUTING_POLICIES",
]


# ----------------------------------------------------------------------
# routing policies
# ----------------------------------------------------------------------
ROUTING_POLICIES: dict[str, Callable[..., Any]] = {}


def register_policy(name: str) -> Callable:
    """Class decorator: make a routing policy selectable by name."""

    def deco(cls):
        ROUTING_POLICIES[name] = cls
        cls.name = name
        return cls

    return deco


def resolve_policy(name: str, nshards: int, spec: "str | None" = None):
    """Instantiate the named policy for an ``nshards``-way partition."""
    try:
        cls = ROUTING_POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(ROUTING_POLICIES))
        raise ValueError(f"unknown routing policy {name!r} (available: {known})") from None
    return cls(nshards, spec)


def stable_shard(tenant: str, nshards: int) -> int:
    """A process-stable tenant → shard hash (BLAKE2b, not ``hash()``)."""
    digest = hashlib.blake2b(tenant.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % nshards


@register_policy("hash")
class HashPolicy:
    """Stable hash of the tenant name — deterministic, zero configuration."""

    deterministic = True

    def __init__(self, nshards: int, spec: "str | None" = None) -> None:
        if spec:
            raise ValueError("the 'hash' policy takes no --shard-map spec")
        self.nshards = nshards

    def shard_of(self, tenant: str, loads: "list[int]") -> int:
        return stable_shard(tenant, self.nshards)


@register_policy("explicit")
class ExplicitPolicy:
    """Operator-pinned map ``"acme=0,lab=1,*=2"`` (``*`` = fallback shard)."""

    deterministic = True

    def __init__(self, nshards: int, spec: "str | None" = None) -> None:
        if not spec:
            raise ValueError("the 'explicit' policy needs a --shard-map spec")
        self.nshards = nshards
        self.table: dict[str, int] = {}
        self.default: "int | None" = None
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            tenant, _, shard = entry.partition("=")
            if not _:
                raise ValueError(f"bad --shard-map entry {entry!r} (want tenant=shard)")
            idx = int(shard)
            if not 0 <= idx < nshards:
                raise ValueError(f"shard {idx} out of range for {nshards} workers")
            if tenant == "*":
                self.default = idx
            else:
                self.table[tenant] = idx

    def shard_of(self, tenant: str, loads: "list[int]") -> int:
        shard = self.table.get(tenant, self.default)
        if shard is None:
            raise ValueError(
                f"no shard mapping for tenant {tenant!r} (add it to --shard-map "
                "or provide a '*' fallback)"
            )
        return shard


@register_policy("least-loaded")
class LeastLoadedPolicy:
    """Sticky least-loaded assignment — NOT replay-deterministic.

    Each tenant is pinned, at first sight, to the shard with the fewest
    jobs forwarded so far (ties: lowest index) and stays there, so
    tenant affinity still holds within a run.  The pinning depends on
    arrival order, which is why this policy is only appropriate for
    stateless workloads where a re-run need not reproduce placements.
    """

    deterministic = False

    def __init__(self, nshards: int, spec: "str | None" = None) -> None:
        if spec:
            raise ValueError("the 'least-loaded' policy takes no --shard-map spec")
        self.nshards = nshards
        self.pinned: dict[str, int] = {}

    def shard_of(self, tenant: str, loads: "list[int]") -> int:
        shard = self.pinned.get(tenant)
        if shard is None:
            shard = min(range(self.nshards), key=lambda i: (loads[i], i))
            self.pinned[tenant] = shard
        return shard


# ----------------------------------------------------------------------
# worker handles
# ----------------------------------------------------------------------
class ShardUnavailable(Exception):
    """A worker could not be reached within the call deadline."""

    def __init__(self, shard: int, detail: str) -> None:
        super().__init__(f"shard {shard} unavailable: {detail}")
        self.shard = shard
        self.detail = detail


class LocalWorker:
    """An in-process worker: wraps a transport-free frontend.

    Requests and responses are JSON round-tripped so anything that would
    not survive a real wire fails here too — tests and the conformance
    fuzzer drive a full sharded topology without spawning processes.
    """

    def __init__(self, frontend) -> None:
        self.frontend = frontend

    def call(self, request: dict[str, Any], deadline: "float | None" = None) -> dict[str, Any]:
        resp = self.frontend.handle_request(json.loads(json.dumps(request)))
        return json.loads(json.dumps(resp))

    def close(self) -> None:
        pass


class RemoteWorker:
    """One worker process over TCP: line protocol, v2 envelope, reconnect.

    Every request is wrapped in a ``repro-wire/2`` envelope with a fresh
    ``rid``; the echoed rid is what makes resend-after-reconnect safe (a
    stale response from a previous incarnation can never be attributed
    to the current request).  ``call`` retries through disconnects until
    ``deadline`` seconds have elapsed — a supervised worker that was
    SIGKILLed typically reappears within its supervisor's backoff — and
    raises :class:`ShardUnavailable` past the deadline.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        shard: int = 0,
        io_timeout: float = 120.0,
    ) -> None:
        self.host = host
        self.port = port
        self.shard = shard
        self.io_timeout = io_timeout
        self._sock: "socket.socket | None" = None
        self._fh = None
        self._rid = 0

    # -- connection management ----------------------------------------
    def _connect(self, deadline_at: float) -> None:
        delay = 0.05
        while True:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=min(self.io_timeout, 5.0)
                )
                sock.settimeout(self.io_timeout)
                self._sock = sock
                self._fh = sock.makefile("rw", encoding="utf-8", newline="\n")
                return
            except OSError as exc:
                if time.monotonic() >= deadline_at:
                    raise ShardUnavailable(self.shard, f"connect failed: {exc}") from None
                time.sleep(min(delay, max(0.0, deadline_at - time.monotonic())))
                delay = min(delay * 2, 0.5)

    def _disconnect(self) -> None:
        for closer in (self._fh, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._fh = self._sock = None

    def close(self) -> None:
        self._disconnect()

    # -- request/response ---------------------------------------------
    def call(self, request: dict[str, Any], deadline: "float | None" = None) -> dict[str, Any]:
        """Send one request, return the bare (envelope-stripped) response.

        Retries through connect failures and mid-call disconnects until
        ``deadline`` seconds from now; the worker's journal dedups a
        resent ``submit`` (at-least-once delivery, exactly-once
        admission), and the other verbs are idempotent or safely
        re-appliable.
        """
        deadline_at = time.monotonic() + (deadline if deadline is not None else 15.0)
        self._rid += 1
        rid = self._rid
        wire = json.dumps({"v": WIRE_VERSION, "rid": rid, **request})
        while True:
            try:
                if self._fh is None:
                    self._connect(deadline_at)
                self._fh.write(wire + "\n")
                self._fh.flush()
                while True:
                    line = self._fh.readline()
                    if not line:
                        raise OSError("worker closed the connection")
                    resp = json.loads(line)
                    # a rid-less reply is a v1-shaped transport error (bad
                    # JSON, oversized line): it answers *this* request; a
                    # reply with a *different* rid is stale — skip it
                    if "rid" not in resp or resp.get("rid") == rid:
                        break
                resp.pop("v", None)
                resp.pop("rid", None)
                return resp
            except (OSError, ValueError) as exc:
                self._disconnect()
                if time.monotonic() >= deadline_at:
                    raise ShardUnavailable(self.shard, str(exc)) from None


def pick_free_port(host: str = "127.0.0.1") -> int:
    """Reserve an ephemeral TCP port (bind-probe, then release)."""
    with socket.socket() as s:
        s.bind((host, 0))
        return s.getsockname()[1]


# ----------------------------------------------------------------------
# the router
# ----------------------------------------------------------------------
class Router:
    """Protocol front-end partitioning tenants across worker shards.

    Duck-type compatible with :class:`ServiceFrontend` for the stdio/TCP
    serving loops (``handle_request`` + ``closed``).  ``workers`` are
    :class:`LocalWorker`/:class:`RemoteWorker` handles; replace a handle
    with :meth:`replace_worker` after recovering a shard in-process.
    """

    def __init__(
        self,
        workers: "list[Any]",
        *,
        policy: str = "hash",
        policy_spec: "str | None" = None,
        batch_size: int = 32,
        batch_interval: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
        max_pending: "int | None" = None,
        call_deadline: float = 15.0,
        metrics: "MetricsRegistry | None" = None,
        spans: "SpanLog | None" = None,
    ) -> None:
        if not workers:
            raise ValueError("a router needs at least one worker")
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {batch_size}")
        if batch_interval < 0:
            raise ValueError(f"batch interval must be >= 0, got {batch_interval}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.workers = list(workers)
        self.policy = resolve_policy(policy, len(workers), policy_spec)
        self.batch_size = batch_size
        self.batch_interval = batch_interval
        self.clock = clock
        self.max_pending = max_pending
        self.call_deadline = call_deadline
        self.closed = False
        self.queue = FairQueue()  # fair mode: the global stride queue
        self._stamps: dict[Any, float] = {}
        self._placed: dict[Any, int] = {}  # admitted job id -> shard
        self._loads = [0] * len(workers)  # jobs forwarded per shard
        self._pool = ThreadPoolExecutor(
            max_workers=len(workers), thread_name_prefix="shard-io"
        )
        # -- observability: every router family is ``repro_router_*`` so
        # a merged scrape (worker ``repro_*`` families re-labeled with
        # ``shard``) can never collide with the router's own
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans = spans if spans is not None else SpanLog()
        self._rid: Any = None
        self._cur_op: "str | None" = None
        self._started = self.clock()
        m = self.metrics
        self._m_requests = m.counter(
            "repro_router_requests_total",
            "Protocol requests handled at the routing tier",
            labels=("op",),
        )
        self._m_errors = m.counter(
            "repro_router_request_errors_total",
            "Router requests answered with a stable error code",
            labels=("op", "code"),
        )
        self._m_latency = m.histogram(
            "repro_router_request_latency_seconds",
            "Wall-clock request handling latency at the routing tier",
            labels=("op",),
        )
        self._m_routed = m.counter(
            "repro_router_routed_jobs_total",
            "Jobs admitted and forwarded, per shard",
            labels=("shard",),
        )
        self._m_unavailable = m.counter(
            "repro_router_shard_unavailable_total",
            "Calls that failed because a shard stayed unreachable",
            labels=("shard",),
        )
        m.gauge("repro_router_workers", "Worker shards behind this router").set(
            len(workers)
        )
        self._m_uptime = m.gauge(
            "repro_router_uptime_seconds", "Seconds since this router was built"
        )
        self._m_rss = m.gauge(
            "repro_router_process_rss_bytes", "Resident set size of the router process"
        )
        self.queue.bind_metrics(m, prefix="repro_router")

    # -- lifecycle -----------------------------------------------------
    def replace_worker(self, shard: int, worker: Any) -> None:
        """Swap in a recovered worker handle for one shard."""
        old = self.workers[shard]
        self.workers[shard] = worker
        if old is not worker:
            try:
                old.close()
            except OSError:
                pass

    def close(self) -> None:
        self.closed = True
        self._pool.shutdown(wait=False)
        for w in self.workers:
            try:
                w.close()
            except OSError:
                pass

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- fan-out plumbing ----------------------------------------------
    def _call(self, shard: int, request: dict[str, Any]) -> dict[str, Any]:
        return self.workers[shard].call(request, deadline=self.call_deadline)

    def _fan_out_tolerant(
        self, requests: "dict[int, dict[str, Any]]"
    ) -> "tuple[dict[int, dict[str, Any]], dict[int, ShardUnavailable]]":
        """Issue per-shard requests in parallel; collect per-shard outcomes.

        Every request is delivered (or definitively fails) exactly once:
        successful responses are never discarded because some *other*
        shard was unreachable.
        """
        if len(requests) == 1:
            ((shard, request),) = requests.items()
            try:
                return {shard: self._call(shard, request)}, {}
            except ShardUnavailable as exc:
                return {}, {shard: exc}
        futures = {
            shard: self._pool.submit(self._call, shard, request)
            for shard, request in requests.items()
        }
        out: dict[int, dict[str, Any]] = {}
        failures: dict[int, ShardUnavailable] = {}
        for shard in sorted(futures):
            try:
                out[shard] = futures[shard].result()
            except ShardUnavailable as exc:
                failures[shard] = exc
        return out, failures

    def _fan_out(self, requests: "dict[int, dict[str, Any]]") -> "dict[int, dict[str, Any]]":
        """Strict fan-out: raise the lowest-shard failure (after every
        other shard's call has completed, so a dead shard never leaves
        another worker with a half-delivered request)."""
        out, failures = self._fan_out_tolerant(requests)
        if failures:
            raise failures[min(failures)]
        return out

    def _broadcast(self, request: dict[str, Any]) -> "dict[int, dict[str, Any]]":
        return self._fan_out({i: dict(request) for i in range(len(self.workers))})

    @staticmethod
    def _first_error(responses: "dict[int, dict[str, Any]]") -> "dict[str, Any] | None":
        for shard in sorted(responses):
            resp = responses[shard]
            if not resp.get("ok", True):
                return error_response(
                    resp.get("op"),
                    resp.get("error", INTERNAL),
                    f"shard {shard}: {resp.get('detail', resp.get('error', ''))}",
                )
        return None

    # -- routing -------------------------------------------------------
    def shard_of(self, tenant: str) -> int:
        """The shard this tenant's stateful ops route to."""
        return self.policy.shard_of(tenant, self._loads)

    def _batch_due(self) -> bool:
        if self.queue.buffered == 0:
            return False
        if self.queue.buffered >= self.batch_size:
            return True
        return self.clock() - min(self._stamps.values()) >= self.batch_interval

    def flush(self) -> tuple[list[Any], list[dict[str, Any]]]:
        """Drain the global fair queue and forward each shard its slice.

        The weighted-fair order is computed once, across every tenant on
        every shard; each worker receives its jobs as one ``submit`` in
        that order (workers admit FIFO), so relative admission priority
        between two tenants is identical whether or not they share a
        shard.  Returns ``(admitted_ids, error_records)`` exactly like
        the single-session frontend.
        """
        pending = self.queue.drain_fair()
        self._stamps.clear()
        if not pending:
            return [], []
        errors: list[dict[str, Any]] = []
        order: list[tuple[int, Any]] = []  # (shard, id) in global fair order
        per_shard: dict[int, list[JobSpec]] = {}
        routed: dict[Any, int] = {}  # ids routed in *this* flush
        for spec in pending:
            try:
                shard = self.shard_of(spec.tenant)
            except ValueError as exc:
                errors.append(
                    {"id": spec.id, "error": ADMISSION_FAILED, "detail": str(exc)}
                )
                continue
            cross = [
                p
                for p in spec.preds
                if self._placed.get(p, routed.get(p, shard)) != shard
            ]
            if cross:
                errors.append(
                    {
                        "id": spec.id,
                        "error": ADMISSION_FAILED,
                        "detail": (
                            f"predecessors {cross!r} live on another shard; "
                            "a dependency edge cannot span workers"
                        ),
                    }
                )
                continue
            routed[spec.id] = shard
            order.append((shard, spec.id))
            per_shard.setdefault(shard, []).append(spec)
        if not per_shard:
            return [], errors
        requests = {
            shard: {"op": "submit", "jobs": [s.to_dict() for s in specs]}
            for shard, specs in per_shard.items()
        }
        s0 = self.spans.now()
        responses, failures = self._fan_out_tolerant(requests)
        self.spans.record(
            self._cur_op or "flush", "handoff", s0, self.spans.now() - s0,
            rid=self._rid,
        )
        for shard in failures:
            self._m_unavailable.inc(shard=str(shard))
            # the dead shard's jobs come back as explicit backpressure
            # records so the client resubmits them (the worker's journal
            # dedups any that actually landed before the crash); jobs
            # bound for reachable shards were delivered normally
            errors.extend(
                {
                    "id": s.id,
                    "error": BACKPRESSURE,
                    "detail": f"shard {shard} unavailable; resubmit",
                }
                for s in per_shard[shard]
            )
        admitted_by_shard: dict[int, set] = {}
        for shard, resp in responses.items():
            if not resp.get("ok", True):
                errors.extend(
                    {
                        "id": s.id,
                        "error": resp.get("error", INTERNAL),
                        "detail": f"shard {shard}: {resp.get('detail', '')}",
                    }
                    for s in per_shard[shard]
                )
                continue
            admitted_by_shard[shard] = set(resp.get("admitted", ()))
            for rec in resp.get("errors", ()):
                rec = dict(rec)
                rec["shard"] = shard
                errors.append(rec)
        admitted: list[Any] = []
        for shard, jid in order:
            if jid in admitted_by_shard.get(shard, ()):
                admitted.append(jid)
                self._placed[jid] = shard
                self._loads[shard] += 1
                self._m_routed.inc(shard=str(shard))
        return admitted, errors

    # -- protocol ------------------------------------------------------
    def handle_request(self, req: Any) -> dict[str, Any]:
        """Same contract as :meth:`ServiceFrontend.handle_request`."""
        body, versioned, rid, err = unwrap_request(req)
        if err is not None:
            return wrap_response(err, versioned, rid)
        op = body.get("op") if isinstance(body, dict) else None
        label = op if isinstance(op, str) else "invalid"
        self._rid = rid
        self._cur_op = label
        t0 = time.perf_counter()
        s0 = self.spans.now()
        try:
            resp = self._dispatch(body)
        finally:
            self._rid = None
            self._cur_op = None
        dur = time.perf_counter() - t0
        self._m_requests.inc(op=label)
        self._m_latency.observe(dur, op=label)
        if resp.get("ok") is False:
            self._m_errors.inc(op=label, code=str(resp.get("error", "internal")))
        self.spans.record(label, "route", s0, self.spans.now() - s0, rid=rid)
        return wrap_response(resp, versioned, rid)

    def _dispatch(self, req: Any) -> dict[str, Any]:
        if not isinstance(req, dict) or "op" not in req:
            return error_response(None, INVALID_REQUEST, "request must be an object with an 'op'")
        op = req["op"]
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            return error_response(op, INVALID_REQUEST, f"unknown op {op!r}")
        try:
            pre_admitted: list[Any] = []
            pre_errors: list[dict[str, Any]] = []
            if op not in ("submit", "flush") and self._batch_due():
                pre_admitted, pre_errors = self.flush()
            resp = handler(req)
        except ShardUnavailable as exc:
            return error_response(op, BACKPRESSURE, f"{exc}; retry")
        except KeyError as exc:
            return error_response(op, INVALID_REQUEST, f"missing required field {exc}")
        except (ValueError, TypeError) as exc:
            return error_response(op, INVALID_REQUEST, str(exc))
        except OSError as exc:
            return error_response(op, INTERNAL, str(exc))
        if pre_admitted:
            resp.setdefault("admitted_by_batch", pre_admitted)
        if pre_errors:
            resp.setdefault("admission_errors", []).extend(pre_errors)
        resp.setdefault("ok", True)
        resp.setdefault("op", op)
        return resp

    # -- tenant-bound ops ----------------------------------------------
    def _op_submit(self, req: dict[str, Any]) -> dict[str, Any]:
        jobs = req.get("jobs")
        if not isinstance(jobs, list):
            raise ValueError("submit needs a 'jobs' list")
        specs = [JobSpec.from_dict(rec) for rec in jobs]
        refused: list[Any] = []
        for spec in specs:
            if (
                self.max_pending is not None
                and self.queue.depth(spec.tenant) >= self.max_pending
            ):
                refused.append(spec.id)
            else:
                self.queue.enqueue(spec)
                self._stamps[spec.id] = self.clock()
        resp: dict[str, Any] = {"buffered": self.queue.buffered}
        if refused:
            resp["backpressure"] = refused
        if self._batch_due():
            admitted, errors = self.flush()
            resp.update({"admitted": admitted, "buffered": 0})
            if errors:
                resp["errors"] = errors
        return resp

    def _op_flush(self, req: dict[str, Any]) -> dict[str, Any]:
        admitted, errors = self.flush()
        resp: dict[str, Any] = {"admitted": admitted}
        if errors:
            resp["errors"] = errors
        return resp

    def _op_cancel(self, req: dict[str, Any]) -> dict[str, Any]:
        jid = req["id"]
        was_buffered = jid in self.queue.buffered_ids()
        cancelled: list[Any] = []
        if was_buffered:
            gone = {jid}
        else:
            shard = self._placed.get(jid)
            if shard is None and "tenant" in req:
                shard = self.shard_of(str(req["tenant"]))
            if shard is None:
                raise ValueError(
                    f"unknown job {jid!r} (not buffered and not routed by this "
                    "router; pass 'tenant' to route the cancel)"
                )
            resp = self._call(shard, {"op": "cancel", "id": jid})
            if not resp.get("ok", True):
                return error_response(
                    "cancel",
                    resp.get("error", INTERNAL),
                    f"shard {shard}: {resp.get('detail', '')}",
                )
            cancelled = list(resp.get("cancelled", ()))
            gone = set(cancelled) | {jid} if cancelled else set()
        if gone:
            self.queue.cascade(gone)
            removed = self.queue.remove_ids(gone)
            cancelled.extend(removed)
            for r in removed:
                self._stamps.pop(r, None)
        return {"cancelled": cancelled, "buffered": was_buffered}

    def _op_tenant(self, req: dict[str, Any]) -> dict[str, Any]:
        name = str(req["name"])
        weight = float(req["weight"])
        self.queue.set_weight(name, weight)  # the authoritative copy
        # mirror to the owning shard so per-worker status stays coherent
        shard = self.shard_of(name)
        resp = self._call(shard, {"op": "tenant", "name": name, "weight": weight})
        if not resp.get("ok", True):
            return error_response(
                "tenant", resp.get("error", INTERNAL),
                f"shard {shard}: {resp.get('detail', '')}",
            )
        return {"name": name, "weight": weight, "shard": shard}

    # -- fan-out ops ----------------------------------------------------
    def _with_flush_errors(self, resp: dict[str, Any], errors) -> dict[str, Any]:
        if errors:
            resp["admission_errors"] = errors
        return resp

    def _op_advance(self, req: dict[str, Any]) -> dict[str, Any]:
        _, errors = self.flush()
        until = float(req["until"])
        want_events = req.get("events", True)
        responses = self._broadcast(
            {"op": "advance", "until": until, "events": bool(want_events)}
        )
        err = self._first_error(responses)
        if err is not None:
            return err
        resp: dict[str, Any] = {
            "clock": max(r["clock"] for r in responses.values()),
        }
        if want_events:
            merged: list[dict[str, Any]] = []
            for shard in sorted(responses):
                merged.extend(responses[shard]["events"])
            # stable sort: per-shard order is preserved, ties break by shard
            merged.sort(key=lambda e: e["time"])
            resp["events"] = merged
        else:
            resp["event_count"] = sum(r["event_count"] for r in responses.values())
        return self._with_flush_errors(resp, errors)

    def _op_drain(self, req: dict[str, Any]) -> dict[str, Any]:
        _, errors = self.flush()
        responses = self._broadcast({"op": "drain"})
        err = self._first_error(responses)
        if err is not None:
            return err
        return self._with_flush_errors(
            {
                "clock": max(r["clock"] for r in responses.values()),
                "makespan": max(r["makespan"] for r in responses.values()),
                "completed": sum(r["completed"] for r in responses.values()),
            },
            errors,
        )

    def _op_status(self, req: dict[str, Any]) -> dict[str, Any]:
        responses = self._broadcast({"op": "status"})
        err = self._first_error(responses)
        if err is not None:
            return err
        states: dict[str, int] = {}
        for r in responses.values():
            for state, n in r.get("states", {}).items():
                states[state] = states.get(state, 0) + n
        return {
            "clock": max(r["clock"] for r in responses.values()),
            "jobs": sum(r["jobs"] for r in responses.values()),
            "states": states,
            "buffered": self.queue.buffered,
            "tenants": self.queue.describe(),
            "pid": os.getpid(),
            "workers": len(self.workers),
            "policy": self.policy.name,
            "restarts": sum(r.get("restarts", 0) for r in responses.values()),
            "uptime_seconds": self.clock() - self._started,
            "rss_bytes": process_rss_bytes(),
            "shards": {str(i): responses[i] for i in sorted(responses)},
        }

    def _op_stats(self, req: dict[str, Any]) -> dict[str, Any]:
        """The sharded ``stats`` map: the single-session schema, aggregated,
        plus ``workers``/``policy`` and the per-shard nesting under
        ``shards`` (each value is one worker's schema-stable stats map)."""
        responses = self._broadcast({"op": "stats"})
        err = self._first_error(responses)
        if err is not None:
            return err
        queues = dict(self.queue.depths())
        for r in responses.values():
            for tenant, depth in r.get("queues", {}).items():
                queues[tenant] = queues.get(tenant, 0) + depth
        return {
            "clock": max(r["clock"] for r in responses.values()),
            "backend": responses[0]["backend"],
            "buffered": self.queue.buffered
            + sum(r["buffered"] for r in responses.values()),
            "queues": queues,
            "admitted": sum(r["admitted"] for r in responses.values()),
            "completed": sum(r["completed"] for r in responses.values()),
            "cancelled": sum(r["cancelled"] for r in responses.values()),
            "journal_seq": sum(r["journal_seq"] for r in responses.values()),
            "journal_records": sum(r["journal_records"] for r in responses.values()),
            "restarts": sum(r["restarts"] for r in responses.values()),
            "workers": len(self.workers),
            "policy": self.policy.name,
            "shards": {str(i): responses[i] for i in sorted(responses)},
        }

    def _op_validate(self, req: dict[str, Any]) -> dict[str, Any]:
        _, errors = self.flush()
        responses = self._broadcast({"op": "validate"})
        err = self._first_error(responses)
        if err is not None:
            return err
        violations: list[dict[str, Any]] = []
        for shard in sorted(responses):
            for v in responses[shard].get("violations", ()):
                v = dict(v)
                v["shard"] = shard
                violations.append(v)
        return self._with_flush_errors(
            {
                "valid": all(r["valid"] for r in responses.values()),
                "violations": violations,
            },
            errors,
        )

    def _op_checkpoint(self, req: dict[str, Any]) -> dict[str, Any]:
        path = req.get("path")
        if path is not None and not isinstance(path, str):
            raise ValueError(f"path must be a string, got {type(path).__name__}")
        _, errors = self.flush()
        if path is not None:
            requests = {
                i: {"op": "checkpoint", "path": f"{path}.shard{i}"}
                for i in range(len(self.workers))
            }
            responses = self._fan_out(requests)
            err = self._first_error(responses)
            if err is not None:
                return err
            resp: dict[str, Any] = {
                "paths": [responses[i]["path"] for i in sorted(responses)],
            }
        else:
            responses = self._broadcast({"op": "checkpoint"})
            err = self._first_error(responses)
            if err is not None:
                return err
            resp = {"snapshots": [responses[i]["snapshot"] for i in sorted(responses)]}
        resp["clock"] = max(r["clock"] for r in responses.values())
        if all(r.get("journal_rotated") for r in responses.values()):
            resp["journal_rotated"] = True
        return self._with_flush_errors(resp, errors)

    def _op_restore(self, req: dict[str, Any]) -> dict[str, Any]:
        raise ValueError(
            "restore is per-shard in sharded mode: restart the workers and let "
            "each recover from its own --journal/--snapshot lineage"
        )

    def _op_trace(self, req: dict[str, Any]) -> dict[str, Any]:
        path = req.get("path")
        if path is not None and not isinstance(path, str):
            raise ValueError(f"path must be a string, got {type(path).__name__}")
        _, errors = self.flush()
        if path is not None:
            requests = {
                i: {"op": "trace", "path": f"{path}.shard{i}"}
                for i in range(len(self.workers))
            }
            responses = self._fan_out(requests)
            err = self._first_error(responses)
            if err is not None:
                return err
            return self._with_flush_errors(
                {"paths": [responses[i]["path"] for i in sorted(responses)]}, errors
            )
        responses = self._broadcast({"op": "trace"})
        err = self._first_error(responses)
        if err is not None:
            return err
        return self._with_flush_errors(
            {"traces": [responses[i]["trace"] for i in sorted(responses)]}, errors
        )

    def sync_gauges(self) -> None:
        """Refresh the router's sampled-on-read gauges."""
        self._m_uptime.set(self.clock() - self._started)
        self._m_rss.set(process_rss_bytes())

    def _merged_metrics(self) -> "tuple[str, list[dict[str, Any]]]":
        """One scrape for the whole topology: every reachable worker's
        families re-labeled under ``shard``, plus the router's own
        ``repro_router_*`` families.  A shard that is down is counted in
        ``repro_router_shard_unavailable_total`` and simply absent from
        the merge — a scrape never head-of-line blocks on a dead worker.
        """
        responses, failures = self._fan_out_tolerant(
            {i: {"op": "metrics"} for i in range(len(self.workers))}
        )
        for shard in failures:
            self._m_unavailable.inc(shard=str(shard))
        tagged = [
            (str(shard), responses[shard]["families"])
            for shard in sorted(responses)
            if responses[shard].get("ok", True)
        ]
        self.sync_gauges()
        families = merge_dumps(tagged, label="shard") + self.metrics.dump()
        return render_dump(families), families

    def render_metrics(self) -> str:
        """What ``GET /metrics`` serves in sharded mode (duck-typed with
        :meth:`ServiceFrontend.render_metrics`)."""
        return self._merged_metrics()[0]

    def _op_metrics(self, req: dict[str, Any]) -> dict[str, Any]:
        text, families = self._merged_metrics()
        return {"text": text, "families": families}

    def _op_spans(self, req: dict[str, Any]) -> dict[str, Any]:
        limit = req.get("limit")
        if limit is not None:
            if isinstance(limit, bool) or not isinstance(limit, int) or limit < 0:
                raise ValueError(f"limit must be a non-negative integer, got {limit!r}")
        fwd: dict[str, Any] = {"op": "spans"}
        if "for_rid" in req:
            fwd["for_rid"] = req["for_rid"]
        if limit is not None:
            fwd["limit"] = limit
        responses, failures = self._fan_out_tolerant(
            {i: dict(fwd) for i in range(len(self.workers))}
        )
        for shard in failures:
            self._m_unavailable.inc(shard=str(shard))
        # the router's own spans first (tagged "router"), then each
        # shard's in shard order; clock bases differ across processes,
        # so spans are grouped by origin rather than merged by t0
        spans = [
            dict(s, shard="router")
            for s in self.spans.snapshot(rid=req.get("for_rid"), limit=limit)
        ]
        recorded = self.spans.recorded
        for shard in sorted(responses):
            resp = responses[shard]
            if not resp.get("ok", True):
                continue
            spans.extend(dict(s, shard=shard) for s in resp.get("spans", ()))
            recorded += resp.get("recorded", 0)
        return {"spans": spans, "count": len(spans), "recorded": recorded}

    def _op_prune(self, req: dict[str, Any]) -> dict[str, Any]:
        responses = self._broadcast({"op": "prune"})
        err = self._first_error(responses)
        if err is not None:
            return err
        return {
            "dropped": sum(r["dropped"] for r in responses.values()),
            "events": sum(r["events"] for r in responses.values()),
        }

    def _op_shutdown(self, req: dict[str, Any]) -> dict[str, Any]:
        try:
            self._broadcast({"op": "shutdown"})
        except ShardUnavailable:
            pass  # a dead shard cannot block the shutdown of the rest
        self.closed = True
        return {"workers": len(self.workers)}
