"""Versioned session snapshots with an exact-resume guarantee.

A checkpoint (format ``repro-session/2``) captures the *complete* state
of a :class:`~repro.service.session.SchedulingSession` in
struct-of-arrays form: one column per per-job field (demand, duration,
priority key, predecessor indices, release, tenant, state, start/finish,
readiness count), plus the resumable event heap, the ready queue's index
array *in dispatch order*, the virtual clock and event-sequence counter,
the availability vector, the compaction archive and policy, the session
event log and the RNG state.  The guarantee — validated the same way the
instance serializer's round-trips are, by the conformance fuzz family and
the hypothesis suite — is **exact resume**:

    ``restore_session(checkpoint_session(s))`` continues event-for-event
    identically to ``s`` itself, for any interleaving of further
    ``submit`` / ``cancel`` / ``advance`` / ``drain`` calls.

Two properties make this hold: all scheduler state is plain python
scalars (floats survive JSON round-trips exactly; heap entries, keys and
ids are carried verbatim), and the ready queue is stored as its index
array rather than re-derived — restore loads it straight back into the
loop's sorted buffers (one bulk gather of the key/packed images), so a
hot restore does no per-job queue rebuilding.  ``strict=True`` (the
default) additionally cross-checks the snapshot's redundant state — the
availability vector against the running jobs' demands, the ready array
against the queued states — so a corrupted checkpoint fails loudly
instead of resuming subtly wrong; hot paths (the throughput benchmark's
mid-stream restore, the conformance round-trips) pass ``strict=False``
to skip the re-verification.

Format ``repro-session/1`` (per-job record list, no archive) is still
loaded; new snapshots are always written as v2.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.engine.dispatch import J_DONE, J_QUEUED, J_RUNNING, J_WAITING
from repro.service.session import STATE_NAMES, SchedulingSession

__all__ = [
    "SESSION_FORMAT",
    "SESSION_FORMAT_V1",
    "checkpoint_session",
    "restore_session",
    "save_session",
    "load_session",
]

#: Checkpoint format tag (bump on schema change).
SESSION_FORMAT = "repro-session/2"
#: The PR-5 format, still accepted by :func:`restore_session`.
SESSION_FORMAT_V1 = "repro-session/1"

_STATE_INDEX = {name: i for i, name in enumerate(STATE_NAMES)}

_JOB_COLUMNS = (
    "id", "preds", "ext_preds", "demand", "duration", "key",
    "release", "tenant", "state", "remaining", "start", "finish",
)


def checkpoint_session(session: SchedulingSession) -> dict[str, Any]:
    """Snapshot the full session state as a JSON-ready dict."""
    gi = session.gi
    loop = session.loop
    return {
        "format": SESSION_FORMAT,
        "capacities": list(gi.capacities),
        "time_eps": loop.eps,
        "clock": loop.now,
        "seq": loop.seq,
        "compact": {
            "threshold": session.compact_threshold,
            "min_rows": session.compact_min_rows,
        },
        "compactions": session.compactions,
        "jobs": {
            "id": list(gi.order),
            "preds": [list(p) for p in gi.preds],
            "ext_preds": [list(p) for p in gi.ext_preds],
            "demand": [list(d) for d in gi.demand],
            "duration": list(gi.duration),
            "key": list(gi.key),
            "release": list(gi.release),
            "tenant": list(session.tenants),
            "state": [STATE_NAMES[s] for s in loop.state],
            "remaining": list(loop.remaining),
            "start": list(loop.start),
            "finish": list(loop.finish),
        },
        "ready": loop.ri[:loop.L].tolist(),
        "heap": [[t, s, c] for (t, s, c) in loop.heap],
        "available": list(loop.available()),
        # archive records are append-only and frozen once written (restore
        # and compaction only ever build new dicts), so the snapshot can
        # share them instead of copying ~everything the session ever ran
        "archive": list(session.archive),
        # a shallow copy: event tuples are immutable and JSON serializes
        # tuples as arrays, so the rows need no per-event conversion (and
        # an in-memory round trip can adopt them back untouched)
        "events": list(session.events),
        "counters": {
            "submitted": session.counters.submitted,
            "cancelled": session.counters.cancelled,
            "completed": session.counters.completed,
        },
        # journal cursor: recovery skips journal records with seq <= this
        # (additive field — v2 snapshots without it read back as 0)
        "applied_seq": session.applied_seq,
        "rng": session.rng.bit_generator.state,
    }


def restore_session(
    data: "dict[str, Any] | str", *, strict: bool = True
) -> SchedulingSession:
    """Rebuild a session from a checkpoint; exact resume (see module doc).

    Raises ``ValueError`` on an unknown format or malformed records.
    With ``strict`` (the default) the snapshot's redundant state is
    cross-checked too — stored availability against the running jobs'
    demands, the stored ready queue against the queued states — so a
    corrupted snapshot must never resume silently wrong; hot restores
    pass ``strict=False`` to skip the re-verification.
    """
    snap = json.loads(data) if isinstance(data, str) else data
    if not isinstance(snap, dict):
        raise ValueError(
            f"session checkpoint must be a JSON object, got {type(snap).__name__}"
        )
    fmt = snap.get("format")
    if fmt not in (SESSION_FORMAT, SESSION_FORMAT_V1):
        raise ValueError(
            f"unsupported session checkpoint format {fmt!r} "
            f"(expected {SESSION_FORMAT!r})"
        )
    try:
        if fmt == SESSION_FORMAT_V1:
            return _restore_v1(snap)
        return _restore_v2(snap, strict=strict)
    except (KeyError, TypeError, IndexError) as exc:
        # truncated or hand-edited snapshots must fail the documented way
        # (ValueError), not leak KeyError/TypeError to the caller
        raise ValueError(f"malformed session checkpoint: {exc!r}") from exc


def _event_tuple(e) -> tuple:
    """Normalize one serialized event row back to its in-memory tuple."""
    kind = e[0]
    if kind == "start":
        return ("start", e[1], float(e[2]), float(e[3]),
                tuple(int(a) for a in e[4]))
    if kind == "finish":
        return ("finish", e[1], float(e[2]))
    if kind == "submit":
        return ("submit", e[1], float(e[2]), e[3])
    if kind == "cancel":
        return ("cancel", e[1], float(e[2]))
    raise ValueError(f"unknown event kind {kind!r}")


def _load_loop_state(
    session: SchedulingSession,
    snap: dict[str, Any],
    states: list[int],
    *,
    strict: bool,
) -> None:
    """Shared tail of both restore paths: clock, heap, ready, availability,
    archive, events, counters, RNG — the rows are already appended."""
    gi = session.gi
    loop = session.loop
    n = len(gi.order)

    loop.now = float(snap["clock"])
    loop.seq = int(snap["seq"])
    heap = []
    for t, s, c in snap["heap"]:
        c = int(c)
        i = ~c if c < 0 else c
        if not 0 <= i < n:
            raise ValueError(f"heap entry references unknown job index {c}")
        heap.append((float(t), int(s), c))
    heap.sort()  # a valid checkpoint is already heap-ordered; sorting is a superset
    loop.heap = heap

    ready_idx = snap.get("ready")
    if ready_idx is None:
        # v1 stores no queue: it IS the sorted (key, index) list of queued jobs
        order_key = gi.key
        ready_idx = [
            i for _, i in sorted(
                (order_key[i], i) for i, s in enumerate(states) if s == J_QUEUED
            )
        ]
    else:
        ready_idx = [int(i) for i in ready_idx]
        for i in ready_idx:
            if not 0 <= i < n:
                raise ValueError(f"ready queue references unknown job index {i}")
        if strict:
            expected = sorted(
                (gi.key[i], i) for i, s in enumerate(states) if s == J_QUEUED
            )
            if [i for _, i in expected] != ready_idx:
                raise ValueError(
                    "stored ready queue disagrees with the queued job states"
                )
    loop.load_ready(ready_idx)

    stored_avail = [int(a) for a in snap["available"]]
    if len(stored_avail) != gi.d:
        raise ValueError(
            f"availability vector has dimension {len(stored_avail)}, "
            f"platform has {gi.d}"
        )
    if strict:
        # recompute availability from running demands and cross-check
        avail = list(gi.capacities)
        for i, s in enumerate(states):
            if s == J_RUNNING:
                for r, a in enumerate(gi.demand[i]):
                    avail[r] -= a
        if any(a < 0 for a in avail):
            raise ValueError("running jobs overcommit the platform capacities")
        if avail != stored_avail:
            raise ValueError(
                f"stored availability {snap['available']} disagrees with the "
                f"running jobs' demands (recomputed {avail})"
            )
        # waiting jobs must still have a satisfiable readiness count
        for i, s in enumerate(states):
            if s == J_WAITING and loop.remaining[i] <= 0:
                raise ValueError(
                    f"job {gi.order[i]!r}: waiting with no outstanding predecessors"
                )
    if any(a < 0 or a > c for a, c in zip(stored_avail, gi.capacities)):
        raise ValueError(f"availability {stored_avail} is out of bounds")
    loop.avail = stored_avail
    if gi.packable:
        from repro.instance.compiled import PACK_BITS

        loop.avh = gi.fit_mask + sum(
            a << (PACK_BITS * r) for r, a in enumerate(stored_avail)
        )

    archive_src = snap.get("archive", [])
    if strict:
        for rec in archive_src:
            if rec["state"] not in _STATE_INDEX:
                raise ValueError(
                    f"archived job {rec['id']!r}: unknown state {rec['state']!r}"
                )
            session.archive.append(
                {
                    "id": rec["id"],
                    "state": rec["state"],
                    "demand": [int(a) for a in rec["demand"]],
                    "duration": float(rec["duration"]),
                    "key": rec["key"],
                    "preds": list(rec["preds"]),
                    "release": float(rec["release"]),
                    "tenant": rec["tenant"],
                    "start": None if rec["start"] is None else float(rec["start"]),
                    "finish": None if rec["finish"] is None else float(rec["finish"]),
                }
            )
    else:
        # hot path: archived records are append-only and frozen once
        # written, so sharing them between sessions is safe by design
        session.archive.extend(archive_src)
    arch = session.archive
    session.archive_index = {rec["id"]: pos for pos, rec in enumerate(arch)}
    # every finished job, archived or still a live row (see
    # SchedulingSession.done_ids)
    done_ids = {rec["id"] for rec in arch if rec["state"] == "done"}
    order = session.gi.order
    done_ids.update(
        order[i] for i, st in enumerate(states) if st == J_DONE
    )
    session.done_ids = done_ids
    session.compactions = int(snap.get("compactions", 0))

    # rows that survived an in-memory round trip are already the exact
    # in-memory tuples — only JSON-decoded rows (lists) need normalizing
    session.events[:] = [
        e if type(e) is tuple else _event_tuple(e) for e in snap["events"]
    ]
    counters = snap.get("counters", {})
    session.counters.submitted = int(counters.get("submitted", n))
    session.counters.cancelled = int(counters.get("cancelled", 0))
    session.counters.completed = int(counters.get("completed", 0))
    loop.ncompleted = session.counters.completed
    session.applied_seq = int(snap.get("applied_seq", 0))
    if snap.get("rng") is not None:
        rng = np.random.default_rng()
        rng.bit_generator.state = snap["rng"]
        session.rng = rng


def _restore_v2(snap: dict[str, Any], *, strict: bool) -> SchedulingSession:
    compact = snap.get("compact", {})
    thr = compact.get("threshold", 0.5)
    session = SchedulingSession(
        snap["capacities"],
        time_eps=float(snap["time_eps"]),
        compact_threshold=None if thr is None else float(thr),
        compact_min_rows=int(compact.get("min_rows", 512)),
    )
    gi = session.gi
    loop = session.loop

    jobs = snap["jobs"]
    cols = {name: jobs[name] for name in _JOB_COLUMNS}
    k = len(cols["id"])
    if any(len(c) != k for c in cols.values()):
        raise ValueError("job columns have inconsistent lengths")

    states = []
    for jid, name in zip(cols["id"], cols["state"]):
        if name not in _STATE_INDEX:
            raise ValueError(f"job {jid!r}: unknown state {name!r}")
        states.append(_STATE_INDEX[name])
    demands = []
    for jid, dem in zip(cols["id"], cols["demand"]):
        dem = tuple(int(a) for a in dem)
        if len(dem) != gi.d or any(a < 0 for a in dem) or any(
            a > c for a, c in zip(dem, gi.capacities)
        ):
            raise ValueError(f"job {jid!r}: demand {dem} is out of bounds")
        demands.append(dem)
    preds = []
    for row, (jid, pt) in enumerate(zip(cols["id"], cols["preds"])):
        pt = tuple(int(p) for p in pt)
        if any(not 0 <= p < row for p in pt):
            raise ValueError(f"job {jid!r}: predecessor indices {pt} out of order")
        preds.append(pt)
    durations = [float(t) for t in cols["duration"]]
    if any(not 0.0 < t < float("inf") for t in durations):
        raise ValueError("durations must be positive and finite")
    releases = [float(r) for r in cols["release"]]
    if any(not 0.0 <= r < float("inf") for r in releases):
        raise ValueError("releases must be finite and >= 0")

    gi.append_batch(
        cols["id"],
        preds,
        demands,
        durations,
        list(cols["key"]),
        releases,
        [tuple(p) for p in cols["ext_preds"]],
    )
    loop.state = states
    loop.remaining = [int(r) for r in cols["remaining"]]
    loop.start = [None if t is None else float(t) for t in cols["start"]]
    loop.finish = [None if t is None else float(t) for t in cols["finish"]]
    session.tenants = list(cols["tenant"])
    for i, s in enumerate(states):
        if s == J_RUNNING and loop.start[i] is None:
            raise ValueError(f"job {cols['id'][i]!r}: running but has no start time")
        if s == J_DONE and (loop.start[i] is None or loop.finish[i] is None):
            raise ValueError(f"job {cols['id'][i]!r}: done but missing start/finish")

    _load_loop_state(session, snap, states, strict=strict)
    return session


def _restore_v1(snap: dict[str, Any]) -> SchedulingSession:
    """Load a PR-5 per-record snapshot (always cross-checked, as it was)."""
    session = SchedulingSession(snap["capacities"], time_eps=float(snap["time_eps"]))
    gi = session.gi
    loop = session.loop

    states: list[int] = []
    for rec in snap["jobs"]:
        name = rec["state"]
        if name not in _STATE_INDEX:
            raise ValueError(f"job {rec['id']!r}: unknown state {name!r}")
        i = gi.append(
            rec["id"],
            [int(p) for p in rec["preds"]],
            rec["demand"],
            rec["duration"],
            rec["key"],
            rec["release"],
        )
        states.append(_STATE_INDEX[name])
        loop.state.append(_STATE_INDEX[name])
        loop.remaining.append(int(rec["remaining"]))
        loop.start.append(None if rec["start"] is None else float(rec["start"]))
        loop.finish.append(None if rec["finish"] is None else float(rec["finish"]))
        session.tenants.append(rec["tenant"])
        if loop.state[i] == J_RUNNING and loop.start[i] is None:
            raise ValueError(f"job {rec['id']!r}: running but has no start time")
        if loop.state[i] == J_DONE and (
            loop.start[i] is None or loop.finish[i] is None
        ):
            raise ValueError(f"job {rec['id']!r}: done but missing start/finish")

    # v1 event logs are per-event dicts; lower them to the tuple form
    snap = dict(snap)
    snap["events"] = [
        _dict_event_row(e) for e in snap["events"]
    ]
    snap.setdefault("ready", None)
    _load_loop_state(session, snap, states, strict=True)
    return session


def _dict_event_row(e: dict[str, Any]) -> list:
    kind = e["event"]
    if kind == "start":
        return ["start", e["id"], e["time"], e["duration"], e["alloc"]]
    if kind == "finish":
        return ["finish", e["id"], e["time"]]
    if kind == "submit":
        return ["submit", e["id"], e["time"], e.get("tenant", "default")]
    if kind == "cancel":
        return ["cancel", e["id"], e["time"]]
    raise ValueError(f"unknown event kind {kind!r}")


def save_session(
    session: SchedulingSession,
    path: str,
    *,
    indent: int | None = 1,
    fsync: bool = True,
    before_replace=None,
) -> None:
    """Write the checkpoint to ``path`` as JSON, atomically.

    The document lands in a temp file, is fsynced and renamed over
    ``path`` — a crash mid-write leaves the previous checkpoint intact,
    never a torn file.  ``before_replace`` is the chaos harness's hook
    between "durable" and "visible" (see
    :func:`repro.util.atomic.atomic_write_text`).
    """
    from repro.util.atomic import atomic_write_text

    text = json.dumps(checkpoint_session(session), indent=indent) + "\n"
    atomic_write_text(path, text, fsync=fsync, before_replace=before_replace)


def load_session(path: str) -> SchedulingSession:
    """Load a checkpoint written by :func:`save_session`."""
    with open(path) as fh:
        return restore_session(json.load(fh))
