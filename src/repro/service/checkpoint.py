"""Versioned session snapshots with an exact-resume guarantee.

A checkpoint (format ``repro-session/1``) captures the *complete* state of
a :class:`~repro.service.session.SchedulingSession`: every submitted job
(demand, duration, priority key, predecessors, release, tenant, state,
start/finish times, readiness count), the resumable event heap, the
virtual clock and event-sequence counter, the availability vector, the
session event log and the RNG state.  The guarantee — validated the same
way the instance serializer's round-trips are, by the conformance fuzz
family and the hypothesis suite — is **exact resume**:

    ``restore_session(checkpoint_session(s))`` continues event-for-event
    identically to ``s`` itself, for any interleaving of further
    ``submit`` / ``cancel`` / ``advance`` / ``drain`` calls.

Two properties make this hold: all scheduler state is plain python
scalars (floats survive JSON round-trips exactly; heap entries, keys and
ids are carried verbatim), and nothing is re-derived on load that could
disagree with the running session — the ready queue is rebuilt from the
stored states (it is *exactly* the sorted ``(key, index)`` list of queued
jobs) and the availability vector is recomputed from running jobs' demands
and cross-checked against the stored one, so a corrupted checkpoint fails
loudly instead of resuming subtly wrong.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.engine.dispatch import J_DONE, J_RUNNING, J_WAITING
from repro.service.session import STATE_NAMES, SchedulingSession

__all__ = [
    "SESSION_FORMAT",
    "checkpoint_session",
    "restore_session",
    "save_session",
    "load_session",
]

#: Checkpoint format tag (bump on schema change).
SESSION_FORMAT = "repro-session/1"

_STATE_INDEX = {name: i for i, name in enumerate(STATE_NAMES)}


def checkpoint_session(session: SchedulingSession) -> dict[str, Any]:
    """Snapshot the full session state as a JSON-ready dict."""
    gi = session.gi
    loop = session.loop
    jobs = []
    for i, jid in enumerate(gi.order):
        jobs.append(
            {
                "id": jid,
                "demand": list(gi.demand[i]),
                "duration": gi.duration[i],
                "key": gi.key[i],
                "preds": list(gi.preds[i]),
                "release": gi.release[i],
                "tenant": session.tenants[i],
                "state": STATE_NAMES[loop.state[i]],
                "remaining": loop.remaining[i],
                "start": loop.start[i],
                "finish": loop.finish[i],
            }
        )
    return {
        "format": SESSION_FORMAT,
        "capacities": list(gi.capacities),
        "time_eps": loop.eps,
        "clock": loop.now,
        "seq": loop.seq,
        "available": list(loop.available()),
        "jobs": jobs,
        "heap": [[t, s, c] for (t, s, c) in loop.heap],
        "events": [dict(e) for e in session.events],
        "counters": {
            "submitted": session.counters.submitted,
            "cancelled": session.counters.cancelled,
            "completed": session.counters.completed,
        },
        "rng": session.rng.bit_generator.state,
    }


def restore_session(data: "dict[str, Any] | str") -> SchedulingSession:
    """Rebuild a session from a checkpoint; exact resume (see module doc).

    Raises ``ValueError`` on an unknown format, malformed records, or a
    stored availability vector that disagrees with the running jobs'
    demands (a corrupted snapshot must never resume silently wrong).
    """
    snap = json.loads(data) if isinstance(data, str) else data
    if not isinstance(snap, dict):
        raise ValueError(
            f"session checkpoint must be a JSON object, got {type(snap).__name__}"
        )
    if snap.get("format") != SESSION_FORMAT:
        raise ValueError(
            f"unsupported session checkpoint format {snap.get('format')!r} "
            f"(expected {SESSION_FORMAT!r})"
        )
    try:
        return _restore_checked(snap)
    except (KeyError, TypeError) as exc:
        # truncated or hand-edited snapshots must fail the documented way
        # (ValueError), not leak KeyError/TypeError to the caller
        raise ValueError(f"malformed session checkpoint: {exc!r}") from exc


def _restore_checked(snap: dict[str, Any]) -> SchedulingSession:
    session = SchedulingSession(snap["capacities"], time_eps=float(snap["time_eps"]))
    gi = session.gi
    loop = session.loop

    for rec in snap["jobs"]:
        state = rec["state"]
        if state not in _STATE_INDEX:
            raise ValueError(f"job {rec['id']!r}: unknown state {state!r}")
        i = gi.append(
            rec["id"],
            [int(p) for p in rec["preds"]],
            rec["demand"],
            rec["duration"],
            rec["key"],
            rec["release"],
        )
        loop.state.append(_STATE_INDEX[state])
        loop.remaining.append(int(rec["remaining"]))
        loop.start.append(None if rec["start"] is None else float(rec["start"]))
        loop.finish.append(None if rec["finish"] is None else float(rec["finish"]))
        session.tenants.append(rec["tenant"])
        if loop.state[i] == J_RUNNING and loop.start[i] is None:
            raise ValueError(f"job {rec['id']!r}: running but has no start time")
        if loop.state[i] == J_DONE and (
            loop.start[i] is None or loop.finish[i] is None
        ):
            raise ValueError(f"job {rec['id']!r}: done but missing start/finish")

    loop.now = float(snap["clock"])
    loop.seq = int(snap["seq"])
    heap = []
    n = gi.n
    for t, s, c in snap["heap"]:
        c = int(c)
        i = ~c if c < 0 else c
        if not 0 <= i < n:
            raise ValueError(f"heap entry references unknown job index {c}")
        heap.append((float(t), int(s), c))
    heap.sort()  # a valid checkpoint is already heap-ordered; sorting is a superset
    loop.heap = heap

    # the ready queue IS the sorted (key, index) list of queued jobs
    loop.ready = sorted(
        (gi.key[i], i)
        for i, s in enumerate(loop.state)
        if s == _STATE_INDEX["queued"]
    )

    # recompute availability from running demands and cross-check
    avail = list(gi.capacities)
    for i, s in enumerate(loop.state):
        if s == J_RUNNING:
            for r, a in enumerate(gi.demand[i]):
                avail[r] -= a
    if any(a < 0 for a in avail):
        raise ValueError("running jobs overcommit the platform capacities")
    if avail != [int(a) for a in snap["available"]]:
        raise ValueError(
            f"stored availability {snap['available']} disagrees with the "
            f"running jobs' demands (recomputed {avail})"
        )
    if gi.packable:
        loop.avh = gi.packed_capacities + gi.fit_mask
        for i, s in enumerate(loop.state):
            if s == J_RUNNING:
                loop.avh -= gi.packed[i]
    loop.avail = avail

    # waiting jobs must still have a satisfiable readiness count
    for i, s in enumerate(loop.state):
        if s == J_WAITING and loop.remaining[i] <= 0:
            raise ValueError(
                f"job {gi.order[i]!r}: waiting with no outstanding predecessors"
            )

    session.events = [dict(e) for e in snap["events"]]
    counters = snap.get("counters", {})
    session.counters.submitted = int(counters.get("submitted", gi.n))
    session.counters.cancelled = int(counters.get("cancelled", 0))
    session.counters.completed = int(counters.get("completed", 0))
    if snap.get("rng") is not None:
        rng = np.random.default_rng()
        rng.bit_generator.state = snap["rng"]
        session.rng = rng
    return session


def save_session(session: SchedulingSession, path: str, *, indent: int | None = 1) -> None:
    """Write the checkpoint to ``path`` as JSON."""
    with open(path, "w") as fh:
        json.dump(checkpoint_session(session), fh, indent=indent)
        fh.write("\n")


def load_session(path: str) -> SchedulingSession:
    """Load a checkpoint written by :func:`save_session`."""
    with open(path) as fh:
        return restore_session(json.load(fh))
