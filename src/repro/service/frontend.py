"""The `repro serve` front-end: JSON-lines protocol, batching, fair shares.

One request per line, one JSON response per line — over stdin/stdout
(:func:`serve_stdio`) or a TCP socket (:func:`serve_tcp`); both drive the
same transport-free :class:`ServiceFrontend`, so tests and scripted
clients exercise the full protocol without a process boundary.

**Batched admission.**  Submissions are buffered, not admitted
immediately: a batch is admitted when the buffer reaches ``--batch-size``
jobs or the oldest buffered job has waited ``--batch-interval`` (wall
clock) — whichever comes first — and always before any operation whose
semantics depend on the admitted set (``advance``, ``drain``,
``checkpoint``, ``trace``, ``validate``, explicit ``flush``), so virtual
time never advances past work the client already handed over.

**Weighted fair sharing.**  Admission interleaves tenants by stride
scheduling (see :mod:`repro.service.fairshare`): a tenant with weight 2
gets twice the admission share — and thus dispatch preference — of a
weight-1 tenant under contention, while each tenant's own jobs stay
FIFO.  Under a sharded router the fair order is decided once, across all
shards, by the router; workers then run with ``admission="fifo"`` and
preserve the order they are handed.

Requests (``op`` selects; everything else is the payload)::

    {"op": "submit", "jobs": [{"id": "j1", "demand": [2, 1], "duration": 3.5,
                               "preds": [], "release": 0.0, "tenant": "acme"}]}
    {"op": "flush"}                       admit everything buffered now
    {"op": "cancel", "id": "j1"}          buffered or admitted (cascades)
    {"op": "advance", "until": 12.5}      move virtual time, report events
    {"op": "drain"}                       run to quiescence
    {"op": "tenant", "name": "acme", "weight": 2.0}
    {"op": "status"} · {"op": "stats"} · {"op": "validate"} · {"op": "prune"}
    {"op": "checkpoint", "path": "s.json"} · {"op": "restore", "path": "s.json"}
    {"op": "trace", "path": "t.json"}
    {"op": "metrics"}                     Prometheus text + family dump
    {"op": "spans", "for_rid": 7}         the request-span ring (see repro.obs)
    {"op": "shutdown"}

**Observability.**  Every front-end owns a
:class:`~repro.obs.MetricsRegistry` (request latency histograms per op,
admission outcomes, queue depths, journal timings, …) and a
:class:`~repro.obs.SpanLog` (``request`` / ``admit`` / ``journal-commit``
/ ``dispatch`` phases keyed by the wire ``rid``); the ``metrics`` op
returns the rendered exposition, and ``repro serve --metrics-port P``
additionally serves it over ``GET /metrics``.

Each request may be sent bare (wire v1) or wrapped in the versioned
envelope ``{"v": 2, "rid": ..., "op": ...}`` (wire v2, see
:mod:`repro.service.wire`); a v2 request is answered with ``"v"``/
``"rid"`` echoed.  Responses carry ``{"ok": true, "op": ...}`` plus
op-specific fields, or ``{"ok": false, "error": <stable code>,
"detail": <diagnostic>}`` — a malformed request never kills the service.
"""

from __future__ import annotations

import json
import os
import socketserver
import threading
import time
from typing import Any, Callable, TextIO

from repro.obs import MetricsRegistry, SpanLog, process_rss_bytes
from repro.service.chaos import ChaosCrash
from repro.service.checkpoint import (
    checkpoint_session,
    load_session,
    restore_session,
    save_session,
)
from repro.service.fairshare import FairQueue
from repro.service.journal import JournaledSession
from repro.service.session import JobSpec, SchedulingSession
from repro.service.supervisor import RESTARTS_ENV
from repro.service.wire import (
    ADMISSION_FAILED,
    INTERNAL,
    INVALID_REQUEST,
    error_response,
    unwrap_request,
    wrap_response,
)
from repro.util.atomic import atomic_write_text

__all__ = ["ServiceFrontend", "serve_stdio", "serve_tcp", "write_trace"]

#: Default per-request size bound for both transports (chars on stdio,
#: bytes on TCP); ``repro serve --max-request-bytes`` overrides.
DEFAULT_MAX_REQUEST_BYTES = 1 << 20


def write_trace(session: SchedulingSession, path: str) -> None:
    """Atomically write the session's v3 trace to ``path`` (the one trace
    serializer, shared by the ``trace`` op and the CLI's ``--trace``
    shutdown hook) — a crash mid-write never leaves a torn file."""
    atomic_write_text(path, json.dumps(session.to_trace(), indent=1) + "\n")


class ServiceFrontend:
    """Transport-free protocol handler around one :class:`SchedulingSession`.

    ``clock`` injects the wall-clock source for the batch interval (tests
    pass a fake); ``batch_size=1`` admits every submission immediately.
    ``max_pending`` bounds each tenant's buffer: jobs past the bound are
    refused with an explicit ``backpressure`` response field instead of
    growing memory without limit.  ``durable`` wires a
    :class:`~repro.service.journal.JournaledSession` in: mutating verbs
    are write-ahead journaled before they are acknowledged, so a crashed
    worker recovers every acknowledged operation.  ``admission`` selects
    the flush order: ``"fair"`` (weighted stride, the default) or
    ``"fifo"`` (global arrival order — what a worker under a sharded
    router runs, since the router already decided the fair order).
    """

    def __init__(
        self,
        session: "SchedulingSession | None" = None,
        *,
        batch_size: int = 32,
        batch_interval: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
        max_pending: "int | None" = None,
        durable: "JournaledSession | None" = None,
        admission: str = "fair",
        metrics: "MetricsRegistry | None" = None,
        spans: "SpanLog | None" = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {batch_size}")
        if batch_interval < 0:
            raise ValueError(f"batch interval must be >= 0, got {batch_interval}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if admission not in ("fair", "fifo"):
            raise ValueError(f"admission must be 'fair' or 'fifo', got {admission!r}")
        if durable is not None:
            if session is not None and session is not durable.session:
                raise ValueError("session and durable.session must be the same object")
            session = durable.session
        if session is None:
            raise ValueError("a session (or a durable wrapper) is required")
        self.session = session
        self.durable = durable
        self.batch_size = batch_size
        self.batch_interval = batch_interval
        self.max_pending = max_pending
        self.clock = clock
        self.closed = False
        self.queue = FairQueue(fifo=admission == "fifo")
        self._stamps: dict[Any, float] = {}  # wall-clock enqueue stamp per buffered job
        # -- observability (always on at the service tier; the *batch*
        # engine stays uninstrumented because sessions only record once
        # bound).  The registry/span log may be shared (tests, benches).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans = spans if spans is not None else SpanLog()
        self._rid: Any = None  # rid of the request being served, for spans
        self._cur_op: "str | None" = None
        self._started = self.clock()
        m = self.metrics
        self._m_requests = m.counter(
            "repro_requests_total", "Protocol requests handled", labels=("op",)
        )
        self._m_errors = m.counter(
            "repro_request_errors_total",
            "Requests answered with a stable error code",
            labels=("op", "code"),
        )
        self._m_latency = m.histogram(
            "repro_request_latency_seconds",
            "Wall-clock request handling latency",
            labels=("op",),
        )
        self._m_outcomes = m.counter(
            "repro_admission_outcomes_total",
            "Flush-time admission outcomes (admitted / admission_failed / backpressure)",
            labels=("outcome",),
        )
        # the supervisor's lifetime restart count, seeded once from the
        # env var it exports into each child — the gauge is the source
        # the status/stats fields read from now on
        self._restarts = _env_restarts()
        m.gauge(
            "repro_restarts",
            "Supervisor restarts of this worker (boot-time seed)",
        ).set(self._restarts)
        self._m_uptime = m.gauge(
            "repro_uptime_seconds", "Seconds since this front-end was built"
        )
        self._m_rss = m.gauge(
            "repro_process_rss_bytes", "Resident set size of this process"
        )
        m.gauge(
            "repro_backend_info",
            "Active dispatch backend (constant 1, name in the label)",
            labels=("backend",),
        ).set(1, backend=self.session.backend_name)
        self.queue.bind_metrics(m)
        self.session.bind_metrics(m)
        if durable is not None:
            durable.bind_observability(m, self.spans, rid_provider=lambda: self._rid)

    @property
    def _mut(self) -> "JournaledSession | SchedulingSession":
        """The mutation target: the journaled wrapper when durable."""
        return self.durable if self.durable is not None else self.session

    @property
    def _buffered(self) -> int:
        return self.queue.buffered

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def set_weight(self, name: str, weight: float) -> None:
        self.queue.set_weight(name, weight)

    def enqueue(self, spec: JobSpec) -> None:
        """Buffer one job in its tenant's FIFO queue."""
        self.queue.enqueue(spec)
        self._stamps[spec.id] = self.clock()

    def _batch_due(self) -> bool:
        if self.queue.buffered == 0:
            return False
        if self.queue.buffered >= self.batch_size:
            return True
        # per-job stamps: cancelling the oldest buffered job must not let
        # younger jobs inherit its waiting time
        return self.clock() - min(self._stamps.values()) >= self.batch_interval

    def flush(self) -> tuple[list[Any], list[dict[str, Any]]]:
        """Admit everything buffered, in the configured admission order.

        Returns ``(admitted_ids, errors)``; a job the session rejects
        (unknown predecessor, duplicate id, bad demand) produces one error
        record and does not block the rest of the batch.  A job whose
        predecessor lands *later in the same flush* (a cross-tenant
        dependency the fair-share interleaving reordered) is retried after
        the rest, so legal intra-call dependencies never depend on tenant
        names — only genuinely unsatisfiable jobs error.
        """
        errors: list[dict[str, Any]] = []
        pending = self.queue.drain_fair()
        self._stamps.clear()
        if not pending:
            return [], errors
        s0 = self.spans.now()
        durable = self.durable
        if durable is not None and durable.chaos is not None:
            durable.chaos.maybe_crash("op-begin")
        admitted_specs: list[JobSpec] = []
        try:
            # fast path: the whole flush as one all-or-nothing batch —
            # identical admission order and keys to the per-spec loop,
            # and (when durable) one journal record + fsync per flush
            # instead of one per job
            self.session.submit(pending)
            admitted_specs = pending
        except (ValueError, TypeError):
            # something in the batch does not admit: fall back to per-spec
            # admission so individual bad jobs error without blocking the
            # rest (the batch attempt had no side effects)
            while pending:
                deferred: list[tuple[JobSpec, str]] = []
                progressed = False
                for spec in pending:
                    try:
                        self.session.submit([spec])
                        admitted_specs.append(spec)
                        progressed = True
                    except (ValueError, TypeError) as exc:
                        deferred.append((spec, str(exc)))
                if not progressed:  # fixpoint: what's left can never admit
                    errors.extend(
                        {"id": s.id, "error": ADMISSION_FAILED, "detail": e}
                        for s, e in deferred
                    )
                    break
                pending = [s for s, _ in deferred]
        if durable is not None and admitted_specs:
            durable.record_submit(admitted_specs)
        if admitted_specs:
            self._m_outcomes.inc(len(admitted_specs), outcome="admitted")
        if errors:
            self._m_outcomes.inc(len(errors), outcome=ADMISSION_FAILED)
        self.spans.record(
            self._cur_op or "flush", "admit", s0, self.spans.now() - s0,
            rid=self._rid,
        )
        return [s.id for s in admitted_specs], errors

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def handle_request(self, req: Any) -> dict[str, Any]:
        """Process one protocol request; never raises on client errors.

        Accepts both wire shapes (bare v1 and the v2 envelope, which is
        stripped here and re-applied — with the ``rid`` echoed — on the
        response).  The batch-interval clock is consulted before *every*
        op: a buffer whose oldest job has waited past the interval is
        admitted no matter which request arrives next (status, cancel,
        …), so the "size or interval, whichever first" contract does not
        depend on further submissions.  (The loop is synchronous — with
        no requests at all, admission happens at the next one.)  Jobs
        admitted this way are reported as ``admitted_by_batch``.
        """
        body, versioned, rid, err = unwrap_request(req)
        if err is not None:
            return wrap_response(err, versioned, rid)
        op = body.get("op") if isinstance(body, dict) else None
        label = op if isinstance(op, str) else "invalid"
        self._rid = rid
        self._cur_op = label
        t0 = time.perf_counter()
        s0 = self.spans.now()
        try:
            resp = self._dispatch(body)
        finally:
            self._rid = None
            self._cur_op = None
        dur = time.perf_counter() - t0
        self._m_requests.inc(op=label)
        self._m_latency.observe(dur, op=label)
        if resp.get("ok") is False:
            self._m_errors.inc(op=label, code=str(resp.get("error", "internal")))
        self.spans.record(label, "request", s0, self.spans.now() - s0, rid=rid)
        return wrap_response(resp, versioned, rid)

    def _dispatch(self, req: Any) -> dict[str, Any]:
        if not isinstance(req, dict) or "op" not in req:
            return error_response(None, INVALID_REQUEST, "request must be an object with an 'op'")
        op = req["op"]
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            return error_response(op, INVALID_REQUEST, f"unknown op {op!r}")
        try:
            pre_admitted: list[Any] = []
            pre_errors: list[dict[str, Any]] = []
            # "restore" is excluded: flushing a due buffer into the session
            # about to be replaced would silently discard the client's work —
            # its buffered-submissions guard must see the buffer as it is
            if op not in ("submit", "flush", "restore") and self._batch_due():
                pre_admitted, pre_errors = self.flush()
            resp = handler(req)
        except KeyError as exc:
            return error_response(op, INVALID_REQUEST, f"missing required field {exc}")
        except (ValueError, TypeError) as exc:
            # TypeError covers structurally malformed payloads (scalar where
            # a list is expected, non-numeric weight, ...): a bad request
            # must produce an error response, never kill the service
            return error_response(op, INVALID_REQUEST, str(exc))
        except OSError as exc:
            return error_response(op, INTERNAL, str(exc))
        if pre_admitted:
            resp.setdefault("admitted_by_batch", pre_admitted)
        if pre_errors:
            resp.setdefault("admission_errors", []).extend(pre_errors)
        resp.setdefault("ok", True)
        resp.setdefault("op", op)
        return resp

    # -- ops -----------------------------------------------------------
    @staticmethod
    def _path_arg(req: dict[str, Any]) -> str | None:
        """The optional ``path`` field, required to be a string — an integer
        would reach ``open()`` as a raw file descriptor (fd 1 = the response
        stream) and get written over and closed."""
        path = req.get("path")
        if path is not None and not isinstance(path, str):
            raise ValueError(f"path must be a string, got {type(path).__name__}")
        return path

    def _op_submit(self, req: dict[str, Any]) -> dict[str, Any]:
        jobs = req.get("jobs")
        if not isinstance(jobs, list):
            raise ValueError("submit needs a 'jobs' list")
        specs = [JobSpec.from_dict(rec) for rec in jobs]
        refused: list[Any] = []
        for spec in specs:
            if (
                self.max_pending is not None
                and self.queue.depth(spec.tenant) >= self.max_pending
            ):
                # bounded buffers: refuse explicitly instead of growing
                # without limit; the client backs off and retries
                refused.append(spec.id)
            else:
                self.enqueue(spec)
        resp: dict[str, Any] = {"buffered": self.queue.buffered}
        if refused:
            resp["backpressure"] = refused
            self._m_outcomes.inc(len(refused), outcome="backpressure")
        if self._batch_due():
            admitted, errors = self.flush()
            resp.update({"admitted": admitted, "buffered": 0})
            if errors:
                resp["errors"] = errors
        return resp

    def _op_flush(self, req: dict[str, Any]) -> dict[str, Any]:
        admitted, errors = self.flush()
        resp: dict[str, Any] = {"admitted": admitted}
        if errors:
            resp["errors"] = errors
        return resp

    def _op_cancel(self, req: dict[str, Any]) -> dict[str, Any]:
        jid = req["id"]
        was_buffered = jid in self.queue.buffered_ids()
        if was_buffered:
            cancelled: list[Any] = []
            gone = {jid}
        else:
            try:
                cancelled = list(self._mut.cancel(jid))
            except KeyError:
                # distinguish "no such job" from a missing request field
                raise ValueError(f"unknown job {jid!r}") from None
            gone = set(cancelled)
        if gone:
            # cascade through the buffers too: a dependent of a withdrawn
            # job — buffered or already admitted — could never admit
            self.queue.cascade(gone)
            removed = self.queue.remove_ids(gone)
            cancelled.extend(removed)
            for rid in removed:
                self._stamps.pop(rid, None)
        return {"cancelled": cancelled, "buffered": was_buffered}

    @staticmethod
    def _with_flush_errors(resp: dict[str, Any], errors) -> dict[str, Any]:
        # an implicit flush must never swallow rejections: advance/drain/
        # checkpoint/trace responses carry them alongside their own payload
        if errors:
            resp["admission_errors"] = errors
        return resp

    def _op_advance(self, req: dict[str, Any]) -> dict[str, Any]:
        _, errors = self.flush()
        want_events = req.get("events", True)
        s0 = self.spans.now()
        out = self._mut.advance(float(req["until"]), events=bool(want_events))
        self.spans.record("advance", "dispatch", s0, self.spans.now() - s0,
                          rid=self._rid)
        resp: dict[str, Any] = {"clock": self.session.now}
        if want_events:
            resp["events"] = out
        else:
            # count only: bulk drivers (the sharded bench client) skip a
            # dict allocation — and a wire record — per event
            resp["event_count"] = out
        return self._with_flush_errors(resp, errors)

    def _op_drain(self, req: dict[str, Any]) -> dict[str, Any]:
        _, errors = self.flush()
        s0 = self.spans.now()
        self._mut.drain()
        self.spans.record("drain", "dispatch", s0, self.spans.now() - s0,
                          rid=self._rid)
        return self._with_flush_errors(
            {
                "clock": self.session.now,
                "makespan": self.session.makespan(),
                "completed": self.session.counters.completed,
            },
            errors,
        )

    def _op_status(self, req: dict[str, Any]) -> dict[str, Any]:
        status = self.session.status()
        status["buffered"] = self.queue.buffered
        status["tenants"] = self.queue.describe()
        status["pid"] = os.getpid()
        # byte-compatible with the old env-var read: the gauge was seeded
        # from the same variable when this front-end was built
        status["restarts"] = self._restarts
        status["uptime_seconds"] = self.clock() - self._started
        status["rss_bytes"] = process_rss_bytes()
        status["backend"] = self.session.backend_name
        if self.durable is not None:
            status["journal"] = {
                "path": self.durable.journal.path,
                "records": self.durable.journal.appended,
                "applied_seq": self.session.applied_seq,
                "replayed": self.durable.replayed,
                "deduped": self.durable.deduped,
            }
        return status

    def _op_stats(self, req: dict[str, Any]) -> dict[str, Any]:
        """Compact operational counters — the schema-stable ``stats`` map.

        Every key below is always present (``journal_records`` is 0 for a
        non-durable service), so dashboards can parse it without
        existence checks; the sharded router reports the same shape per
        shard under a ``shards`` key.  Documented in the README
        ("Operations: the stats schema").
        """
        c = self.session.counters
        return {
            "clock": self.session.now,
            "backend": self.session.backend_name,
            "buffered": self.queue.buffered,
            "queues": self.queue.depths(),
            "admitted": c.submitted,
            "completed": c.completed,
            "cancelled": c.cancelled,
            "journal_seq": self.session.applied_seq,
            "journal_records": (
                self.durable.journal.appended if self.durable is not None else 0
            ),
            "restarts": self._restarts,
        }

    def _op_tenant(self, req: dict[str, Any]) -> dict[str, Any]:
        self.set_weight(str(req["name"]), float(req["weight"]))
        return {"name": req["name"], "weight": float(req["weight"])}

    def _op_validate(self, req: dict[str, Any]) -> dict[str, Any]:
        from repro.conformance.invariants import validate_schedule

        _, errors = self.flush()
        report = validate_schedule(self.session.to_schedule(), strict=True)
        return self._with_flush_errors(
            {
                "valid": report.ok,
                "violations": [
                    {"kind": v.kind, "detail": v.detail} for v in report.violations
                ],
            },
            errors,
        )

    def _op_checkpoint(self, req: dict[str, Any]) -> dict[str, Any]:
        path = self._path_arg(req)
        _, errors = self.flush()
        if path is not None:
            save_session(self.session, path)
            resp = {"path": path, "clock": self.session.now}
        else:
            resp = {
                "snapshot": checkpoint_session(self.session),
                "clock": self.session.now,
            }
        if self.durable is not None:
            # an explicit checkpoint also rotates the journal: the durable
            # snapshot now covers everything the journal held
            self.durable.checkpoint()
            resp["journal_rotated"] = True
        return self._with_flush_errors(resp, errors)

    def _op_restore(self, req: dict[str, Any]) -> dict[str, Any]:
        if self.queue.buffered:
            raise ValueError("cannot restore with submissions still buffered")
        if "path" in req:
            session = load_session(self._path_arg(req))
        elif "snapshot" in req:
            session = restore_session(req["snapshot"])
        else:
            raise ValueError("restore needs a 'path' or an inline 'snapshot'")
        if self.durable is not None:
            # durability follows the new lineage: snapshot it, rotate
            self.durable.adopt(session)
        self.session = session
        # metrics binding is runtime wiring, never checkpointed: rebind
        # the adopted session so the same registry families keep counting
        session.bind_metrics(self.metrics)
        return {
            "clock": self.session.now,
            "jobs": len(self.session.gi.order) + len(self.session.archive),
        }

    def _op_trace(self, req: dict[str, Any]) -> dict[str, Any]:
        path = self._path_arg(req)
        _, errors = self.flush()
        if path is not None:
            write_trace(self.session, path)
            return self._with_flush_errors({"path": path}, errors)
        return self._with_flush_errors({"trace": self.session.to_trace()}, errors)

    def _op_prune(self, req: dict[str, Any]) -> dict[str, Any]:
        return {"dropped": self._mut.prune_events(),
                "events": len(self.session.events)}

    def sync_gauges(self) -> None:
        """Refresh the sampled-on-read gauges (uptime, RSS, clock)."""
        self._m_uptime.set(self.clock() - self._started)
        self._m_rss.set(process_rss_bytes())

    def render_metrics(self) -> str:
        """The Prometheus text exposition (gauges refreshed first) — what
        ``GET /metrics`` and the ``metrics`` op both serve."""
        self.sync_gauges()
        return self.metrics.render()

    def _op_metrics(self, req: dict[str, Any]) -> dict[str, Any]:
        self.sync_gauges()
        return {"text": self.metrics.render(), "families": self.metrics.dump()}

    def _op_spans(self, req: dict[str, Any]) -> dict[str, Any]:
        limit = req.get("limit")
        if limit is not None:
            if isinstance(limit, bool) or not isinstance(limit, int) or limit < 0:
                raise ValueError(f"limit must be a non-negative integer, got {limit!r}")
        return {
            "spans": self.spans.snapshot(rid=req.get("for_rid"), limit=limit),
            "count": len(self.spans),
            "recorded": self.spans.recorded,
        }

    def _op_shutdown(self, req: dict[str, Any]) -> dict[str, Any]:
        self.closed = True
        return {"clock": self.session.now}


def _env_restarts() -> int:
    """The supervisor's lifetime restart count, read once at boot from
    the env var it exports into each child (see
    :mod:`repro.service.supervisor`) and republished as the
    ``repro_restarts`` gauge."""
    try:
        return int(os.environ.get(RESTARTS_ENV, "0"))
    except ValueError:
        return 0


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------
def _handle_line(frontend: ServiceFrontend, line: str) -> dict[str, Any]:
    try:
        req = json.loads(line)
    except json.JSONDecodeError as exc:
        return error_response(None, INVALID_REQUEST, f"bad JSON: {exc}")
    try:
        return frontend.handle_request(req)
    except ChaosCrash:
        raise  # an injected crash must kill the worker, not be swallowed
    except Exception as exc:  # the last-resort backstop: a handler bug
        # must produce an error response, never take down the serving loop
        return error_response(None, INTERNAL, f"{type(exc).__name__}: {exc}")


def _drain_oversized(readline: Callable[[int], Any], limit: int) -> None:
    """Discard the rest of an oversized line so the stream resynchronizes
    at the next newline (works on text and byte streams alike)."""
    while True:
        chunk = readline(limit)
        if not chunk or chunk[-1:] in ("\n", b"\n"):
            return


def serve_stdio(
    frontend: ServiceFrontend,
    in_stream: TextIO,
    out_stream: TextIO,
    *,
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    lock: "threading.Lock | None" = None,
) -> int:
    """One request per line on ``in_stream``, one response per line out.

    Returns the process exit code (0 on clean shutdown or EOF).  Blank
    lines are ignored; a malformed line produces an error response and
    the loop continues.  A line longer than ``max_request_bytes`` is
    discarded up to its newline and answered with an error — adversarial
    input bounds memory instead of growing it.  ``lock``, when given, is
    held around each request — the metrics HTTP listener shares it so a
    scrape never reads the registry mid-mutation.
    """
    while True:
        line = in_stream.readline(max_request_bytes + 1)
        if not line:
            break
        if len(line) > max_request_bytes and not line.endswith("\n"):
            _drain_oversized(in_stream.readline, max_request_bytes)
            resp = error_response(
                None, INVALID_REQUEST, f"request exceeds {max_request_bytes} bytes"
            )
        else:
            line = line.strip()
            if not line:
                continue
            if lock is not None:
                with lock:
                    resp = _handle_line(frontend, line)
            else:
                resp = _handle_line(frontend, line)
        try:
            out_stream.write(json.dumps(resp) + "\n")
            out_stream.flush()
        except OSError:
            return 0  # the reader went away: nothing left to serve
        if frontend.closed:
            break
    return 0


class _ServiceTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


def serve_tcp(
    frontend: ServiceFrontend,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    ready: "threading.Event | None" = None,
    on_bound: "Callable[[int], None] | None" = None,
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    lock: "threading.Lock | None" = None,
) -> int:
    """Serve the line protocol on a TCP socket until a ``shutdown`` op.

    Connections are handled concurrently but requests are serialized
    through one lock — the session is single-threaded state.  Pass
    ``lock`` to share that serialization with an external reader (the
    metrics HTTP listener); by default a private one is created.
    ``on_bound`` is called with the bound port once listening (with
    ``port=0`` this is the only way anyone learns which port the OS
    picked); ``ready`` (tests) is set at the same moment, with the port
    published as ``ready.port``.  Returns 0.

    Errors are isolated per connection: an oversized line is answered
    with an error, undecodable bytes are answered with an error, and a
    mid-request disconnect closes that one connection — the server and
    every other connection live on.
    """
    if lock is None:
        lock = threading.Lock()

    class Handler(socketserver.StreamRequestHandler):
        def handle(self) -> None:
            try:
                self._serve_connection()
            except (OSError, ValueError):
                # disconnect mid-request / unusable socket: close this
                # connection only, never the server
                return

        def _serve_connection(self) -> None:
            while True:
                raw = self.rfile.readline(max_request_bytes + 1)
                if not raw:
                    return
                if len(raw) > max_request_bytes and not raw.endswith(b"\n"):
                    _drain_oversized(self.rfile.readline, max_request_bytes)
                    resp = error_response(
                        None, INVALID_REQUEST,
                        f"request exceeds {max_request_bytes} bytes",
                    )
                else:
                    try:
                        line = raw.decode("utf-8").strip()
                    except UnicodeDecodeError as exc:
                        resp = error_response(
                            None, INVALID_REQUEST, f"invalid UTF-8: {exc}"
                        )
                    else:
                        if not line:
                            continue
                        with lock:
                            resp = _handle_line(frontend, line)
                self.wfile.write((json.dumps(resp) + "\n").encode("utf-8"))
                self.wfile.flush()
                if frontend.closed:
                    threading.Thread(target=server.shutdown, daemon=True).start()
                    return

    with _ServiceTCPServer((host, port), Handler) as server:
        bound = server.server_address[1]
        if on_bound is not None:
            on_bound(bound)
        if ready is not None:
            ready.port = bound  # type: ignore[attr-defined]
            ready.set()
        server.serve_forever(poll_interval=0.05)
    return 0
