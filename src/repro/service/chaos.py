"""Deterministic seeded fault injection for the durable service layer.

A :class:`ChaosInjector` owns one seeded RNG and a rate per named
injection point; every point the durable session passes through asks
``fires(point)``, so a given ``(spec, seed)`` pair replays the *same*
crash sites on every run — the conformance ``scenario="crash"`` family
and the recovery tests rely on that determinism to be reproducible from
a seed alone.

Injection points (``CRASH_POINTS``):

``op-begin``
    before any effect of a journaled verb — the client re-submits and
    nothing was lost;
``op-applied``
    after the in-memory apply but before the journal append (a crash
    mid-admission): the effect dies with the process and the client's
    retry re-admits it;
``op-journaled``
    after the journal append but before the acknowledgment: recovery
    replays the record and the client's retry is deduplicated;
``mid-drain``
    inside ``drain``, after part of the event stream has been
    processed;
``checkpoint-temp``
    between "new checkpoint written durable" and "new checkpoint
    renamed visible" (a torn/aborted checkpoint write);
``journal-torn``
    the journal append writes only a byte prefix of the record before
    dying (the classic torn tail).

``flush-delay`` is the one non-crash point: it injects a delay (by
default nothing; pass ``delay=``) before journal flushes, modelling a
slow disk without killing anything.

A crash is delivered by raising :class:`ChaosCrash` (in-process
harnesses catch it and run recovery) or by an ``on_crash`` override —
``repro serve --chaos`` installs ``os._exit(137)`` so a served process
dies exactly as SIGKILL would.  ``max_crashes`` quiets the injector
after N crashes so retry loops always terminate.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Mapping

import numpy as np

__all__ = ["CRASH_POINTS", "DELAY_POINTS", "ChaosCrash", "ChaosInjector"]

CRASH_POINTS = (
    "op-begin",
    "op-applied",
    "op-journaled",
    "mid-drain",
    "checkpoint-temp",
    "journal-torn",
)
DELAY_POINTS = ("flush-delay",)


class ChaosCrash(RuntimeError):
    """An injected crash: the process 'died' at ``args[0]``."""


class ChaosInjector:
    """Seeded, rate-per-point fault injector (see module docstring)."""

    def __init__(
        self,
        rates: Mapping[str, float],
        *,
        seed: int = 0,
        max_crashes: "int | None" = None,
        on_crash: "Callable[[str], Any] | None" = None,
        delay: float = 0.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        known = set(CRASH_POINTS) | set(DELAY_POINTS)
        unknown = set(rates) - known
        if unknown:
            raise ValueError(
                f"unknown chaos point(s) {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        for point, rate in rates.items():
            if not 0.0 <= float(rate) <= 1.0:
                raise ValueError(f"chaos rate for {point!r} must be in [0, 1], got {rate}")
        self.rates = {p: float(r) for p, r in rates.items()}
        self.rng = np.random.default_rng(seed)
        self.max_crashes = max_crashes
        self.on_crash = on_crash
        self.delay = float(delay)
        self.sleep = sleep
        self.crashes = 0
        self.fired: list[str] = []  # every crash site, in order

    @classmethod
    def from_spec(
        cls,
        spec: str,
        *,
        seed: int = 0,
        max_crashes: "int | None" = None,
        on_crash: "Callable[[str], Any] | None" = None,
        delay: float = 0.0,
    ) -> "ChaosInjector":
        """Parse ``"point:rate,point:rate"`` (e.g. ``"op-applied:0.05,mid-drain:0.2"``).

        A bare ``point`` (no ``:rate``) means rate 1.0.  This is the
        ``--chaos`` / ``REPRO_CHAOS`` syntax.
        """
        rates: dict[str, float] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            point, _, rate = part.partition(":")
            try:
                rates[point.strip()] = float(rate) if rate else 1.0
            except ValueError:
                raise ValueError(f"malformed chaos rate in {part!r}") from None
        if not rates:
            raise ValueError(f"empty chaos spec {spec!r}")
        return cls(
            rates, seed=seed, max_crashes=max_crashes, on_crash=on_crash, delay=delay
        )

    # ------------------------------------------------------------------
    def fires(self, point: str) -> bool:
        """Draw the point's coin (only points with a configured rate draw,
        so enabling one point never shifts another's stream)."""
        rate = self.rates.get(point, 0.0)
        if rate <= 0.0:
            return False
        if self.max_crashes is not None and self.crashes >= self.max_crashes:
            return False
        return bool(self.rng.random() < rate)

    def crash(self, point: str) -> None:
        """Deliver a crash at ``point`` (raises :class:`ChaosCrash` unless
        ``on_crash`` overrides — e.g. ``os._exit`` under ``repro serve``)."""
        self.crashes += 1
        self.fired.append(point)
        if self.on_crash is not None:
            self.on_crash(point)
        raise ChaosCrash(point)

    def maybe_crash(self, point: str) -> None:
        if self.fires(point):
            self.crash(point)

    def maybe_delay(self, point: str = "flush-delay") -> None:
        if self.fires(point) and self.delay > 0.0:
            self.sleep(self.delay)
