"""The versioned wire envelope and the stable error-code vocabulary.

The service speaks JSON-lines in two shapes:

* **v1 (legacy)** — a bare operation object ``{"op": ..., ...}`` answered
  by a bare response ``{"ok": ..., "op": ..., ...}``.  Still accepted,
  still answered in v1 shape; new clients should move to v2 (see the
  deprecation note in the README).
* **v2 (``repro-wire/2``)** — the same payload wrapped in an envelope
  ``{"v": 2, "rid": <request id>, "op": ..., ...}``.  The response echoes
  ``{"v": 2, "rid": <same id>}``, which is what lets the sharded router
  correlate fan-out replies and lets clients pipeline safely across
  reconnects.  ``rid`` is optional and opaque (any JSON scalar); when
  omitted the response carries ``"v": 2`` only.

Error responses are ``{"ok": false, "error": <code>, "detail": <text>}``
where ``error`` is drawn from the **closed** code vocabulary below and
``detail`` is a human diagnostic with no stability guarantee.  Clients
dispatch on the code, never on the detail text.

=====================  ==================================================
code                   meaning
=====================  ==================================================
``invalid_request``    malformed JSON/envelope, unknown op, bad or
                       missing fields, an op refused in the current mode
``admission_failed``   a submitted job the session rejected (duplicate
                       id, unknown predecessor, demand exceeds capacity)
``backpressure``       the service is shedding load: a bounded buffer is
                       full or a shard is temporarily unreachable —
                       back off and retry
``internal``           a service-side failure (handler bug, I/O error);
                       nothing was necessarily applied
=====================  ==================================================
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "WIRE_FORMAT",
    "WIRE_VERSION",
    "INVALID_REQUEST",
    "ADMISSION_FAILED",
    "BACKPRESSURE",
    "INTERNAL",
    "ERROR_CODES",
    "error_response",
    "unwrap_request",
    "wrap_response",
]

WIRE_FORMAT = "repro-wire/2"
WIRE_VERSION = 2

INVALID_REQUEST = "invalid_request"
ADMISSION_FAILED = "admission_failed"
BACKPRESSURE = "backpressure"
INTERNAL = "internal"

#: the closed set a client may dispatch on
ERROR_CODES = (INVALID_REQUEST, ADMISSION_FAILED, BACKPRESSURE, INTERNAL)


def error_response(op: Any, code: str, detail: str) -> dict[str, Any]:
    """A v1-shaped error body: ``error`` is the stable code, ``detail``
    the human diagnostic.  (The envelope, if any, is re-applied by
    :func:`wrap_response`.)"""
    resp: dict[str, Any] = {"ok": False, "error": code, "detail": detail}
    if op is not None:
        resp["op"] = op
    return resp


def unwrap_request(req: Any) -> tuple[Any, bool, Any, "dict[str, Any] | None"]:
    """Split an incoming request into ``(body, versioned, rid, err)``.

    ``body`` is the bare-op payload the handlers see (the envelope keys
    are stripped); ``versioned`` says whether the response must carry the
    v2 envelope; ``rid`` is the request id to echo (``None`` when absent).
    ``err`` is a ready error body for an unsupported version — the caller
    returns ``wrap_response(err, versioned, rid)`` without dispatching.
    """
    if not isinstance(req, dict) or "v" not in req:
        return req, False, None, None
    rid = req.get("rid")
    if req["v"] != WIRE_VERSION:
        err = error_response(
            None,
            INVALID_REQUEST,
            f"unsupported wire version {req['v']!r} (this service speaks "
            f"{WIRE_FORMAT} and the legacy bare-op v1)",
        )
        return None, True, rid, err
    body = {k: v for k, v in req.items() if k not in ("v", "rid")}
    return body, True, rid, None


def wrap_response(resp: dict[str, Any], versioned: bool, rid: Any) -> dict[str, Any]:
    """Apply the v2 envelope to a bare response when the request used it."""
    if versioned:
        resp["v"] = WIRE_VERSION
        if rid is not None:
            resp["rid"] = rid
    return resp
