"""Incremental scheduling sessions: submit / cancel / advance / drain.

A :class:`SchedulingSession` is the online form of the batch pipeline:
instead of compiling a frozen instance and running the dispatch loop to
completion, it owns a
:class:`~repro.instance.compiled.GrowableCompiledInstance` (submissions
append rows, never recompile) and an
:class:`~repro.engine.dispatch.IncrementalPriorityLoop` (a resumable heap
plus readiness state over array-native ready buffers), and exposes the
service verbs:

* :meth:`~SchedulingSession.submit` — admit jobs (with chosen demands,
  durations, precedences, releases and priority keys) at the current
  virtual time; a whole batch is validated with vectorized bounds checks
  and lowered into the growable rows in one shot;
* :meth:`~SchedulingSession.cancel` — best-effort cancellation: a job
  that has not started is withdrawn together with its pending descendants
  (their precedence constraint became unsatisfiable); a running or
  completed job is too late to cancel;
* :meth:`~SchedulingSession.advance` — move virtual time forward,
  dispatching and completing work on the way;
* :meth:`~SchedulingSession.drain` — run to quiescence (the realized
  schedule is available via :meth:`~SchedulingSession.to_schedule`).

**Batch identity.**  Dispatch order inside the session is exactly the
batch discipline — the ready queue is totally ordered by ``(key,
submission index)``, every pass starts every fitting job, simultaneous
events batch within ``time_eps`` — so a session driven
*submission-order-faithfully* (every job submitted before virtual time
reaches the start it would get in the batch run) produces a schedule
event-for-event identical to
:func:`repro.core.list_scheduler.list_schedule` on the same job set.  The
conformance fuzz family (``scenario="service"``) and the hypothesis suite
assert this across every registered scheduler's allocations.

**Compaction.**  A long-lived session accumulates rows for finished and
cancelled jobs.  When the dead-row fraction crosses
``compact_threshold`` (and at least ``compact_min_rows`` rows exist),
``advance``/``drain`` compact the instance: dead rows move into the
session *archive* (full records, keyed by id — completed history is never
lost, only moved out of the hot arrays) and the growable layout is
rebuilt contiguous.  Compaction is semantically invisible: schedules,
traces, duplicate-id checks, predecessor resolution and checkpoints all
see through it, and the conformance family drives sessions with
aggressive compaction settings to pin that.

Sessions carry an RNG (:attr:`SchedulingSession.rng`) for stochastic
clients — e.g. the service-throughput benchmark's open-loop Poisson
client draws inter-arrival times from it — so that checkpoint/restore
(:mod:`repro.service.checkpoint`) resumes the *client's* stream exactly
too, not just the scheduler's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Mapping, Sequence

import numpy as np

from repro.engine.dispatch import (
    J_CANCELLED,
    J_DONE,
    J_QUEUED,
    J_RUNNING,
    J_WAITING,
    IncrementalPriorityLoop,
)
from repro.engine.kernel import TIME_EPS
from repro.instance.compiled import GrowableCompiledInstance

__all__ = ["JobSpec", "SchedulingSession", "STATE_NAMES"]

JobId = Hashable

#: Human-readable names of the loop's job states (checkpoint format order).
STATE_NAMES = ("waiting", "queued", "running", "done", "cancelled")

_DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class JobSpec:
    """One submitted job: the service protocol's unit of admission.

    ``id`` must be a JSON-scalar (``str`` or ``int``) so checkpoints and
    the wire protocol carry it verbatim.  ``preds`` name already-submitted
    jobs (or earlier jobs of the same ``submit`` call) — the online
    precedence model.  ``key`` is the priority sort key (smaller starts
    first, ties by submission order); omitted, the job's submission index
    is used, i.e. FIFO.  ``release`` gates the earliest start in virtual
    time; a release in the past is simply "available now".
    """

    id: JobId
    demand: tuple[int, ...]
    duration: float
    preds: tuple[JobId, ...] = ()
    release: float = 0.0
    key: float | int | None = None
    tenant: str = _DEFAULT_TENANT

    @classmethod
    def from_dict(cls, rec: Mapping[str, Any]) -> "JobSpec":
        """Build from a wire/protocol record; structural problems raise
        ``ValueError`` (unknown fields, missing fields, non-scalar ids or
        predecessors, scalar demands) so transport layers can buffer the
        result without ever tripping over an unhashable or mistyped field.
        """
        if not isinstance(rec, Mapping):
            raise ValueError(f"job record must be an object, got {type(rec).__name__}")
        unknown = set(rec) - {"id", "demand", "duration", "preds", "release", "key", "tenant"}
        if unknown:
            raise ValueError(f"unknown job fields: {sorted(unknown)}")
        try:
            jid = rec["id"]
            raw_demand = rec["demand"]
            duration = float(rec["duration"])
        except KeyError as exc:
            raise ValueError(f"job record missing required field {exc.args[0]!r}") from None
        except (TypeError, ValueError) as exc:
            raise ValueError(f"job record has a malformed duration: {exc}") from None
        if isinstance(jid, bool) or not isinstance(jid, (str, int)):
            raise ValueError(f"job id {jid!r} must be a string or integer")
        if isinstance(raw_demand, (str, int, float)) or not hasattr(raw_demand, "__iter__"):
            raise ValueError(f"job {jid!r}: demand must be a list of per-type amounts")
        raw_preds = rec.get("preds", ())
        if isinstance(raw_preds, str):  # a bare id would iterate character-wise
            raise ValueError(f"job {jid!r}: preds must be a list of job ids")
        try:
            demand = tuple(int(a) for a in raw_demand)
            preds = tuple(raw_preds)
            release = float(rec.get("release", 0.0))
        except (TypeError, ValueError) as exc:
            raise ValueError(f"job {jid!r}: malformed record: {exc}") from None
        for p in preds:
            if isinstance(p, bool) or not isinstance(p, (str, int)):
                raise ValueError(
                    f"job {jid!r}: predecessor {p!r} must be a string or integer"
                )
        return cls(
            id=jid,
            demand=demand,
            duration=duration,
            preds=preds,
            release=release,
            key=rec.get("key"),
            tenant=str(rec.get("tenant", _DEFAULT_TENANT)),
        )

    def to_dict(self) -> dict[str, Any]:
        """The wire/journal record; ``from_dict`` round-trips it exactly
        (defaults are omitted, so journals stay compact)."""
        rec: dict[str, Any] = {
            "id": self.id,
            "demand": list(self.demand),
            "duration": self.duration,
        }
        if self.preds:
            rec["preds"] = list(self.preds)
        if self.release:
            rec["release"] = self.release
        if self.key is not None:
            rec["key"] = self.key
        if self.tenant != _DEFAULT_TENANT:
            rec["tenant"] = self.tenant
        return rec


@dataclass
class _Counters:
    """Session-lifetime counters (monotone; survive checkpoints)."""

    submitted: int = 0
    cancelled: int = 0
    completed: int = 0


def _event_dict(e: tuple) -> dict[str, Any]:
    """Materialize one compact event tuple into its protocol dict."""
    kind = e[0]
    if kind == "start":
        return {
            "event": "start",
            "id": e[1],
            "time": e[2],
            "duration": e[3],
            "alloc": list(e[4]),
        }
    if kind == "finish":
        return {"event": "finish", "id": e[1], "time": e[2]}
    if kind == "submit":
        return {"event": "submit", "id": e[1], "time": e[2], "tenant": e[3]}
    return {"event": "cancel", "id": e[1], "time": e[2]}


class SchedulingSession:
    """A long-running incremental scheduling session (see module docstring).

    Parameters
    ----------
    capacities:
        Per-type platform capacities ``P^(i)``.
    time_eps:
        Simultaneous-event batching tolerance (the engine's default).
    seed:
        Seed of the session RNG exposed to stochastic clients.
    compact_threshold:
        Dead-row fraction at which ``advance``/``drain`` compact the
        instance (``None`` disables compaction).
    compact_min_rows:
        Minimum row count before compaction is considered — keeps small
        sessions from churning.
    backend:
        Dispatch backend for the incremental loop (a registry name or
        backend object, see :mod:`repro.engine.backends`); ``None``
        resolves ``REPRO_BACKEND`` > default.  An execution detail, not
        session state: checkpoints never persist it, so a restored
        session re-resolves on the restoring host.
    """

    def __init__(
        self,
        capacities: Sequence[int],
        *,
        time_eps: float = TIME_EPS,
        seed: int | None = None,
        compact_threshold: float | None = 0.5,
        compact_min_rows: int = 512,
        backend: "str | object | None" = None,
    ) -> None:
        if compact_threshold is not None and not 0.0 < compact_threshold <= 1.0:
            raise ValueError(
                f"compact_threshold must be in (0, 1] or None, got {compact_threshold}"
            )
        if compact_min_rows < 1:
            raise ValueError(f"compact_min_rows must be >= 1, got {compact_min_rows}")
        self.gi = GrowableCompiledInstance(capacities)
        self.events: list[tuple] = []
        self.loop = IncrementalPriorityLoop(
            self.gi, log=self.events, time_eps=time_eps, backend=backend
        )
        self.tenants: list[str] = []  # per-job tenant label, row order
        self.counters = _Counters()
        self.rng = np.random.default_rng(seed)
        self.compact_threshold = compact_threshold
        self.compact_min_rows = int(compact_min_rows)
        self.compactions = 0
        # dead rows compacted away: full records by id (the cold store)
        self.archive: list[dict[str, Any]] = []
        self.archive_index: dict[JobId, int] = {}
        #: ids of every *completed* job, live row or archived — the
        #: one-hash membership test ``submit`` uses to accept a batch
        #: whose predecessors have all finished without resolving them
        #: one by one (archived-cancelled ids fail it and take the
        #: precise-error path through :attr:`archive_index`).  Maintained
        #: from the finish entries of the event log as :meth:`advance` /
        #: :meth:`drain` consume it, and rebuilt whole on restore.
        self.done_ids: set[JobId] = set()
        #: sequence id of the last journaled operation applied to this
        #: session (0 = none).  The write-ahead journal
        #: (:mod:`repro.service.journal`) stamps every record with the
        #: next value; checkpoints carry it so recovery can skip journal
        #: records the snapshot already contains.
        self.applied_seq = 0
        #: metrics registry (``None`` = uninstrumented, the default; the
        #: batch engine and plain embedded sessions never pay for
        #: observability).  Runtime-only wiring — checkpoints do not
        #: persist it; front-ends rebind after a restore.
        self.metrics = None

    def bind_metrics(self, registry) -> None:
        """Opt in to scheduler-side metrics on the given
        :class:`~repro.obs.MetricsRegistry`.

        Registers the session's counter/gauge families (idempotent per
        registry) and keeps them updated from the verbs: jobs
        submitted / dispatched / completed / cancelled, clock advances,
        compactions, and the virtual-clock gauge.  Counters are
        registry-level, so rebinding after checkpoint/restore keeps
        them monotone across session lineages.
        """
        self.metrics = registry
        self._m_submitted = registry.counter(
            "repro_jobs_submitted_total", "Jobs admitted into the session"
        )
        self._m_dispatched = registry.counter(
            "repro_jobs_dispatched_total", "Jobs started by the dispatch loop"
        )
        self._m_completed = registry.counter(
            "repro_jobs_completed_total", "Jobs run to completion"
        )
        self._m_cancelled = registry.counter(
            "repro_jobs_cancelled_total", "Jobs withdrawn by cancellation"
        )
        self._m_advances = registry.counter(
            "repro_clock_advances_total", "advance()/drain() calls moving virtual time"
        )
        self._m_compactions = registry.counter(
            "repro_compactions_total", "Dead-row compactions of the hot arrays"
        )
        self._m_clock = registry.gauge(
            "repro_session_clock", "Current virtual time of the session"
        )
        self._m_clock.set(self.now)

    def _observe_advance(self, nevents: int, finishes: int) -> None:
        """Fold one advance/drain into the bound metrics — O(1), no event
        iteration: the loop only logs ``start``/``finish`` entries while
        running, so starts are the new entries that aren't finishes."""
        starts = nevents - finishes
        if starts:
            self._m_dispatched.inc(starts)
        if finishes:
            self._m_completed.inc(finishes)
        self._m_advances.inc()
        self._m_clock.set(self.now)

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The session's virtual clock."""
        return self.loop.now

    @property
    def capacities(self) -> tuple[int, ...]:
        return self.gi.capacities

    @property
    def time_eps(self) -> float:
        return self.loop.eps

    @property
    def backend_name(self) -> str:
        """Name of the dispatch backend the incremental loop resolved."""
        return self.loop.backend.name

    def available(self) -> tuple[int, ...]:
        """Per-type resources free at the current clock."""
        return self.loop.available()

    def __contains__(self, job_id: JobId) -> bool:
        """True iff the session has ever admitted ``job_id`` (live row or
        archived) — the membership test an at-least-once client uses to
        filter re-submissions after a crash."""
        return job_id in self.gi.index or job_id in self.archive_index

    def state_of(self, job_id: JobId) -> str:
        """One of ``waiting / queued / running / done / cancelled``."""
        i = self.gi.index.get(job_id)
        if i is not None:
            return STATE_NAMES[self.loop.state[i]]
        pos = self.archive_index.get(job_id)
        if pos is not None:
            return self.archive[pos]["state"]
        raise KeyError(job_id)

    def status(self) -> dict[str, Any]:
        """A JSON-ready summary of the session."""
        counts = dict.fromkeys(STATE_NAMES, 0)
        for s in self.loop.state:
            counts[STATE_NAMES[s]] += 1
        for rec in self.archive:
            counts[rec["state"]] += 1
        return {
            "clock": self.now,
            "jobs": len(self.gi.order) + len(self.archive),
            "states": counts,
            "available": list(self.available()),
            "capacities": list(self.gi.capacities),
            "pending_events": self.loop.pending,
            "submitted": self.counters.submitted,
            "cancelled": self.counters.cancelled,
            "completed": self.counters.completed,
            "compactions": self.compactions,
            "archived": len(self.archive),
        }

    def makespan(self) -> float:
        """Latest finish time over every completed job (0.0 when none)."""
        best = 0.0
        finish = self.loop.finish
        for i, s in enumerate(self.loop.state):
            if s == J_DONE and finish[i] > best:
                best = finish[i]
        for rec in self.archive:
            if rec["state"] == "done" and rec["finish"] > best:
                best = rec["finish"]
        return best

    # ------------------------------------------------------------------
    # the service verbs
    # ------------------------------------------------------------------
    def submit(self, jobs: "Iterable[JobSpec | Mapping[str, Any]]") -> list[JobId]:
        """Admit jobs at the current virtual time; returns their ids.

        Jobs are appended in the given order (which fixes their FIFO
        tie-break); a job may name earlier jobs of the same call as
        predecessors.  Validation — unknown predecessors, cancelled
        predecessors, demand bounds, non-finite durations, non-scalar ids,
        duplicate ids — raises ``ValueError`` *before* any of the call's
        jobs are admitted, so a rejected batch leaves the session
        untouched.  The whole batch is lowered into the growable rows in
        one vectorized shot (demands bounds-checked and packed as a
        matrix, rows extended in bulk, newly ready jobs block-inserted
        into the ready buffers).
        """
        specs = [
            spec if isinstance(spec, JobSpec) else JobSpec.from_dict(spec)
            for spec in jobs
        ]
        if not specs:
            return []
        gi = self.gi
        loop_state = self.loop.state
        base = len(gi.order)
        # validate the whole batch first: admission is all-or-nothing
        batch_pos: dict[JobId, int] = {}
        preds_idx: list[tuple[int, ...]] = []  # outstanding deps, as row indices
        ext_preds: list[tuple[JobId, ...]] = []  # satisfied deps, by id
        rem_counts: list[int] = []  # not-yet-done preds per row, for admit_batch
        ids: list[JobId] = []
        keys: list[float] = []
        sub0 = self.counters.submitted
        index = gi.index
        index_get = index.get
        batch_pos_get = batch_pos.get
        archive_index = self.archive_index
        arch_get = archive_index.get
        done_ids = self.done_ids
        for off, spec in enumerate(specs):
            sid = spec.id
            if isinstance(sid, bool) or not isinstance(sid, (str, int)):
                raise ValueError(
                    f"job id {sid!r} must be a string or integer "
                    "(checkpoints and the wire protocol carry ids verbatim)"
                )
            if sid in batch_pos or sid in index or sid in archive_index:
                raise ValueError(f"job {sid!r} was already submitted")
            skey = spec.key
            if skey is not None:
                if (
                    isinstance(skey, bool)
                    or not isinstance(skey, (int, float))
                    or skey != skey  # NaN breaks the (key, index) total order
                ):
                    raise ValueError(f"job {sid!r}: priority key must be numeric")
                if float(skey) != skey:
                    raise ValueError(
                        f"job {sid!r}: priority key {skey!r} is not exactly "
                        "representable as float64 (the checkpoint and ready-queue "
                        "image type)"
                    )
            preds_s = spec.preds
            if preds_s and done_ids.issuperset(preds_s):
                # every predecessor already finished (the steady-state
                # case): one C-speed set test, nothing outstanding.  The
                # preds are recorded as external provenance ids — even
                # the ones still held as live rows — so no per-pred index
                # resolution happens at all; ``ext_preds`` means
                # "satisfied by-id reference", archived or not, and
                # :meth:`to_schedule` resolves both alike
                preds_idx.append(())
                ext_preds.append(tuple(preds_s))
                rem_counts.append(0)
                batch_pos[sid] = off
                ids.append(sid)
                keys.append(skey if skey is not None else float(sub0 + off))
                continue
            elif preds_s:
                # some predecessor is still outstanding (or invalid).
                # Finished preds — the bulk, in steady state — cost one
                # set-membership each and stay by-id references; only the
                # outstanding ones are resolved to row indices.  That
                # makes ``preds_idx`` exactly the set of dependencies
                # that can still fire, so it doubles as the successor
                # wiring source with no dead edges (done is terminal: an
                # edge from a finished predecessor can never fire again)
                pt2: list[int] = []
                et: list[JobId] = []
                for p in preds_s:
                    if p in done_ids:
                        et.append(p)
                        continue
                    pi = index_get(p)
                    if pi is not None:  # a live, unfinished row
                        st = loop_state[pi]
                        if st == J_CANCELLED:
                            raise ValueError(
                                f"job {sid!r}: predecessor {p!r} was "
                                "cancelled"
                            )
                        if st == J_DONE:  # pragma: no cover - done_ids holds
                            et.append(p)  # every finished id; stay safe if not
                            continue
                        pt2.append(pi)
                        continue
                    bp = batch_pos_get(p)
                    if bp is not None:  # earlier row of this batch
                        pt2.append(base + bp)
                        continue
                    if arch_get(p) is None:
                        raise ValueError(
                            f"job {sid!r}: unknown predecessor {p!r}"
                        )
                    # archived but not done: necessarily cancelled
                    raise ValueError(
                        f"job {sid!r}: predecessor {p!r} was cancelled"
                    )
                preds_idx.append(tuple(pt2))
                ext_preds.append(tuple(et))
                rem = len(pt2)
            else:
                preds_idx.append(())
                ext_preds.append(())
                rem = 0
            rem_counts.append(rem)
            batch_pos[sid] = off
            ids.append(sid)
            keys.append(skey if skey is not None else float(sub0 + off))

        demands, durations, releases = self._validate_numeric(specs)
        gi.append_batch(
            ids, preds_idx, demands, durations, keys, releases, ext_preds
        )
        self.loop.admit_batch(base, rem_counts)
        now = self.now
        tenants = [spec.tenant for spec in specs]
        self.tenants.extend(tenants)
        self.events.extend(
            ("submit", jid, now, tn) for jid, tn in zip(ids, tenants)
        )
        self.counters.submitted = sub0 + len(specs)
        if self.metrics is not None:
            self._m_submitted.inc(len(specs))
        return ids

    def _validate_numeric(
        self, specs: list[JobSpec]
    ) -> tuple[list[tuple[int, ...]], list[float], list[float]]:
        """Vectorized demand/duration/release bounds checks for a batch.

        The fast path is three whole-batch numpy comparisons; any failure
        (or a structurally malformed batch numpy cannot even lower) falls
        back to the scalar :meth:`GrowableCompiledInstance.validate_row`
        per row, which raises the precise historical error message.
        """
        gi = self.gi
        try:
            # numpy lowers the whole batch in C; .tolist() converts back to
            # builtin ints/floats, so the stored rows never hold numpy scalars
            dm = np.array([spec.demand for spec in specs], dtype=np.int64)
            dr = np.array([spec.duration for spec in specs], dtype=np.float64)
            rl = np.array([spec.release for spec in specs], dtype=np.float64)
            demands = list(map(tuple, dm.tolist()))
            durations = dr.tolist()
            releases = rl.tolist()
            ok = (
                dm.ndim == 2
                and dm.shape[1] == gi.d
                and bool((dm >= 0).all())
                and bool((dm.sum(axis=1) > 0).all())
                and bool((dm <= np.asarray(gi.capacities, dtype=np.int64)).all())
                and bool((dr > 0.0).all())
                and bool(np.isfinite(dr).all())
                and bool((rl >= 0.0).all())
                and bool(np.isfinite(rl).all())
            )
        except (TypeError, ValueError, OverflowError):
            ok = False
        if ok:
            return demands, durations, releases
        for spec in specs:  # scalar path: raise the precise message
            gi.validate_row(spec.id, spec.demand, spec.duration, spec.release)
        raise ValueError("malformed submission batch")  # pragma: no cover

    def cancel(self, job_id: JobId) -> tuple[JobId, ...]:
        """Best-effort cancel: returns the ids withdrawn (cascade order).

        A job that has not started is cancelled together with every
        pending transitive descendant (they could never run once a
        predecessor is withdrawn).  Returns ``()`` when the job already
        started, completed or was cancelled — too late, nothing changes.
        Unknown ids raise ``KeyError``.
        """
        gi = self.gi
        i = gi.index.get(job_id)
        if i is None:
            if job_id in self.archive_index:  # archived: done or cancelled
                return ()
            raise KeyError(job_id)
        state = self.loop.state
        if state[i] in (J_RUNNING, J_DONE, J_CANCELLED):
            return ()
        cancelled: list[JobId] = []
        stack = [i]
        while stack:
            k = stack.pop()
            if state[k] == J_CANCELLED:
                continue
            # descendants of a not-yet-started job are necessarily pending
            self.loop.cancel(k)
            self.counters.cancelled += 1
            self.events.append(("cancel", gi.order[k], self.now))
            cancelled.append(gi.order[k])
            stack.extend(reversed(gi.succ[k]))
        if cancelled and self.metrics is not None:
            self._m_cancelled.inc(len(cancelled))
        return tuple(cancelled)

    def advance(
        self, until: float, *, events: bool = True
    ) -> "list[dict[str, Any]] | int":
        """Advance virtual time to ``until``; returns the events that fired.

        Dispatch passes run at the current clock first (new submissions
        start as early as possible), then every pending event up to
        ``until`` is processed; afterwards the clock *is* ``until`` even
        when nothing happened.  Time only moves forward.

        With ``events=False`` the fired events are *not* materialized as
        protocol dicts — the count of new log entries is returned instead
        (they stay readable via :meth:`event_dicts`).  Embedded callers
        that only poll counters (the benchmark client, bulk replays) skip
        a dict allocation per event that way; the streaming front-end
        keeps the default.
        """
        until = float(until)
        if until < self.now:
            raise ValueError(f"cannot advance backwards to {until} (clock is {self.now})")
        n0 = len(self.events)
        c0 = self.loop.ncompleted
        self.loop.run(until)
        self.loop.advance_clock(until)
        self.counters.completed = self.loop.ncompleted
        done_add = self.done_ids.add
        new = self.events[n0:]
        for e in new:
            if e[0] == "finish":
                done_add(e[1])
        if self.metrics is not None:
            self._observe_advance(len(new), self.loop.ncompleted - c0)
        out: "list[dict[str, Any]] | int"
        if events:
            out = [_event_dict(e) for e in new]
        else:
            out = len(new)
        self._maybe_compact()
        return out

    def drain(self) -> None:
        """Run to quiescence: every admitted, uncancelled job completes.

        Deliberately does *not* materialize the realized schedule — that
        is :meth:`to_schedule`'s job, off the timed path; front-ends that
        only need the headline numbers read :meth:`makespan` and the
        counters instead.
        """
        n0 = len(self.events)
        c0 = self.loop.ncompleted
        self.loop.run()
        done_add = self.done_ids.add
        for e in self.events[n0:]:
            if e[0] == "finish":
                done_add(e[1])
        if self.metrics is not None:
            self._observe_advance(
                len(self.events) - n0, self.loop.ncompleted - c0
            )
        leftover = [
            self.gi.order[i]
            for i, s in enumerate(self.loop.state)
            if s in (J_WAITING, J_QUEUED, J_RUNNING)
        ]
        if leftover:  # pragma: no cover - admission bounds validation prevents this
            raise RuntimeError(f"drain left jobs unfinished: {leftover[:5]}")
        self.counters.completed = self.loop.ncompleted
        self._maybe_compact()

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def _maybe_compact(self) -> None:
        thr = self.compact_threshold
        if thr is None:
            return
        rows = len(self.gi.order)
        if rows < self.compact_min_rows:
            return
        dead = self.counters.completed + self.counters.cancelled - len(self.archive)
        if dead >= thr * rows:
            self._compact()

    def _compact(self) -> None:
        """Archive every done/cancelled row and rebuild the hot arrays."""
        gi = self.gi
        loop = self.loop
        state = loop.state
        start = loop.start
        finish = loop.finish
        order = gi.order
        demand = gi.demand
        duration = gi.duration
        key = gi.key
        preds = gi.preds
        ext = gi.ext_preds
        release = gi.release
        tenants = self.tenants
        keep: list[int] = []
        keep_append = keep.append
        archive = self.archive
        arch_append = archive.append
        archive_index = self.archive_index
        done_ids = self.done_ids
        for i, s in enumerate(state):
            if s <= J_RUNNING:  # waiting / queued / running stay hot
                keep_append(i)
                continue
            jid = order[i]
            archive_index[jid] = len(archive)
            if s == J_DONE:
                done_ids.add(jid)  # already there via the event log; cheap belt
            pr = [order[p] for p in preds[i]]
            ep = ext[i]
            if ep:
                pr.extend(ep)
            arch_append(
                {
                    "id": jid,
                    "state": STATE_NAMES[s],
                    "demand": demand[i],
                    "duration": duration[i],
                    "key": key[i],
                    "preds": pr,
                    "release": release[i],
                    "tenant": tenants[i],
                    "start": start[i],
                    "finish": finish[i],
                }
            )
        old2new = gi.compact(keep)
        loop.compact(keep, old2new)
        self.tenants = [tenants[i] for i in keep]
        self.compactions += 1
        if self.metrics is not None:
            self._m_compactions.inc()

    # ------------------------------------------------------------------
    # realized-schedule view
    # ------------------------------------------------------------------
    def cancellations(self) -> list[dict[str, Any]]:
        """The cancellation events, in the order they happened."""
        return [_event_dict(e) for e in self.events if e[0] == "cancel"]

    def event_dicts(self, events: "Sequence[tuple] | None" = None) -> list[dict[str, Any]]:
        """Materialize event tuples (default: the whole log) as protocol dicts."""
        return [_event_dict(e) for e in (self.events if events is None else events)]

    def prune_events(self) -> int:
        """Drop submit/start/finish records from the event log; returns the
        number dropped.

        The log exists for clients (``advance`` returns its new slice) and
        the trace's cancellation records — scheduling never reads it — but
        it grows with total history, which an indefinitely-running service
        must bound.  Pruning keeps cancellations (the trace needs them) and
        leaves checkpoints exact: a restored session replays identically,
        its log just starts later.  Completed placements are unaffected
        (they live in the loop state and the archive, not the log).
        """
        kept = [e for e in self.events if e[0] == "cancel"]
        dropped = len(self.events) - len(kept)
        self.events[:] = kept  # in place: the loop holds the same list
        return dropped

    def to_schedule(self) -> "Schedule":
        """The completed jobs as a :class:`~repro.sim.schedule.Schedule`.

        The backing instance contains exactly the completed jobs — active
        done rows *and* archived ones (compaction moves rows, it never
        forgets them) — each pinned to its submitted demand, with a
        tabulated time function and its release, plus the induced
        precedence edges among them: every predecessor of a completed job
        completed, so the sub-DAG is closed.  Strictly validatable; used
        by :meth:`validate`, the service trace and the conformance checks.
        """
        from repro.dag.graph import DAG
        from repro.instance.instance import Instance
        from repro.jobs.job import Job
        from repro.jobs.profiles import TabulatedTimeFunction
        from repro.resources.pool import ResourcePool
        from repro.resources.vector import ResourceVector
        from repro.sim.schedule import Schedule, ScheduledJob

        gi = self.gi
        loop = self.loop
        jobs: dict[JobId, Job] = {}
        placements: dict[JobId, ScheduledJob] = {}
        dag = DAG()
        edges: list[tuple[JobId, JobId]] = []
        for rec in self.archive:
            if rec["state"] != "done":
                continue
            jid = rec["id"]
            v = ResourceVector(rec["demand"])
            jobs[jid] = Job(
                id=jid,
                time_fn=TabulatedTimeFunction({v: rec["duration"]}),
                candidates=(v,),
                release=rec["release"],
            )
            dag.add_node(jid)
            edges.extend((p, jid) for p in rec["preds"])
            placements[jid] = ScheduledJob(
                job_id=jid, start=rec["start"], time=rec["duration"], alloc=v
            )
        for i, jid in enumerate(gi.order):
            if loop.state[i] != J_DONE:
                continue
            v = ResourceVector(gi.demand[i])
            jobs[jid] = Job(
                id=jid,
                time_fn=TabulatedTimeFunction({v: gi.duration[i]}),
                candidates=(v,),
                release=gi.release[i],
            )
            dag.add_node(jid)
            edges.extend((gi.order[p], jid) for p in gi.preds[i])
            edges.extend((p, jid) for p in gi.ext_preds[i])
            placements[jid] = ScheduledJob(
                job_id=jid, start=loop.start[i], time=gi.duration[i], alloc=v
            )
        for u, w in edges:
            dag.add_edge(u, w)
        pool = ResourcePool(ResourceVector(gi.capacities))
        inst = Instance(jobs=jobs, dag=dag, pool=pool)
        return Schedule(instance=inst, placements=placements)

    def validate(self) -> None:
        """Strictly validate the realized schedule (raises on violation)."""
        from repro.conformance.invariants import validate_schedule

        validate_schedule(self.to_schedule(), strict=True).raise_if_failed()

    def to_trace(self) -> dict:
        """The version-3 trace of the session (cancellations included)."""
        from repro.sim.trace import schedule_to_trace

        return schedule_to_trace(
            self.to_schedule(),
            cancellations=[
                {"id": e["id"], "time": e["time"]} for e in self.cancellations()
            ],
        )
