"""Incremental scheduling sessions: submit / cancel / advance / drain.

A :class:`SchedulingSession` is the online form of the batch pipeline:
instead of compiling a frozen instance and running the dispatch loop to
completion, it owns a
:class:`~repro.instance.compiled.GrowableCompiledInstance` (submissions
append rows, never recompile) and an
:class:`~repro.engine.dispatch.IncrementalPriorityLoop` (a resumable heap
plus readiness state), and exposes the service verbs:

* :meth:`~SchedulingSession.submit` — admit jobs (with chosen demands,
  durations, precedences, releases and priority keys) at the current
  virtual time;
* :meth:`~SchedulingSession.cancel` — best-effort cancellation: a job
  that has not started is withdrawn together with its pending descendants
  (their precedence constraint became unsatisfiable); a running or
  completed job is too late to cancel;
* :meth:`~SchedulingSession.advance` — move virtual time forward,
  dispatching and completing work on the way;
* :meth:`~SchedulingSession.drain` — run to quiescence and return the
  realized :class:`~repro.sim.schedule.Schedule`.

**Batch identity.**  Dispatch order inside the session is exactly the
batch discipline — the ready queue is totally ordered by ``(key,
submission index)``, every pass starts every fitting job, simultaneous
events batch within ``time_eps`` — so a session driven
*submission-order-faithfully* (every job submitted before virtual time
reaches the start it would get in the batch run) produces a schedule
event-for-event identical to
:func:`repro.core.list_scheduler.list_schedule` on the same job set.  The
conformance fuzz family (``scenario="service"``) and the hypothesis suite
assert this across every registered scheduler's allocations.

Sessions carry an RNG (:attr:`SchedulingSession.rng`) for stochastic
clients — e.g. the service-throughput benchmark's open-loop Poisson
client draws inter-arrival times from it — so that checkpoint/restore
(:mod:`repro.service.checkpoint`) resumes the *client's* stream exactly
too, not just the scheduler's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Mapping, Sequence

import numpy as np

from repro.engine.dispatch import (
    J_CANCELLED,
    J_DONE,
    J_QUEUED,
    J_RUNNING,
    J_WAITING,
    IncrementalPriorityLoop,
)
from repro.engine.kernel import TIME_EPS
from repro.instance.compiled import GrowableCompiledInstance

__all__ = ["JobSpec", "SchedulingSession", "STATE_NAMES"]

JobId = Hashable

#: Human-readable names of the loop's job states (checkpoint format order).
STATE_NAMES = ("waiting", "queued", "running", "done", "cancelled")

_DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class JobSpec:
    """One submitted job: the service protocol's unit of admission.

    ``id`` must be a JSON-scalar (``str`` or ``int``) so checkpoints and
    the wire protocol carry it verbatim.  ``preds`` name already-submitted
    jobs (or earlier jobs of the same ``submit`` call) — the online
    precedence model.  ``key`` is the priority sort key (smaller starts
    first, ties by submission order); omitted, the job's submission index
    is used, i.e. FIFO.  ``release`` gates the earliest start in virtual
    time; a release in the past is simply "available now".
    """

    id: JobId
    demand: tuple[int, ...]
    duration: float
    preds: tuple[JobId, ...] = ()
    release: float = 0.0
    key: float | int | None = None
    tenant: str = _DEFAULT_TENANT

    @classmethod
    def from_dict(cls, rec: Mapping[str, Any]) -> "JobSpec":
        """Build from a wire/protocol record; structural problems raise
        ``ValueError`` (unknown fields, missing fields, non-scalar ids or
        predecessors, scalar demands) so transport layers can buffer the
        result without ever tripping over an unhashable or mistyped field.
        """
        if not isinstance(rec, Mapping):
            raise ValueError(f"job record must be an object, got {type(rec).__name__}")
        unknown = set(rec) - {"id", "demand", "duration", "preds", "release", "key", "tenant"}
        if unknown:
            raise ValueError(f"unknown job fields: {sorted(unknown)}")
        try:
            jid = rec["id"]
            raw_demand = rec["demand"]
            duration = float(rec["duration"])
        except KeyError as exc:
            raise ValueError(f"job record missing required field {exc.args[0]!r}") from None
        except (TypeError, ValueError) as exc:
            raise ValueError(f"job record has a malformed duration: {exc}") from None
        if isinstance(jid, bool) or not isinstance(jid, (str, int)):
            raise ValueError(f"job id {jid!r} must be a string or integer")
        if isinstance(raw_demand, (str, int, float)) or not hasattr(raw_demand, "__iter__"):
            raise ValueError(f"job {jid!r}: demand must be a list of per-type amounts")
        raw_preds = rec.get("preds", ())
        if isinstance(raw_preds, str):  # a bare id would iterate character-wise
            raise ValueError(f"job {jid!r}: preds must be a list of job ids")
        try:
            demand = tuple(int(a) for a in raw_demand)
            preds = tuple(raw_preds)
            release = float(rec.get("release", 0.0))
        except (TypeError, ValueError) as exc:
            raise ValueError(f"job {jid!r}: malformed record: {exc}") from None
        for p in preds:
            if isinstance(p, bool) or not isinstance(p, (str, int)):
                raise ValueError(
                    f"job {jid!r}: predecessor {p!r} must be a string or integer"
                )
        return cls(
            id=jid,
            demand=demand,
            duration=duration,
            preds=preds,
            release=release,
            key=rec.get("key"),
            tenant=str(rec.get("tenant", _DEFAULT_TENANT)),
        )


@dataclass
class _Counters:
    """Session-lifetime counters (monotone; survive checkpoints)."""

    submitted: int = 0
    cancelled: int = 0
    completed: int = 0


class SchedulingSession:
    """A long-running incremental scheduling session (see module docstring).

    Parameters
    ----------
    capacities:
        Per-type platform capacities ``P^(i)``.
    time_eps:
        Simultaneous-event batching tolerance (the engine's default).
    seed:
        Seed of the session RNG exposed to stochastic clients.
    """

    def __init__(
        self,
        capacities: Sequence[int],
        *,
        time_eps: float = TIME_EPS,
        seed: int | None = None,
    ) -> None:
        self.gi = GrowableCompiledInstance(capacities)
        self.loop = IncrementalPriorityLoop(
            self.gi,
            on_start=self._record_start,
            on_complete=self._record_finish,
            time_eps=time_eps,
        )
        self.tenants: list[str] = []  # per-job tenant label, submission order
        self.events: list[dict[str, Any]] = []
        self.counters = _Counters()
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The session's virtual clock."""
        return self.loop.now

    @property
    def capacities(self) -> tuple[int, ...]:
        return self.gi.capacities

    @property
    def time_eps(self) -> float:
        return self.loop.eps

    def available(self) -> tuple[int, ...]:
        """Per-type resources free at the current clock."""
        return self.loop.available()

    def state_of(self, job_id: JobId) -> str:
        """One of ``waiting / queued / running / done / cancelled``."""
        return STATE_NAMES[self.loop.state[self.gi.index[job_id]]]

    def status(self) -> dict[str, Any]:
        """A JSON-ready summary of the session."""
        counts = dict.fromkeys(STATE_NAMES, 0)
        for s in self.loop.state:
            counts[STATE_NAMES[s]] += 1
        return {
            "clock": self.now,
            "jobs": len(self.gi.order),
            "states": counts,
            "available": list(self.available()),
            "capacities": list(self.gi.capacities),
            "pending_events": self.loop.pending,
            "submitted": self.counters.submitted,
            "cancelled": self.counters.cancelled,
            "completed": self.counters.completed,
        }

    # ------------------------------------------------------------------
    # event-log callbacks
    # ------------------------------------------------------------------
    def _record_start(self, job_id: JobId, t: float, duration: float) -> None:
        i = self.gi.index[job_id]
        self.events.append(
            {
                "event": "start",
                "id": job_id,
                "time": t,
                "duration": duration,
                "alloc": list(self.gi.demand[i]),
            }
        )

    def _record_finish(self, job_id: JobId, t: float) -> None:
        self.counters.completed += 1
        self.events.append({"event": "finish", "id": job_id, "time": t})

    # ------------------------------------------------------------------
    # the service verbs
    # ------------------------------------------------------------------
    def submit(self, jobs: "Iterable[JobSpec | Mapping[str, Any]]") -> list[JobId]:
        """Admit jobs at the current virtual time; returns their ids.

        Jobs are appended in the given order (which fixes their FIFO
        tie-break); a job may name earlier jobs of the same call as
        predecessors.  Validation — unknown predecessors, cancelled
        predecessors, demand bounds, non-finite durations, non-scalar ids,
        duplicate ids — raises ``ValueError`` *before* any of the call's
        jobs are admitted, so a rejected batch leaves the session
        untouched.
        """
        specs = [
            spec if isinstance(spec, JobSpec) else JobSpec.from_dict(spec)
            for spec in jobs
        ]
        # validate the whole batch first: admission is all-or-nothing
        gi = self.gi
        batch_ids: set[JobId] = set()
        for spec in specs:
            if isinstance(spec.id, bool) or not isinstance(spec.id, (str, int)):
                raise ValueError(
                    f"job id {spec.id!r} must be a string or integer "
                    "(checkpoints and the wire protocol carry ids verbatim)"
                )
            if spec.id in batch_ids:
                raise ValueError(f"job {spec.id!r} was already submitted")
            gi.validate_row(spec.id, spec.demand, spec.duration, spec.release)
            if spec.key is not None and (
                isinstance(spec.key, bool)
                or not isinstance(spec.key, (int, float))
                or spec.key != spec.key  # NaN breaks the (key, index) total order
            ):
                raise ValueError(f"job {spec.id!r}: priority key must be numeric")
            for p in spec.preds:
                if p in batch_ids:
                    continue
                pi = gi.index.get(p)
                if pi is None:
                    raise ValueError(f"job {spec.id!r}: unknown predecessor {p!r}")
                if self.loop.state[pi] == J_CANCELLED:
                    raise ValueError(
                        f"job {spec.id!r}: predecessor {p!r} was cancelled"
                    )
            batch_ids.add(spec.id)

        ids: list[JobId] = []
        for spec in specs:
            i = gi.append(
                spec.id,
                [gi.index[p] for p in spec.preds],
                spec.demand,
                spec.duration,
                spec.key if spec.key is not None else len(gi.order),
                spec.release,
            )
            self.loop.admit(i)
            self.tenants.append(spec.tenant)
            self.counters.submitted += 1
            self.events.append(
                {"event": "submit", "id": spec.id, "time": self.now, "tenant": spec.tenant}
            )
            ids.append(spec.id)
        return ids

    def cancel(self, job_id: JobId) -> tuple[JobId, ...]:
        """Best-effort cancel: returns the ids withdrawn (cascade order).

        A job that has not started is cancelled together with every
        pending transitive descendant (they could never run once a
        predecessor is withdrawn).  Returns ``()`` when the job already
        started, completed or was cancelled — too late, nothing changes.
        Unknown ids raise ``KeyError``.
        """
        gi = self.gi
        i = gi.index[job_id]  # KeyError on unknown id is the contract
        state = self.loop.state
        if state[i] in (J_RUNNING, J_DONE, J_CANCELLED):
            return ()
        cancelled: list[JobId] = []
        stack = [i]
        while stack:
            k = stack.pop()
            if state[k] == J_CANCELLED:
                continue
            # descendants of a not-yet-started job are necessarily pending
            self.loop.cancel(k)
            self.counters.cancelled += 1
            self.events.append(
                {"event": "cancel", "id": gi.order[k], "time": self.now}
            )
            cancelled.append(gi.order[k])
            stack.extend(reversed(gi.succ[k]))
        return tuple(cancelled)

    def advance(self, until: float) -> list[dict[str, Any]]:
        """Advance virtual time to ``until``; returns the events that fired.

        Dispatch passes run at the current clock first (new submissions
        start as early as possible), then every pending event up to
        ``until`` is processed; afterwards the clock *is* ``until`` even
        when nothing happened.  Time only moves forward.
        """
        until = float(until)
        if until < self.now:
            raise ValueError(f"cannot advance backwards to {until} (clock is {self.now})")
        n0 = len(self.events)
        self.loop.run(until)
        self.loop.advance_clock(until)
        return self.events[n0:]

    def drain(self) -> "Schedule":
        """Run to quiescence; returns the realized schedule (completed jobs)."""
        self.loop.run()
        leftover = [
            self.gi.order[i]
            for i, s in enumerate(self.loop.state)
            if s in (J_WAITING, J_QUEUED, J_RUNNING)
        ]
        if leftover:  # pragma: no cover - admit() bounds validation prevents this
            raise RuntimeError(f"drain left jobs unfinished: {leftover[:5]}")
        return self.to_schedule()

    # ------------------------------------------------------------------
    # realized-schedule view
    # ------------------------------------------------------------------
    def cancellations(self) -> list[dict[str, Any]]:
        """The cancellation events, in the order they happened."""
        return [e for e in self.events if e["event"] == "cancel"]

    def prune_events(self) -> int:
        """Drop submit/start/finish records from the event log; returns the
        number dropped.

        The log exists for clients (``advance`` returns its new slice) and
        the trace's cancellation records — scheduling never reads it — but
        it grows with total history, which an indefinitely-running service
        must bound.  Pruning keeps cancellations (the trace needs them) and
        leaves checkpoints exact: a restored session replays identically,
        its log just starts later.  Completed placements are unaffected
        (they live in the loop state, not the log).
        """
        kept = [e for e in self.events if e["event"] == "cancel"]
        dropped = len(self.events) - len(kept)
        self.events = kept
        return dropped

    def to_schedule(self) -> "Schedule":
        """The completed jobs as a :class:`~repro.sim.schedule.Schedule`.

        The backing instance contains exactly the completed jobs (each
        pinned to its submitted demand, with a tabulated time function and
        its release), and the induced precedence edges among them — every
        predecessor of a completed job completed, so the sub-DAG is
        closed.  Strictly validatable; used by :meth:`validate`, the
        service trace and the conformance checks.
        """
        from repro.dag.graph import DAG
        from repro.instance.instance import Instance
        from repro.jobs.job import Job
        from repro.jobs.profiles import TabulatedTimeFunction
        from repro.resources.pool import ResourcePool
        from repro.resources.vector import ResourceVector
        from repro.sim.schedule import Schedule, ScheduledJob

        gi = self.gi
        loop = self.loop
        jobs: dict[JobId, Job] = {}
        placements: dict[JobId, ScheduledJob] = {}
        dag = DAG()
        for i, jid in enumerate(gi.order):
            if loop.state[i] != J_DONE:
                continue
            v = ResourceVector(gi.demand[i])
            jobs[jid] = Job(
                id=jid,
                time_fn=TabulatedTimeFunction({v: gi.duration[i]}),
                candidates=(v,),
                release=gi.release[i],
            )
            dag.add_node(jid)
            for p in gi.preds[i]:
                dag.add_edge(gi.order[p], jid)
            placements[jid] = ScheduledJob(
                job_id=jid, start=loop.start[i], time=gi.duration[i], alloc=v
            )
        pool = ResourcePool(ResourceVector(gi.capacities))
        inst = Instance(jobs=jobs, dag=dag, pool=pool)
        return Schedule(instance=inst, placements=placements)

    def validate(self) -> None:
        """Strictly validate the realized schedule (raises on violation)."""
        from repro.conformance.invariants import validate_schedule

        validate_schedule(self.to_schedule(), strict=True).raise_if_failed()

    def to_trace(self) -> dict:
        """The version-3 trace of the session (cancellations included)."""
        from repro.sim.trace import schedule_to_trace

        return schedule_to_trace(
            self.to_schedule(),
            cancellations=[
                {"id": e["id"], "time": e["time"]} for e in self.cancellations()
            ],
        )
