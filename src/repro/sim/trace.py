"""Schedule (de)serialization: JSON traces for external analysis/plotting.

The trace format is deliberately plain — one record per job with start,
duration and per-type allocation, plus the platform description — so it can
be loaded by pandas / a plotting notebook without importing this library.
"""

from __future__ import annotations

import json
from typing import Hashable

from repro.instance.instance import Instance
from repro.resources.vector import ResourceVector
from repro.sim.schedule import Schedule, ScheduledJob

__all__ = ["schedule_to_trace", "trace_to_json", "schedule_from_trace"]

JobId = Hashable

#: Trace format version (bump on schema change).
TRACE_VERSION = 1


def schedule_to_trace(schedule: Schedule) -> dict:
    """A JSON-ready dict describing the schedule and its platform."""
    inst = schedule.instance
    return {
        "version": TRACE_VERSION,
        "platform": {
            "capacities": list(inst.pool.capacities),
            "names": list(inst.pool.names),
        },
        "makespan": schedule.makespan,
        "jobs": [
            {
                "id": repr(p.job_id),
                "start": p.start,
                "time": p.time,
                "alloc": list(p.alloc),
            }
            for p in sorted(
                schedule.placements.values(), key=lambda q: (q.start, repr(q.job_id))
            )
        ],
        "edges": [[repr(u), repr(v)] for u, v in inst.dag.edges()],
    }


def trace_to_json(schedule: Schedule, *, indent: int | None = 2) -> str:
    """Serialize to a JSON string."""
    return json.dumps(schedule_to_trace(schedule), indent=indent)


def schedule_from_trace(instance: Instance, trace: dict | str) -> Schedule:
    """Rebuild a :class:`Schedule` for ``instance`` from a trace.

    Job ids are matched by ``repr`` (the trace's portable key); raises
    ``ValueError`` when the trace does not cover the instance's jobs.
    """
    data = json.loads(trace) if isinstance(trace, str) else trace
    if data.get("version") != TRACE_VERSION:
        raise ValueError(f"unsupported trace version {data.get('version')!r}")
    by_repr = {repr(j): j for j in instance.jobs}
    placements: dict[JobId, ScheduledJob] = {}
    for rec in data["jobs"]:
        jid = by_repr.get(rec["id"])
        if jid is None:
            raise ValueError(f"trace job {rec['id']} not in instance")
        placements[jid] = ScheduledJob(
            job_id=jid,
            start=float(rec["start"]),
            time=float(rec["time"]),
            alloc=ResourceVector(rec["alloc"]),
        )
    if set(placements) != set(instance.jobs):
        raise ValueError("trace does not cover every instance job")
    return Schedule(instance=instance, placements=placements)
