"""Schedule (de)serialization: JSON traces for external analysis/plotting.

The trace format is deliberately plain — one record per job with start,
duration, per-type allocation and (under online arrivals) release time,
plus the platform description — so it can be loaded by pandas / a plotting
notebook without importing this library.
"""

from __future__ import annotations

import json
from typing import Hashable

from repro.instance.instance import Instance
from repro.resources.vector import ResourceVector
from repro.sim.schedule import Schedule, ScheduledJob

__all__ = ["schedule_to_trace", "trace_to_json", "schedule_from_trace"]

JobId = Hashable

#: Trace format version (bump on schema change).  Version 2 added the
#: per-job ``release`` field (online-arrival scenarios); version-1 traces
#: still load (they carry no releases).
TRACE_VERSION = 2

_KNOWN_VERSIONS = (1, 2)


def schedule_to_trace(schedule: Schedule) -> dict:
    """A JSON-ready dict describing the schedule and its platform."""
    inst = schedule.instance
    jobs = []
    for p in sorted(
        schedule.placements.values(), key=lambda q: (q.start, repr(q.job_id))
    ):
        rec = {
            "id": repr(p.job_id),
            "start": p.start,
            "time": p.time,
            "alloc": list(p.alloc),
        }
        release = inst.jobs[p.job_id].release
        if release > 0.0:
            rec["release"] = release
        jobs.append(rec)
    return {
        "version": TRACE_VERSION,
        "platform": {
            "capacities": list(inst.pool.capacities),
            "names": list(inst.pool.names),
        },
        "makespan": schedule.makespan,
        "jobs": jobs,
        "edges": [[repr(u), repr(v)] for u, v in inst.dag.edges()],
    }


def trace_to_json(schedule: Schedule, *, indent: int | None = 2) -> str:
    """Serialize to a JSON string."""
    return json.dumps(schedule_to_trace(schedule), indent=indent)


def schedule_from_trace(instance: Instance, trace: dict | str) -> Schedule:
    """Rebuild a :class:`Schedule` for ``instance`` from a trace.

    Job ids are matched by ``repr`` (the trace's portable key); raises
    ``ValueError`` when the trace does not cover the instance's jobs or a
    traced release disagrees with the instance's.
    """
    data = json.loads(trace) if isinstance(trace, str) else trace
    if data.get("version") not in _KNOWN_VERSIONS:
        raise ValueError(f"unsupported trace version {data.get('version')!r}")
    by_repr = {repr(j): j for j in instance.jobs}
    placements: dict[JobId, ScheduledJob] = {}
    for rec in data["jobs"]:
        jid = by_repr.get(rec["id"])
        if jid is None:
            raise ValueError(f"trace job {rec['id']} not in instance")
        if data["version"] >= 2:  # version-1 traces never carried releases
            release = float(rec.get("release", 0.0))
            if release != instance.jobs[jid].release:
                raise ValueError(
                    f"trace release {release} for job {rec['id']} disagrees "
                    f"with the instance's {instance.jobs[jid].release}"
                )
        placements[jid] = ScheduledJob(
            job_id=jid,
            start=float(rec["start"]),
            time=float(rec["time"]),
            alloc=ResourceVector(rec["alloc"]),
        )
    if set(placements) != set(instance.jobs):
        raise ValueError("trace does not cover every instance job")
    return Schedule(instance=instance, placements=placements)
