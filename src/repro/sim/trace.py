"""Schedule (de)serialization: JSON traces for external analysis/plotting.

The trace format is deliberately plain — one record per job with start,
duration, per-type allocation and (under online arrivals) release time,
plus the platform description — so it can be loaded by pandas / a plotting
notebook without importing this library.
"""

from __future__ import annotations

import json
from typing import Hashable

from repro.instance.instance import Instance
from repro.resources.vector import ResourceVector
from repro.sim.schedule import Schedule, ScheduledJob

__all__ = [
    "schedule_to_trace",
    "trace_to_json",
    "schedule_from_trace",
    "cancellations_from_trace",
]

JobId = Hashable

#: Trace format version (bump on schema change).  Version 2 added the
#: per-job ``release`` field (online-arrival scenarios); version 3 added
#: the optional ``cancelled`` event list (service sessions withdraw jobs,
#: and a faithful replay must know when) — versions 1 and 2 still load
#: (they carry no releases / no cancellations).
TRACE_VERSION = 3

_KNOWN_VERSIONS = (1, 2, 3)


def schedule_to_trace(schedule: Schedule, *, cancellations=None) -> dict:
    """A JSON-ready dict describing the schedule and its platform.

    ``cancellations`` (service sessions) is a list of ``{"id", "time"}``
    records — jobs withdrawn before starting, with the virtual time of the
    withdrawal.  Cancelled ids must be disjoint from the placed jobs.
    """
    inst = schedule.instance
    jobs = []
    for p in sorted(
        schedule.placements.values(), key=lambda q: (q.start, repr(q.job_id))
    ):
        rec = {
            "id": repr(p.job_id),
            "start": p.start,
            "time": p.time,
            "alloc": list(p.alloc),
        }
        release = inst.jobs[p.job_id].release
        if release > 0.0:
            rec["release"] = release
        jobs.append(rec)
    trace = {
        "version": TRACE_VERSION,
        "platform": {
            "capacities": list(inst.pool.capacities),
            "names": list(inst.pool.names),
        },
        "makespan": schedule.makespan,
        "jobs": jobs,
        "edges": [[repr(u), repr(v)] for u, v in inst.dag.edges()],
    }
    if cancellations:
        placed = {rec["id"] for rec in jobs}
        out = []
        for c in cancellations:
            cid = repr(c["id"])  # the trace's portable key, same as placements
            if cid in placed:
                raise ValueError(
                    f"cancelled job {cid} is also placed in the schedule"
                )
            out.append({"id": cid, "time": float(c["time"])})
        trace["cancelled"] = out
    return trace


def trace_to_json(schedule: Schedule, *, indent: int | None = 2) -> str:
    """Serialize to a JSON string."""
    return json.dumps(schedule_to_trace(schedule), indent=indent)


def cancellations_from_trace(trace: "dict | str") -> list[dict]:
    """The ``cancelled`` records of a trace (empty before version 3)."""
    data = json.loads(trace) if isinstance(trace, str) else trace
    if data.get("version") not in _KNOWN_VERSIONS:
        raise ValueError(f"unsupported trace version {data.get('version')!r}")
    return [dict(rec) for rec in data.get("cancelled", ())]


def schedule_from_trace(instance: Instance, trace: dict | str) -> Schedule:
    """Rebuild a :class:`Schedule` for ``instance`` from a trace.

    Job ids are matched by ``repr`` (the trace's portable key); raises
    ``ValueError`` when the trace does not cover the instance's jobs or a
    traced release disagrees with the instance's.  Version-3 ``cancelled``
    records describe jobs that never ran — they are not placements and the
    instance need not contain them, but an id both cancelled and placed is
    rejected as corrupt.
    """
    data = json.loads(trace) if isinstance(trace, str) else trace
    if data.get("version") not in _KNOWN_VERSIONS:
        raise ValueError(f"unsupported trace version {data.get('version')!r}")
    cancelled_ids = {rec["id"] for rec in data.get("cancelled", ())}
    if cancelled_ids:
        placed_ids = {rec["id"] for rec in data["jobs"]}
        both = cancelled_ids & placed_ids
        if both:
            raise ValueError(
                f"trace is corrupt: jobs both cancelled and placed: {sorted(both)[:5]}"
            )
    by_repr = {repr(j): j for j in instance.jobs}
    placements: dict[JobId, ScheduledJob] = {}
    for rec in data["jobs"]:
        jid = by_repr.get(rec["id"])
        if jid is None:
            raise ValueError(f"trace job {rec['id']} not in instance")
        if data["version"] >= 2:  # version-1 traces never carried releases
            release = float(rec.get("release", 0.0))
            if release != instance.jobs[jid].release:
                raise ValueError(
                    f"trace release {release} for job {rec['id']} disagrees "
                    f"with the instance's {instance.jobs[jid].release}"
                )
        placements[jid] = ScheduledJob(
            job_id=jid,
            start=float(rec["start"]),
            time=float(rec["time"]),
            alloc=ResourceVector(rec["alloc"]),
        )
    if set(placements) != set(instance.jobs):
        raise ValueError("trace does not cover every instance job")
    return Schedule(instance=instance, placements=placements)
