"""Schedules: the pair of decisions ``(p, s)`` of Section 3.2, with
independent validity checking.

A schedule is *valid* when (i) at any time the running jobs use at most
``P^(i)`` of every resource type, and (ii) no job starts before all its
predecessors complete.  :meth:`Schedule.validate` checks both by an event
sweep that is deliberately independent of the scheduling algorithms (it is
the oracle used by the property-based tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Mapping, NamedTuple

from repro.conformance.invariants import TIME_RTOL, validate_schedule
from repro.instance.instance import Instance
from repro.resources.vector import ResourceVector

__all__ = ["ScheduledJob", "Schedule", "TIME_RTOL"]

JobId = Hashable


class ScheduledJob(NamedTuple):
    """One job's placement: start time, execution time and allocation.

    A ``NamedTuple`` rather than a dataclass: schedulers construct one per
    job on the hot path, and tuple construction is several times cheaper
    while keeping field equality, hashing and immutability.
    """

    job_id: JobId
    start: float
    time: float
    alloc: ResourceVector

    @property
    def finish(self) -> float:
        """Completion time ``c_j = s_j + t_j(p_j)``."""
        return self.start + self.time


@dataclass
class Schedule:
    """A complete schedule for an instance.

    Attributes
    ----------
    instance:
        The scheduled instance (provides the DAG, pool and time functions).
    placements:
        Mapping job id → :class:`ScheduledJob`.
    """

    instance: Instance
    placements: dict[JobId, ScheduledJob] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def from_decisions(
        cls,
        instance: Instance,
        allocation: Mapping[JobId, ResourceVector],
        starts: Mapping[JobId, float],
    ) -> "Schedule":
        """Build from the paper's two decision vectors ``(p, s)``."""
        placements = {
            j: ScheduledJob(
                job_id=j,
                start=float(starts[j]),
                time=instance.time(j, allocation[j]),
                alloc=allocation[j],
            )
            for j in instance.jobs
        }
        return cls(instance=instance, placements=placements)

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """``T = max_j c_j`` (0 for an empty schedule)."""
        if not self.placements:
            return 0.0
        return max(p.finish for p in self.placements.values())

    @property
    def allocation(self) -> dict[JobId, ResourceVector]:
        return {j: p.alloc for j, p in self.placements.items()}

    @property
    def starts(self) -> dict[JobId, float]:
        return {j: p.start for j, p in self.placements.items()}

    def __len__(self) -> int:
        return len(self.placements)

    # ------------------------------------------------------------------
    # validation (independent oracle)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` on any capacity, precedence, release or
        job-set violation.

        Delegates to the strict standalone validator
        (:func:`repro.conformance.invariants.validate_schedule`) with the
        baseline invariant groups — the strict extras (candidate
        membership, duration consistency) are opt-in there because valid
        derived timelines (straggler replays, perturbed what-ifs) break
        them by design.  The raised error is a
        :class:`~repro.conformance.invariants.ScheduleConformanceError`
        (a ``ValueError``) listing *every* violation, not just the first.
        """
        validate_schedule(self, strict=False, rtol=TIME_RTOL).raise_if_failed()

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def intervals(self) -> Iterator[tuple[float, float, tuple[int, ...]]]:
        """Yield maximal intervals ``(t0, t1, usage)`` of constant resource
        usage (the partition I of Section 4.2.2).  Zero-length intervals are
        skipped."""
        if not self.placements:
            return
        points = sorted({p.start for p in self.placements.values()}
                        | {p.finish for p in self.placements.values()})
        jobs = list(self.placements.values())
        d = self.instance.d
        for t0, t1 in zip(points, points[1:]):
            if t1 <= t0:
                continue
            usage = [0] * d
            mid = (t0 + t1) / 2.0
            for p in jobs:
                if p.start <= mid < p.finish:
                    for r in range(d):
                        usage[r] += p.alloc[r]
            yield (t0, t1, tuple(usage))

    def utilization(self) -> list[float]:
        """Average fraction of each resource type in use over the makespan."""
        T = self.makespan
        if T <= 0:
            return [0.0] * self.instance.d
        caps = self.instance.pool.capacities
        tot = [0.0] * self.instance.d
        for t0, t1, usage in self.intervals():
            for r in range(self.instance.d):
                tot[r] += (t1 - t0) * usage[r]
        return [tot[r] / (caps[r] * T) for r in range(self.instance.d)]

    def fraction_of_job_in(self, job_id: JobId, t0: float, t1: float) -> float:
        """``β_{j,I}`` — the fraction of job ``j`` executed in ``[t0, t1]``."""
        p = self.placements[job_id]
        overlap = max(0.0, min(p.finish, t1) - max(p.start, t0))
        return overlap / p.time if p.time > 0 else 0.0
