"""Schedules: the pair of decisions ``(p, s)`` of Section 3.2, with
independent validity checking.

A schedule is *valid* when (i) at any time the running jobs use at most
``P^(i)`` of every resource type, and (ii) no job starts before all its
predecessors complete.  :meth:`Schedule.validate` checks both by an event
sweep that is deliberately independent of the scheduling algorithms (it is
the oracle used by the property-based tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Mapping, NamedTuple

from repro.instance.instance import Instance
from repro.resources.vector import ResourceVector

__all__ = ["ScheduledJob", "Schedule"]

JobId = Hashable

#: Relative tolerance for floating-point time comparisons in validation.
TIME_RTOL = 1e-9


class ScheduledJob(NamedTuple):
    """One job's placement: start time, execution time and allocation.

    A ``NamedTuple`` rather than a dataclass: schedulers construct one per
    job on the hot path, and tuple construction is several times cheaper
    while keeping field equality, hashing and immutability.
    """

    job_id: JobId
    start: float
    time: float
    alloc: ResourceVector

    @property
    def finish(self) -> float:
        """Completion time ``c_j = s_j + t_j(p_j)``."""
        return self.start + self.time


@dataclass
class Schedule:
    """A complete schedule for an instance.

    Attributes
    ----------
    instance:
        The scheduled instance (provides the DAG, pool and time functions).
    placements:
        Mapping job id → :class:`ScheduledJob`.
    """

    instance: Instance
    placements: dict[JobId, ScheduledJob] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def from_decisions(
        cls,
        instance: Instance,
        allocation: Mapping[JobId, ResourceVector],
        starts: Mapping[JobId, float],
    ) -> "Schedule":
        """Build from the paper's two decision vectors ``(p, s)``."""
        placements = {
            j: ScheduledJob(
                job_id=j,
                start=float(starts[j]),
                time=instance.time(j, allocation[j]),
                alloc=allocation[j],
            )
            for j in instance.jobs
        }
        return cls(instance=instance, placements=placements)

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """``T = max_j c_j`` (0 for an empty schedule)."""
        if not self.placements:
            return 0.0
        return max(p.finish for p in self.placements.values())

    @property
    def allocation(self) -> dict[JobId, ResourceVector]:
        return {j: p.alloc for j, p in self.placements.items()}

    @property
    def starts(self) -> dict[JobId, float]:
        return {j: p.start for j, p in self.placements.items()}

    def __len__(self) -> int:
        return len(self.placements)

    # ------------------------------------------------------------------
    # validation (independent oracle)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` on any capacity or precedence violation."""
        inst = self.instance
        if set(self.placements) != set(inst.jobs):
            raise ValueError("schedule must place exactly the instance's jobs")
        tol = TIME_RTOL * max(1.0, self.makespan)

        # release times (online arrivals)
        for j, p in self.placements.items():
            r = inst.jobs[j].release
            if r > 0.0 and p.start < r - tol:
                raise ValueError(
                    f"job {j!r} starts at {p.start} before its release at {r}"
                )

        # precedence
        for u, v in inst.dag.edges():
            if self.placements[v].start < self.placements[u].finish - tol:
                raise ValueError(
                    f"precedence violated: {v!r} starts at {self.placements[v].start} "
                    f"before {u!r} finishes at {self.placements[u].finish}"
                )

        # capacity, via an event sweep per resource type done jointly
        d = inst.d
        caps = inst.pool.capacities
        events: list[tuple[float, int, tuple[int, ...]]] = []
        for p in self.placements.values():
            if p.start < -tol:
                raise ValueError(f"job {p.job_id!r} starts before time 0")
            # release (-1) sorts before acquire (+1) at equal times so that
            # back-to-back jobs may reuse resources at the same instant
            events.append((p.start, +1, tuple(p.alloc)))
            events.append((p.finish, -1, tuple(p.alloc)))
        events.sort(key=lambda e: (e[0], e[1]))
        usage = [0] * d
        i = 0
        while i < len(events):
            t = events[i][0]
            # apply all releases at (approximately) time t first
            while i < len(events) and abs(events[i][0] - t) <= tol and events[i][1] == -1:
                for r in range(d):
                    usage[r] -= events[i][2][r]
                i += 1
            while i < len(events) and abs(events[i][0] - t) <= tol and events[i][1] == +1:
                for r in range(d):
                    usage[r] += events[i][2][r]
                i += 1
            for r in range(d):
                if usage[r] > caps[r]:
                    raise ValueError(
                        f"capacity violated at t={t}: type {r} uses {usage[r]} > {caps[r]}"
                    )

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def intervals(self) -> Iterator[tuple[float, float, tuple[int, ...]]]:
        """Yield maximal intervals ``(t0, t1, usage)`` of constant resource
        usage (the partition I of Section 4.2.2).  Zero-length intervals are
        skipped."""
        if not self.placements:
            return
        points = sorted({p.start for p in self.placements.values()}
                        | {p.finish for p in self.placements.values()})
        jobs = list(self.placements.values())
        d = self.instance.d
        for t0, t1 in zip(points, points[1:]):
            if t1 <= t0:
                continue
            usage = [0] * d
            mid = (t0 + t1) / 2.0
            for p in jobs:
                if p.start <= mid < p.finish:
                    for r in range(d):
                        usage[r] += p.alloc[r]
            yield (t0, t1, tuple(usage))

    def utilization(self) -> list[float]:
        """Average fraction of each resource type in use over the makespan."""
        T = self.makespan
        if T <= 0:
            return [0.0] * self.instance.d
        caps = self.instance.pool.capacities
        tot = [0.0] * self.instance.d
        for t0, t1, usage in self.intervals():
            for r in range(self.instance.d):
                tot[r] += (t1 - t0) * usage[r]
        return [tot[r] / (caps[r] * T) for r in range(self.instance.d)]

    def fraction_of_job_in(self, job_id: JobId, t0: float, t1: float) -> float:
        """``β_{j,I}`` — the fraction of job ``j`` executed in ``[t0, t1]``."""
        p = self.placements[job_id]
        overlap = max(0.0, min(p.finish, t1) - max(p.start, t0))
        return overlap / p.time if p.time > 0 else 0.0
