"""Interval classification of Section 4.2.2 (the proof machinery of
Lemmas 5-6), computed on concrete schedules.

The schedule's duration partitions into maximal constant-usage intervals;
each interval falls in exactly one category:

* ``I1`` — every type uses at most ``⌈µP^(i)⌉ − 1``;
* ``I2`` — some type uses at least ``⌈µP^(k)⌉`` but every type stays at most
  ``⌈(1−µ)P^(i)⌉ − 1``;
* ``I3`` — some type uses at least ``⌈(1−µ)P^(k)⌉``.

Exposing these lets tests check the paper's accounting identities
(``T = T1 + T2 + T3``) and empirically verify the critical-path and area
bounds (Lemmas 5-6) on real schedules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.schedule import Schedule

__all__ = ["IntervalClassification", "classify_intervals"]


@dataclass(frozen=True)
class IntervalClassification:
    """Durations and membership of the three interval categories."""

    t1: float
    t2: float
    t3: float
    intervals1: tuple[tuple[float, float], ...]
    intervals2: tuple[tuple[float, float], ...]
    intervals3: tuple[tuple[float, float], ...]

    @property
    def total(self) -> float:
        """``T1 + T2 + T3`` — must equal the makespan (Eq. 8)."""
        return self.t1 + self.t2 + self.t3


def classify_intervals(schedule: Schedule, mu: float) -> IntervalClassification:
    """Classify the schedule's constant-usage intervals for parameter µ."""
    if not 0.0 < mu < 0.5:
        raise ValueError(f"µ must lie in (0, 0.5), got {mu}")
    caps = schedule.instance.pool.capacities
    lo = [math.ceil(mu * p) for p in caps]
    hi = [math.ceil((1.0 - mu) * p) for p in caps]

    t1 = t2 = t3 = 0.0
    i1: list[tuple[float, float]] = []
    i2: list[tuple[float, float]] = []
    i3: list[tuple[float, float]] = []
    for t0, tend, usage in schedule.intervals():
        dur = tend - t0
        if any(u >= h for u, h in zip(usage, hi)):
            t3 += dur
            i3.append((t0, tend))
        elif any(u >= l for u, l in zip(usage, lo)):
            t2 += dur
            i2.append((t0, tend))
        else:
            t1 += dur
            i1.append((t0, tend))
    return IntervalClassification(
        t1=t1, t2=t2, t3=t3,
        intervals1=tuple(i1), intervals2=tuple(i2), intervals3=tuple(i3),
    )
