"""Fault and straggler injection on top of the list dispatcher.

The paper assumes exact execution times; production runtimes face
stragglers (jobs running a factor slower than modeled) and transient
failures (a job dies and re-executes from scratch).  This module replays
Algorithm 2's dispatch policy under such perturbations:

* **stragglers** — a seeded fraction of jobs runs ``straggler_factor``
  slower than modeled; the dispatcher reacts naturally (it only acts on
  completion events);
* **failures** — when a job completes its attempt, with probability
  ``failure_prob`` the attempt is discarded and the job restarts
  immediately on the same allocation (up to ``max_retries`` per job, after
  which it succeeds — modeling bounded re-execution).

The result records every attempt, so tests can check both the validity of
the realized timeline and degradation envelopes (e.g. a straggler factor of
``k`` cannot inflate the makespan by more than ``k`` beyond the fault-free
schedule's guarantee on the same allocation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

import numpy as np

from repro.core.list_scheduler import PriorityRule, fifo_priority
from repro.engine.dispatch import drive_priority_schedule
from repro.instance.instance import Instance
from repro.resources.vector import ResourceVector
from repro.util.rng import ensure_rng

__all__ = ["Attempt", "FaultyExecution", "execute_with_faults"]

JobId = Hashable


@dataclass(frozen=True)
class Attempt:
    """One execution attempt of a job (failed attempts are re-run)."""

    job_id: JobId
    start: float
    duration: float
    alloc: ResourceVector
    failed: bool


@dataclass
class FaultyExecution:
    """Realized timeline under fault injection."""

    instance: Instance
    attempts: list[Attempt] = field(default_factory=list)
    completion: dict[JobId, float] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return max(self.completion.values(), default=0.0)

    def retries(self) -> dict[JobId, int]:
        """Failed-attempt count per job."""
        out: dict[JobId, int] = {}
        for a in self.attempts:
            if a.failed:
                out[a.job_id] = out.get(a.job_id, 0) + 1
        return out

    def validate(self) -> None:
        """Capacity at every instant + precedence on *successful* completions."""
        inst = self.instance
        d = inst.d
        caps = inst.pool.capacities
        events: list[tuple[float, int, tuple[int, ...]]] = []
        for a in self.attempts:
            events.append((a.start, 1, tuple(a.alloc)))
            events.append((a.start + a.duration, -1, tuple(a.alloc)))
        events.sort(key=lambda e: (e[0], e[1]))
        usage = [0] * d
        for t, kind, alloc in events:
            for r in range(d):
                usage[r] += kind * alloc[r]
                if usage[r] > caps[r]:
                    raise ValueError(f"capacity violated at t={t}, type {r}")
        first_start = {}
        for a in self.attempts:
            first_start[a.job_id] = min(first_start.get(a.job_id, a.start), a.start)
        for u, v in inst.dag.edges():
            if first_start[v] < self.completion[u] - 1e-9:
                raise ValueError(f"precedence violated: {v!r} started before {u!r} completed")
        if set(self.completion) != set(inst.jobs):
            raise ValueError("execution must complete every job")


def execute_with_faults(
    instance: Instance,
    allocation: Mapping[JobId, ResourceVector],
    *,
    priority: PriorityRule = fifo_priority,
    straggler_fraction: float = 0.0,
    straggler_factor: float = 1.0,
    failure_prob: float = 0.0,
    max_retries: int = 3,
    seed: int | np.random.Generator | None = 0,
) -> FaultyExecution:
    """Replay Algorithm 2's dispatching under stragglers and failures.

    The event loop is the shared engine driver; this function contributes
    the perturbed durations (stragglers) and a completion interceptor that
    rolls failure dice, records failed attempts and re-runs them in place
    (the failure hook keeps the allocation's resources held across the
    re-execution, exactly like bounded re-submission on a real platform).
    """
    if not 0.0 <= straggler_fraction <= 1.0:
        raise ValueError("straggler_fraction must be in [0, 1]")
    if straggler_factor < 1.0:
        raise ValueError("straggler_factor must be >= 1")
    if not 0.0 <= failure_prob < 1.0:
        raise ValueError("failure_prob must be in [0, 1)")
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    alloc_mat = instance.validate_allocation_map(allocation)
    rng = ensure_rng(seed)

    base_times = {j: instance.time(j, allocation[j]) for j in instance.jobs}
    order = instance.dag.topological_order()
    is_straggler = {
        j: bool(rng.random() < straggler_fraction) for j in order
    }
    times = {
        j: base_times[j] * (straggler_factor if is_straggler[j] else 1.0) for j in order
    }
    # priority keys on the compiled form when the rule carries a vector
    # form: identical (key, topological index) order, no per-job python
    # key objects (see PriorityRule in repro.core.list_scheduler)
    as_array = getattr(priority, "as_array", None)
    if as_array is not None:
        ci = instance.compiled()
        keys = as_array(instance, allocation, ci.duration_vector(base_times))
    else:
        keys = priority(instance, allocation, base_times)

    retries_used = {j: 0 for j in instance.jobs}
    execution = FaultyExecution(instance=instance)

    def on_start(j: JobId, start: float, duration: float) -> None:
        execution.attempts.append(
            Attempt(job_id=j, start=start, duration=duration, alloc=allocation[j], failed=False)
        )

    def on_complete(c: JobId, now: float) -> float | None:
        failed = retries_used[c] < max_retries and float(rng.random()) < failure_prob
        if failed:
            retries_used[c] += 1
            # mark the just-finished attempt as failed and restart now
            for idx in range(len(execution.attempts) - 1, -1, -1):
                at = execution.attempts[idx]
                if at.job_id == c and not at.failed and c not in execution.completion:
                    execution.attempts[idx] = Attempt(
                        job_id=at.job_id, start=at.start, duration=at.duration,
                        alloc=at.alloc, failed=True,
                    )
                    break
            execution.attempts.append(
                Attempt(job_id=c, start=now, duration=times[c], alloc=allocation[c], failed=False)
            )
            return times[c]  # re-run on the held allocation
        execution.completion[c] = now
        return None

    drive_priority_schedule(
        instance, allocation, keys, times, on_start, on_complete=on_complete,
        alloc_mat=alloc_mat,
    )

    if len(execution.completion) != len(instance.jobs):  # pragma: no cover
        raise RuntimeError("fault simulation failed to complete every job")
    return execution
