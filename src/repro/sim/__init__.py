"""Schedule containers, independent validation, interval analysis, Gantt."""

from repro.sim.schedule import Schedule, ScheduledJob
from repro.sim.intervals import classify_intervals, IntervalClassification
from repro.sim.gantt import ascii_gantt

__all__ = [
    "Schedule",
    "ScheduledJob",
    "classify_intervals",
    "IntervalClassification",
    "ascii_gantt",
]
