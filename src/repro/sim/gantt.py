"""ASCII Gantt rendering of schedules (one band per resource type).

Intended for examples and debugging: each resource type gets ``P^(i)`` rows
of unit "lanes"; every job occupies ``p^(i)`` lanes of type ``i`` for its
duration.  Rendering is approximate for fractional times (character cells
quantize time) but exact for integral schedules such as the Theorem 6
instance.
"""

from __future__ import annotations

from typing import Hashable

from repro.sim.schedule import Schedule

__all__ = ["ascii_gantt"]

JobId = Hashable


def _label(job_id: JobId) -> str:
    s = "".join(ch for ch in str(job_id) if ch.isalnum())
    return (s or "?")[-1]


def ascii_gantt(schedule: Schedule, *, width: int = 80) -> str:
    """Render the schedule as text, one block of lanes per resource type."""
    T = schedule.makespan
    if T <= 0:
        return "(empty schedule)"
    inst = schedule.instance
    scale = min(1.0, width / T) if T > width else 1.0
    cols = max(1, int(round(T * scale)))

    out_lines: list[str] = [f"makespan = {T:g}"]
    for r, name, cap in inst.pool.iter_types():
        lanes = [[" "] * cols for _ in range(cap)]
        # greedy lane packing per type
        lane_free = [0.0] * cap
        for p in sorted(schedule.placements.values(), key=lambda q: (q.start, str(q.job_id))):
            need = p.alloc[r]
            if need == 0:
                continue
            got = 0
            for lane_idx in range(cap):
                if got == need and need > 0:
                    break
                if lane_free[lane_idx] <= p.start + 1e-12:
                    c0 = int(p.start * scale)
                    c1 = max(c0 + 1, int(round(p.finish * scale)))
                    ch = _label(p.job_id)
                    for c in range(c0, min(c1, cols)):
                        lanes[lane_idx][c] = ch
                    lane_free[lane_idx] = p.finish
                    got += 1
        out_lines.append(f"-- {name} (P={cap}) " + "-" * max(0, cols - len(name) - 10))
        for lane in lanes:
            out_lines.append("".join(lane))
    return "\n".join(out_lines)
