"""Schedule metrics and empirical verification of the proof machinery.

Beyond the approximation theorem itself, the paper's proof rests on two
schedule-level inequalities that any Algorithm 2 schedule must satisfy when
the allocation came from Algorithm 1:

* **Lemma 5 (critical-path bound)**: ``T1 + µ·T2 <= C(p')``;
* **Lemma 6 (area bound)**: ``µ·T2 + (1−µ)·T3 <= d·A(p')`` when
  ``P_min >= 1/µ²``;

where ``T1/T2/T3`` are the durations of the I1/I2/I3 interval categories of
Section 4.2.2 and ``p'`` is the pre-adjustment allocation.  Verifying them
on concrete schedules is a much sharper implementation check than the
end-to-end ratio alone — :func:`verify_lemma_bounds` does exactly that and
is exercised by both tests and benchmarks.

The module also provides plain scheduling metrics (waiting times, resource
fragmentation) used by the experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.allocation import Phase1Result
from repro.sim.intervals import classify_intervals
from repro.sim.schedule import Schedule

__all__ = ["LemmaCheck", "verify_lemma_bounds", "waiting_times", "fragmentation"]

JobId = Hashable


@dataclass(frozen=True)
class LemmaCheck:
    """Outcome of the Lemma 5/6 verification on one schedule."""

    t1: float
    t2: float
    t3: float
    critical_path_pprime: float
    total_area_pprime: float
    lemma5_lhs: float
    lemma5_rhs: float
    lemma6_lhs: float
    lemma6_rhs: float
    lemma5_holds: bool
    lemma6_holds: bool
    capacity_precondition: bool

    @property
    def all_hold(self) -> bool:
        """Both inequalities hold (Lemma 6 only required when the capacity
        precondition ``P_min >= 1/µ²`` is met)."""
        return self.lemma5_holds and (self.lemma6_holds or not self.capacity_precondition)


def verify_lemma_bounds(schedule: Schedule, phase1: Phase1Result, *, rtol: float = 1e-9) -> LemmaCheck:
    """Check Lemmas 5-6 on a Phase 2 schedule produced from ``phase1``."""
    inst = schedule.instance
    mu = phase1.mu
    cls = classify_intervals(schedule, mu)
    c_pprime = inst.critical_path(phase1.p_prime)
    a_pprime = inst.total_area(phase1.p_prime)
    d = inst.d

    lemma5_lhs = cls.t1 + mu * cls.t2
    lemma6_lhs = mu * cls.t2 + (1.0 - mu) * cls.t3
    lemma6_rhs = d * a_pprime
    tol5 = rtol * max(1.0, c_pprime)
    tol6 = rtol * max(1.0, lemma6_rhs)
    return LemmaCheck(
        t1=cls.t1,
        t2=cls.t2,
        t3=cls.t3,
        critical_path_pprime=c_pprime,
        total_area_pprime=a_pprime,
        lemma5_lhs=lemma5_lhs,
        lemma5_rhs=c_pprime,
        lemma6_lhs=lemma6_lhs,
        lemma6_rhs=lemma6_rhs,
        lemma5_holds=lemma5_lhs <= c_pprime + tol5,
        lemma6_holds=lemma6_lhs <= lemma6_rhs + tol6,
        capacity_precondition=inst.pool.supports_mu(mu),
    )


def waiting_times(schedule: Schedule) -> dict[JobId, float]:
    """Per-job wait beyond its earliest feasible start ``earliest(j)``,
    the release-aware top-level recursion ``earliest(j) = max(r_j,
    max_u(earliest(u) + t_u))`` over predecessors ``u`` with the
    *scheduled* execution times (0 = started as early as the graph and
    the arrival stream allow).

    Under online arrivals neither a job's own pre-release span nor delay
    inherited from a late-released predecessor is charged as waiting; for
    release-free instances the recursion reduces exactly to the top
    level ``top(j)``."""
    inst = schedule.instance
    times = {j: p.time for j, p in schedule.placements.items()}
    earliest = _release_aware_top_levels(inst, times)
    return {j: schedule.placements[j].start - earliest[j] for j in inst.jobs}


def _release_aware_top_levels(inst, times: dict[JobId, float]) -> dict[JobId, float]:
    """Earliest unlimited-resource start per job: the top-level recursion
    with every job floored at its release time."""
    earliest: dict[JobId, float] = {}
    for j in inst.dag.topological_order():
        ready = max(
            (earliest[u] + times[u] for u in inst.dag.predecessors(j)),
            default=0.0,
        )
        earliest[j] = max(inst.jobs[j].release, ready)
    return earliest


def fragmentation(schedule: Schedule) -> list[float]:
    """Per-type fragmentation: time-weighted fraction of *idle* capacity
    during intervals where at least one job was waiting for that type.

    A high value means capacity was free but unusable (the packing loss that
    the µ-adjustment is designed to limit).
    """
    inst = schedule.instance
    caps = inst.pool.capacities
    d = inst.d
    total_frag = [0.0] * d
    total_time = 0.0
    # waiting intervals per job: [ready time, start) — a job is ready only
    # once its predecessors finished *and* it has been released, so under
    # online arrivals the pre-release span is not counted as packing loss
    ready_at = {
        j: max(
            inst.jobs[j].release,
            max(
                (schedule.placements[p].finish for p in inst.dag.predecessors(j)),
                default=0.0,
            ),
        )
        for j in inst.jobs
    }
    for t0, t1, usage in schedule.intervals():
        dur = t1 - t0
        total_time += dur
        mid = (t0 + t1) / 2
        waiting = [
            j
            for j, p in schedule.placements.items()
            if ready_at[j] <= mid < p.start
        ]
        if not waiting:
            continue
        for r in range(d):
            if any(schedule.placements[j].alloc[r] > 0 for j in waiting):
                total_frag[r] += dur * (caps[r] - usage[r]) / caps[r]
    if total_time <= 0:
        return [0.0] * d
    return [f / total_time for f in total_frag]
