"""Vectorized candidate-grid evaluation (the HPC-guide optimization).

Profiling shows Phase 1's dominant Python-level cost on large instances is
evaluating ``t_j(p)`` candidate-by-candidate to build the (time, area)
tables.  For :class:`~repro.jobs.speedup.MultiResourceTime` models the whole
grid evaluates in a handful of numpy operations instead:

* each speedup family gets an array form ``s(xs)`` over an int array;
* the combiner reduces the per-type ``w_i / s_i(xs[:, i])`` matrix with
  ``max``/``sum`` along axis 1.

:func:`evaluate_entries` is a drop-in accelerated equivalent of the scalar
loop in :meth:`Instance.candidate_table` and is validated against it
element-for-element in the tests (`test_vectorized.py`) and timed in
``bench_vectorized.py``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.jobs.profiles import ProfileEntry, pareto_filter
from repro.jobs.speedup import (
    AmdahlSpeedup,
    LinearSpeedup,
    LogSpeedup,
    MultiResourceTime,
    PowerLawSpeedup,
    RooflineSpeedup,
)
from repro.resources.pool import ResourcePool
from repro.resources.vector import ResourceVector

__all__ = ["speedup_array", "evaluate_times", "evaluate_entries"]


def speedup_array(model, xs: np.ndarray) -> np.ndarray:
    """Array form of a speedup model over integral allocations ``xs >= 1``.

    Supports the built-in families; raises ``TypeError`` for custom models
    (callers fall back to the scalar path).
    """
    xs = np.asarray(xs, dtype=np.float64)
    if isinstance(model, LinearSpeedup):
        return xs
    if isinstance(model, AmdahlSpeedup):
        return xs / (model.alpha * xs + (1.0 - model.alpha))
    if isinstance(model, PowerLawSpeedup):
        return xs**model.beta
    if isinstance(model, RooflineSpeedup):
        return np.minimum(xs, model.cap)
    if isinstance(model, LogSpeedup):
        return 1.0 + model.gamma * np.log2(xs)
    raise TypeError(f"no array form for speedup model {type(model).__name__}")


def evaluate_times(fn: MultiResourceTime, allocs: np.ndarray) -> np.ndarray:
    """``t_j`` over an ``(m, d)`` integer allocation matrix, vectorized.

    Allocations must provide >= 1 unit of every type the job uses (matching
    the scalar evaluator's contract).
    """
    allocs = np.asarray(allocs)
    if allocs.ndim != 2 or allocs.shape[1] != fn.d:
        raise ValueError(f"allocation matrix must be (m, {fn.d}), got {allocs.shape}")
    terms = []
    for i, (w, s) in enumerate(zip(fn.works, fn.speedups)):
        if w == 0:
            continue
        xs = allocs[:, i]
        if (xs < 1).any():
            raise ValueError("allocation must provide >= 1 unit of every used type")
        terms.append(w / speedup_array(s, xs))
    stack = np.stack(terms, axis=1)
    return stack.max(axis=1) if fn.combiner == "max" else stack.sum(axis=1)


def evaluate_entries(
    fn: MultiResourceTime,
    candidates: Sequence[ResourceVector],
    pool: ResourcePool,
    *,
    pareto: bool = True,
) -> list[ProfileEntry]:
    """Build (and optionally Pareto-filter) the candidate entries for one job.

    Equivalent to the scalar ``ProfileEntry`` loop; areas use Definition 1's
    average over resource types.
    """
    allocs = np.array([tuple(c) for c in candidates], dtype=np.int64)
    times = evaluate_times(fn, allocs)
    if not np.isfinite(times).all() or (times <= 0).any():
        raise ValueError("execution times must be positive and finite")
    caps = np.array(tuple(pool.capacities), dtype=np.float64)
    areas = times * (allocs / caps).sum(axis=1) / pool.d
    entries = [
        ProfileEntry(alloc=c, time=float(t), area=float(a))
        for c, t, a in zip(candidates, times, areas)
    ]
    return pareto_filter(entries) if pareto else entries
