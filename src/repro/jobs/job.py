"""The moldable job: an id plus an execution-time function.

Assumption 2 (known execution times) is modeled by carrying the function
itself — any callable ``ResourceVector -> float``.  A job may optionally pin
its own candidate allocation list (e.g., rigid jobs in the Theorem 6
lower-bound instance expose exactly one candidate), overriding the
instance-wide enumeration strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.resources.vector import ResourceVector

__all__ = ["Job"]

JobId = Hashable
TimeFunction = Callable[[ResourceVector], float]


@dataclass(frozen=True)
class Job:
    """A moldable job.

    Parameters
    ----------
    id:
        Hashable identifier, unique within an instance.
    time_fn:
        Execution time ``t_j(p)`` for any allocation ``p`` (Assumption 2).
        Must return a strictly positive, finite float for every allocation
        the candidate strategy enumerates for this job.
    candidates:
        Optional explicit candidate allocations for Phase 1; when ``None``
        the instance-wide strategy is used.  A single-entry tuple makes the
        job rigid.
    release:
        Earliest time the job may start (its arrival in online scenarios).
        The default 0.0 is the paper's offline model — all jobs known and
        available at time zero.  The event kernel gates readiness on it.
    name:
        Cosmetic label for reports.
    """

    id: JobId
    time_fn: TimeFunction
    candidates: tuple[ResourceVector, ...] | None = None
    release: float = 0.0
    name: str = field(default="")

    def __post_init__(self) -> None:
        if not self.release >= 0.0:
            raise ValueError(f"job {self.id!r}: release time must be >= 0, got {self.release}")

    def time(self, alloc: ResourceVector) -> float:
        """Execution time under ``alloc`` — validated positive and finite."""
        t = float(self.time_fn(alloc))
        if not t > 0 or t != t or t == float("inf"):
            raise ValueError(
                f"job {self.id!r}: execution time must be positive and finite, "
                f"got {t} at allocation {tuple(alloc)}"
            )
        return t

    def is_rigid(self) -> bool:
        """True when the job admits exactly one allocation."""
        return self.candidates is not None and len(self.candidates) == 1
