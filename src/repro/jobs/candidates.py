"""Candidate-allocation enumeration strategies for Phase 1.

The DTCT transformation needs, for each job, the set of allocations whose
``(time, area)`` pairs form the task's alternatives.  Enumerating the full
grid ``Q = Π_i P^(i)`` is exponential in ``d``; the strategies below trade
completeness for tractability:

* :func:`full_grid` — every allocation (exact; small pools, test oracles);
* :func:`geometric_grid` — powers of a base per type, plus the capacity
  itself (the standard moldable-scheduling practice: ``log``-many levels per
  type, so ``O(log^d)`` candidates);
* :func:`diagonal_grid` — one fraction applied to every type (``O(levels)``
  candidates; models jobs that scale all resources together).

A job with an explicit ``candidates`` tuple (e.g. rigid jobs) bypasses the
strategy — see :func:`candidates_for_job`.
"""

from __future__ import annotations

from itertools import product
from typing import Callable

from repro.jobs.job import Job
from repro.resources.pool import ResourcePool
from repro.resources.vector import ResourceVector

__all__ = [
    "CandidateStrategy",
    "full_grid",
    "geometric_grid",
    "diagonal_grid",
    "make_candidates",
    "candidates_for_job",
]

CandidateStrategy = Callable[[ResourcePool], tuple[ResourceVector, ...]]


def _axis_levels_geometric(cap: int, base: float) -> list[int]:
    """Geometric levels ``1, base, base², ... , cap`` (deduplicated, sorted)."""
    levels = {1, cap}
    x = 1.0
    while x < cap:
        x *= base
        levels.add(min(cap, int(round(x))))
    return sorted(levels)


def full_grid(pool: ResourcePool) -> tuple[ResourceVector, ...]:
    """Every allocation with ``1 <= p^(i) <= P^(i)`` — exponential in ``d``."""
    axes = [range(1, cap + 1) for cap in pool.capacities]
    return tuple(ResourceVector(combo) for combo in product(*axes))


def geometric_grid(pool: ResourcePool, base: float = 2.0) -> tuple[ResourceVector, ...]:
    """Cartesian product of per-type geometric levels (includes 1 and P^(i))."""
    if base <= 1:
        raise ValueError(f"base must be > 1, got {base}")
    axes = [_axis_levels_geometric(cap, base) for cap in pool.capacities]
    return tuple(ResourceVector(combo) for combo in product(*axes))


def diagonal_grid(pool: ResourcePool, levels: int = 16) -> tuple[ResourceVector, ...]:
    """Allocations applying the same fraction ``f`` to every type:
    ``p^(i) = max(1, round(f * P^(i)))`` for ``levels`` fractions in (0, 1]."""
    if levels < 1:
        raise ValueError("levels must be >= 1")
    out: list[ResourceVector] = []
    seen: set[ResourceVector] = set()
    for k in range(1, levels + 1):
        f = k / levels
        v = ResourceVector(max(1, round(f * cap)) for cap in pool.capacities)
        if v not in seen:
            seen.add(v)
            out.append(v)
    return tuple(out)


def make_candidates(kind: str = "geometric", **kwargs) -> CandidateStrategy:
    """Factory returning a strategy by name (``full``/``geometric``/``diagonal``)."""
    if kind == "full":
        return full_grid
    if kind == "geometric":
        base = kwargs.pop("base", 2.0)
        if kwargs:
            raise TypeError(f"unexpected arguments {sorted(kwargs)}")
        return lambda pool: geometric_grid(pool, base=base)
    if kind == "diagonal":
        levels = kwargs.pop("levels", 16)
        if kwargs:
            raise TypeError(f"unexpected arguments {sorted(kwargs)}")
        return lambda pool: diagonal_grid(pool, levels=levels)
    raise ValueError(f"unknown candidate strategy {kind!r}")


def candidates_for_job(
    job: Job,
    pool: ResourcePool,
    strategy: CandidateStrategy,
) -> tuple[ResourceVector, ...]:
    """The job's own candidate list if pinned, otherwise ``strategy(pool)``.

    Every returned allocation is validated against the pool.  Jobs whose time
    function rejects an allocation (e.g. zero units of a used type) should
    pin their candidates instead of relying on the strategy.
    """
    cands = job.candidates if job.candidates is not None else strategy(pool)
    if not cands:
        raise ValueError(f"job {job.id!r} has an empty candidate set")
    for c in cands:
        pool.validate_allocation(c)
    return tuple(cands)
