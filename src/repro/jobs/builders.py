"""Profile builders: measured samples, noise injection, kernel presets.

Assumption 2 says execution-time functions come from "modeling, profiling,
prediction or interpolation"; this module provides those ingestion paths:

* :func:`profile_from_samples` — wrap measured ``allocation → time`` samples
  (with monotone completion for off-grid queries);
* :func:`perturbed_time_fn` — deterministic multiplicative noise on top of a
  model, for robustness studies (noise can break Assumption 3 — quantify
  with :func:`repro.jobs.profiles.assumption3_violations`);
* :func:`kernel_time_fn` — canonical dense-linear-algebra kernel profiles on
  (cores, cache, memory-bandwidth)-style platforms, used by the Cholesky/LU
  experiments and examples.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Mapping

import numpy as np

from repro.jobs.profiles import TabulatedTimeFunction
from repro.jobs.speedup import AmdahlSpeedup, MultiResourceTime, RooflineSpeedup
from repro.resources.vector import ResourceVector

__all__ = ["profile_from_samples", "perturbed_time_fn", "kernel_time_fn", "KERNEL_PRESETS"]

TimeFunction = Callable[[ResourceVector], float]


def profile_from_samples(
    samples: Mapping[tuple, float] | Mapping[ResourceVector, float],
    *,
    extend_monotone: bool = True,
) -> TabulatedTimeFunction:
    """Build a time function from measured samples.

    With ``extend_monotone`` (default) queries off the sampled grid return
    the fastest sampled time among dominated allocations, so the candidate
    strategies need not match the profiling grid exactly.
    """
    return TabulatedTimeFunction(samples, extend_monotone=extend_monotone)


def perturbed_time_fn(
    base: TimeFunction,
    rel_noise: float,
    seed: int = 0,
) -> TimeFunction:
    """Multiply ``base`` by a deterministic per-allocation lognormal factor.

    The factor depends only on ``(seed, allocation)`` — repeated queries are
    consistent (a requirement for the schedulers, which evaluate the same
    allocation many times).  ``rel_noise`` is the lognormal sigma; 0 returns
    ``base`` unchanged.
    """
    if rel_noise < 0:
        raise ValueError("rel_noise must be >= 0")
    if rel_noise == 0:
        return base

    def fn(alloc: ResourceVector) -> float:
        digest = hashlib.sha256(f"{seed}:{tuple(alloc)}".encode()).digest()
        sub_seed = int.from_bytes(digest[:8], "little")
        factor = float(np.exp(np.random.default_rng(sub_seed).normal(0.0, rel_noise)))
        return base(alloc) * factor

    return fn


#: Canonical (work, sequential-fraction, cache-cap, membw-cap) per kernel,
#: normalized to a GEMM work unit of 1.  Shapes follow the usual flop/byte
#: intuition: GEMM scales near-linearly with cores, TRSM/SYRK saturate
#: earlier, panel factorizations are sequential-heavy and cache-bound.
KERNEL_PRESETS: dict[str, tuple[float, float, float, float]] = {
    "gemm": (1.00, 0.05, 8.0, 6.0),
    "syrk": (0.55, 0.12, 6.0, 4.0),
    "trsm": (0.55, 0.15, 6.0, 4.0),
    "trsm_r": (0.55, 0.15, 6.0, 4.0),
    "trsm_c": (0.55, 0.15, 6.0, 4.0),
    "potrf": (0.35, 0.40, 4.0, 2.0),
    "getrf": (0.40, 0.45, 4.0, 2.0),
    "geqrt": (0.45, 0.40, 4.0, 2.0),
    "tsqrt": (0.50, 0.30, 4.0, 3.0),
    "ormqr": (0.60, 0.15, 6.0, 4.0),
    "tsmqr": (0.90, 0.08, 8.0, 5.0),
}


def kernel_time_fn(kernel: str, d: int, *, scale: float = 10.0) -> MultiResourceTime:
    """A preset execution-time model for a dense-LA ``kernel`` on ``d``
    resource types.

    Type 0 is compute (Amdahl), further types alternate cache/membw-style
    roofline terms derived from the preset caps.  Unknown kernels get the
    GEMM profile (a safe, parallel-friendly default).

    Works with the node ids produced by
    :func:`repro.dag.generators.cholesky_dag` / :func:`lu_dag` / :func:`qr_dag`
    (pass ``task[0]`` as the kernel name).
    """
    if d < 1:
        raise ValueError("d must be >= 1")
    work, alpha, cache_cap, bw_cap = KERNEL_PRESETS.get(kernel, KERNEL_PRESETS["gemm"])
    works = [scale * work]
    speedups: list = [AmdahlSpeedup(alpha)]
    for i in range(1, d):
        cap = cache_cap if i % 2 == 1 else bw_cap
        works.append(scale * work * 0.4)
        speedups.append(RooflineSpeedup(cap))
    return MultiResourceTime(works=tuple(works), speedups=tuple(speedups), combiner="max")
