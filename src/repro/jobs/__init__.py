"""Moldable job model (Section 3.1, Assumptions 2-3).

A job's execution time ``t_j(p_j)`` is a known function of its allocation
vector.  :mod:`repro.jobs.speedup` provides analytic multi-resource models
that provably satisfy Assumption 3; :mod:`repro.jobs.profiles` provides
tabulated profiles, the non-dominated (Pareto) filtering of Eq. (2), and
Assumption-3 checkers; :mod:`repro.jobs.candidates` controls which
allocations are enumerated for Phase 1.
"""

from repro.jobs.job import Job
from repro.jobs.speedup import (
    SpeedupModel,
    LinearSpeedup,
    AmdahlSpeedup,
    PowerLawSpeedup,
    RooflineSpeedup,
    LogSpeedup,
    CommunicationOverheadTime,
    MultiResourceTime,
    random_multi_resource_time,
)
from repro.jobs.profiles import (
    TabulatedTimeFunction,
    ProfileEntry,
    pareto_filter,
    assumption3_violations,
)
from repro.jobs.candidates import full_grid, geometric_grid, diagonal_grid, make_candidates

__all__ = [
    "Job",
    "SpeedupModel",
    "LinearSpeedup",
    "AmdahlSpeedup",
    "PowerLawSpeedup",
    "RooflineSpeedup",
    "LogSpeedup",
    "CommunicationOverheadTime",
    "MultiResourceTime",
    "random_multi_resource_time",
    "TabulatedTimeFunction",
    "ProfileEntry",
    "pareto_filter",
    "assumption3_violations",
    "full_grid",
    "geometric_grid",
    "diagonal_grid",
    "make_candidates",
]
