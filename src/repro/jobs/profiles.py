"""Tabulated profiles, Eq. (2) dominance filtering, and Assumption-3 checks.

The DTCT transformation (Section 4.1.2) evaluates each candidate allocation
``p`` of a job at the pair ``(t_j(p), a_j(p))`` — execution time and average
area — and discards the *dominated* subset

    D_j = { p | ∃ q : t_j(q) < t_j(p) and a_j(q) < a_j(p) }        (Eq. 2)

so that the remaining alternatives satisfy the DTCT tradeoff condition
(faster ⇒ at least as costly).  :func:`pareto_filter` implements this and
additionally drops redundant duplicates (equal time with larger-or-equal
area, or equal area with larger-or-equal time — justified by footnote 1),
yielding a frontier with *strictly* increasing time and strictly decreasing
area, the clean shape the ρ-quantile rounding of Lemma 3 needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.resources.vector import ResourceVector

__all__ = ["ProfileEntry", "TabulatedTimeFunction", "pareto_filter", "assumption3_violations"]


@dataclass(frozen=True)
class ProfileEntry:
    """One candidate allocation with its evaluated time and average area."""

    alloc: ResourceVector
    time: float
    area: float

    def dominates(self, other: "ProfileEntry") -> bool:
        """Strict Eq. (2) dominance: faster *and* cheaper."""
        return self.time < other.time and self.area < other.area


class TabulatedTimeFunction:
    """Execution time given by a finite table ``{allocation: time}``.

    Lookup is exact by default.  With ``extend_monotone=True`` a query for an
    allocation not in the table returns the time of the fastest tabulated
    allocation dominated by the query (monotone completion) — convenient for
    profiles sampled on a sub-grid.
    """

    def __init__(
        self,
        table: Mapping[ResourceVector, float] | Mapping[tuple, float],
        *,
        extend_monotone: bool = False,
    ):
        if not table:
            raise ValueError("profile table must be non-empty")
        self._table: dict[ResourceVector, float] = {}
        for alloc, t in table.items():
            v = alloc if isinstance(alloc, ResourceVector) else ResourceVector(alloc)
            if t <= 0:
                raise ValueError(f"profile times must be positive, got {t} at {tuple(v)}")
            self._table[v] = float(t)
        ds = {v.d for v in self._table}
        if len(ds) != 1:
            raise ValueError("all tabulated allocations must have the same dimension")
        self._extend = extend_monotone

    @property
    def allocations(self) -> tuple[ResourceVector, ...]:
        return tuple(self._table)

    def __call__(self, alloc: ResourceVector) -> float:
        alloc = alloc if isinstance(alloc, ResourceVector) else ResourceVector(alloc)
        t = self._table.get(alloc)
        if t is not None:
            return t
        if self._extend:
            feas = [tt for a, tt in self._table.items() if a.dominated_by(alloc)]
            if feas:
                return min(feas)
        raise KeyError(f"allocation {tuple(alloc)} not in profile table")


def pareto_filter(entries: Iterable[ProfileEntry]) -> list[ProfileEntry]:
    """The non-dominated set ``N_j`` of Eq. (2), deduplicated.

    Returns entries sorted by strictly increasing time with strictly
    decreasing area.  Ties: among equal times the minimum-area entry is kept;
    an entry whose area equals an already-kept faster entry's area is
    redundant (slower at the same cost) and dropped.
    """
    items = sorted(entries, key=lambda e: (e.time, e.area))
    out: list[ProfileEntry] = []
    best_area = float("inf")
    i = 0
    while i < len(items):
        # group of equal time: the first of the group has minimal area
        j = i
        while j + 1 < len(items) and items[j + 1].time == items[i].time:
            j += 1
        rep = items[i]
        if rep.area < best_area:
            out.append(rep)
            best_area = rep.area
        i = j + 1
    return out


def assumption3_violations(
    entries: Sequence[ProfileEntry],
    *,
    rtol: float = 1e-9,
    max_report: int = 10,
) -> list[str]:
    """Check Assumption 3 over all comparable candidate pairs.

    For every pair ``p ⪯ q`` in ``entries`` verifies
    ``t(q) <= t(p) <= max_i(q^(i)/p^(i)) * t(q)`` (within ``rtol``) and
    returns human-readable descriptions of up to ``max_report`` violations
    (empty list ⇒ the profile is Assumption-3 compliant on this grid).
    """
    bad: list[str] = []
    for e1 in entries:
        for e2 in entries:
            if len(bad) >= max_report:
                return bad
            if e1 is e2 or not e1.alloc.strictly_dominated_by(e2.alloc):
                continue
            # e1.alloc ⪯ e2.alloc (p=e1, q=e2)
            if e2.time > e1.time * (1 + rtol):
                bad.append(
                    f"monotonicity: t{tuple(e2.alloc)}={e2.time:.6g} > "
                    f"t{tuple(e1.alloc)}={e1.time:.6g}"
                )
                continue
            ratio = e2.alloc.max_ratio_over(e1.alloc)
            if e1.time > ratio * e2.time * (1 + rtol):
                bad.append(
                    f"superlinear speedup: t{tuple(e1.alloc)}={e1.time:.6g} > "
                    f"{ratio:.4g} * t{tuple(e2.alloc)}={e2.time:.6g}"
                )
    return bad
