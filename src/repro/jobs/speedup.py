"""Analytic multi-resource execution-time models.

Assumption 3 of the paper requires, for allocations ``p ⪯ q``::

    t(q) <= t(p) <= (max_i q^(i)/p^(i)) * t(q)

i.e. more resources never hurt, and the speedup from any single resource
type is never superlinear.  A sufficient per-type condition is that the
speedup function ``s(x)`` is non-decreasing with ``s(x)/x`` non-increasing
(concave-like).  The models below all satisfy it, and combining per-type
terms with either ``max`` (bottleneck resource, the roofline view) or
``sum`` (phased execution: compute phase + memory phase + I/O phase)
preserves the property:

* ``max`` combiner: ``t(p) = max_i w_i / s_i(p^(i))``;
* ``sum`` combiner: ``t(p) = Σ_i w_i / s_i(p^(i))``.

(A *product* combiner would model combined superlinear speedups — e.g. the
cache effect — which the paper explicitly excludes; we do not provide it.)

:class:`CommunicationOverheadTime` is a classic single-type model whose time
*increases* beyond a parallelism sweet spot; it violates the first
inequality for large allocations, which the paper handles by discarding
dominated allocations (footnote 1).  It is provided for realistic workloads
and is exercised through the Eq. (2) Pareto filter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.resources.vector import ResourceVector
from repro.util.rng import ensure_rng

__all__ = [
    "SpeedupModel",
    "LinearSpeedup",
    "AmdahlSpeedup",
    "PowerLawSpeedup",
    "RooflineSpeedup",
    "LogSpeedup",
    "MultiResourceTime",
    "CommunicationOverheadTime",
    "random_multi_resource_time",
]


class SpeedupModel(Protocol):
    """A per-resource-type speedup function ``s(x)`` for integral ``x >= 1``."""

    def __call__(self, x: int) -> float:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class LinearSpeedup:
    """Perfect scaling: ``s(x) = x``."""

    def __call__(self, x: int) -> float:
        return float(x)


@dataclass(frozen=True)
class AmdahlSpeedup:
    """Amdahl's law with sequential fraction ``alpha``:
    ``s(x) = x / (alpha * x + 1 - alpha)``."""

    alpha: float

    def __post_init__(self) -> None:
        if not 0 <= self.alpha <= 1:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")

    def __call__(self, x: int) -> float:
        return x / (self.alpha * x + (1.0 - self.alpha))


@dataclass(frozen=True)
class PowerLawSpeedup:
    """Sub-linear power law ``s(x) = x**beta`` with ``beta in (0, 1]``."""

    beta: float

    def __post_init__(self) -> None:
        if not 0 < self.beta <= 1:
            raise ValueError(f"beta must be in (0, 1], got {self.beta}")

    def __call__(self, x: int) -> float:
        return float(x) ** self.beta


@dataclass(frozen=True)
class RooflineSpeedup:
    """Linear up to a saturation point: ``s(x) = min(x, cap)`` [38, 15]."""

    cap: float

    def __post_init__(self) -> None:
        if self.cap < 1:
            raise ValueError(f"cap must be >= 1, got {self.cap}")

    def __call__(self, x: int) -> float:
        return min(float(x), self.cap)


@dataclass(frozen=True)
class LogSpeedup:
    """Diminishing returns ``s(x) = 1 + gamma * log2(x)``.

    ``gamma`` is capped at ``ln 2 ≈ 0.693``: beyond that the model is
    superlinear near ``x = 1`` (``s(2) = 1 + γ > 2``), violating
    Assumption 3's non-superlinear speedup requirement.
    """

    gamma: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.gamma <= math.log(2.0):
            raise ValueError(
                f"gamma must lie in (0, ln 2 ≈ 0.693] to satisfy Assumption 3, got {self.gamma}"
            )

    def __call__(self, x: int) -> float:
        return 1.0 + self.gamma * math.log2(x)


@dataclass(frozen=True)
class MultiResourceTime:
    """Execution time combining one speedup term per resource type.

    Parameters
    ----------
    works:
        Per-type work ``w_i >= 0``; a zero entry means the job does not use
        that resource type (the term is skipped and the allocation may be 0
        there).
    speedups:
        One :class:`SpeedupModel` per resource type.
    combiner:
        ``"max"`` (bottleneck semantics) or ``"sum"`` (phased semantics).
        Both satisfy Assumption 3 (see module docstring).
    """

    works: tuple[float, ...]
    speedups: tuple[SpeedupModel, ...]
    combiner: str = "max"

    def __post_init__(self) -> None:
        if len(self.works) != len(self.speedups):
            raise ValueError("works and speedups must have the same length")
        if any(w < 0 for w in self.works):
            raise ValueError("per-type works must be non-negative")
        if not any(w > 0 for w in self.works):
            raise ValueError("at least one per-type work must be positive")
        if self.combiner not in ("max", "sum"):
            raise ValueError(f"combiner must be 'max' or 'sum', got {self.combiner!r}")

    @property
    def d(self) -> int:
        return len(self.works)

    def uses_type(self, i: int) -> bool:
        """True when the job has work on resource type ``i``."""
        return self.works[i] > 0

    def __call__(self, alloc: ResourceVector) -> float:
        if len(alloc) != len(self.works):
            raise ValueError(
                f"allocation has {len(alloc)} types, model has {len(self.works)}"
            )
        terms = []
        for w, s, x in zip(self.works, self.speedups, alloc):
            if w == 0:
                continue
            if x < 1:
                raise ValueError(
                    "allocation must provide >= 1 unit of every resource type the "
                    f"job uses (work {w} with allocation {x})"
                )
            terms.append(w / s(int(x)))
        return max(terms) if self.combiner == "max" else sum(terms)


@dataclass(frozen=True)
class CommunicationOverheadTime:
    """Single-type model ``t(x) = w/x + c*(x-1)``: parallel work plus a
    linearly growing coordination cost.  Non-monotonic past ``sqrt(w/c)``;
    the over-allocated points are dominated and removed by Eq. (2)."""

    rtype: int
    work: float
    overhead: float
    d: int

    def __post_init__(self) -> None:
        if self.work <= 0 or self.overhead < 0:
            raise ValueError("work must be positive and overhead non-negative")
        if not 0 <= self.rtype < self.d:
            raise ValueError("rtype out of range")

    def __call__(self, alloc: ResourceVector) -> float:
        x = alloc[self.rtype]
        if x < 1:
            raise ValueError("allocation must provide >= 1 unit of the used type")
        return self.work / x + self.overhead * (x - 1)


def random_multi_resource_time(
    d: int,
    seed: int | np.random.Generator | None = None,
    *,
    total_work: tuple[float, float] = (1.0, 100.0),
    model: str = "mixed",
    combiner: str = "max",
    zero_prob: float = 0.0,
) -> MultiResourceTime:
    """Sample a random :class:`MultiResourceTime` for ``d`` resource types.

    ``model`` selects the per-type speedup family: ``"amdahl"``,
    ``"power"``, ``"roofline"``, ``"log"``, ``"linear"`` or ``"mixed"``
    (uniform over the families).  ``zero_prob`` is the probability that a
    type carries no work (at least one type always does).  ``total_work``
    bounds the log-uniform per-type work draw.
    """
    rng = ensure_rng(seed)
    lo, hi = total_work
    if not 0 < lo <= hi:
        raise ValueError("total_work bounds must satisfy 0 < lo <= hi")

    def draw_speedup() -> SpeedupModel:
        kind = model
        if kind == "mixed":
            kind = str(rng.choice(["amdahl", "power", "roofline", "log", "linear"]))
        if kind == "amdahl":
            return AmdahlSpeedup(alpha=float(rng.uniform(0.0, 0.25)))
        if kind == "power":
            return PowerLawSpeedup(beta=float(rng.uniform(0.5, 1.0)))
        if kind == "roofline":
            return RooflineSpeedup(cap=float(rng.uniform(2.0, 32.0)))
        if kind == "log":
            return LogSpeedup(gamma=float(rng.uniform(0.3, math.log(2.0))))
        if kind == "linear":
            return LinearSpeedup()
        raise ValueError(f"unknown speedup model {model!r}")

    works = [
        0.0 if rng.random() < zero_prob else float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
        for _ in range(d)
    ]
    if not any(w > 0 for w in works):
        works[int(rng.integers(d))] = float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
    return MultiResourceTime(
        works=tuple(works),
        speedups=tuple(draw_speedup() for _ in range(d)),
        combiner=combiner,
    )
