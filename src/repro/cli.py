"""Command-line interface: regenerate experiments and schedule workloads.

Usage (after ``pip install -e .``)::

    python -m repro figure1
    python -m repro figure2 --d 2 3 4 --m 12 48
    python -m repro table1
    python -m repro sim-a --families layered cholesky --d 1 2 3
    python -m repro sim-b
    python -m repro schedule --family cholesky --n 40 --d 3 --gantt
    python -m repro schedule --family independent --algorithm sun_shelf

Every command prints the same tables the benchmark harness asserts on.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.baselines import (
    backfill_scheduler,
    balanced_scheduler,
    heft_moldable_scheduler,
    level_shelf_scheduler,
    min_area_scheduler,
    min_time_scheduler,
    sun_list_scheduler,
    sun_shelf_scheduler,
    tetris_scheduler,
)
from repro.core.two_phase import MoldableScheduler
from repro.experiments.figure1 import figure1_table
from repro.experiments.report import format_table
from repro.experiments.sweeps import (
    algorithm_comparison,
    independent_comparison,
    mu_rho_ablation,
    priority_ablation,
    theorem6_sweep,
)
from repro.experiments.table1 import table1_text
from repro.experiments.workloads import WORKLOAD_FAMILIES, random_instance
from repro.resources.pool import ResourcePool
from repro.sim.gantt import ascii_gantt
from repro.sim.trace import trace_to_json

__all__ = ["main", "build_parser"]

_BASELINES = {
    "min_area": min_area_scheduler,
    "min_time": min_time_scheduler,
    "balanced": balanced_scheduler,
    "tetris": tetris_scheduler,
    "heft": heft_moldable_scheduler,
    "backfill": backfill_scheduler,
    "level_shelf": level_shelf_scheduler,
    "sun_list": sun_list_scheduler,
    "sun_shelf": sun_shelf_scheduler,
}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro", description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="command", required=True)

    f1 = sub.add_parser("figure1", help="Theorem 2 ratio curves (Figure 1)")
    f1.add_argument("--d-min", type=int, default=22)
    f1.add_argument("--d-max", type=int, default=50)

    f2 = sub.add_parser("figure2", help="Theorem 6 lower-bound simulation (Figure 2)")
    f2.add_argument("--d", type=int, nargs="+", default=[2, 3, 4, 5, 6])
    f2.add_argument("--m", type=int, nargs="+", default=[12, 24, 48])

    t1 = sub.add_parser("table1", help="approximation-ratio summary (Table 1)")
    t1.add_argument("--d", type=int, nargs="+", default=[1, 2, 3, 4, 8, 22, 50])

    sa = sub.add_parser("sim-a", help="ratio vs d, ours vs baselines")
    sa.add_argument("--families", nargs="+", default=["layered", "cholesky"],
                    choices=list(WORKLOAD_FAMILIES))
    sa.add_argument("--d", type=int, nargs="+", default=[1, 2, 3])
    sa.add_argument("--n", type=int, default=24)
    sa.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])

    sb = sub.add_parser("sim-b", help="independent jobs, ours vs Sun et al. [36]")
    sb.add_argument("--d", type=int, nargs="+", default=[1, 2, 3, 4])
    sb.add_argument("--n", type=int, default=32)
    sb.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2, 3])

    ab = sub.add_parser("ablation", help="µ/ρ and priority ablations")
    ab.add_argument("kind", choices=["mu-rho", "priority"])
    ab.add_argument("--d", type=int, default=3)
    ab.add_argument("--n", type=int, default=24)

    sc = sub.add_parser("schedule", help="schedule one workload and report")
    sc.add_argument("--family", default="layered", choices=list(WORKLOAD_FAMILIES))
    sc.add_argument("--n", type=int, default=24)
    sc.add_argument("--d", type=int, default=2)
    sc.add_argument("--capacity", type=int, default=16)
    sc.add_argument("--seed", type=int, default=0)
    sc.add_argument("--algorithm", default="ours", choices=["ours", *list(_BASELINES)])
    sc.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")
    sc.add_argument("--trace", metavar="FILE", help="write a JSON trace")

    return p


def _cmd_schedule(args) -> int:
    pool = ResourcePool.uniform(args.d, args.capacity)
    wl = random_instance(args.family, args.n, pool, seed=args.seed)
    inst = wl.instance
    if args.algorithm == "ours":
        result = MoldableScheduler().schedule(inst, sp_tree=wl.sp_tree)
        schedule = result.schedule
        print(
            f"family={args.family} n={inst.n} d={inst.d} allocator={result.allocator}\n"
            f"makespan={result.makespan:.4f} lower_bound={result.lower_bound:.4f} "
            f"ratio={result.ratio():.4f} proven<={result.proven_ratio:.4f}"
        )
    else:
        fn = _BASELINES[args.algorithm]
        res = fn(inst)
        schedule = res.schedule
        print(f"family={args.family} n={inst.n} d={inst.d} algorithm={res.name}\n"
              f"makespan={res.makespan:.4f}")
    schedule.validate()
    if args.gantt:
        print()
        print(ascii_gantt(schedule, width=78))
    if args.trace:
        with open(args.trace, "w") as fh:
            fh.write(trace_to_json(schedule))
        print(f"\ntrace written to {args.trace}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "figure1":
        print(figure1_table(args.d_min, args.d_max))
        return 0
    if args.command == "figure2":
        rows = theorem6_sweep(d_values=tuple(args.d), m_values=tuple(args.m))
        print(format_table(list(rows[0]), [list(r.values()) for r in rows],
                           title="Theorem 6 / Figure 2"))
        return 0
    if args.command == "table1":
        print(table1_text(tuple(args.d)))
        return 0
    if args.command == "sim-a":
        rows = algorithm_comparison(families=args.families, d_values=tuple(args.d),
                                    n=args.n, seeds=tuple(args.seeds))
        print(format_table(list(rows[0]), [list(r.values()) for r in rows],
                           title="Sim-A: mean ratio vs LP lower bound"))
        return 0
    if args.command == "sim-b":
        rows = independent_comparison(d_values=tuple(args.d), n=args.n,
                                      seeds=tuple(args.seeds))
        print(format_table(list(rows[0]), [list(r.values()) for r in rows],
                           title="Sim-B: independent jobs"))
        return 0
    if args.command == "ablation":
        if args.kind == "mu-rho":
            rows = mu_rho_ablation(d=args.d, n=args.n)
        else:
            rows = priority_ablation(d=args.d, n=args.n)
        print(format_table(list(rows[0]), [list(r.values()) for r in rows],
                           title=f"Ablation: {args.kind}"))
        return 0
    if args.command == "schedule":
        return _cmd_schedule(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
