"""Command-line interface: regenerate experiments and schedule workloads.

Usage (after ``pip install -e .``)::

    python -m repro figure1
    python -m repro figure2 --d 2 3 4 --m 12 48
    python -m repro table1
    python -m repro sim-a --families layered cholesky --d 1 2 3
    python -m repro sim-b
    python -m repro schedulers
    python -m repro fuzz --quick
    python -m repro bench --quick --json out.json
    python -m repro bench --only engine scaling --compare baseline.json
    python -m repro schedule --family cholesky --n 40 --d 3 --gantt
    python -m repro schedule --family independent --scheduler sun_shelf
    python -m repro schedule --scheduler tetris --arrival-rate 2.0
    python -m repro schedule --n 2000 --follow      # stream events live
    python -m repro serve --capacities 16 16        # JSON-lines service
    python -m repro serve --tcp 7077 --batch-size 8

Every scheduler name comes from :mod:`repro.registry`; every command
prints the same tables the benchmark harness asserts on.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.figure1 import figure1_table
from repro.experiments.report import format_table
from repro.experiments.sweeps import (
    algorithm_comparison,
    independent_comparison,
    mu_rho_ablation,
    priority_ablation,
    theorem6_sweep,
)
from repro.experiments.table1 import table1_text
from repro.experiments.workloads import WORKLOAD_FAMILIES, random_instance
from repro.instance.instance import with_poisson_arrivals
from repro.registry import available_schedulers, get_scheduler, scheduler_specs
from repro.resources.pool import ResourcePool
from repro.sim.gantt import ascii_gantt
from repro.sim.schedule import Schedule
from repro.sim.trace import trace_to_json

__all__ = ["main", "build_parser"]


def _add_backend_arg(sp: argparse.ArgumentParser) -> None:
    sp.add_argument("--backend", default=None, metavar="NAME",
                    help="dispatch backend for the packed engine loop "
                         "(default: REPRO_BACKEND or 'python'; a registered "
                         "but unavailable backend falls back to 'python' "
                         "with a warning)")


def _resolve_cli_backend(name: "str | None"):
    """Resolve ``--backend`` (CLI > ``REPRO_BACKEND`` > default) and pin
    the winner into the environment, so every layer below — schedulers,
    sessions, benchmark suites, supervised worker children — resolves the
    same backend.  Returns the backend, or ``None`` after printing an
    error for an unregistered name."""
    import os

    from repro.engine.backends import BACKEND_ENV, resolve_backend

    try:
        backend = resolve_backend(name)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return None
    os.environ[BACKEND_ENV] = backend.name
    return backend


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro", description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="command", required=True)

    f1 = sub.add_parser("figure1", help="Theorem 2 ratio curves (Figure 1)")
    f1.add_argument("--d-min", type=int, default=22)
    f1.add_argument("--d-max", type=int, default=50)

    f2 = sub.add_parser("figure2", help="Theorem 6 lower-bound simulation (Figure 2)")
    f2.add_argument("--d", type=int, nargs="+", default=[2, 3, 4, 5, 6])
    f2.add_argument("--m", type=int, nargs="+", default=[12, 24, 48])

    t1 = sub.add_parser("table1", help="approximation-ratio summary (Table 1)")
    t1.add_argument("--d", type=int, nargs="+", default=[1, 2, 3, 4, 8, 22, 50])

    workers_help = (
        "process-pool size for the sweep cells (default 1 = serial; "
        "0 = auto, i.e. default_workers(), overridable via REPRO_WORKERS)"
    )

    sa = sub.add_parser("sim-a", help="ratio vs d, ours vs baselines")
    sa.add_argument("--families", nargs="+", default=["layered", "cholesky"],
                    choices=list(WORKLOAD_FAMILIES))
    sa.add_argument("--d", type=int, nargs="+", default=[1, 2, 3])
    sa.add_argument("--n", type=int, default=24)
    sa.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    sa.add_argument("--workers", type=int, default=1, help=workers_help)

    sb = sub.add_parser("sim-b", help="independent jobs, ours vs Sun et al. [36]")
    sb.add_argument("--d", type=int, nargs="+", default=[1, 2, 3, 4])
    sb.add_argument("--n", type=int, default=32)
    sb.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2, 3])
    sb.add_argument("--workers", type=int, default=1, help=workers_help)

    ab = sub.add_parser("ablation", help="µ/ρ and priority ablations")
    ab.add_argument("kind", choices=["mu-rho", "priority"])
    ab.add_argument("--d", type=int, default=3)
    ab.add_argument("--n", type=int, default=24)

    sub.add_parser("schedulers", help="list the registered schedulers")

    be = sub.add_parser(
        "bench",
        help="registry-driven benchmark harness: timed cases, recorded "
             "checks, versioned JSON emission, baseline comparison",
    )
    be.add_argument("--quick", action="store_true",
                    help="reduced CI configuration (smaller engine workloads, "
                         "timing gates relaxed; also via REPRO_BENCH_QUICK=1)")
    be.add_argument("--only", nargs="+", default=None, metavar="NAME",
                    help="run only these registered benchmarks")
    be.add_argument("--kind", default=None,
                    choices=["engine", "paper", "ablation", "extension"],
                    help="run only benchmarks of this kind")
    be.add_argument("--seed", type=int, default=0,
                    help="workload seed offset (engine-level workloads)")
    be.add_argument("--workers", type=int, default=1,
                    help="process-pool size over whole benchmarks (default 1 "
                         "= serial, best timing fidelity; 0 = auto)")
    be.add_argument("--json", metavar="FILE", dest="json_out",
                    help="write the full repro-bench/1 document here")
    be.add_argument("--emit-dir", metavar="DIR",
                    help="write per-benchmark BENCH_<name>.json slices here")
    be.add_argument("--tables", metavar="DIR",
                    help="render every embedded result table to DIR/<name>.txt")
    be.add_argument("--compare", metavar="BASELINE.json",
                    help="diff against a baseline document; gated regressions "
                         "fail the run")
    be.add_argument("--list", action="store_true", dest="list_only",
                    help="list registered benchmarks and exit")
    be.add_argument("--profile", metavar="NAME", default=None,
                    help="run one registered benchmark under cProfile; the "
                         "top-50 cumulative-time stats are written to "
                         "--emit-dir/PROFILE_<name>.txt when --emit-dir is "
                         "given, else printed after the run's own output "
                         "(no document emission or gating)")
    _add_backend_arg(be)

    fz = sub.add_parser(
        "fuzz",
        help="conformance sweep: strict validation + differential checks "
             "over every registered scheduler",
    )
    fz.add_argument("--quick", action="store_true",
                    help="reduced matrix (~500 cases; also via REPRO_FUZZ_QUICK=1)")
    fz.add_argument("--n", type=int, default=10, help="jobs per instance")
    fz.add_argument("--seed", type=int, default=0, help="base seed")
    fz.add_argument("--schedulers", nargs="+", default=None, metavar="NAME",
                    help="restrict to these registered schedulers")
    fz.add_argument("--families", nargs="+", default=None,
                    choices=list(WORKLOAD_FAMILIES),
                    help="restrict to these workload families")
    fz.add_argument("--max-cases", type=int, default=None, metavar="K",
                    help="truncate the matrix to its first K cases")
    fz.add_argument("--failures", metavar="FILE",
                    help="write failing cases (seeded reproducers) as JSON")
    _add_backend_arg(fz)

    sc = sub.add_parser("schedule", help="schedule one workload and report")
    sc.add_argument("--family", default="layered", choices=list(WORKLOAD_FAMILIES))
    sc.add_argument("--n", type=int, default=24)
    sc.add_argument("--d", type=int, default=2)
    sc.add_argument("--capacity", type=int, default=16)
    sc.add_argument("--seed", type=int, default=0)
    sc.add_argument("--scheduler", "--algorithm", dest="scheduler", default="ours",
                    metavar="NAME",
                    help="a registered scheduler name (see `repro schedulers`)")
    sc.add_argument("--arrival-rate", type=float, default=None, metavar="RATE",
                    help="online scenario: jobs arrive as a Poisson process "
                         "with this rate (event-driven schedulers only)")
    sc.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")
    sc.add_argument("--trace", metavar="FILE", help="write a JSON trace")
    sc.add_argument("--follow", action="store_true",
                    help="stream per-event progress while dispatching: the "
                         "scheduler's allocation is replayed through the "
                         "re-entrant engine loop, printing each start/finish "
                         "as virtual time advances (fixed-allocation "
                         "schedulers only)")
    _add_backend_arg(sc)

    sv = sub.add_parser(
        "serve",
        help="online scheduling service: JSON-lines requests "
             "(submit/cancel/advance/drain/checkpoint/restore) over "
             "stdin/stdout or TCP; --workers N shards tenants across "
             "worker processes",
    )
    sv.add_argument("--capacities", type=int, nargs="+", default=None, metavar="P",
                    help="per-type platform capacities (default: --d copies "
                         "of --capacity)")
    sv.add_argument("--d", type=int, default=2)
    sv.add_argument("--capacity", type=int, default=16)
    sv.add_argument("--tcp", type=int, default=None, metavar="PORT",
                    help="serve a TCP socket instead of stdin/stdout "
                         "(0 picks a free port)")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--restore", metavar="FILE", default=None,
                    help="resume from a repro-session/2 (or legacy /1) "
                         "checkpoint (single-worker mode only)")
    sv.add_argument("--trace", metavar="FILE", default=None,
                    help="write the session trace (v3, cancellations "
                         "included) on shutdown (single-worker mode; "
                         "sharded services use the 'trace' op)")
    sv.add_argument("--seed", type=int, default=0,
                    help="session RNG seed (shard i uses seed+i)")
    sv.add_argument("--compact-threshold", type=float, default=None,
                    metavar="FRACTION",
                    help="archive finished rows once this fraction of the "
                         "live table is dead (session default 0.5; 0 or "
                         "negative disables compaction; overrides a "
                         "restored checkpoint's setting when given)")
    sv.add_argument("--compact-min-rows", type=int, default=None,
                    metavar="N",
                    help="never compact below this many live rows "
                         "(session default 512; overrides a restored "
                         "checkpoint's setting when given)")
    _add_backend_arg(sv)

    lim = sv.add_argument_group(
        "admission & limits",
        "when jobs are admitted from the per-tenant buffers into the "
        "session, and how much a client may buffer or send",
    )
    lim.add_argument("--batch-size", type=int, default=32,
                     help="admit buffered submissions once this many are "
                          "waiting (default 32)")
    lim.add_argument("--batch-interval", type=float, default=0.05,
                     metavar="SECONDS",
                     help="...or once the oldest has waited this long "
                          "(default 0.05s); whichever comes first")
    lim.add_argument("--admission", choices=("fair", "fifo"), default="fair",
                     help="buffer draining discipline: weighted fair "
                          "sharing across tenants (default) or global "
                          "arrival order (fifo; used by workers under a "
                          "sharded router, which decides fairness itself)")
    lim.add_argument("--max-pending", type=int, default=None, metavar="N",
                     help="bound each tenant's submission buffer: jobs past "
                          "the bound are refused with an explicit "
                          "'backpressure' response field")
    lim.add_argument("--max-request-bytes", type=int, default=1 << 20,
                     metavar="N",
                     help="reject request lines longer than this with an "
                          "error response (default 1 MiB)")

    dur = sv.add_argument_group(
        "durability & supervision",
        "write-ahead journaling, crash recovery and the supervised "
        "restart loop (per worker in sharded mode: shard i journals to "
        "<journal>.shard<i>)",
    )
    dur.add_argument("--journal", metavar="FILE", default=None,
                     help="durable mode: write-ahead journal every mutating "
                          "op before acknowledging it; on start, recover "
                          "from the latest snapshot + journal suffix")
    dur.add_argument("--snapshot", metavar="FILE", default=None,
                     help="durable snapshot path (default: "
                          "<journal>.snapshot.json)")
    dur.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                     help="auto-checkpoint (and rotate the journal) every N "
                          "journaled records; requires --journal")
    dur.add_argument("--chaos", metavar="SPEC", default=None,
                     help="deterministic fault injection: 'point:rate,...' "
                          "(e.g. 'op-applied:0.05,mid-drain:0.2'; also via "
                          "REPRO_CHAOS); an injected crash exits 137")
    dur.add_argument("--chaos-seed", type=int, default=0,
                     help="seed of the chaos injector's RNG")
    dur.add_argument("--supervise", action="store_true",
                     help="run the worker as a child process and restart it "
                          "from snapshot+journal on abnormal exit, with "
                          "bounded exponential backoff")
    dur.add_argument("--backoff-base", type=float, default=0.5,
                     metavar="SECONDS",
                     help="initial restart backoff (doubles per consecutive "
                          "failure; default 0.5s)")
    dur.add_argument("--backoff-cap", type=float, default=10.0,
                     metavar="SECONDS",
                     help="maximum restart backoff (default 10s)")
    dur.add_argument("--max-restarts", type=int, default=5, metavar="N",
                     help="give up after this many consecutive abnormal "
                          "exits (a worker healthy for 30s resets the "
                          "budget; default 5)")

    shd = sv.add_argument_group(
        "sharding",
        "--workers N runs a routing front-end over N supervised worker "
        "processes; tenants are partitioned deterministically and each "
        "worker keeps its own journal, so a crashed shard recovers from "
        "its own checkpoint while the others keep serving",
    )
    shd.add_argument("--workers", type=int, default=None, metavar="N",
                     help="shard tenants across N worker processes behind "
                          "one protocol endpoint")
    shd.add_argument("--shard-policy", default="hash",
                     help="tenant→shard routing policy: 'hash' (stable "
                          "hash, default), 'explicit' (--shard-map), or "
                          "'least-loaded' (sticky, non-deterministic)")
    shd.add_argument("--shard-map", metavar="SPEC", default=None,
                     help="explicit tenant placement for "
                          "--shard-policy explicit: 'acme=0,lab=1,*=2' "
                          "('*' is the default shard)")
    shd.add_argument("--shard-deadline", type=float, default=15.0,
                     metavar="SECONDS",
                     help="how long a call to an unreachable shard retries "
                          "(reconnect + resend) before answering "
                          "'backpressure' (default 15s; covers a "
                          "supervised worker restart)")

    obs = sv.add_argument_group(
        "observability",
        "the service always keeps metrics (Prometheus exposition) and "
        "request spans in-process, reachable via the 'metrics'/'spans' "
        "ops; --metrics-port additionally serves GET /metrics over HTTP",
    )
    obs.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                     help="serve the Prometheus text exposition on "
                          "http://<host>:PORT/metrics (0 picks a free "
                          "port; sharded mode serves the merged, "
                          "shard-labeled scrape from the router)")

    return p


def _cmd_fuzz(args) -> int:
    import json
    import os

    from repro.conformance.fuzz import default_matrix, run_fuzz

    backend = _resolve_cli_backend(args.backend)
    if backend is None:
        return 2
    quick = args.quick or os.environ.get("REPRO_FUZZ_QUICK") == "1"
    try:
        cases = default_matrix(
            quick=quick, n=args.n, seed=args.seed,
            schedulers=args.schedulers, families=args.families,
            backend=backend.name,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.max_cases is not None:
        cases = cases[: args.max_cases]
    label = "quick" if quick else "full"
    print(f"fuzz: sweeping {len(cases)} cases ({label} matrix, "
          f"backend {backend.name})", flush=True)

    def progress(i, total, case):
        if i and i % 250 == 0:
            print(f"  ... {i}/{total}", flush=True)

    report = run_fuzz(cases, progress=progress)
    print(report.summary())
    if args.failures:
        with open(args.failures, "w") as fh:
            json.dump(report.to_json(), fh, indent=2)
        print(f"failure report written to {args.failures}")
    return 0 if report.ok else 1


def _cmd_bench(args) -> int:
    import json
    import os

    from repro.bench.compare import compare_documents
    from repro.bench.core import BenchConfig
    from repro.bench.registry import benchmark_specs
    from repro.bench.runner import failed_checks, run_benchmarks
    from repro.bench.schema import (
        SchemaError,
        benchmark_document,
        build_document,
        load_document,
        write_tables,
    )

    if args.list_only:
        rows = [
            (s.name, s.kind, s.description)
            for s in benchmark_specs(kind=args.kind)
        ]
        print(format_table(["name", "kind", "description"], rows,
                           title="Registered benchmarks"))
        return 0

    backend = _resolve_cli_backend(args.backend)
    if backend is None:
        return 2

    registered = [s.name for s in benchmark_specs()]
    if args.profile is not None:
        if args.profile not in registered:
            print(f"error: unknown benchmark {args.profile!r}; registered: "
                  f"{', '.join(registered)}", file=sys.stderr)
            return 2
        import cProfile
        import io
        import pstats

        quick = args.quick or os.environ.get("REPRO_BENCH_QUICK") == "1"
        config = BenchConfig(quick=quick, seed=args.seed, backend=backend.name)
        label = "quick" if quick else "full"
        print(f"bench: profiling {args.profile} ({label} config, "
              f"seed {args.seed}, backend {backend.name})", flush=True)
        profiler = cProfile.Profile()
        profiler.enable()
        records = run_benchmarks([args.profile], config)
        profiler.disable()
        # the stats go through a buffer, never straight to stdout: with
        # --emit-dir they land in a file, otherwise they print *after*
        # the check results instead of interleaving with them
        buf = io.StringIO()
        pstats.Stats(profiler, stream=buf).sort_stats("cumulative").print_stats(50)
        failed = failed_checks(records)
        for name, check in failed:
            detail = f": {check['detail']}" if check["detail"] else ""
            print(f"  CHECK FAILED {name}:{check['name']}{detail}")
        if args.emit_dir:
            os.makedirs(args.emit_dir, exist_ok=True)
            path = os.path.join(args.emit_dir, f"PROFILE_{args.profile}.txt")
            with open(path, "w") as fh:
                fh.write(buf.getvalue())
            print(f"profile stats written to {path}")
        else:
            print(buf.getvalue(), end="")
        return 1 if failed else 0

    names = [s.name for s in benchmark_specs(kind=args.kind)]
    if args.only is not None:
        unknown = set(args.only) - set(registered)
        if unknown:
            print(f"error: unknown benchmark(s): {', '.join(sorted(unknown))}; "
                  f"registered: {', '.join(registered)}", file=sys.stderr)
            return 2
        names = [n for n in names if n in set(args.only)]
        if not names:
            print(f"error: none of {', '.join(sorted(args.only))} has kind "
                  f"{args.kind!r}", file=sys.stderr)
            return 2

    quick = args.quick or os.environ.get("REPRO_BENCH_QUICK") == "1"
    config = BenchConfig(quick=quick, seed=args.seed, backend=backend.name)

    baseline = None
    if args.compare:
        try:
            baseline = load_document(args.compare)
        except (OSError, json.JSONDecodeError, SchemaError) as exc:
            print(f"error: cannot load baseline {args.compare}: {exc}",
                  file=sys.stderr)
            return 2
        base_cfg = dict(baseline["config"])
        # pre-backend baselines carried no backend key: they were python runs
        base_cfg.setdefault("backend", "python")
        run_cfg = {"quick": quick, "seed": args.seed, "backend": backend.name}
        if base_cfg != run_cfg:
            print(f"error: baseline {args.compare} was produced under config "
                  f"{base_cfg}, this run uses {run_cfg} — gated metrics "
                  "would compare different workloads; regenerate the baseline "
                  "or match its config", file=sys.stderr)
            return 2
    label = "quick" if quick else "full"
    print(f"bench: running {len(names)} benchmark(s) ({label} config, "
          f"seed {args.seed}, backend {backend.name})", flush=True)

    def progress(i, total, name):
        print(f"  [{i + 1}/{total}] {name}", flush=True)

    records = run_benchmarks(names, config, workers=args.workers or None,
                             progress=progress)
    doc = build_document(config, records)

    failed = failed_checks(records)
    for record in records:
        metrics = ", ".join(
            f"{k}={v:.4g}" for k, v in sorted(record["derived"].items())
        )
        print(f"  {record['name']}: {record['seconds_total']:.2f}s, "
              f"{len(record['cases'])} case(s)"
              + (f", {metrics}" if metrics else ""))
    for name, check in failed:
        detail = f": {check['detail']}" if check["detail"] else ""
        print(f"  CHECK FAILED {name}:{check['name']}{detail}")

    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=False)
            fh.write("\n")
        print(f"document written to {args.json_out}")
    if args.emit_dir:
        os.makedirs(args.emit_dir, exist_ok=True)
        for record in records:
            path = os.path.join(args.emit_dir, f"BENCH_{record['name']}.json")
            with open(path, "w") as fh:
                json.dump(benchmark_document(doc, record["name"]), fh, indent=1)
                fh.write("\n")
        print(f"{len(records)} BENCH_<name>.json slice(s) written to {args.emit_dir}")
    if args.tables:
        written = write_tables(doc, args.tables)
        print(f"{len(written)} table(s) rendered to {args.tables}")

    exit_code = 0
    if failed:
        print(f"bench: {len(failed)} check(s) FAILED")
        exit_code = 1
    if baseline is not None:
        report = compare_documents(doc, baseline)
        print(report.summary())
        if not report.ok:
            exit_code = 1
    if exit_code == 0:
        print("bench: OK")
    return exit_code


def _cmd_schedulers() -> int:
    rows = [
        (s.name, s.kind, s.graphs, s.description)
        for s in scheduler_specs()
    ]
    print(format_table(["name", "kind", "graphs", "description"], rows,
                       title="Registered schedulers"))
    return 0


def _follow_replay(inst, result, backend=None) -> "Schedule | None":
    """Stream the result's fixed allocation through the re-entrant engine
    loop, printing each start/finish as virtual time advances.  Returns the
    streamed schedule (same allocation, FIFO queue order — it carries the
    identical Phase-2 guarantee) or ``None`` when the scheduler keeps no
    allocation to replay."""
    from repro.core.list_scheduler import list_schedule

    allocation = getattr(result, "allocation", None)
    if allocation is None:
        return None

    def on_event(kind, job, t, duration) -> None:
        if kind == "start":
            alloc = tuple(int(a) for a in allocation[job])
            print(f"[{t:12.4f}] start  {job!r} alloc={alloc} dur={duration:.4f}",
                  flush=True)
        else:
            print(f"[{t:12.4f}] finish {job!r}", flush=True)

    return list_schedule(inst, allocation, on_event=on_event, backend=backend)


def _cmd_schedule(args) -> int:
    backend = _resolve_cli_backend(args.backend)
    if backend is None:
        return 2
    pool = ResourcePool.uniform(args.d, args.capacity)
    wl = random_instance(args.family, args.n, pool, seed=args.seed)
    inst = wl.instance
    try:
        spec = get_scheduler(args.scheduler)
    except KeyError:
        print(f"unknown scheduler {args.scheduler!r}; "
              f"registered: {', '.join(available_schedulers())}", file=sys.stderr)
        return 2
    opts = {"sp_tree": wl.sp_tree} if args.scheduler == "ours" else {}
    try:
        if args.arrival_rate is not None:
            inst = with_poisson_arrivals(inst, args.arrival_rate, seed=args.seed)
        result = spec.schedule(inst, **opts)
    except ValueError as exc:  # e.g. offline planner given release times
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.follow:
        streamed = _follow_replay(inst, result, backend=backend)
        if streamed is None:
            print(f"error: --follow needs a fixed allocation to replay and "
                  f"{args.scheduler!r} keeps none", file=sys.stderr)
            return 2
        print(f"\nfamily={args.family} n={inst.n} d={inst.d} "
              f"scheduler={args.scheduler} (streamed replay)\n"
              f"makespan={streamed.makespan:.4f}", end="")
        own = result.schedule
        if not isinstance(own, Schedule) or streamed.placements != own.placements:
            # the replay uses the FIFO queue order; flag any placement-level
            # divergence from the scheduler's own order, not just makespan
            print(f" (differs from the scheduler's own queue order, "
                  f"makespan {result.makespan:.4f})", end="")
        print()
        schedule = streamed
    elif hasattr(result, "lower_bound"):
        print(
            f"family={args.family} n={inst.n} d={inst.d} allocator={result.allocator}\n"
            f"makespan={result.makespan:.4f} lower_bound={result.lower_bound:.4f} "
            f"ratio={result.ratio():.4f} proven<={result.proven_ratio:.4f}"
        )
        schedule = result.schedule
    else:
        print(f"family={args.family} n={inst.n} d={inst.d} algorithm={result.name}\n"
              f"makespan={result.makespan:.4f}")
        schedule = result.schedule
    schedule.validate()
    if not isinstance(schedule, Schedule):
        if args.gantt or args.trace:
            print(f"({args.scheduler} produces no moldable timeline; "
                  "--gantt/--trace skipped)")
        return 0
    if args.gantt:
        print()
        print(ascii_gantt(schedule, width=78))
    if args.trace:
        with open(args.trace, "w") as fh:
            fh.write(trace_to_json(schedule))
        print(f"\ntrace written to {args.trace}")
    return 0


#: serve flags consumed by the supervisor itself and stripped from the
#: child command line (value = number of following value arguments).
_SUPERVISE_FLAGS = {
    "--supervise": 0,
    "--backoff-base": 1,
    "--backoff-cap": 1,
    "--max-restarts": 1,
}


def _strip_supervise_flags(argv: "list[str]") -> "list[str]":
    """The child worker's argv: the supervisor's own flags removed
    (both ``--flag value`` and ``--flag=value`` forms)."""
    out: list[str] = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        name = arg.split("=", 1)[0]
        if name in _SUPERVISE_FLAGS:
            if "=" not in arg:
                i += _SUPERVISE_FLAGS[name]
            i += 1
            continue
        out.append(arg)
        i += 1
    return out


def _start_metrics_listener(frontend, host: str, port: int):
    """Bind the ``GET /metrics`` listener for a front-end (single worker
    or router).  Returns ``(server, lock)``; the lock serializes scrapes
    against request handling and must be handed to the serve loop."""
    import threading

    from repro.obs.httpd import start_metrics_server

    lock = threading.Lock()
    server = start_metrics_server(
        frontend.render_metrics, host=host, port=port, lock=lock
    )
    print(f"serve: metrics on http://{server.host}:{server.port}/metrics",
          file=sys.stderr, flush=True)
    return server, lock


def _cmd_supervise(args, argv: "Sequence[str] | None") -> int:
    from repro.service.supervisor import BackoffPolicy, supervise

    try:
        policy = BackoffPolicy(
            base=args.backoff_base, cap=args.backoff_cap,
            max_restarts=args.max_restarts,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    child_argv = _strip_supervise_flags(
        list(argv) if argv is not None else sys.argv[1:]
    )
    cmd = [sys.executable, "-m", "repro", *child_argv]

    def note(restarts: int, code: int, delay: float) -> None:
        print(f"serve: worker exited with code {code}; "
              f"restart #{restarts} in {delay:.2f}s", file=sys.stderr, flush=True)

    code = supervise(cmd, policy=policy, on_restart=note)
    if code != 0:
        print(f"serve: giving up after {policy.max_restarts} consecutive "
              f"failures (last exit code {code})", file=sys.stderr)
    return code


def _cmd_serve_sharded(args, backend) -> int:
    """``repro serve --workers N``: a Router over N supervised workers.

    Each worker is a full ``repro serve --supervise --tcp <port>`` child
    on a pre-picked port — crash recovery, journaling and restart
    backoff all reuse the single-worker machinery — running in ``fifo``
    admission with ``--batch-size 1`` so the router's weighted-fair,
    cross-shard admission order is preserved verbatim.
    """
    import subprocess

    from repro.service import RemoteWorker, Router, serve_stdio, serve_tcp
    from repro.service.router import pick_free_port

    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 2
    for flag, name, hint in (
        (args.restore, "--restore", "restore is per-shard: restart each "
                                    "worker from its own journal instead"),
        (args.supervise, "--supervise", "workers are supervised "
                                        "individually already"),
        (args.chaos, "--chaos", "inject chaos into a single worker via "
                                "REPRO_CHAOS in its environment"),
        (args.trace, "--trace", "use the 'trace' op with a path before "
                                "shutdown; it writes one file per shard"),
    ):
        if flag:
            print(f"error: {name} cannot be combined with --workers "
                  f"({hint})", file=sys.stderr)
            return 2
    if args.shard_map is not None and args.shard_policy != "explicit":
        print("error: --shard-map requires --shard-policy explicit",
              file=sys.stderr)
        return 2

    caps = args.capacities if args.capacities else [args.capacity] * args.d
    ports = [pick_free_port(args.host) for _ in range(args.workers)]
    procs: "list[subprocess.Popen]" = []
    router = None
    metrics_server = None
    try:
        for i, port in enumerate(ports):
            cmd = [
                sys.executable, "-m", "repro", "serve",
                "--supervise", "--tcp", str(port), "--host", args.host,
                "--capacities", *map(str, caps),
                "--admission", "fifo", "--batch-size", "1",
                "--seed", str(args.seed + i),
                "--backend", backend.name,
                # the router adds an envelope around client requests:
                # leave headroom so a client-limit-sized line still fits
                "--max-request-bytes", str(args.max_request_bytes + 4096),
                "--backoff-base", str(args.backoff_base),
                "--backoff-cap", str(args.backoff_cap),
                "--max-restarts", str(args.max_restarts),
            ]
            if args.journal:
                snapshot = args.snapshot or args.journal + ".snapshot.json"
                cmd += ["--journal", f"{args.journal}.shard{i}",
                        "--snapshot", f"{snapshot}.shard{i}"]
                if args.checkpoint_every is not None:
                    cmd += ["--checkpoint-every", str(args.checkpoint_every)]
            if args.compact_threshold is not None:
                cmd += ["--compact-threshold", str(args.compact_threshold)]
            if args.compact_min_rows is not None:
                cmd += ["--compact-min-rows", str(args.compact_min_rows)]
            procs.append(subprocess.Popen(cmd))

        workers = [
            RemoteWorker(args.host, port, shard=i)
            for i, port in enumerate(ports)
        ]
        try:
            router = Router(
                workers,
                policy=args.shard_policy,
                policy_spec=args.shard_map,
                batch_size=args.batch_size,
                batch_interval=args.batch_interval,
                max_pending=args.max_pending,
                call_deadline=args.shard_deadline,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        # wait for every shard to come up before accepting requests
        for w in workers:
            w.call({"op": "status"}, deadline=30.0)
        print(f"serve: {args.workers} shard(s) on ports "
              f"{', '.join(map(str, ports))} (policy {args.shard_policy})",
              file=sys.stderr, flush=True)

        lock = None
        if args.metrics_port is not None:
            # the router serves the merged scrape (each worker's families
            # under a shard label); workers don't bind their own port
            metrics_server, lock = _start_metrics_listener(
                router, args.host, args.metrics_port
            )

        if args.tcp is not None:
            def announce(port: int) -> None:
                print(f"serve: routing on {args.host}:{port} "
                      f"({args.workers} shards, policy {args.shard_policy})",
                      file=sys.stderr, flush=True)

            return serve_tcp(router, args.host, args.tcp, on_bound=announce,
                             max_request_bytes=args.max_request_bytes,
                             lock=lock)
        return serve_stdio(router, sys.stdin, sys.stdout,
                           max_request_bytes=args.max_request_bytes,
                           lock=lock)
    finally:
        if metrics_server is not None:
            metrics_server.close()
        if router is not None:
            if not router.closed:
                # the loop ended without a shutdown op (EOF): stop workers
                router.handle_request({"op": "shutdown"})
            router.close()
        for p in procs:
            try:
                p.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                p.terminate()
                try:
                    p.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    p.kill()
                    p.wait()


def _cmd_serve(args, argv: "Sequence[str] | None" = None) -> int:
    import json
    import os

    from repro.service import (
        ChaosInjector,
        JournaledSession,
        ServiceFrontend,
        SchedulingSession,
        load_session,
        serve_stdio,
        serve_tcp,
        write_trace,
    )

    # resolve (and env-pin) the backend before any session is built, so
    # restored/recovered sessions and supervised children see the same
    # choice; the worker's checkpoint never persists it
    backend = _resolve_cli_backend(args.backend)
    if backend is None:
        return 2

    if args.workers is not None:
        return _cmd_serve_sharded(args, backend)

    if args.supervise:
        return _cmd_supervise(args, argv)

    # None = "not given": fresh sessions use the SchedulingSession
    # defaults, restored sessions keep their checkpoint's settings
    compact_kw = {}
    if args.compact_threshold is not None:
        ct = None if args.compact_threshold <= 0 else args.compact_threshold
        if ct is not None and ct > 1.0:
            print(f"error: --compact-threshold must be <= 1, got {ct}",
                  file=sys.stderr)
            return 2
        compact_kw["compact_threshold"] = ct
    if args.compact_min_rows is not None:
        if args.compact_min_rows < 1:
            print("error: --compact-min-rows must be >= 1, got "
                  f"{args.compact_min_rows}", file=sys.stderr)
            return 2
        compact_kw["compact_min_rows"] = args.compact_min_rows
    if args.checkpoint_every is not None and not args.journal:
        print("error: --checkpoint-every requires --journal", file=sys.stderr)
        return 2
    if args.max_request_bytes < 1:
        print(f"error: --max-request-bytes must be >= 1, got "
              f"{args.max_request_bytes}", file=sys.stderr)
        return 2

    chaos = None
    chaos_spec = args.chaos or os.environ.get("REPRO_CHAOS")
    if chaos_spec:
        def _chaos_exit(point: str) -> None:
            # die the way SIGKILL would: no cleanup, no atexit, exit 137
            print(f"serve: chaos crash at {point}", file=sys.stderr, flush=True)
            os._exit(137)

        try:
            chaos = ChaosInjector.from_spec(
                chaos_spec, seed=args.chaos_seed, on_crash=_chaos_exit
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    caps = args.capacities if args.capacities else [args.capacity] * args.d
    session = None
    durable = None
    if args.restore:
        try:
            session = load_session(args.restore)
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            print(f"error: cannot restore {args.restore}: {exc}", file=sys.stderr)
            return 2
        if "compact_threshold" in compact_kw:
            session.compact_threshold = compact_kw["compact_threshold"]
        if "compact_min_rows" in compact_kw:
            session.compact_min_rows = int(compact_kw["compact_min_rows"])
        print(f"serve: resumed {len(session.gi.order)} job(s) at clock "
              f"{session.now:g} from {args.restore}", file=sys.stderr)
    if args.journal:
        snapshot = args.snapshot or args.journal + ".snapshot.json"
        try:
            if session is not None:
                # an explicit --restore starts a new durable lineage:
                # snapshot it and rotate whatever journal was there
                durable = JournaledSession(
                    session, args.journal, snapshot,
                    checkpoint_every=args.checkpoint_every, chaos=chaos,
                )
                durable.checkpoint()
            else:
                durable = JournaledSession.recover(
                    args.journal, snapshot, capacities=caps,
                    checkpoint_every=args.checkpoint_every, chaos=chaos,
                    session_kwargs={"seed": args.seed,
                                    "backend": backend.name, **compact_kw},
                )
                session = durable.session
                if durable.recovered:
                    if "compact_threshold" in compact_kw:
                        session.compact_threshold = compact_kw["compact_threshold"]
                    if "compact_min_rows" in compact_kw:
                        session.compact_min_rows = int(compact_kw["compact_min_rows"])
                    print(f"serve: recovered {len(session.gi.order)} job(s) at "
                          f"clock {session.now:g} from {snapshot} "
                          f"(+{durable.replayed} journal record(s) replayed, "
                          f"{durable.deduped} deduplicated)", file=sys.stderr)
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            print(f"error: cannot recover from {args.journal}: {exc}",
                  file=sys.stderr)
            return 2
    if session is None:
        try:
            session = SchedulingSession(caps, seed=args.seed,
                                        backend=backend.name, **compact_kw)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        frontend = ServiceFrontend(
            session, batch_size=args.batch_size,
            batch_interval=args.batch_interval,
            max_pending=args.max_pending, durable=durable,
            admission=args.admission,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    metrics_server = None
    lock = None
    if args.metrics_port is not None:
        metrics_server, lock = _start_metrics_listener(
            frontend, args.host, args.metrics_port
        )
    try:
        if args.tcp is not None:
            def announce(port: int) -> None:
                print(f"serve: listening on {args.host}:{port} "
                      f"(batch {args.batch_size} jobs / {args.batch_interval}s)",
                      file=sys.stderr, flush=True)

            code = serve_tcp(frontend, args.host, args.tcp, on_bound=announce,
                             max_request_bytes=args.max_request_bytes,
                             lock=lock)
        else:
            code = serve_stdio(frontend, sys.stdin, sys.stdout,
                               max_request_bytes=args.max_request_bytes,
                               lock=lock)
    finally:
        if metrics_server is not None:
            metrics_server.close()
    if args.trace:
        write_trace(frontend.session, args.trace)
        print(f"serve: session trace written to {args.trace}", file=sys.stderr)
    return code


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "figure1":
        print(figure1_table(args.d_min, args.d_max))
        return 0
    if args.command == "figure2":
        rows = theorem6_sweep(d_values=tuple(args.d), m_values=tuple(args.m))
        print(format_table(list(rows[0]), [list(r.values()) for r in rows],
                           title="Theorem 6 / Figure 2"))
        return 0
    if args.command == "table1":
        print(table1_text(tuple(args.d)))
        return 0
    if args.command == "sim-a":
        rows = algorithm_comparison(families=args.families, d_values=tuple(args.d),
                                    n=args.n, seeds=tuple(args.seeds),
                                    workers=args.workers or None)
        print(format_table(list(rows[0]), [list(r.values()) for r in rows],
                           title="Sim-A: mean ratio vs LP lower bound"))
        return 0
    if args.command == "sim-b":
        rows = independent_comparison(d_values=tuple(args.d), n=args.n,
                                      seeds=tuple(args.seeds),
                                      workers=args.workers or None)
        print(format_table(list(rows[0]), [list(r.values()) for r in rows],
                           title="Sim-B: independent jobs"))
        return 0
    if args.command == "ablation":
        if args.kind == "mu-rho":
            rows = mu_rho_ablation(d=args.d, n=args.n)
        else:
            rows = priority_ablation(d=args.d, n=args.n)
        print(format_table(list(rows[0]), [list(r.values()) for r in rows],
                           title=f"Ablation: {args.kind}"))
        return 0
    if args.command == "schedulers":
        return _cmd_schedulers()
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "schedule":
        return _cmd_schedule(args)
    if args.command == "serve":
        return _cmd_serve(args, argv)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
