"""The named-scheduler registry: one front door for every scheduler.

The CLI, the experiment sweeps and external callers all need the same
thing — "give me scheduler *name* and run it on this instance" — without
hard-coding imports of every implementation.  Modules defining a scheduler
register it::

    from repro.registry import register_scheduler

    @register_scheduler("tetris", kind="baseline")
    def tetris_scheduler(instance, strategy=None):
        ...

and callers resolve it::

    from repro.registry import get_scheduler

    result = get_scheduler("tetris").schedule(instance)

Every registered callable follows the :class:`Scheduler` protocol:
``schedule(instance, **opts)`` returns a result carrying at least
``schedule`` (the realized timeline, with ``.makespan`` and
``.validate()``), ``makespan`` and ``allocation`` —
:class:`repro.baselines.naive.BaselineResult` and
:class:`repro.core.two_phase.ScheduleResult` both qualify.

Registration is import-driven; :func:`_load_builtin_schedulers` lazily
imports the packages that define the built-ins, so ``get_scheduler`` works
without callers importing anything else first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Protocol, runtime_checkable

__all__ = [
    "Scheduler",
    "SchedulerSpec",
    "register_scheduler",
    "get_scheduler",
    "available_schedulers",
    "scheduler_specs",
]


@runtime_checkable
class SchedulerResult(Protocol):
    """What a scheduler returns: a timeline plus its provenance."""

    @property
    def makespan(self) -> float: ...


@runtime_checkable
class Scheduler(Protocol):
    """The unified scheduler interface resolved from the registry."""

    name: str

    def schedule(self, instance: Any, **opts: Any) -> SchedulerResult: ...


@dataclass(frozen=True)
class SchedulerSpec:
    """Registry entry: the factory plus the metadata sweeps filter on.

    ``kind`` distinguishes the paper's algorithm (``"core"``) from
    comparison ``"baseline"``s and the ``"malleable"`` relaxation;
    ``graphs`` is ``"any"`` or ``"independent"`` (Sun et al.'s algorithms
    reject precedence constraints).
    """

    name: str
    factory: Callable[..., Any]
    kind: str = "baseline"
    graphs: str = "any"
    description: str = ""

    def schedule(self, instance: Any, **opts: Any) -> Any:
        """Run the scheduler on ``instance``."""
        return self.factory(instance, **opts)

    __call__ = schedule


_REGISTRY: dict[str, SchedulerSpec] = {}
_VALID_KINDS = ("core", "baseline", "malleable")
_VALID_GRAPHS = ("any", "independent")


def register_scheduler(
    name: str,
    *,
    kind: str = "baseline",
    graphs: str = "any",
    description: str | None = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Class/function decorator adding a scheduler to the registry.

    The decorated callable must accept ``(instance, **opts)`` and return a
    result object (see module docstring).  The name must be unique;
    ``description`` defaults to the first docstring line.
    """
    if kind not in _VALID_KINDS:
        raise ValueError(f"kind must be one of {_VALID_KINDS}, got {kind!r}")
    if graphs not in _VALID_GRAPHS:
        raise ValueError(f"graphs must be one of {_VALID_GRAPHS}, got {graphs!r}")

    def deco(fn: Callable[..., Any]) -> Callable[..., Any]:
        if name in _REGISTRY:
            raise ValueError(f"scheduler {name!r} is already registered")
        desc = description
        if desc is None:
            desc = (fn.__doc__ or "").strip().splitlines()[0] if fn.__doc__ else ""
        _REGISTRY[name] = SchedulerSpec(
            name=name, factory=fn, kind=kind, graphs=graphs, description=desc
        )
        return fn

    return deco


def _load_builtin_schedulers() -> None:
    """Import every module that registers a built-in scheduler."""
    import repro.baselines  # noqa: F401  (registers the nine baselines)
    import repro.core.two_phase  # noqa: F401  (registers "ours")
    import repro.malleable.scheduler  # noqa: F401  (registers "malleable")


def get_scheduler(name: str) -> SchedulerSpec:
    """Resolve a registered scheduler by name.

    Raises ``KeyError`` listing the registered names when unknown.
    """
    _load_builtin_schedulers()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from None


def available_schedulers(*, kind: str | None = None, graphs: str | None = None) -> list[str]:
    """Registered scheduler names (registration order), optionally filtered."""
    return [s.name for s in scheduler_specs(kind=kind, graphs=graphs)]


def scheduler_specs(
    *, kind: str | None = None, graphs: str | None = None
) -> Iterator[SchedulerSpec]:
    """Iterate registry entries (registration order), optionally filtered."""
    _load_builtin_schedulers()
    return iter(
        [
            s
            for s in _REGISTRY.values()
            if (kind is None or s.kind == kind) and (graphs is None or s.graphs == graphs)
        ]
    )
