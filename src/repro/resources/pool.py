"""The platform resource pool: ``d`` resource types with capacities ``P^(i)``."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.resources.vector import ResourceVector

__all__ = ["ResourcePool"]


@dataclass(frozen=True)
class ResourcePool:
    """Static description of the platform (Section 3.1).

    Parameters
    ----------
    capacities:
        Total integral amount ``P^(i)`` of each resource type.
    names:
        Optional human-readable names (``("cores", "memory", ...)``); defaults
        to ``type0, type1, ...``.  Purely cosmetic (reports, Gantt charts).
    """

    capacities: ResourceVector
    names: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        caps = ResourceVector(self.capacities)
        object.__setattr__(self, "capacities", caps)
        if any(c <= 0 for c in caps):
            raise ValueError(f"all capacities must be positive, got {tuple(caps)}")
        if not self.names:
            object.__setattr__(self, "names", tuple(f"type{i}" for i in range(len(caps))))
        elif len(self.names) != len(caps):
            raise ValueError("names must match the number of resource types")

    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, d: int, capacity: int, names: Sequence[str] | None = None) -> "ResourcePool":
        """A pool with ``d`` types of identical capacity."""
        return cls(ResourceVector((capacity,) * d), tuple(names) if names else ())

    @classmethod
    def of(cls, *capacities: int, names: Sequence[str] | None = None) -> "ResourcePool":
        """Convenience constructor: ``ResourcePool.of(32, 16, 8)``."""
        return cls(ResourceVector(capacities), tuple(names) if names else ())

    # ------------------------------------------------------------------
    @property
    def d(self) -> int:
        """Number of resource types."""
        return len(self.capacities)

    @property
    def p_min(self) -> int:
        """``P_min = min_i P^(i)`` — the theorems' capacity precondition."""
        return min(self.capacities)

    def fits(self, demand: ResourceVector, available: ResourceVector) -> bool:
        """True when ``demand ⪯ available`` (Algorithm 2's admission test)."""
        return demand.dominated_by(available)

    def validate_allocation(self, alloc: ResourceVector) -> None:
        """Raise unless ``0 ⪯ alloc ⪯ capacities`` with at least one positive entry."""
        if alloc.d != self.d:
            raise ValueError(f"allocation has {alloc.d} types, pool has {self.d}")
        if not alloc.dominated_by(self.capacities):
            raise ValueError(f"allocation {tuple(alloc)} exceeds capacities {tuple(self.capacities)}")
        if alloc.is_zero():
            raise ValueError("allocation must request at least one resource unit")

    def mu_caps(self, mu: float) -> ResourceVector:
        """Per-type adjustment caps ``⌈µ P^(i)⌉`` of Eq. (5)."""
        if not 0 < mu < 0.5:
            raise ValueError(f"µ must lie in (0, 0.5), got {mu}")
        return ResourceVector(math.ceil(mu * p) for p in self.capacities)

    def supports_mu(self, mu: float) -> bool:
        """Lemma 4 / Lemma 6 precondition ``P_min >= 1/µ²``."""
        return self.p_min >= 1.0 / (mu * mu)

    def iter_types(self) -> Iterable[tuple[int, str, int]]:
        """Yield ``(index, name, capacity)`` triples."""
        for i, (name, cap) in enumerate(zip(self.names, self.capacities)):
            yield i, name, cap
