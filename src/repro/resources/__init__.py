"""Multi-resource platform model (Section 3.1, Assumption 1).

A platform exposes ``d`` distinct resource types (cores, memory blocks,
cache lines, I/O bandwidth units, ...).  Type ``i`` has an integral total
amount ``P^(i)``.  A job's allocation is an integral
:class:`~repro.resources.vector.ResourceVector` with one entry per type.
"""

from repro.resources.vector import ResourceVector
from repro.resources.pool import ResourcePool

__all__ = ["ResourceVector", "ResourcePool"]
