"""Integral resource vectors with the paper's dominance order.

``ResourceVector`` subclasses :class:`tuple` so vectors are hashable,
immutable, cheap to create, and usable directly as dict keys in the hot
scheduling loops, while still carrying the domain operations the paper
uses (the partial order ``p ⪯ q`` of Assumption 3, component arithmetic,
and the per-type reduction factors of Lemma 4).
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["ResourceVector"]


class ResourceVector(tuple):
    """An allocation ``p = (p^(1), ..., p^(d))`` of integral resource amounts.

    The class is a thin :class:`tuple` subclass: equality, hashing and
    iteration behave like tuples, so vectors can index dictionaries and be
    compared structurally.  All domain operations return new vectors.
    """

    __slots__ = ()

    def __new__(cls, amounts: Iterable[int]) -> "ResourceVector":
        vec = super().__new__(cls, (int(a) for a in amounts))
        for a in vec:
            if a < 0:
                raise ValueError(f"resource amounts must be non-negative, got {tuple(vec)}")
        return vec

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, d: int) -> "ResourceVector":
        """The all-zero allocation for ``d`` resource types."""
        return cls((0,) * d)

    @classmethod
    def ones(cls, d: int) -> "ResourceVector":
        """The unit allocation (one unit of every type)."""
        return cls((1,) * d)

    @classmethod
    def unit(cls, d: int, rtype: int, amount: int = 1) -> "ResourceVector":
        """An allocation of ``amount`` units of type ``rtype`` only."""
        if not 0 <= rtype < d:
            raise ValueError(f"resource type {rtype} out of range for d={d}")
        return cls(tuple(amount if i == rtype else 0 for i in range(d)))

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def d(self) -> int:
        """Number of resource types."""
        return len(self)

    def is_zero(self) -> bool:
        """True when no resource of any type is allocated."""
        return all(a == 0 for a in self)

    # ------------------------------------------------------------------
    # dominance partial order (Assumption 3): p ⪯ q  iff  p^(i) <= q^(i) ∀i
    # ------------------------------------------------------------------
    def dominated_by(self, other: "ResourceVector") -> bool:
        """``self ⪯ other`` — at most ``other`` in every resource type."""
        self._check_same_d(other)
        return all(a <= b for a, b in zip(self, other))

    def dominates(self, other: "ResourceVector") -> bool:
        """``other ⪯ self``."""
        return ResourceVector.dominated_by(other, self)

    def strictly_dominated_by(self, other: "ResourceVector") -> bool:
        """``self ⪯ other`` and ``self != other``."""
        return self.dominated_by(other) and tuple(self) != tuple(other)

    # ------------------------------------------------------------------
    # arithmetic (used by the list scheduler's availability tracking)
    # ------------------------------------------------------------------
    def add(self, other: "ResourceVector") -> "ResourceVector":
        self._check_same_d(other)
        return ResourceVector(a + b for a, b in zip(self, other))

    def sub(self, other: "ResourceVector") -> "ResourceVector":
        """Component-wise difference; raises if any component goes negative."""
        self._check_same_d(other)
        return ResourceVector(a - b for a, b in zip(self, other))

    def cap(self, limits: "ResourceVector") -> "ResourceVector":
        """Component-wise minimum with ``limits`` (Eq. (5) adjustment)."""
        self._check_same_d(limits)
        return ResourceVector(min(a, b) for a, b in zip(self, limits))

    def max_ratio_over(self, other: "ResourceVector") -> float:
        """``max_i self^(i) / other^(i)`` — the speed-loss factor of Assumption 3.

        Components where ``self`` is 0 contribute nothing; a positive demand
        over a zero ``other`` component yields ``inf``.
        """
        self._check_same_d(other)
        worst = 0.0
        for a, b in zip(self, other):
            if a == 0:
                continue
            if b == 0:
                return float("inf")
            worst = max(worst, a / b)
        return worst

    # ------------------------------------------------------------------
    def _check_same_d(self, other: "ResourceVector") -> None:
        if len(self) != len(other):
            raise ValueError(
                f"resource-type dimension mismatch: {len(self)} vs {len(other)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResourceVector{tuple(self)}"


def iter_allocation_grid(limits: ResourceVector) -> Iterator[ResourceVector]:
    """Yield every allocation ``1 <= p^(i) <= limits^(i)`` (full grid).

    Exponential in ``d`` — intended for small pools, oracles and tests.
    """
    d = len(limits)

    def rec(i: int, prefix: list[int]) -> Iterator[ResourceVector]:
        if i == d:
            yield ResourceVector(prefix)
            return
        for a in range(1, limits[i] + 1):
            prefix.append(a)
            yield from rec(i + 1, prefix)
            prefix.pop()

    yield from rec(0, [])
