"""Request tracing: a bounded ring of ``{rid, tenant, op, phase, t0, dur}``
spans.

One :class:`SpanLog` per process tier records what happened to a request
as it moves through the stack — ``route`` at the router hand-off,
``request`` around the worker's dispatch, ``admit`` at flush time,
``journal-commit`` around the write-ahead append, ``dispatch`` around the
engine advance.  The log is a fixed-capacity deque (oldest spans fall
off), queryable by ``rid`` through the ``spans`` wire op and dumpable by
:meth:`ServiceClient.dump_spans`.

``clock`` is injectable (tests pass a fake), defaulting to
:func:`time.monotonic`; ``t0`` values are therefore *per-process*
monotonic stamps — comparable within one span log, not across shards.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable

__all__ = ["Span", "SpanLog"]


class Span:
    """One recorded phase of one request's journey."""

    __slots__ = ("rid", "tenant", "op", "phase", "t0", "dur")

    def __init__(
        self,
        op: str,
        phase: str,
        t0: float,
        dur: float,
        rid: Any = None,
        tenant: "str | None" = None,
    ) -> None:
        self.op = op
        self.phase = phase
        self.t0 = t0
        self.dur = dur
        self.rid = rid
        self.tenant = tenant

    def to_dict(self) -> dict[str, Any]:
        return {
            "rid": self.rid,
            "tenant": self.tenant,
            "op": self.op,
            "phase": self.phase,
            "t0": self.t0,
            "dur": self.dur,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span(op={self.op!r}, phase={self.phase!r}, rid={self.rid!r}, "
            f"t0={self.t0:.6f}, dur={self.dur:.6f})"
        )


class SpanLog:
    """A fixed-capacity ring buffer of :class:`Span` records."""

    def __init__(
        self,
        capacity: int = 2048,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"span log capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.clock = clock
        self._ring: deque[Span] = deque(maxlen=capacity)
        self.recorded = 0  # lifetime count (the ring only keeps the tail)

    def now(self) -> float:
        """The log's clock — callers stamp ``t0`` with this."""
        return self.clock()

    def record(
        self,
        op: str,
        phase: str,
        t0: float,
        dur: float,
        *,
        rid: Any = None,
        tenant: "str | None" = None,
    ) -> None:
        self._ring.append(Span(op, phase, t0, dur, rid=rid, tenant=tenant))
        self.recorded += 1

    def __len__(self) -> int:
        return len(self._ring)

    def snapshot(
        self, *, rid: Any = None, limit: "int | None" = None
    ) -> list[dict[str, Any]]:
        """The retained spans as dicts, oldest first; ``rid`` filters to
        one request, ``limit`` keeps only the newest N after filtering."""
        spans = [s for s in self._ring if rid is None or s.rid == rid]
        if limit is not None and limit >= 0:
            spans = spans[-limit:]
        return [s.to_dict() for s in spans]

    def clear(self) -> None:
        self._ring.clear()
