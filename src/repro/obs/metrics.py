"""Dependency-free metrics core: counters, gauges, log-bucket histograms.

A :class:`MetricsRegistry` owns named metric *families* — each a
:class:`Counter`, :class:`Gauge` or :class:`Histogram` with a declared,
ordered tuple of label names — and renders them in the Prometheus text
exposition format v0.0.4 (``# HELP`` / ``# TYPE`` lines, escaped label
values, cumulative ``_bucket``/``_sum``/``_count`` histogram samples).

Design constraints, in order:

* **Zero dependencies, bounded overhead.**  Recording is a dict lookup
  plus a float add (histograms: one :func:`bisect.bisect_left`); hot
  paths keep a bound child (:meth:`Counter.labels`) so even the lookup
  amortizes away.  The batch engine never touches any of this — sessions
  only record when :meth:`SchedulingSession.bind_metrics` was called.
* **Deterministic exposition.**  Families render sorted by name and
  samples sorted by label values, independent of registration or
  recording order, so two runs that record the same values emit
  byte-identical text and tests can assert exact lines.
* **Fixed histogram buckets.**  :data:`DEFAULT_BUCKETS` is a log-scale
  ladder (1 / 2.5 / 5 per decade, 1µs … 50s) shared by every latency
  histogram in the service; bucket boundaries are part of the contract,
  not a tuning knob, which is what makes cross-shard merging sound.
* **Mergeable dumps.**  :meth:`MetricsRegistry.dump` emits the registry
  as JSON-able family records; :func:`merge_dumps` re-labels each
  shard's families under a ``shard`` label and :func:`render_dump`
  renders the merged set — one scrape of the router covers the whole
  process tree.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "histogram_quantile",
    "merge_dumps",
    "process_rss_bytes",
    "render_dump",
]

#: Fixed log-scale bucket boundaries (seconds): 1 / 2.5 / 5 per decade
#: from 1µs to 50s.  Every service latency histogram shares this ladder;
#: tests assert the exact ``le`` lines, so treat it as frozen.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    m * (10.0 ** e) for e in range(-6, 2) for m in (1.0, 2.5, 5.0)
)


def _fmt_number(v: float) -> str:
    """Render a sample value: integral floats lose the trailing ``.0``."""
    if v != v or v in (float("inf"), float("-inf")):
        return {float("inf"): "+Inf", float("-inf"): "-Inf"}.get(v, "NaN")
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _fmt_le(v: float) -> str:
    """The ``le`` label of one bucket boundary (``+Inf`` for the top)."""
    return "+Inf" if v == float("inf") else format(v, "g")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{n}="{_escape_label(str(v))}"' for n, v in zip(names, values)
    )
    return "{" + inner + "}"


class _Family:
    """Shared machinery of one metric family: label handling + children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(labels)
        self._children: dict[tuple[str, ...], Any] = {}

    def _key(self, labels: Mapping[str, Any]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[n]) for n in self.label_names)

    def items(self) -> "list[tuple[tuple[str, ...], Any]]":
        """``(label_values, bound_child)`` pairs, sorted by label values."""
        return sorted(self._children.items())

    def clear(self) -> None:
        self._children.clear()


class Counter(_Family):
    """A monotone sum.  ``inc(amount, **labels)``; never decreases."""

    kind = "counter"

    def labels(self, **labels: Any) -> "_BoundCounter":
        """A bound child for hot paths: one dict lookup, then plain adds."""
        key = self._key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = _BoundCounter()
        return child

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        self.labels(**labels).inc(amount)

    def value(self, **labels: Any) -> float:
        child = self._children.get(self._key(labels))
        return child.total if child is not None else 0.0

    def samples(self) -> list[tuple[tuple[str, ...], float]]:
        return sorted((k, c.total) for k, c in self._children.items())


class _BoundCounter:
    __slots__ = ("total",)

    def __init__(self) -> None:
        self.total = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.total += amount


class Gauge(_Family):
    """A settable value.  ``set(v, **labels)`` / ``inc(amount, **labels)``."""

    kind = "gauge"

    def labels(self, **labels: Any) -> "_BoundGauge":
        key = self._key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = _BoundGauge()
        return child

    def set(self, value: float, **labels: Any) -> None:
        self.labels(**labels).set(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        self.labels(**labels).inc(amount)

    def value(self, **labels: Any) -> float:
        child = self._children.get(self._key(labels))
        return child.current if child is not None else 0.0

    def samples(self) -> list[tuple[tuple[str, ...], float]]:
        return sorted((k, g.current) for k, g in self._children.items())


class _BoundGauge:
    __slots__ = ("current",)

    def __init__(self) -> None:
        self.current = 0.0

    def set(self, value: float) -> None:
        self.current = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.current += amount


class Histogram(_Family):
    """Fixed-boundary histogram with cumulative Prometheus exposition.

    ``le`` is inclusive (observation ``v`` lands in the first bucket with
    ``v <= boundary`` — :func:`bisect.bisect_left` on the boundary
    array), matching the Prometheus convention; the implicit ``+Inf``
    bucket always exists and equals ``_count``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket boundaries must strictly increase: {bounds}")
        self.boundaries = bounds

    def labels(self, **labels: Any) -> "_BoundHistogram":
        key = self._key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = _BoundHistogram(self.boundaries)
        return child

    def observe(self, value: float, **labels: Any) -> None:
        self.labels(**labels).observe(value)

    def samples(self) -> list[tuple[tuple[str, ...], "_BoundHistogram"]]:
        return sorted(self._children.items())


class _BoundHistogram:
    __slots__ = ("boundaries", "counts", "sum", "count")

    def __init__(self, boundaries: tuple[float, ...]) -> None:
        self.boundaries = boundaries
        self.counts = [0] * (len(boundaries) + 1)  # trailing slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        return histogram_quantile(self.boundaries, self.counts, q)


def histogram_quantile(
    boundaries: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """The q-quantile estimate of a bucketed histogram (Prometheus-style
    linear interpolation within the landing bucket; 0.0 when empty).
    Observations in the ``+Inf`` bucket clamp to the top finite bound."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cum = 0.0
    for i, c in enumerate(counts):
        cum += c
        if cum >= rank and c > 0:
            if i >= len(boundaries):  # the +Inf bucket: clamp
                return float(boundaries[-1])
            lo = boundaries[i - 1] if i > 0 else 0.0
            hi = boundaries[i]
            return lo + (hi - lo) * (rank - (cum - c)) / c
    return float(boundaries[-1])  # pragma: no cover - loop always lands


class MetricsRegistry:
    """A named set of metric families with deterministic exposition.

    ``counter`` / ``gauge`` / ``histogram`` are idempotent per name: a
    second registration of the same name returns the existing family
    (mismatched kind or labels raise), so independently instrumented
    components can share one registry without coordination.
    """

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        self._families: dict[str, _Family] = {}

    # -- registration --------------------------------------------------
    def _register(self, family: _Family) -> _Family:
        existing = self._families.get(family.name)
        if existing is not None:
            if (
                existing.kind != family.kind
                or existing.label_names != family.label_names
            ):
                raise ValueError(
                    f"metric {family.name!r} is already registered as a "
                    f"{existing.kind} with labels {existing.label_names}"
                )
            return existing
        self._families[family.name] = family
        return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help, labels))  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge(name, help, labels))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help, labels, buckets))  # type: ignore[return-value]

    def get(self, name: str) -> "_Family | None":
        return self._families.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    # -- exposition ----------------------------------------------------
    def dump(self) -> list[dict[str, Any]]:
        """The registry as JSON-able family records (the wire shape of the
        ``metrics`` op; :func:`merge_dumps` re-labels them per shard)."""
        out: list[dict[str, Any]] = []
        for name in sorted(self._families):
            fam = self._families[name]
            rec: dict[str, Any] = {
                "name": fam.name,
                "kind": fam.kind,
                "help": fam.help,
                "labels": list(fam.label_names),
            }
            if isinstance(fam, Histogram):
                rec["boundaries"] = list(fam.boundaries)
                rec["samples"] = [
                    {
                        "values": list(k),
                        "buckets": list(h.counts),
                        "sum": h.sum,
                        "count": h.count,
                    }
                    for k, h in fam.samples()
                ]
            else:
                rec["samples"] = [
                    {"values": list(k), "value": v} for k, v in fam.samples()
                ]
            out.append(rec)
        return out

    def render(self) -> str:
        """The Prometheus v0.0.4 text exposition of this registry."""
        return render_dump(self.dump())


def render_dump(families: Iterable[Mapping[str, Any]]) -> str:
    """Render family records (from :meth:`MetricsRegistry.dump`, possibly
    merged across shards) as Prometheus v0.0.4 text.  Deterministic:
    families sort by name, samples by label values."""
    lines: list[str] = []
    for fam in sorted(families, key=lambda f: f["name"]):
        name = fam["name"]
        label_names = list(fam.get("labels", ()))
        lines.append(f"# HELP {name} {_escape_help(str(fam.get('help', '')))}")
        lines.append(f"# TYPE {name} {fam['kind']}")
        samples = sorted(fam.get("samples", ()), key=lambda s: list(map(str, s["values"])))
        if fam["kind"] == "histogram":
            bounds = [float(b) for b in fam["boundaries"]] + [float("inf")]
            for s in samples:
                values = [str(v) for v in s["values"]]
                cum = 0
                for b, c in zip(bounds, s["buckets"]):
                    cum += c
                    ls = _label_str(label_names + ["le"], values + [_fmt_le(b)])
                    lines.append(f"{name}_bucket{ls} {cum}")
                ls = _label_str(label_names, values)
                lines.append(f"{name}_sum{ls} {_fmt_number(float(s['sum']))}")
                lines.append(f"{name}_count{ls} {int(s['count'])}")
        else:
            for s in samples:
                ls = _label_str(label_names, [str(v) for v in s["values"]])
                lines.append(f"{name}{ls} {_fmt_number(float(s['value']))}")
    return "\n".join(lines) + "\n"


def merge_dumps(
    tagged: "Sequence[tuple[str, Iterable[Mapping[str, Any]]]]",
    label: str = "shard",
) -> list[dict[str, Any]]:
    """Merge per-shard family dumps into one, each sample re-labeled with
    its shard tag as the leading label.

    Same-named families must agree on kind, labels and (histograms)
    boundaries — guaranteed when every shard runs the same instrumented
    code, checked here so a skewed fleet fails loudly instead of
    rendering nonsense.
    """
    merged: dict[str, dict[str, Any]] = {}
    for tag, families in tagged:
        for fam in families:
            name = fam["name"]
            tgt = merged.get(name)
            if tgt is None:
                tgt = merged[name] = {
                    "name": name,
                    "kind": fam["kind"],
                    "help": fam.get("help", ""),
                    "labels": [label] + list(fam.get("labels", ())),
                    "samples": [],
                }
                if fam["kind"] == "histogram":
                    tgt["boundaries"] = list(fam["boundaries"])
            else:
                if tgt["kind"] != fam["kind"] or tgt["labels"][1:] != list(
                    fam.get("labels", ())
                ):
                    raise ValueError(
                        f"cannot merge metric {name!r}: kind/labels differ across shards"
                    )
                if fam["kind"] == "histogram" and tgt["boundaries"] != list(
                    fam["boundaries"]
                ):
                    raise ValueError(
                        f"cannot merge histogram {name!r}: bucket boundaries differ"
                    )
            for s in fam.get("samples", ()):
                s2 = dict(s)
                s2["values"] = [str(tag)] + [str(v) for v in s["values"]]
                tgt["samples"].append(s2)
    return [merged[name] for name in sorted(merged)]


def process_rss_bytes() -> int:
    """This process's resident set size in bytes (0 when unknowable).

    Linux reads ``/proc/self/statm`` (field 2 = resident pages);
    elsewhere ``resource.getrusage`` provides the peak RSS — close
    enough for the status line this feeds.
    """
    try:
        with open("/proc/self/statm") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(peak) * 1024  # ru_maxrss is KiB on Linux
    except Exception:  # pragma: no cover - no resource module (non-POSIX)
        return 0
