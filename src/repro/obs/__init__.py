"""Observability: metrics registry, Prometheus exposition, span tracing.

The service stack was operationally blind — the schema-stable ``stats``
map carried totals but no latencies, rates or per-shard health.  This
package is the substrate that fixes it, with zero third-party
dependencies:

* :mod:`repro.obs.metrics` — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` families in a :class:`MetricsRegistry`, rendered in
  the Prometheus v0.0.4 text format with deterministic ordering and
  fixed log-scale buckets; per-shard dumps merge under ``shard`` labels.
* :mod:`repro.obs.trace` — :class:`SpanLog`, a bounded ring of
  ``{rid, tenant, op, phase, t0, dur}`` spans following one request
  through router → worker → journal → dispatch.
* :mod:`repro.obs.httpd` — the ``GET /metrics`` stdlib HTTP listener
  behind ``repro serve --metrics-port``.

Instrumentation is opt-in at every layer: the batch engine records
nothing, and a :class:`~repro.service.session.SchedulingSession` only
counts when ``bind_metrics`` was called — the service front-ends bind
their components at construction.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
    merge_dumps,
    process_rss_bytes,
    render_dump,
)
from repro.obs.trace import Span, SpanLog

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanLog",
    "histogram_quantile",
    "merge_dumps",
    "process_rss_bytes",
    "render_dump",
]
