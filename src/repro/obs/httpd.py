"""A tiny stdlib HTTP listener for ``GET /metrics``.

``repro serve --metrics-port P`` starts one of these next to the serving
loop: a daemon-threaded :class:`http.server.ThreadingHTTPServer` whose
only route is ``GET /metrics`` → the rendered Prometheus text.  The
render callable runs under the same lock that serializes protocol
requests, so a scrape can never observe (or race) a half-applied
operation — the scrape thread and the serving loop mutate nothing
concurrently.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

__all__ = ["MetricsServer", "start_metrics_server"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """A running ``/metrics`` endpoint; ``close()`` stops it."""

    def __init__(self, server: ThreadingHTTPServer, thread: threading.Thread) -> None:
        self._server = server
        self._thread = thread
        self.host, self.port = server.server_address[:2]

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def start_metrics_server(
    render: Callable[[], str],
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    lock: "threading.Lock | None" = None,
) -> MetricsServer:
    """Serve ``GET /metrics`` (= ``render()`` under ``lock``) on a daemon
    thread; ``port=0`` binds an ephemeral port (read it back from
    ``.port``).  Any other path answers 404; a render failure answers
    500 without killing the listener."""
    guard = lock if lock is not None else threading.Lock()

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            if self.path.split("?", 1)[0] != "/metrics":
                self.send_error(404, "only /metrics is served here")
                return
            try:
                with guard:
                    body = render().encode("utf-8")
            except Exception as exc:  # never kill the listener on a bug
                self.send_error(500, f"metrics render failed: {type(exc).__name__}")
                return
            self.send_response(200)
            self.send_header("Content-Type", CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args) -> None:  # silence per-request stderr noise
            pass

    server = ThreadingHTTPServer((host, port), Handler)
    server.daemon_threads = True
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        name="metrics-httpd",
        daemon=True,
    )
    thread.start()
    return MetricsServer(server, thread)
