"""Plain-text table rendering for experiment output (paper-style rows)."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_value"]


def format_value(v: object, precision: int = 3) -> str:
    """Human-friendly cell formatting (floats to ``precision`` digits)."""
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        if v == int(v) and abs(v) < 1e12:
            return str(int(v))
        return f"{v:.{precision}f}"
    return str(v)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[format_value(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)
