"""Process-parallel sweep execution (the library's own HPC hygiene).

Experiment sweeps are embarrassingly parallel over (workload, seed)
cells; :func:`map_parallel` fans them out over a process pool while
preserving order and determinism.  Used by the larger benchmark
configurations; falls back to serial execution for ``workers <= 1`` or
when the task payload is not picklable (functions must be module-level —
the standard multiprocessing constraint).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["map_parallel", "default_workers"]

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """Half the visible CPUs (leave room for the solver's own threads)."""
    return max(1, (os.cpu_count() or 2) // 2)


def map_parallel(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    *,
    workers: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """``[fn(x) for x in items]`` over a process pool, order-preserving.

    ``workers=None`` uses :func:`default_workers`; ``workers<=1`` runs
    serially (also the fallback if the pool cannot start, e.g. in
    restricted sandboxes).
    """
    items = list(items)
    n = default_workers() if workers is None else workers
    if n <= 1 or len(items) <= 1:
        return [fn(x) for x in items]
    try:
        with ProcessPoolExecutor(max_workers=min(n, len(items))) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
    except (OSError, PermissionError):  # pragma: no cover - sandbox fallback
        return [fn(x) for x in items]
