"""Process-parallel sweep execution (the library's own HPC hygiene).

Experiment sweeps are embarrassingly parallel over (workload, seed)
cells; :func:`map_parallel` fans them out over a process pool while
preserving order and determinism.  Used by the larger benchmark
configurations; falls back to serial execution for ``workers <= 1`` or
when the task payload is not picklable (functions must be module-level —
the standard multiprocessing constraint).
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["map_parallel", "default_workers"]

T = TypeVar("T")
R = TypeVar("R")

def _picklable(obj) -> bool:
    """True when ``obj`` can cross a process boundary.

    Closures and lambdas surface as PicklingError, AttributeError ("Can't
    pickle local object") or TypeError ("cannot pickle ... object")
    depending on the object being serialized; probing up front keeps those
    exception types distinct from the same types raised *by* a task.
    """
    try:
        pickle.dumps(obj)
        return True
    except (pickle.PicklingError, AttributeError, TypeError):
        return False


def default_workers() -> int:
    """Half the visible CPUs (leave room for the solver's own threads).

    The ``REPRO_WORKERS`` environment variable overrides the heuristic —
    the knob CI and batch sweeps use without touching call sites.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError as exc:
            raise ValueError(
                f"REPRO_WORKERS must be an integer, got {env!r}"
            ) from exc
    return max(1, (os.cpu_count() or 2) // 2)


def map_parallel(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    *,
    workers: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """``[fn(x) for x in items]`` over a process pool, order-preserving.

    ``workers=None`` uses :func:`default_workers`; ``workers<=1`` runs
    serially — also the fallback when the pool cannot start (restricted
    sandboxes) or when ``fn``/``items`` cannot be pickled (closures,
    lambdas, open handles).  Picklability is probed *before* the pool
    starts, so an AttributeError/TypeError raised by a task itself still
    propagates instead of silently re-running the sweep serially.  The
    serial fallback recomputes from scratch, so ``fn`` should be
    side-effect free, as sweep cells are.
    """
    items = list(items)
    n = default_workers() if workers is None else workers
    if n <= 1 or len(items) <= 1:
        return [fn(x) for x in items]
    if not (_picklable(fn) and all(_picklable(x) for x in items)):
        return [fn(x) for x in items]
    try:
        with ProcessPoolExecutor(max_workers=min(n, len(items))) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
    except (OSError, PermissionError):  # pragma: no cover - sandbox fallback
        return [fn(x) for x in items]
