"""Figure 1 — estimated vs. actual Theorem 2 ratio vs. Theorem 1 ratio.

The paper plots three series for ``22 <= d <= 50``:

* the *actual* ratio from the numerically optimal µ* (root of ``h_d``),
* the closed-form *estimate* using ``µ ≈ d^(−1/3)``,
* Theorem 1's ratio ``φd + 2√(φd) + 1``.

The reproduction must show the estimate tracking the actual curve closely
and both improving on Theorem 1 — which :func:`figure1_table` prints and
``benchmarks/bench_figure1.py`` asserts.
"""

from __future__ import annotations

from repro.core import theory
from repro.experiments.report import format_table

__all__ = ["figure1_table"]


def figure1_table(d_min: int = 22, d_max: int = 50) -> str:
    """The Figure 1 series as an aligned text table."""
    rows = theory.figure1_rows(d_min, d_max)
    return format_table(
        ["d", "Thm2 actual", "Thm2 estimate", "Thm1 ratio", "mu*"],
        [
            (r["d"], r["theorem2_actual"], r["theorem2_estimate"], r["theorem1"], r["mu_star"])
            for r in rows
        ],
        precision=4,
        title=f"Figure 1: approximation ratios for {d_min} <= d <= {d_max}",
    )
