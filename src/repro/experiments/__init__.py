"""Experiment harness: the paper's figures/tables and the simulation study."""

from repro.experiments.lb_instance import (
    lower_bound_instance,
    adversarial_priority,
    informed_priority,
    theoretical_makespans,
)
from repro.experiments.figure1 import figure1_table
from repro.experiments.table1 import table1_rows, table1_text
from repro.experiments.workloads import random_instance, WORKLOAD_FAMILIES
from repro.experiments.report import format_table

__all__ = [
    "lower_bound_instance",
    "adversarial_priority",
    "informed_priority",
    "theoretical_makespans",
    "figure1_table",
    "table1_rows",
    "table1_text",
    "random_instance",
    "WORKLOAD_FAMILIES",
    "format_table",
]
