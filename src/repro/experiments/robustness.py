"""Robustness study: scheduling with inaccurate execution-time estimates.

Assumption 2 grants the scheduler exact execution-time functions; in
practice they come from models or profiling and carry error.  This
experiment quantifies the degradation: Phase 1 allocates using *perturbed*
profiles (deterministic lognormal noise per allocation), Phase 2 dispatches
in that order, but jobs *run* with their true times.  Reported ratios are
against the true instance's LP bound, so the no-noise row reproduces the
standard result and the other rows isolate the cost of mis-estimation.
"""

from __future__ import annotations

from statistics import mean
from typing import Hashable, Sequence

from repro.core import theory
from repro.core.list_scheduler import list_schedule
from repro.core.lower_bounds import lp_lower_bound
from repro.experiments.workloads import random_instance
from repro.instance.instance import Instance
from repro.jobs.builders import perturbed_time_fn
from repro.jobs.job import Job
from repro.registry import get_scheduler
from repro.resources.pool import ResourcePool

__all__ = ["perturbed_instance", "robustness_sweep"]

JobId = Hashable


def perturbed_instance(instance: Instance, rel_noise: float, seed: int = 0) -> Instance:
    """A copy of ``instance`` whose time functions carry estimation noise.

    Shares the DAG and pool; each job's function is wrapped by
    :func:`repro.jobs.builders.perturbed_time_fn` with a per-job sub-seed.
    """
    jobs: dict[JobId, Job] = {}
    for i, (jid, job) in enumerate(sorted(instance.jobs.items(), key=lambda kv: repr(kv[0]))):
        jobs[jid] = Job(
            id=jid,
            time_fn=perturbed_time_fn(job.time_fn, rel_noise, seed=seed * 1_000_003 + i),
            candidates=job.candidates,
            name=job.name,
        )
    return Instance(jobs=jobs, dag=instance.dag.copy(), pool=instance.pool)


def robustness_sweep(
    *,
    noise_levels: Sequence[float] = (0.0, 0.1, 0.3, 0.6),
    d: int = 2,
    n: int = 24,
    capacity: int = 16,
    seeds: Sequence[int] = (0, 1, 2),
    family: str = "layered",
    scheduler: str = "ours",
) -> list[dict]:
    """Degradation of the measured ratio under estimation noise.

    For each noise level: run the registered ``scheduler`` on the perturbed
    instance to *choose allocations*, then execute that allocation on the
    true instance (dispatch order chosen on estimates, execution uses true
    times) and report mean/max ratio vs. the true LP bound.  Any registered
    moldable scheduler whose result exposes an allocation works — the
    default is the paper's algorithm with theorem parameters.
    """
    pool = ResourcePool.uniform(d, capacity)
    mu, rho, proven = theory.best_parameters(d, "general")
    spec = get_scheduler(scheduler)
    rows: list[dict] = []
    workloads = [random_instance(family, n, pool, seed=s) for s in seeds]
    lbs = [lp_lower_bound(w.instance) for w in workloads]

    def choose_allocation(est_inst):
        if scheduler == "ours":
            # Phase 1 only — the estimate-side Phase-2 schedule would be
            # discarded anyway
            from repro.core.allocation import allocate_resources

            return allocate_resources(est_inst, rho, mu).allocation
        res = spec.schedule(est_inst)
        if res.allocation is None:
            raise ValueError(f"scheduler {scheduler!r} exposes no allocation to replay")
        return res.allocation

    for noise in noise_levels:
        ratios = []
        for s, (wl, lb) in enumerate(zip(workloads, lbs)):
            true_inst = wl.instance
            est_inst = (
                true_inst if noise == 0.0 else perturbed_instance(true_inst, noise, seed=s)
            )
            allocation = choose_allocation(est_inst)
            # dispatch order chosen on estimates, execution uses true times
            sched = list_schedule(true_inst, allocation)
            sched.validate()
            ratios.append(sched.makespan / lb)
        rows.append(
            {
                "scheduler": scheduler,
                "rel_noise": noise,
                "mean_ratio": mean(ratios),
                "max_ratio": max(ratios),
                "proven_noiseless": proven,
            }
        )
    return rows
