"""Table 1 — summary of approximation results, plus empirical verification.

The paper's Table 1 lists the proven ratios per precedence class.  The
reproduction prints the same rows (evaluated numerically for chosen ``d``)
and optionally cross-checks each class empirically: scheduling random
instances of the class and reporting the worst measured makespan /
lower-bound ratio, which must stay below the proven ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import theory
from repro.experiments.report import format_table
from repro.experiments.workloads import random_instance
from repro.registry import get_scheduler
from repro.resources.pool import ResourcePool

__all__ = ["Table1Row", "table1_rows", "table1_text", "empirical_check"]


@dataclass(frozen=True)
class Table1Row:
    """One line of Table 1 evaluated at a concrete ``d``."""

    precedence: str
    d: int
    formula: str
    ratio: float


def table1_rows(d_values: tuple[int, ...] = (1, 2, 3, 4, 8, 22, 50)) -> list[Table1Row]:
    """All Table 1 entries for each requested ``d``."""
    rows: list[Table1Row] = []
    for d in d_values:
        rows.append(Table1Row("general", d, "1.619d + 2.545*sqrt(d) + 1", theory.theorem1_ratio(d)))
        if d >= 22:
            rows.append(
                Table1Row("general", d, "d + 3*d^(2/3) + O(d^(1/3))", theory.theorem2_ratio_actual(d))
            )
        rows.append(Table1Row("sp/tree", d, "(1+eps)(1.619d + 1), eps=0", theory.theorem3_ratio(d)))
        if d >= 4:
            rows.append(
                Table1Row("sp/tree", d, "(1+eps)(d + 2*sqrt(d-1)), eps=0", theory.theorem4_ratio(d))
            )
        rows.append(Table1Row("independent", d, "Theorem 5 (piecewise)", theory.theorem5_ratio(d)))
    return rows


def table1_text(d_values: tuple[int, ...] = (1, 2, 3, 4, 8, 22, 50)) -> str:
    """Table 1 rendered as text."""
    return format_table(
        ["precedence", "d", "formula", "proven ratio"],
        [(r.precedence, r.d, r.formula, r.ratio) for r in table1_rows(d_values)],
        title="Table 1: summary of approximation results",
    )


def empirical_check(
    d: int,
    *,
    n: int = 24,
    seeds: tuple[int, ...] = (0, 1, 2),
    capacity: int = 16,
) -> list[dict]:
    """Schedule random instances of each precedence class and compare the
    worst empirical ratio against the proven one.

    Returns one dict per class with keys ``precedence``, ``proven``,
    ``worst_empirical`` and ``within_bound`` (empirical ratios are measured
    against certified lower bounds, so ``within_bound`` must be True for a
    correct implementation).
    """
    pool = ResourcePool.uniform(d, capacity)
    ours = get_scheduler("ours")
    out: list[dict] = []
    for cls, family in (("general", "layered"), ("sp/tree", "sp"), ("independent", "independent")):
        worst = 0.0
        proven = None
        for seed in seeds:
            wl = random_instance(family, n, pool, seed=seed)
            res = ours.schedule(wl.instance, sp_tree=wl.sp_tree)
            res.schedule.validate()
            worst = max(worst, res.ratio())
            proven = res.proven_ratio
        out.append(
            {
                "precedence": cls,
                "d": d,
                "proven": proven,
                "worst_empirical": worst,
                "within_bound": worst <= proven + 1e-9,
            }
        )
    return out
