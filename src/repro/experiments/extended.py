"""Extended experiments beyond the paper's displayed results.

These probe the knobs the theorems expose:

* :func:`capacity_sweep` — the ``P_min >= 1/µ²`` precondition: how the
  measured ratio behaves as per-type capacity shrinks through the threshold;
* :func:`epsilon_sweep` — FPTAS accuracy/cost tradeoff on SP workloads;
* :func:`strategy_sweep` — candidate-enumeration strategies (full vs
  geometric vs diagonal): allocation quality vs LP size;
* :func:`true_ratio_study` — *true* approximation ratios against the exact
  branch-and-bound optimum on tiny instances (the only place ``T_opt``
  itself is computable).
"""

from __future__ import annotations

import time
from statistics import mean
from typing import Sequence

from repro.core.lower_bounds import lp_lower_bound
from repro.core.optimal import optimal_makespan
from repro.core.sp_fptas import sp_fptas_allocation
from repro.core.two_phase import MoldableScheduler
from repro.experiments.workloads import random_instance
from repro.jobs.candidates import diagonal_grid, full_grid, geometric_grid
from repro.resources.pool import ResourcePool

__all__ = ["capacity_sweep", "epsilon_sweep", "strategy_sweep", "true_ratio_study"]


def capacity_sweep(
    d: int = 2,
    *,
    capacities: Sequence[int] = (2, 4, 7, 16, 32),
    n: int = 24,
    seeds: Sequence[int] = (0, 1, 2),
    family: str = "layered",
) -> list[dict]:
    """Measured ratio vs. per-type capacity ``P``.

    Theorem 1 requires ``P_min >= 7``; the sweep crosses that threshold and
    reports whether the precondition held alongside the measured ratios.
    """
    rows: list[dict] = []
    for cap in capacities:
        pool = ResourcePool.uniform(d, cap)
        ratios = []
        proven = None
        for seed in seeds:
            wl = random_instance(family, n, pool, seed=seed)
            res = MoldableScheduler(allocator="lp").schedule(wl.instance)
            res.schedule.validate()
            ratios.append(res.ratio())
            proven = res.proven_ratio
        rows.append(
            {
                "capacity": cap,
                "pmin_precondition": cap >= 7,
                "mean_ratio": mean(ratios),
                "max_ratio": max(ratios),
                "proven": proven,
            }
        )
    return rows


def epsilon_sweep(
    *,
    epsilons: Sequence[float] = (1.0, 0.5, 0.25, 0.1),
    n: int = 16,
    d: int = 2,
    capacity: int = 12,
    seeds: Sequence[int] = (0, 1),
) -> list[dict]:
    """FPTAS ε vs. allocation quality and runtime on random SP workloads.

    ``l_over_lp`` compares the FPTAS allocation's ``L(p')`` to the LP
    fractional bound (≥ 1 by definition; closer to 1 is better).
    """
    pool = ResourcePool.uniform(d, capacity)
    workloads = [random_instance("sp", n, pool, seed=s) for s in seeds]
    lps = [lp_lower_bound(w.instance) for w in workloads]
    rows: list[dict] = []
    for eps in epsilons:
        vals, runtimes = [], []
        for wl, lp in zip(workloads, lps):
            t0 = time.perf_counter()
            res = sp_fptas_allocation(wl.instance, wl.sp_tree, epsilon=eps)
            runtimes.append(time.perf_counter() - t0)
            vals.append(res.l_value / lp)
        rows.append(
            {
                "epsilon": eps,
                "l_over_lp": mean(vals),
                "mean_seconds": mean(runtimes),
            }
        )
    return rows


def strategy_sweep(
    *,
    d: int = 2,
    capacity: int = 16,
    n: int = 20,
    seeds: Sequence[int] = (0, 1, 2),
    family: str = "layered",
) -> list[dict]:
    """Candidate strategies: schedule quality vs. LP size.

    The geometric grid should lose only a few percent against the full grid
    while shrinking the candidate count by an order of magnitude.
    """
    strategies = {
        "full": full_grid,
        "geometric": geometric_grid,
        "diagonal": lambda pool: diagonal_grid(pool, levels=16),
    }
    pool = ResourcePool.uniform(d, capacity)
    rows: list[dict] = []
    for name, strat in strategies.items():
        makespans, cand_counts, runtimes = [], [], []
        for seed in seeds:
            wl = random_instance(family, n, pool, seed=seed)
            inst = wl.instance
            t0 = time.perf_counter()
            res = MoldableScheduler(allocator="lp", candidate_strategy=strat).schedule(inst)
            runtimes.append(time.perf_counter() - t0)
            res.schedule.validate()
            makespans.append(res.makespan)
            table = inst.candidate_table(strat)
            cand_counts.append(mean(len(es) for es in table.values()))
        rows.append(
            {
                "strategy": name,
                "mean_makespan": mean(makespans),
                "mean_frontier_size": mean(cand_counts),
                "mean_seconds": mean(runtimes),
            }
        )
    return rows


def true_ratio_study(
    *,
    d_values: Sequence[int] = (1, 2),
    n: int = 4,
    capacity: int = 3,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
) -> list[dict]:
    """True approximation ratios ``T / T_opt`` on tiny instances.

    ``T_opt`` comes from the exact branch-and-bound oracle, so these are the
    only *exact* ratios in the evaluation; everything else is measured
    against lower bounds.  Expect values far below the proven worst case.
    """
    rows: list[dict] = []
    for d in d_values:
        pool = ResourcePool.uniform(d, capacity)
        true_ratios, lb_ratios = [], []
        proven = None
        for seed in seeds:
            wl = random_instance("erdos", n, pool, seed=seed)
            inst = wl.instance
            res = MoldableScheduler(allocator="lp", candidate_strategy=full_grid).schedule(inst)
            res.schedule.validate()
            t_opt, _ = optimal_makespan(inst, full_grid, max_jobs=max(6, n))
            assert t_opt <= res.makespan + 1e-9
            assert t_opt >= res.lower_bound / (1 + 1e-6)
            true_ratios.append(res.makespan / t_opt)
            lb_ratios.append(res.ratio())
            proven = res.proven_ratio
        rows.append(
            {
                "d": d,
                "mean_true_ratio": mean(true_ratios),
                "max_true_ratio": max(true_ratios),
                "mean_lb_ratio": mean(lb_ratios),
                "proven": proven,
            }
        )
    return rows
