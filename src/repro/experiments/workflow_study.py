"""Scientific-workflow study: the algorithms on realistic Pegasus shapes.

Each workflow stage gets a stage-specific multi-resource profile (compute-
vs I/O-bound, parallel vs sequential-heavy), mirroring the published
per-stage characterizations: e.g. Montage's `mProject` is embarrassingly
parallel, `mConcatFit`/`mBgModel` are sequential bottlenecks, `mAdd` is
I/O-bound.  The study schedules each workflow with the two-phase algorithm
and every baseline, and reports ratios against the LP bound — the
Sim-A-style table on real structures instead of synthetic graphs.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

from repro.baselines import (
    balanced_scheduler,
    heft_moldable_scheduler,
    min_area_scheduler,
    min_time_scheduler,
    tetris_scheduler,
)
from repro.core.lower_bounds import lp_lower_bound
from repro.core.two_phase import MoldableScheduler
from repro.dag.graph import DAG
from repro.dag.workflows import cybershake_dag, epigenomics_dag, ligo_dag, montage_dag
from repro.instance.instance import Instance, make_instance
from repro.jobs.speedup import AmdahlSpeedup, MultiResourceTime, RooflineSpeedup
from repro.resources.pool import ResourcePool

__all__ = ["workflow_instance", "WORKFLOWS", "workflow_comparison"]

JobId = Hashable

#: stage profile: (work scale, sequential fraction, io cap) — parallel
#: stages have low alpha, I/O-heavy stages a low roofline cap on type 1.
_STAGE_PROFILES: dict[str, tuple[float, float, float]] = {
    # montage
    "mProject": (20.0, 0.02, 8.0),
    "mDiffFit": (6.0, 0.10, 6.0),
    "mConcatFit": (4.0, 0.70, 2.0),
    "mBgModel": (6.0, 0.80, 2.0),
    "mBackground": (8.0, 0.05, 6.0),
    "mImgtbl": (2.0, 0.60, 2.0),
    "mAdd": (14.0, 0.30, 1.5),
    "mShrink": (3.0, 0.20, 3.0),
    "mJPEG": (2.0, 0.50, 2.0),
    # cybershake
    "ExtractSGT": (12.0, 0.15, 2.0),
    "SeismogramSynthesis": (25.0, 0.03, 6.0),
    "PeakValCalc": (2.0, 0.30, 4.0),
    "ZipSeis": (4.0, 0.60, 1.5),
    "ZipPSA": (4.0, 0.60, 1.5),
    # epigenomics
    "fastqSplit": (3.0, 0.50, 2.0),
    "filterContams": (6.0, 0.05, 6.0),
    "sol2sanger": (4.0, 0.10, 6.0),
    "fastq2bfq": (4.0, 0.10, 6.0),
    "map": (30.0, 0.02, 8.0),
    "mapMerge": (5.0, 0.50, 2.0),
    "mapMergeGlobal": (8.0, 0.60, 1.5),
    "maqIndex": (5.0, 0.40, 2.0),
    "pileup": (6.0, 0.30, 3.0),
    # ligo
    "TmpltBank": (15.0, 0.04, 6.0),
    "Inspiral": (35.0, 0.02, 8.0),
    "Thinca": (3.0, 0.60, 2.0),
    "TrigBank": (2.0, 0.40, 3.0),
    "Inspiral2": (20.0, 0.03, 8.0),
    "Thinca2": (3.0, 0.60, 2.0),
}

#: name -> DAG builder at the study's default scale
WORKFLOWS: dict[str, Callable[[], DAG]] = {
    "montage": lambda: montage_dag(8),
    "cybershake": lambda: cybershake_dag(10),
    "epigenomics": lambda: epigenomics_dag(2, 3),
    "ligo": lambda: ligo_dag(9, group=3),
}


def _stage_time_fn(stage: str, d: int) -> MultiResourceTime:
    work, alpha, io_cap = _STAGE_PROFILES[stage]
    works = [work] + [work * 0.5] * (d - 1)
    speedups: list = [AmdahlSpeedup(alpha)] + [RooflineSpeedup(io_cap)] * (d - 1)
    return MultiResourceTime(works=tuple(works), speedups=tuple(speedups), combiner="max")


def workflow_instance(name: str, pool: ResourcePool) -> Instance:
    """Build the named workflow instance with stage-specific profiles."""
    if name not in WORKFLOWS:
        raise ValueError(f"unknown workflow {name!r} (know {sorted(WORKFLOWS)})")
    dag = WORKFLOWS[name]()
    return make_instance(dag, pool, lambda job: _stage_time_fn(job[0], pool.d))


def workflow_comparison(
    *,
    d: int = 2,
    capacity: int = 16,
    names: Sequence[str] = ("montage", "cybershake", "epigenomics", "ligo"),
) -> list[dict]:
    """One row per workflow: ratio vs LP bound for ours and each baseline."""
    baselines = {
        "min_area": min_area_scheduler,
        "min_time": min_time_scheduler,
        "balanced": balanced_scheduler,
        "tetris": tetris_scheduler,
        "heft": heft_moldable_scheduler,
    }
    pool = ResourcePool.uniform(d, capacity)
    rows: list[dict] = []
    for name in names:
        inst = workflow_instance(name, pool)
        lb = lp_lower_bound(inst)
        res = MoldableScheduler(allocator="lp").schedule(inst)
        res.schedule.validate()
        row = {"workflow": name, "n": inst.n, "ours": res.makespan / lb}
        for bname, fn in baselines.items():
            b = fn(inst)
            b.schedule.validate()
            row[bname] = b.makespan / lb
        row["proven"] = res.proven_ratio
        rows.append(row)
    return rows
