"""The Theorem 6 / Figure 2 lower-bound instance family.

Construction (reconstructed from the properties stated in the paper — see
DESIGN.md): ``d`` resource types with capacity ``P^(i) = 2`` each and, per
type ``i``:

* one *release* job ``("r", i)`` — unit time, one unit of type ``i``;
* ``2M − 1`` *bulk* jobs ``("b", i, k)`` — identical to the release job;
* every type-``i`` job (``i >= 1``) is a child of ``("r", i-1)``.

The precedence graph is a forest (every node has at most one parent) of
``n = 2Md`` unit jobs, each using a single resource type — exactly the
stated shape of Figure 2.

* A *graph-aware* priority (release jobs first) pipelines the types:
  ``r_i`` completes at time ``i+1``, each type's bulk saturates its two
  units, and the makespan is exactly ``T_opt = M + d − 1``.
* A *local* priority cannot tell release from bulk jobs; the adversarial
  tie-break (bulk first) delays ``r_i`` to the very end of type ``i``'s
  bulk, serializing the types: makespan exactly ``M·d``.

Hence ``T/T_opt = Md/(M + d − 1) → d``, matching Theorem 6 (the paper's own
worst case is ``M(d−1) + 4M/3``; same asymptotics, slightly different
constant — see the reconstruction note in DESIGN.md).
"""

from __future__ import annotations

from typing import Hashable

from repro.core.list_scheduler import PriorityRule, explicit_priority
from repro.dag.graph import DAG
from repro.instance.instance import Instance
from repro.jobs.job import Job
from repro.resources.pool import ResourcePool
from repro.resources.vector import ResourceVector

__all__ = [
    "lower_bound_instance",
    "adversarial_priority",
    "informed_priority",
    "theoretical_makespans",
]

JobId = Hashable


def _unit_time(_: ResourceVector) -> float:
    return 1.0


def lower_bound_instance(d: int, m: int) -> Instance:
    """Build the instance for ``d`` resource types and parameter ``M = m``.

    ``m`` should be a positive multiple of 3 to mirror the paper's setup
    (any positive integer works for our construction).
    """
    if d < 1 or m < 1:
        raise ValueError("need d >= 1 and M >= 1")
    pool = ResourcePool.uniform(d, 2)
    dag = DAG()
    jobs: dict[JobId, Job] = {}

    def add(job_id: JobId, rtype: int) -> None:
        alloc = ResourceVector.unit(d, rtype)
        jobs[job_id] = Job(id=job_id, time_fn=_unit_time, candidates=(alloc,))
        dag.add_node(job_id)

    for i in range(d):
        add(("r", i), i)
        for k in range(2 * m - 1):
            add(("b", i, k), i)
        if i >= 1:
            parent = ("r", i - 1)
            dag.add_edge(parent, ("r", i))
            for k in range(2 * m - 1):
                dag.add_edge(parent, ("b", i, k))
    return Instance(jobs=jobs, dag=dag, pool=pool)


def adversarial_priority(instance: Instance) -> PriorityRule:
    """The worst-case *local* tie-break: bulk jobs before release jobs.

    Local in the Theorem 6 sense: the key depends only on the job's own
    attributes (its kind), never on its position in the graph — a scheduler
    that cannot distinguish identical-looking jobs can be forced into
    exactly this order.
    """
    keys = {j: (0 if j[0] == "b" else 1) for j in instance.jobs}
    return explicit_priority(keys)


def informed_priority(instance: Instance) -> PriorityRule:
    """The graph-aware tie-break (release jobs first) achieving ``T_opt``."""
    keys = {j: (0 if j[0] == "r" else 1) for j in instance.jobs}
    return explicit_priority(keys)


def theoretical_makespans(d: int, m: int) -> dict[str, float]:
    """Closed-form makespans of the two orders on this family."""
    return {
        "optimal": float(m + d - 1),
        "adversarial": float(m * d),
        "ratio": (m * d) / (m + d - 1),
        "theorem6_bound": float(d),
    }
