"""Workload builders shared by the simulation benchmarks and examples.

:func:`random_instance` assembles a complete :class:`Instance` from a graph
family name, a platform shape and a job-model family, all seeded.  The
families mirror the workloads multi-resource scheduling evaluations use:

==============  ====================================================
family          graph
==============  ====================================================
``independent`` no edges (Section 5.2 / Sun et al. [36] setting)
``chain``       fully sequential
``layered``     layered random DAG
``erdos``       Erdős–Rényi random DAG
``forkjoin``    repeated fork-join stages
``outtree``     random out-tree (Theorem 3-4 class)
``intree``      random in-tree (Theorem 3-4 class)
``sp``          random series-parallel DAG (Theorem 3-4 class)
``cholesky``    tiled Cholesky factorization
``lu``          tiled LU factorization
``stencil``     1-D stencil sweep
==============  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dag import generators
from repro.dag.graph import DAG
from repro.dag.sp import SPNode, random_sp_tree, sp_to_dag, tree_to_sp
from repro.instance.instance import Instance, make_instance
from repro.jobs.speedup import random_multi_resource_time
from repro.resources.pool import ResourcePool
from repro.util.rng import ensure_rng

__all__ = ["WORKLOAD_FAMILIES", "RandomWorkload", "random_instance"]

WORKLOAD_FAMILIES = (
    "independent",
    "chain",
    "layered",
    "erdos",
    "forkjoin",
    "outtree",
    "intree",
    "sp",
    "cholesky",
    "lu",
    "stencil",
)


@dataclass(frozen=True)
class RandomWorkload:
    """A generated instance plus its SP decomposition when one exists."""

    instance: Instance
    sp_tree: SPNode | None
    family: str
    seed: int | None


def _build_dag(family: str, n: int, rng: np.random.Generator) -> tuple[DAG, SPNode | None]:
    if family == "independent":
        return generators.independent(n), None
    if family == "chain":
        return generators.chain(n), None
    if family == "layered":
        width = max(2, int(round(np.sqrt(n))))
        layers = max(2, n // width)
        return generators.layered_random(layers, width, p=0.3, seed=rng), None
    if family == "erdos":
        return generators.erdos_renyi_dag(n, p=min(0.5, 4.0 / max(n, 1)), seed=rng), None
    if family == "forkjoin":
        width = max(2, int(round(np.sqrt(n))))
        stages = max(1, n // (width + 2))
        return generators.fork_join(width, stages), None
    if family == "outtree":
        dag = generators.random_out_tree(n, seed=rng)
        return dag, tree_to_sp(dag, direction="out")
    if family == "intree":
        dag = generators.random_in_tree(n, seed=rng)
        return dag, tree_to_sp(dag, direction="in")
    if family == "sp":
        sp = random_sp_tree(n, seed=rng)
        return sp_to_dag(sp), sp
    if family == "cholesky":
        b = max(2, int(round(n ** (1 / 3) * 1.3)))
        return generators.cholesky_dag(b), None
    if family == "lu":
        b = max(2, int(round(n ** (1 / 3))))
        return generators.lu_dag(b), None
    if family == "stencil":
        width = max(2, int(round(np.sqrt(n))))
        steps = max(2, n // width)
        return generators.stencil_dag(width, steps), None
    raise ValueError(f"unknown workload family {family!r} (know {WORKLOAD_FAMILIES})")


def random_instance(
    family: str,
    n: int,
    pool: ResourcePool,
    seed: int | np.random.Generator | None = None,
    *,
    model: str = "mixed",
    combiner: str = "max",
    work_range: tuple[float, float] = (1.0, 100.0),
) -> RandomWorkload:
    """Build a seeded random workload of the given family.

    ``n`` is the approximate job count (structured families round to their
    natural size).  Job execution-time functions are drawn by
    :func:`repro.jobs.speedup.random_multi_resource_time`.
    """
    rng = ensure_rng(seed)
    dag, sp = _build_dag(family, n, rng)
    # one independent child generator per job, spawned in topological order
    # for determinism regardless of dict iteration
    fns = {
        node: random_multi_resource_time(
            pool.d, rng, total_work=work_range, model=model, combiner=combiner
        )
        for node in dag.topological_order()
    }
    inst = make_instance(dag, pool, lambda j: fns[j])
    return RandomWorkload(
        instance=inst,
        sp_tree=sp,
        family=family,
        seed=seed if isinstance(seed, int) else None,
    )
