"""Simulation sweeps: the evaluation study (Sim-A/Sim-B and ablations).

Every function returns plain ``list[dict]`` rows ready for
:func:`repro.experiments.report.format_table`, and is deterministic for
fixed seeds.  The benchmark harness wraps each sweep in one bench target.

The per-seed cells of Sim-A and Sim-B are independent; both sweeps accept
``workers`` and fan the cells out over
:func:`repro.experiments.parallel.map_parallel` (``workers=1`` — the
default — runs serially; ``None`` uses ``default_workers()``, overridable
via ``REPRO_WORKERS``).  Results are bit-identical regardless of worker
count: cells are seeded independently and reassembled in order.
"""

from __future__ import annotations

from statistics import mean
from typing import Sequence

from repro.core import theory
from repro.core.list_scheduler import (
    bottom_level_priority,
    fifo_priority,
    list_schedule,
    lpt_priority,
    random_priority,
    spt_priority,
)
from repro.core.lower_bounds import lp_lower_bound
from repro.experiments.lb_instance import (
    adversarial_priority,
    informed_priority,
    lower_bound_instance,
    theoretical_makespans,
)
from repro.experiments.parallel import map_parallel
from repro.experiments.workloads import random_instance
from repro.registry import available_schedulers, get_scheduler
from repro.resources.pool import ResourcePool

__all__ = [
    "algorithm_comparison",
    "independent_comparison",
    "mu_rho_ablation",
    "priority_ablation",
    "theorem6_sweep",
]


def _sim_a_cell(cell: tuple) -> dict[str, float]:
    """One Sim-A (family, d, seed) cell: ratio per scheduler.

    Module-level so the cell can cross a process boundary (see
    :mod:`repro.experiments.parallel`).
    """
    family, d, n, capacity, seed, schedulers = cell
    pool = ResourcePool.uniform(d, capacity)
    wl = random_instance(family, n, pool, seed=seed)
    inst = wl.instance
    lb = lp_lower_bound(inst)
    res = get_scheduler("ours").schedule(inst, allocator="lp")
    res.schedule.validate()
    out = {"ours": res.makespan / lb}
    for name in schedulers:
        b = get_scheduler(name).schedule(inst)
        b.schedule.validate()
        out[name] = b.makespan / lb
    return out


def algorithm_comparison(
    families: Sequence[str] = ("layered", "cholesky", "forkjoin", "outtree"),
    d_values: Sequence[int] = (1, 2, 3, 4),
    *,
    n: int = 30,
    capacity: int = 16,
    seeds: Sequence[int] = (0, 1, 2),
    schedulers: Sequence[str] | None = None,
    workers: int | None = 1,
) -> list[dict]:
    """Sim-A: mean makespan / LP-lower-bound ratio, ours vs. baselines.

    One row per (family, d) with the mean ratio of each algorithm over the
    seeds, plus the proven bound for reference.  ``schedulers`` defaults to
    every registered DAG-capable baseline (see :mod:`repro.registry`), so
    newly registered schedulers join the comparison automatically.
    ``workers`` fans the (family, d, seed) cells over a process pool.
    """
    if schedulers is None:
        schedulers = available_schedulers(kind="baseline", graphs="any")
    schedulers = tuple(schedulers)
    grid = [(family, d) for family in families for d in d_values]
    cells = [
        (family, d, n, capacity, seed, schedulers)
        for family, d in grid
        for seed in seeds
    ]
    results = map_parallel(_sim_a_cell, cells, workers=workers)
    rows: list[dict] = []
    per_cell = len(seeds)
    for g, (family, d) in enumerate(grid):
        chunk = results[g * per_cell:(g + 1) * per_cell]
        row = {"family": family, "d": d, "proven": theory.theorem1_ratio(d)}
        row.update({
            name: mean(c[name] for c in chunk) for name in ("ours", *schedulers)
        })
        rows.append(row)
    return rows


def _sim_b_cell(cell: tuple) -> tuple[float, float, float]:
    """One Sim-B (d, seed) cell: (ours, sun_list, sun_shelf) ratios."""
    d, n, capacity, seed = cell
    pool = ResourcePool.uniform(d, capacity)
    wl = random_instance("independent", n, pool, seed=seed)
    inst = wl.instance
    res = get_scheduler("ours").schedule(inst, allocator="independent")
    res.schedule.validate()
    lb = res.lower_bound
    bl = get_scheduler("sun_list").schedule(inst)
    bl.schedule.validate()
    bs = get_scheduler("sun_shelf").schedule(inst)
    bs.schedule.validate()
    return res.makespan / lb, bl.makespan / lb, bs.makespan / lb


def independent_comparison(
    d_values: Sequence[int] = (1, 2, 3, 4),
    *,
    n: int = 40,
    capacity: int = 16,
    seeds: Sequence[int] = (0, 1, 2, 3),
    workers: int | None = 1,
) -> list[dict]:
    """Sim-B: independent jobs — ours (Theorem 5) vs. Sun et al. [36].

    Ratios are against the *exact* ``L_min`` (Lemma 8), so they are true
    upper bounds on the approximation factor achieved.  ``workers`` fans
    the (d, seed) cells over a process pool.
    """
    cells = [(d, n, capacity, seed) for d in d_values for seed in seeds]
    results = map_parallel(_sim_b_cell, cells, workers=workers)
    rows: list[dict] = []
    per_cell = len(seeds)
    for g, d in enumerate(d_values):
        chunk = results[g * per_cell:(g + 1) * per_cell]
        ours = [c[0] for c in chunk]
        sun_list = [c[1] for c in chunk]
        sun_shelf = [c[2] for c in chunk]
        rows.append(
            {
                "d": d,
                "ours": mean(ours),
                "sun_list": mean(sun_list),
                "sun_shelf": mean(sun_shelf),
                "proven_ours": theory.theorem5_ratio(d),
                "proven_sun_list": 2.0 * d,
                "proven_sun_shelf": 2.0 * d + 1.0,
            }
        )
    return rows


def mu_rho_ablation(
    d: int = 3,
    *,
    n: int = 30,
    capacity: int = 16,
    mus: Sequence[float] = (0.15, 0.25, 0.382, 0.45),
    rhos: Sequence[float] = (0.2, 0.31, 0.5, 0.7),
    seeds: Sequence[int] = (0, 1, 2),
    family: str = "layered",
) -> list[dict]:
    """Ablation-µ/ρ: sensitivity of the measured ratio to the parameters.

    The theorem-optimal pair is included (µ=0.382, ρ=Theorem 1's choice ≈
    the second value for d=3) so the sweep shows where theory sits in the
    practical landscape.
    """
    pool = ResourcePool.uniform(d, capacity)
    workloads = [random_instance(family, n, pool, seed=s) for s in seeds]
    lbs = [lp_lower_bound(w.instance) for w in workloads]
    rows: list[dict] = []
    ours = get_scheduler("ours")
    for mu in mus:
        for rho in rhos:
            rs = []
            for wl, lb in zip(workloads, lbs):
                res = ours.schedule(wl.instance, mu=mu, rho=rho, allocator="lp")
                rs.append(res.makespan / lb)
            rows.append({"mu": mu, "rho": rho, "mean_ratio": mean(rs), "max_ratio": max(rs)})
    return rows


def priority_ablation(
    d: int = 3,
    *,
    n: int = 40,
    capacity: int = 16,
    seeds: Sequence[int] = (0, 1, 2, 3),
    families: Sequence[str] = ("layered", "cholesky"),
) -> list[dict]:
    """Ablation-priority: Phase 2 queue orders, local vs. global.

    The allocation is fixed (Phase 1 with theorem parameters); only the list
    order changes, isolating the priority rule's effect.
    """
    rules = {
        "fifo": fifo_priority,
        "lpt": lpt_priority,
        "spt": spt_priority,
        "random": random_priority(123),
        "bottom_level": bottom_level_priority,
    }
    ours = get_scheduler("ours")
    rows: list[dict] = []
    for family in families:
        pool = ResourcePool.uniform(d, capacity)
        accum = {name: [] for name in rules}
        for seed in seeds:
            wl = random_instance(family, n, pool, seed=seed)
            inst = wl.instance
            base = ours.schedule(inst, allocator="lp")
            lb = base.lower_bound
            for name, rule in rules.items():
                sched = list_schedule(inst, base.allocation, rule)
                sched.validate()
                accum[name].append(sched.makespan / lb)
        row = {"family": family, "d": d}
        row.update({name: mean(v) for name, v in accum.items()})
        rows.append(row)
    return rows


def theorem6_sweep(
    d_values: Sequence[int] = (2, 3, 4, 5, 6),
    m_values: Sequence[int] = (12, 24, 48),
) -> list[dict]:
    """Figure 2 / Theorem 6: measured adversarial vs. informed makespans.

    Asserts nothing itself; the benchmark asserts the measured values match
    the closed forms and that the ratio approaches ``d``.
    """
    rows: list[dict] = []
    for d in d_values:
        for m in m_values:
            inst = lower_bound_instance(d, m)
            s_adv = list_schedule(inst, {j: inst.jobs[j].candidates[0] for j in inst.jobs},
                                  adversarial_priority(inst))
            s_opt = list_schedule(inst, {j: inst.jobs[j].candidates[0] for j in inst.jobs},
                                  informed_priority(inst))
            s_adv.validate()
            s_opt.validate()
            theo = theoretical_makespans(d, m)
            rows.append(
                {
                    "d": d,
                    "M": m,
                    "T_adversarial": s_adv.makespan,
                    "T_informed": s_opt.makespan,
                    "measured_ratio": s_adv.makespan / s_opt.makespan,
                    "closed_form_ratio": theo["ratio"],
                    "theorem6_bound": theo["theorem6_bound"],
                }
            )
    return rows
