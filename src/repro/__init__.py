"""repro — reproduction of "Multi-Resource List Scheduling of Moldable
Parallel Jobs under Precedence Constraints" (Perotin, Sun, Raghavan,
ICPP 2021; arXiv:2106.07059).

Quick start::

    from repro import (
        ResourcePool, MoldableScheduler, make_instance,
        generators, random_multi_resource_time,
    )

    pool = ResourcePool.of(32, 16, names=("cores", "memory"))
    dag = generators.layered_random(layers=4, width=5, p=0.3, seed=0)
    inst = make_instance(
        dag, pool,
        lambda j: random_multi_resource_time(pool.d, seed=hash(j) % 2**32),
    )
    result = MoldableScheduler().schedule(inst)
    print(result.makespan, result.ratio(), "<=", result.proven_ratio)
"""

from repro.resources import ResourceVector, ResourcePool
from repro.dag import DAG, generators
from repro.dag.sp import SPNode, SPLeaf, SPSeries, SPParallel, sp_to_dag, tree_to_sp, random_sp_tree
from repro.jobs import (
    Job,
    MultiResourceTime,
    random_multi_resource_time,
    TabulatedTimeFunction,
    pareto_filter,
)
from repro.jobs.candidates import full_grid, geometric_grid, diagonal_grid, make_candidates
from repro.instance import Instance, make_instance
from repro.instance.instance import with_poisson_arrivals, with_release_times
from repro.registry import available_schedulers, get_scheduler, register_scheduler
from repro.core import (
    MoldableScheduler,
    ScheduleResult,
    allocate_resources,
    list_schedule,
    optimal_independent_allocation,
    sp_fptas_allocation,
    lp_lower_bound,
    theory,
)
from repro.sim import Schedule, classify_intervals, ascii_gantt

__version__ = "1.0.0"

__all__ = [
    "ResourceVector",
    "ResourcePool",
    "DAG",
    "generators",
    "SPNode",
    "SPLeaf",
    "SPSeries",
    "SPParallel",
    "sp_to_dag",
    "tree_to_sp",
    "random_sp_tree",
    "Job",
    "MultiResourceTime",
    "random_multi_resource_time",
    "TabulatedTimeFunction",
    "pareto_filter",
    "full_grid",
    "geometric_grid",
    "diagonal_grid",
    "make_candidates",
    "Instance",
    "make_instance",
    "with_release_times",
    "with_poisson_arrivals",
    "get_scheduler",
    "register_scheduler",
    "available_schedulers",
    "MoldableScheduler",
    "ScheduleResult",
    "allocate_resources",
    "list_schedule",
    "optimal_independent_allocation",
    "sp_fptas_allocation",
    "lp_lower_bound",
    "theory",
    "Schedule",
    "classify_intervals",
    "ascii_gantt",
]
