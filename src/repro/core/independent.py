"""Optimal resource allocation for independent jobs (Lemma 8, from Sun et
al. [36]).

With no precedence constraints the critical path degenerates to
``C(p) = max_j t_j(p_j)``, so ``L(p) = max(A(p), max_j t_j(p_j))`` can be
minimized exactly over the candidate set:

1. the optimal value of ``max_j t_j`` is one of the candidate times, so we
   sweep a threshold ``T`` over the merged sorted candidate times;
2. for fixed ``T`` every job independently picks its minimum-area candidate
   with ``t <= T`` — which, on the Eq. (2) frontier (time increasing, area
   decreasing), is simply the *slowest* candidate not exceeding ``T``;
3. ``A(T)`` is maintained incrementally as the sweep advances, giving an
   ``O(E log E)`` algorithm over ``E`` total candidates.

The returned value is exactly ``L_min`` *restricted to the candidate set*
(equal to the true ``L_min`` when the strategy enumerates the full grid).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.instance.instance import Instance
from repro.jobs.candidates import CandidateStrategy
from repro.jobs.profiles import ProfileEntry
from repro.resources.vector import ResourceVector

__all__ = ["IndependentAllocation", "optimal_independent_allocation"]

JobId = Hashable


@dataclass(frozen=True)
class IndependentAllocation:
    """Optimal allocation and its certified ``L_min`` value."""

    allocation: dict[JobId, ResourceVector]
    l_min: float
    max_time: float
    total_area: float


def optimal_independent_allocation(
    instance: Instance,
    strategy: CandidateStrategy | None = None,
    table: Mapping[JobId, Sequence[ProfileEntry]] | None = None,
) -> IndependentAllocation:
    """Minimize ``L(p) = max(A(p), max_j t_j(p_j))`` exactly (Lemma 8).

    Works for any instance but is only a valid ``L_min`` when the DAG has no
    edges; raises ``ValueError`` otherwise.
    """
    if not instance.dag.is_independent():
        raise ValueError("Lemma 8 applies to independent jobs only")
    tbl = table if table is not None else instance.candidate_table(strategy)
    jobs = list(instance.jobs)
    if not jobs:
        return IndependentAllocation({}, 0.0, 0.0, 0.0)

    # sweep events: advancing job j from frontier index k-1 to k at time t_k
    events: list[tuple[float, JobId, int]] = []
    for j in jobs:
        for k, e in enumerate(tbl[j]):
            if k > 0:
                events.append((e.time, j, k))
    events.sort(key=lambda ev: ev[0])

    ptr = {j: 0 for j in jobs}
    area = sum(tbl[j][0].area for j in jobs)

    def evaluate() -> tuple[float, float, float]:
        mt = max(tbl[j][ptr[j]].time for j in jobs)
        return max(area, mt), mt, area

    best_l, best_mt, best_area = evaluate()
    best_ptr = dict(ptr)

    i = 0
    while i < len(events):
        t = events[i][0]
        # apply every advance available at threshold t
        while i < len(events) and events[i][0] == t:
            _, j, k = events[i]
            area += tbl[j][k].area - tbl[j][ptr[j]].area
            ptr[j] = max(ptr[j], k)
            i += 1
        l, mt, a = evaluate()
        if l < best_l - 1e-15:
            best_l, best_mt, best_area = l, mt, a
            best_ptr = dict(ptr)
        # A(T) only decreases and max-time only increases as T grows; once
        # the max time exceeds the current best L the sweep cannot improve.
        if mt >= best_l:
            break

    allocation = {j: tbl[j][best_ptr[j]].alloc for j in jobs}
    return IndependentAllocation(
        allocation=allocation, l_min=best_l, max_time=best_mt, total_area=best_area
    )
