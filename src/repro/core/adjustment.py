"""Allocation adjustment — Step 3 of Algorithm 1 (Eq. (5), Lemma 4).

The initial allocation ``p'`` from the DTCT rounding may give a single job a
large share of some resource type, which would let list scheduling idle most
of the platform behind it.  The adjustment caps every job's per-type
allocation at ``⌈µ P^(i)⌉``::

    p_j^(i) = ⌈µ P^(i)⌉   if p'_j^(i) > ⌈µ P^(i)⌉,  else  p'_j^(i)

Lemma 4 then bounds the damage: an adjusted job's execution time grows by at
most ``1/µ`` and its per-type area by at most ``d·a_j(p'_j)`` provided
``P^(i) >= 1/µ²`` — both of which the test suite asserts on concrete
instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.instance.instance import Instance
from repro.resources.vector import ResourceVector

__all__ = ["AdjustmentResult", "adjust_allocation"]

JobId = Hashable


@dataclass(frozen=True)
class AdjustmentResult:
    """Final allocation ``p`` plus the set of adjusted jobs."""

    allocation: dict[JobId, ResourceVector]
    adjusted_jobs: frozenset
    mu: float
    caps: ResourceVector


def adjust_allocation(
    instance: Instance,
    p_prime: Mapping[JobId, ResourceVector],
    mu: float,
) -> AdjustmentResult:
    """Apply Eq. (5) to every job; returns the capped allocation ``p``."""
    caps = instance.pool.mu_caps(mu)
    allocation: dict[JobId, ResourceVector] = {}
    adjusted = set()
    for j, alloc in p_prime.items():
        capped = alloc.cap(caps)
        allocation[j] = capped
        if tuple(capped) != tuple(alloc):
            adjusted.add(j)
    return AdjustmentResult(
        allocation=allocation, adjusted_jobs=frozenset(adjusted), mu=mu, caps=caps
    )
