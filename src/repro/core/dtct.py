"""Discrete Time-Cost Tradeoff relaxation and ρ-rounding (Section 4.1, Lemma 3).

The resource-allocation problem maps to the DTCT problem (Definition 3):
each job's non-dominated allocations are the task's alternatives with time
``t_j(p)`` and cost ``a_j(p)`` (average area).  Following the adaptation of
Skutella's algorithm described in the paper, we solve one LP that minimizes
the lower-bound functional ``L`` directly (instead of fixing a budget or a
deadline a priori):

    minimize   L
    s.t.       Σ_k x_{j,k} = 1                          ∀ jobs j
               C_j >= Σ_k t_{j,k} x_{j,k}               ∀ j             (source length)
               C_j >= C_u + Σ_k t_{j,k} x_{j,k}         ∀ edges u -> j  (path length)
               C_j <= L                                 ∀ j             (C(p) <= L)
               Σ_j Σ_k a_{j,k} x_{j,k} <= L                             (A(p) <= L)
               x >= 0, C >= 0

The optimum ``L_LP`` satisfies ``L_LP <= L_min <= T_opt`` (Lemmas 1-2, and
because the fractional feasible region contains every integral allocation).

Rounding (the ρ-quantile rule, equivalent to Skutella's virtual-task
rounding): per job, with alternatives sorted by increasing time (hence
non-increasing cost, thanks to the Eq. (2) filter), choose the first
alternative at which the cumulative fraction reaches ``1 − ρ``.  This yields
the deterministic guarantees asserted by our tests::

    t_j(p'_j) <= τ_j / ρ           (fractional time τ_j = Σ_k t_{j,k} x_{j,k})
    a_j(p'_j) <= γ_j / (1 − ρ)     (fractional cost γ_j = Σ_k a_{j,k} x_{j,k})

and therefore ``C(p') <= L_LP/ρ`` and ``A(p') <= L_LP/(1−ρ)`` — exactly
Lemma 3 with ``T_opt`` replaced by the (smaller) ``L_LP``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.instance.instance import Instance
from repro.jobs.profiles import ProfileEntry
from repro.resources.vector import ResourceVector

__all__ = ["FractionalSolution", "solve_dtct_lp", "round_fractional", "dtct_allocate"]

JobId = Hashable


@dataclass(frozen=True)
class FractionalSolution:
    """Optimal fractional DTCT solution.

    Attributes
    ----------
    lower_bound:
        ``L_LP`` — a certified lower bound on ``T_opt``.
    fractions:
        Per job, the fractional weight of each candidate (aligned with the
        job's candidate-table order).
    fractional_times:
        ``τ_j = Σ_k t_{j,k} x_{j,k}``.
    fractional_areas:
        ``γ_j = Σ_k a_{j,k} x_{j,k}``.
    """

    lower_bound: float
    fractions: dict[JobId, np.ndarray]
    fractional_times: dict[JobId, float]
    fractional_areas: dict[JobId, float]


def solve_dtct_lp(
    instance: Instance,
    table: Mapping[JobId, Sequence[ProfileEntry]],
) -> FractionalSolution:
    """Solve the relaxed DTCT LP with scipy's HiGHS backend.

    ``table`` maps each job to its non-dominated candidate entries (from
    :meth:`Instance.candidate_table`).  Raises ``RuntimeError`` if the solver
    fails (should not happen: the LP is always feasible and bounded).
    """
    job_order = instance.dag.topological_order()
    n = len(job_order)
    if n == 0:
        return FractionalSolution(0.0, {}, {}, {})

    # variable layout: [x_{j,k} for j in job_order for k] + [C_j for j] + [L]
    x_offset: dict[JobId, int] = {}
    off = 0
    for j in job_order:
        entries = table[j]
        if not entries:
            raise ValueError(f"job {j!r} has no candidate allocations")
        x_offset[j] = off
        off += len(entries)
    n_x = off
    c_offset = {j: n_x + i for i, j in enumerate(job_order)}
    l_index = n_x + n
    n_var = n_x + n + 1

    times = {j: np.array([e.time for e in table[j]]) for j in job_order}
    areas = {j: np.array([e.area for e in table[j]]) for j in job_order}

    # equality: sum_k x_{j,k} = 1
    eq_rows, eq_cols, eq_vals = [], [], []
    for r, j in enumerate(job_order):
        k = len(table[j])
        eq_rows.extend([r] * k)
        eq_cols.extend(range(x_offset[j], x_offset[j] + k))
        eq_vals.extend([1.0] * k)
    a_eq = csr_matrix((eq_vals, (eq_rows, eq_cols)), shape=(n, n_var))
    b_eq = np.ones(n)

    ub_rows, ub_cols, ub_vals = [], [], []
    b_ub: list[float] = []
    row = 0

    def add_entry(r: int, col: int, val: float) -> None:
        ub_rows.append(r)
        ub_cols.append(col)
        ub_vals.append(val)

    # source length: τ_j − C_j <= 0 for all j (redundant but harmless for
    # non-sources; keeps every C_j anchored)
    for j in job_order:
        for k, t in enumerate(times[j]):
            add_entry(row, x_offset[j] + k, float(t))
        add_entry(row, c_offset[j], -1.0)
        b_ub.append(0.0)
        row += 1

    # path length: C_u − C_j + τ_j <= 0 for every edge u -> j
    for u, j in instance.dag.edges():
        add_entry(row, c_offset[u], 1.0)
        add_entry(row, c_offset[j], -1.0)
        for k, t in enumerate(times[j]):
            add_entry(row, x_offset[j] + k, float(t))
        b_ub.append(0.0)
        row += 1

    # C_j − L <= 0
    for j in job_order:
        add_entry(row, c_offset[j], 1.0)
        add_entry(row, l_index, -1.0)
        b_ub.append(0.0)
        row += 1

    # total area − L <= 0
    for j in job_order:
        for k, a in enumerate(areas[j]):
            add_entry(row, x_offset[j] + k, float(a))
    add_entry(row, l_index, -1.0)
    b_ub.append(0.0)
    row += 1

    a_ub = csr_matrix((ub_vals, (ub_rows, ub_cols)), shape=(row, n_var))
    cost = np.zeros(n_var)
    cost[l_index] = 1.0
    bounds = [(0.0, 1.0)] * n_x + [(0.0, None)] * (n + 1)

    res = linprog(
        cost,
        A_ub=a_ub,
        b_ub=np.array(b_ub),
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not res.success:  # pragma: no cover - LP is always feasible/bounded
        raise RuntimeError(f"DTCT LP failed: {res.message}")

    fractions: dict[JobId, np.ndarray] = {}
    f_times: dict[JobId, float] = {}
    f_areas: dict[JobId, float] = {}
    for j in job_order:
        k = len(table[j])
        x = np.clip(res.x[x_offset[j] : x_offset[j] + k], 0.0, None)
        s = x.sum()
        x = x / s if s > 0 else np.full(k, 1.0 / k)
        fractions[j] = x
        f_times[j] = float(times[j] @ x)
        f_areas[j] = float(areas[j] @ x)
    return FractionalSolution(
        lower_bound=float(res.x[l_index]),
        fractions=fractions,
        fractional_times=f_times,
        fractional_areas=f_areas,
    )


def round_fractional(
    table: Mapping[JobId, Sequence[ProfileEntry]],
    solution: FractionalSolution,
    rho: float,
) -> dict[JobId, ResourceVector]:
    """Apply the ρ-quantile rounding rule to a fractional solution.

    For each job the candidates are sorted by increasing time; we select the
    first index at which the cumulative fraction reaches ``1 − ρ`` (minus a
    small numeric slack).  See the module docstring for the resulting
    per-job guarantees.
    """
    if not 0.0 < rho < 1.0:
        raise ValueError(f"ρ must lie in (0, 1), got {rho}")
    allocation: dict[JobId, ResourceVector] = {}
    eps = 1e-9
    for j, x in solution.fractions.items():
        cum = np.cumsum(x)
        idx = int(np.searchsorted(cum, 1.0 - rho - eps))
        idx = min(idx, len(x) - 1)
        allocation[j] = table[j][idx].alloc
    return allocation


def dtct_allocate(
    instance: Instance,
    table: Mapping[JobId, Sequence[ProfileEntry]],
    rho: float,
) -> tuple[dict[JobId, ResourceVector], FractionalSolution]:
    """Solve the LP and round: Step 2 of Algorithm 1.

    Returns the initial allocation ``p'`` (satisfying Lemma 3 relative to the
    returned fractional lower bound) and the fractional solution itself.
    """
    solution = solve_dtct_lp(instance, table)
    return round_fractional(table, solution, rho), solution
