"""The paper's algorithm: Phase 1 allocation, Phase 2 list scheduling,
special-case allocators, lower bounds, and the approximation-ratio theory."""

from repro.core.allocation import Phase1Result, allocate_resources
from repro.core.adjustment import AdjustmentResult, adjust_allocation
from repro.core.dtct import FractionalSolution, solve_dtct_lp, round_fractional, dtct_allocate
from repro.core.independent import IndependentAllocation, optimal_independent_allocation
from repro.core.list_scheduler import (
    ScheduleLog,
    list_schedule,
    list_schedule_log,
    fifo_priority,
    lpt_priority,
    spt_priority,
    random_priority,
    bottom_level_priority,
    explicit_priority,
)
from repro.core.lower_bounds import lp_lower_bound, exact_lmin_bruteforce, trivial_lower_bounds
from repro.core.sp_fptas import SPAllocation, sp_fptas_allocation
from repro.core.two_phase import MoldableScheduler, ScheduleResult
from repro.core import theory

__all__ = [
    "Phase1Result",
    "allocate_resources",
    "AdjustmentResult",
    "adjust_allocation",
    "FractionalSolution",
    "solve_dtct_lp",
    "round_fractional",
    "dtct_allocate",
    "IndependentAllocation",
    "optimal_independent_allocation",
    "ScheduleLog",
    "list_schedule",
    "list_schedule_log",
    "fifo_priority",
    "lpt_priority",
    "spt_priority",
    "random_priority",
    "bottom_level_priority",
    "explicit_priority",
    "lp_lower_bound",
    "exact_lmin_bruteforce",
    "trivial_lower_bounds",
    "SPAllocation",
    "sp_fptas_allocation",
    "MoldableScheduler",
    "ScheduleResult",
    "theory",
]
