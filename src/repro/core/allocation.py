"""Phase 1 — resource allocation (Algorithm 1).

Step 1 discards dominated allocations (done inside
:meth:`Instance.candidate_table` via :func:`repro.jobs.profiles.pareto_filter`),
Step 2 solves + rounds the DTCT relaxation (:mod:`repro.core.dtct`), and
Step 3 applies the µ-adjustment (:mod:`repro.core.adjustment`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.adjustment import AdjustmentResult, adjust_allocation
from repro.core.dtct import FractionalSolution, dtct_allocate
from repro.instance.instance import Instance
from repro.jobs.candidates import CandidateStrategy
from repro.jobs.profiles import ProfileEntry
from repro.resources.vector import ResourceVector

__all__ = ["Phase1Result", "allocate_resources"]

JobId = Hashable


@dataclass(frozen=True)
class Phase1Result:
    """Everything produced by Algorithm 1.

    Attributes
    ----------
    p_prime:
        The initial (rounded) allocation satisfying Lemma 3.
    allocation:
        The final µ-adjusted allocation ``p`` handed to Phase 2.
    fractional:
        The LP solution; ``fractional.lower_bound`` certifies
        ``L_LP <= T_opt``.
    adjustment:
        Which jobs were capped, and the caps.
    rho, mu:
        The parameters used.
    table:
        The per-job non-dominated candidate frontiers (Step 1's output).
    """

    p_prime: dict[JobId, ResourceVector]
    allocation: dict[JobId, ResourceVector]
    fractional: FractionalSolution
    adjustment: AdjustmentResult
    rho: float
    mu: float
    table: dict[JobId, list[ProfileEntry]]

    @property
    def lower_bound(self) -> float:
        """``L_LP`` — certified lower bound on the optimal makespan."""
        return self.fractional.lower_bound


def allocate_resources(
    instance: Instance,
    rho: float,
    mu: float,
    strategy: CandidateStrategy | None = None,
) -> Phase1Result:
    """Run Algorithm 1 with explicit parameters ``ρ`` and ``µ``."""
    if not 0.0 < rho < 1.0:
        raise ValueError(f"ρ must lie in (0, 1), got {rho}")
    table = instance.candidate_table(strategy)          # Step 1 (Eq. 2)
    p_prime, fractional = dtct_allocate(instance, table, rho)  # Step 2 (Lemma 3)
    adjustment = adjust_allocation(instance, p_prime, mu)      # Step 3 (Eq. 5)
    return Phase1Result(
        p_prime=p_prime,
        allocation=adjustment.allocation,
        fractional=fractional,
        adjustment=adjustment,
        rho=rho,
        mu=mu,
        table=table,
    )
