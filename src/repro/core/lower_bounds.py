"""Makespan lower bounds used as ratio denominators and test oracles.

The chain of inequalities (Lemmas 1-2 and LP relaxation)::

    L_LP  <=  L_min  <=  T_opt

* :func:`lp_lower_bound` — the fractional DTCT optimum (any instance);
* :func:`exact_lmin_bruteforce` — exact ``L_min`` over the candidate set by
  exhaustive enumeration (tiny instances; the test oracle for the FPTAS and
  Lemma 8);
* :func:`trivial_lower_bounds` — ``max_j min_p t_j(p)`` and
  ``Σ_j min_p a_j(p)``: cheap sanity floors.
"""

from __future__ import annotations

from itertools import product
from typing import Hashable

from repro.core.dtct import solve_dtct_lp
from repro.instance.instance import Instance
from repro.jobs.candidates import CandidateStrategy
from repro.resources.vector import ResourceVector

__all__ = ["lp_lower_bound", "exact_lmin_bruteforce", "trivial_lower_bounds"]

JobId = Hashable


def lp_lower_bound(instance: Instance, strategy: CandidateStrategy | None = None) -> float:
    """``L_LP`` — the fractional DTCT optimum (certified ``<= T_opt``)."""
    table = instance.candidate_table(strategy)
    return solve_dtct_lp(instance, table).lower_bound


def exact_lmin_bruteforce(
    instance: Instance,
    strategy: CandidateStrategy | None = None,
    *,
    max_combinations: int = 2_000_000,
) -> tuple[float, dict[JobId, ResourceVector]]:
    """Exact ``L_min`` by enumerating every combination of candidates.

    Exponential in the number of jobs: refuses to run past
    ``max_combinations`` (it is a test oracle, not an algorithm).
    """
    table = instance.candidate_table(strategy)
    jobs = list(instance.jobs)
    count = 1
    for j in jobs:
        count *= len(table[j])
        if count > max_combinations:
            raise ValueError(
                f"brute force would enumerate > {max_combinations} combinations"
            )
    best_l = float("inf")
    best: dict[JobId, ResourceVector] = {}
    for combo in product(*(table[j] for j in jobs)):
        alloc = {j: e.alloc for j, e in zip(jobs, combo)}
        l = instance.lower_bound_functional(alloc)
        if l < best_l:
            best_l, best = l, alloc
    return best_l, best


def trivial_lower_bounds(instance: Instance, strategy: CandidateStrategy | None = None) -> dict[str, float]:
    """Cheap floors: ``max_j min t_j`` (a job must run) and ``Σ_j min a_j``
    (total area must fit)."""
    table = instance.candidate_table(strategy)
    if not instance.jobs:
        return {"max_min_time": 0.0, "min_total_area": 0.0}
    return {
        "max_min_time": max(min(e.time for e in table[j]) for j in instance.jobs),
        "min_total_area": sum(min(e.area for e in table[j]) for j in instance.jobs),
    }
