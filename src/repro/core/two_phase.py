"""The complete multi-resource scheduling algorithm (Sections 4-5).

:class:`MoldableScheduler` glues Phase 1 (resource allocation) to Phase 2
(list scheduling) and selects theorem-optimal parameters automatically:

* general DAGs — the DTCT LP + ρ-rounding + µ-adjustment with ``µ*, ρ*``
  from Theorem 1 (or Theorem 2's numeric optimum for ``d >= 22``);
* independent jobs — Lemma 8's exact allocation (Theorem 5's µ);
* series-parallel graphs / trees — Lemma 7's FPTAS (Theorems 3-4's µ),
  enabled by passing the SP decomposition tree.

The returned :class:`ScheduleResult` carries the certified lower bound so
callers can report sound empirical approximation ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core import theory
from repro.core.adjustment import adjust_allocation
from repro.core.allocation import Phase1Result, allocate_resources
from repro.core.independent import optimal_independent_allocation
from repro.core.list_scheduler import PriorityRule, fifo_priority, list_schedule
from repro.core.sp_fptas import sp_fptas_allocation
from repro.dag.sp import SPNode
from repro.instance.instance import Instance
from repro.jobs.candidates import CandidateStrategy
from repro.registry import register_scheduler
from repro.resources.vector import ResourceVector
from repro.sim.schedule import Schedule

__all__ = ["ScheduleResult", "MoldableScheduler", "moldable_schedule"]

JobId = Hashable


@dataclass(frozen=True)
class ScheduleResult:
    """A schedule plus the provenance needed to evaluate it.

    ``lower_bound`` is a certified lower bound on the optimal makespan
    (the fractional LP value, Lemma 8's exact ``L_min``, or the FPTAS
    target divided by ``1+ε``), so ``ratio()`` never under-reports.
    """

    schedule: Schedule
    allocation: dict[JobId, ResourceVector]
    lower_bound: float
    mu: float
    rho: float | None
    proven_ratio: float
    allocator: str
    phase1: Phase1Result | None = None

    @property
    def makespan(self) -> float:
        return self.schedule.makespan

    def ratio(self) -> float:
        """Empirical makespan / certified-lower-bound ratio (>= true ratio
        against ``T_opt`` is unknowable; this is an upper bound on it)."""
        if self.lower_bound <= 0:
            return 1.0
        return self.makespan / self.lower_bound


@dataclass
class MoldableScheduler:
    """Two-phase multi-resource scheduler with theorem defaults.

    Parameters
    ----------
    mu, rho:
        Algorithm parameters; ``None`` selects the theorem-optimal values
        for the instance's ``d`` and the allocator in use.
    allocator:
        ``"auto"`` (independent jobs → Lemma 8, SP tree given → FPTAS,
        otherwise LP), or one of ``"lp"``, ``"independent"``, ``"sp"``.
    candidate_strategy:
        Candidate enumeration for Phase 1 (``None`` = geometric grid).
    priority:
        Phase 2 queue priority rule (default FIFO — the paper's baseline).
    epsilon:
        FPTAS accuracy for the SP allocator.
    """

    mu: float | None = None
    rho: float | None = None
    allocator: str = "auto"
    candidate_strategy: CandidateStrategy | None = None
    priority: PriorityRule = fifo_priority
    epsilon: float = 0.3
    sp_tree: SPNode | None = None

    def schedule(self, instance: Instance, sp_tree: SPNode | None = None) -> ScheduleResult:
        """Run both phases on ``instance`` and return the result."""
        sp = sp_tree if sp_tree is not None else self.sp_tree
        allocator = self._resolve_allocator(instance, sp)
        d = instance.d
        if allocator == "independent":
            mu_def, _, ratio = theory.best_parameters(d, "independent")
            mu = self.mu if self.mu is not None else mu_def
            ind = optimal_independent_allocation(instance, self.candidate_strategy)
            adj = adjust_allocation(instance, ind.allocation, mu)
            sched = list_schedule(instance, adj.allocation, self.priority)
            return ScheduleResult(
                schedule=sched,
                allocation=adj.allocation,
                lower_bound=ind.l_min,
                mu=mu,
                rho=None,
                proven_ratio=ratio,
                allocator="independent",
            )
        if allocator == "sp":
            if sp is None:
                raise ValueError("SP allocator requires the SP decomposition tree")
            mu_def, _, ratio = theory.best_parameters(d, "sp", eps=self.epsilon)
            mu = self.mu if self.mu is not None else mu_def
            res = sp_fptas_allocation(instance, sp, self.epsilon, self.candidate_strategy)
            adj = adjust_allocation(instance, res.allocation, mu)
            sched = list_schedule(instance, adj.allocation, self.priority)
            return ScheduleResult(
                schedule=sched,
                allocation=adj.allocation,
                # the FPTAS certifies L(p') <= (1+ε) L_min, so L(p')/(1+ε)
                # under-estimates L_min — a sound lower bound
                lower_bound=res.l_value / (1.0 + self.epsilon),
                mu=mu,
                rho=None,
                proven_ratio=ratio,
                allocator="sp",
            )
        # general LP path
        mu_def, rho_def, ratio = theory.best_parameters(d, "general")
        mu = self.mu if self.mu is not None else mu_def
        rho = self.rho if self.rho is not None else rho_def
        phase1 = allocate_resources(instance, rho, mu, self.candidate_strategy)
        sched = list_schedule(instance, phase1.allocation, self.priority)
        return ScheduleResult(
            schedule=sched,
            allocation=phase1.allocation,
            lower_bound=phase1.lower_bound,
            mu=mu,
            rho=rho,
            proven_ratio=ratio,
            allocator="lp",
            phase1=phase1,
        )

    # ------------------------------------------------------------------
    def _resolve_allocator(self, instance: Instance, sp: SPNode | None) -> str:
        if self.allocator != "auto":
            if self.allocator not in ("lp", "independent", "sp"):
                raise ValueError(f"unknown allocator {self.allocator!r}")
            return self.allocator
        if instance.dag.is_independent():
            return "independent"
        if sp is not None:
            return "sp"
        return "lp"


@register_scheduler(
    "ours",
    kind="core",
    description="the paper's two-phase algorithm with theorem-optimal parameters",
)
def moldable_schedule(instance: Instance, *, sp_tree: SPNode | None = None, **opts) -> ScheduleResult:
    """Registry entry point: construct a :class:`MoldableScheduler` from
    ``opts`` (``mu``, ``rho``, ``allocator``, ``priority``, ``epsilon``, …)
    and run both phases on ``instance``."""
    return MoldableScheduler(**opts).schedule(instance, sp_tree=sp_tree)


