"""Approximation-ratio theory of the paper (Theorems 1-6, Figure 1).

Everything here is closed-form or one-dimensional root finding:

* :func:`theorem1_ratio` / :func:`theorem1_mu` / :func:`theorem1_rho` —
  the ``φd + 2√(φd) + 1`` bound for general DAGs (Theorem 1);
* :func:`h_poly` — the quartic ``h_d(µ)`` whose root gives the optimal µ for
  large ``d`` (Theorem 2), :func:`mu_star` / :func:`rho_star` — the optimal
  parameters for any ``d``, :func:`theorem2_ratio_actual` /
  :func:`theorem2_ratio_estimate` — the two curves of Figure 1;
* :func:`theorem3_ratio` / :func:`theorem4_ratio` (SP graphs and trees),
  :func:`theorem5_ratio` (independent jobs);
* :func:`local_list_lower_bound` — Theorem 6's ``d``.

The generic makespan bounds ``f_d(µ,ρ)`` and ``g_d(µ,ρ)`` from the proofs of
Theorems 1-2 are exposed because the end-to-end guarantee tests assert
``T <= f_d(µ,ρ) · L_LP`` directly on scheduled instances.
"""

from __future__ import annotations

import math

from scipy.optimize import brentq

__all__ = [
    "PHI",
    "MU_A",
    "f_bound",
    "g_bound",
    "h_poly",
    "theorem1_ratio",
    "theorem1_mu",
    "theorem1_rho",
    "mu_star",
    "rho_star",
    "theorem2_ratio_actual",
    "theorem2_ratio_estimate",
    "theorem3_ratio",
    "theorem4_ratio",
    "theorem4_mu",
    "theorem5_ratio",
    "local_list_lower_bound",
    "best_parameters",
    "figure1_rows",
]

#: The golden ratio φ = (1 + √5)/2.
PHI = (1.0 + math.sqrt(5.0)) / 2.0

#: µ_A = (3 − √5)/2 = 1 − 1/φ ≈ 0.381966 — the Theorem 1 choice of µ.
MU_A = (3.0 - math.sqrt(5.0)) / 2.0

#: µ_B = 3/8 — the analysis split point inside the proof of Theorem 2.
MU_B = 3.0 / 8.0


def _check_mu(mu: float) -> None:
    if not 0.0 < mu < 0.5:
        raise ValueError(f"µ must lie in (0, 0.5), got {mu}")


def _check_rho(rho: float) -> None:
    if not 0.0 < rho < 1.0:
        raise ValueError(f"ρ must lie in (0, 1), got {rho}")


# ----------------------------------------------------------------------
# generic bounds from the proofs
# ----------------------------------------------------------------------
def f_bound(d: int, mu: float, rho: float) -> float:
    """``f_d(µ,ρ) = 1/ρ + d / ((1−µ)(1−ρ))`` — Theorem 1's makespan factor.

    Valid (i.e. the ``T_2`` term is non-positive) when ``µ >= µ_A``.
    """
    _check_mu(mu)
    _check_rho(rho)
    return 1.0 / rho + d / ((1.0 - mu) * (1.0 - rho))


def g_bound(d: int, mu: float, rho: float) -> float:
    """``g_d(µ,ρ) = (1−2µ)/(µ(1−µ)ρ) + d/((1−µ)(1−ρ))`` — Theorem 2's factor.

    Valid (the ``T_1`` term is non-positive) when ``µ <= µ_A``.
    """
    _check_mu(mu)
    _check_rho(rho)
    return (1.0 - 2.0 * mu) / (mu * (1.0 - mu) * rho) + d / ((1.0 - mu) * (1.0 - rho))


def h_poly(d: int, mu: float) -> float:
    """``h_d(µ) = (2d+4)µ⁴ − (d+8)µ³ + 8µ² − 4µ + 1`` (proof of Theorem 2).

    Its sign is opposite to ``g_d'(µ)`` after optimizing ρ; the optimal µ for
    ``d >= 22`` is the unique root in ``(0, 3/8]``.
    """
    return (2 * d + 4) * mu**4 - (d + 8) * mu**3 + 8 * mu**2 - 4 * mu + 1


# ----------------------------------------------------------------------
# Theorem 1 (general DAGs, any d)
# ----------------------------------------------------------------------
def theorem1_mu() -> float:
    """µ* = 1 − 1/φ ≈ 0.382 (Theorem 1)."""
    return MU_A


def theorem1_rho(d: int) -> float:
    """ρ* = 1/(√(φd) + 1) (Theorem 1)."""
    if d < 1:
        raise ValueError("d must be >= 1")
    return 1.0 / (math.sqrt(PHI * d) + 1.0)


def theorem1_ratio(d: int) -> float:
    """The Theorem 1 approximation ratio ``φd + 2√(φd) + 1``."""
    if d < 1:
        raise ValueError("d must be >= 1")
    return PHI * d + 2.0 * math.sqrt(PHI * d) + 1.0


def theorem1_pmin() -> float:
    """Capacity precondition of Theorem 1: ``P_min >= 1/µ*² ≈ 6.854``."""
    return 1.0 / MU_A**2


# ----------------------------------------------------------------------
# Theorem 2 (general DAGs, large d)
# ----------------------------------------------------------------------
def rho_star(d: int, mu: float) -> float:
    """The ρ minimizing ``g_d(µ, ·)``:
    ``ρ*(µ) = √X_µ / (√X_µ + √(dY_µ))`` with ``X_µ = (1−2µ)/(µ(1−µ))``,
    ``Y_µ = 1/(1−µ)``."""
    _check_mu(mu)
    x = (1.0 - 2.0 * mu) / (mu * (1.0 - mu))
    y = 1.0 / (1.0 - mu)
    sx, sy = math.sqrt(x), math.sqrt(d * y)
    return sx / (sx + sy)


def mu_star(d: int) -> float:
    """The optimal µ for general DAGs.

    For ``d <= 21``, ``h_d`` is positive on ``(0, µ_A]`` so the optimum is
    ``µ_A`` (Theorem 1's choice).  For ``d >= 22`` it is the unique root of
    ``h_d`` in ``(0, µ_B]`` (Theorem 2), found numerically.
    """
    if d < 1:
        raise ValueError("d must be >= 1")
    if d <= 21:
        return MU_A
    # h_d(0) = 1 > 0 and h_d(µ_B) < 0 for d >= 22; h_d is strictly
    # decreasing on (0, µ_B], so brentq is safe.
    lo = 1e-9
    if h_poly(d, MU_B) >= 0:  # pragma: no cover - cannot happen for d >= 22
        return MU_A
    return float(brentq(lambda m: h_poly(d, m), lo, MU_B, xtol=1e-14))


def theorem2_ratio_actual(d: int) -> float:
    """Figure 1's *actual* ratio: ``g_d(µ*, ρ*(µ*))`` with the numeric µ*."""
    mu = mu_star(d)
    if mu >= MU_A:
        return theorem1_ratio(d)
    return g_bound(d, mu, rho_star(d, mu))


def theorem2_ratio_estimate(d: int) -> float:
    """Figure 1's *estimated* ratio: ``g_d`` evaluated at ``µ = d^(−1/3)``.

    This is the closed-form estimate the paper derives for large ``d``
    (``d + 3·d^(2/3) + O(d^(1/3))``).
    """
    if d < 8:
        raise ValueError("the µ ≈ d^(-1/3) estimate needs d >= 8 so that µ < 0.5")
    mu = d ** (-1.0 / 3.0)
    mu = min(mu, MU_A)  # stay in g's validity range
    return g_bound(d, mu, rho_star(d, mu))


def theorem2_pmin(d: int) -> float:
    """Capacity precondition of Theorem 2 (``P_min >= 1/µ*²``)."""
    m = mu_star(d)
    return 1.0 / (m * m)


# ----------------------------------------------------------------------
# Theorems 3-4 (series-parallel graphs and trees)
# ----------------------------------------------------------------------
def theorem3_ratio(d: int, eps: float = 0.0) -> float:
    """SP graphs / trees, any ``d``: ``(1+ε)(φd + 1)``."""
    if d < 1:
        raise ValueError("d must be >= 1")
    if eps < 0:
        raise ValueError("ε must be >= 0")
    return (1.0 + eps) * (PHI * d + 1.0)


def theorem4_mu(d: int) -> float:
    """µ* = 1/(√(d−1) + 1) (Theorem 4, d >= 4)."""
    if d < 4:
        raise ValueError("Theorem 4 requires d >= 4")
    return 1.0 / (math.sqrt(d - 1.0) + 1.0)


def theorem4_ratio(d: int, eps: float = 0.0) -> float:
    """SP graphs / trees, ``d >= 4``: ``(1+ε)(d + 2√(d−1))``."""
    if d < 4:
        raise ValueError("Theorem 4 requires d >= 4")
    if eps < 0:
        raise ValueError("ε must be >= 0")
    return (1.0 + eps) * (d + 2.0 * math.sqrt(d - 1.0))


def sp_ratio(d: int, eps: float = 0.0) -> float:
    """The better of Theorems 3-4 for SP graphs / trees."""
    if d < 4:
        return theorem3_ratio(d, eps)
    return min(theorem3_ratio(d, eps), theorem4_ratio(d, eps))


# ----------------------------------------------------------------------
# Theorem 5 (independent jobs)
# ----------------------------------------------------------------------
def theorem5_ratio(d: int) -> float:
    """Independent jobs: 2d (d <= 2), 1.619d + 1 (d = 3), d + 2√(d−1) (d >= 4)."""
    if d < 1:
        raise ValueError("d must be >= 1")
    if d <= 2:
        return 2.0 * d
    if d == 3:
        return PHI * d + 1.0
    return d + 2.0 * math.sqrt(d - 1.0)


# ----------------------------------------------------------------------
# Theorem 6 (lower bound)
# ----------------------------------------------------------------------
def local_list_lower_bound(d: int) -> float:
    """No local-priority list scheduler beats ``d``-approximation (Theorem 6)."""
    if d < 1:
        raise ValueError("d must be >= 1")
    return float(d)


# ----------------------------------------------------------------------
# parameter selection and Figure 1
# ----------------------------------------------------------------------
def best_parameters(d: int, graph_class: str = "general", eps: float = 0.1) -> tuple[float, float, float]:
    """Return ``(µ, ρ, proven_ratio)`` for the given graph class.

    ``graph_class`` is ``"general"`` (Theorems 1/2 — whichever wins at this
    ``d``), ``"sp"``/``"tree"`` (Theorems 3/4 — µ choice; ρ is unused by the
    FPTAS but returned as Theorem 1's for uniformity), or ``"independent"``
    (Theorem 5 — µ choice).
    """
    if graph_class == "general":
        mu = mu_star(d)
        if mu >= MU_A - 1e-12:
            return MU_A, theorem1_rho(d), theorem1_ratio(d)
        return mu, rho_star(d, mu), g_bound(d, mu, rho_star(d, mu))
    if graph_class in ("sp", "tree"):
        if d >= 4 and theorem4_ratio(d, eps) < theorem3_ratio(d, eps):
            return theorem4_mu(d), theorem1_rho(d), theorem4_ratio(d, eps)
        return MU_A, theorem1_rho(d), theorem3_ratio(d, eps)
    if graph_class == "independent":
        if d >= 4:
            return theorem4_mu(d), theorem1_rho(d), theorem5_ratio(d)
        return MU_A, theorem1_rho(d), theorem5_ratio(d)
    raise ValueError(f"unknown graph class {graph_class!r}")


def figure1_rows(d_min: int = 22, d_max: int = 50) -> list[dict[str, float]]:
    """The three series of Figure 1 for ``d_min <= d <= d_max``:
    actual Theorem 2 ratio, its closed-form estimate, and Theorem 1's ratio."""
    rows = []
    for d in range(d_min, d_max + 1):
        rows.append(
            {
                "d": d,
                "theorem2_actual": theorem2_ratio_actual(d),
                "theorem2_estimate": theorem2_ratio_estimate(d),
                "theorem1": theorem1_ratio(d),
                "mu_star": mu_star(d),
            }
        )
    return rows
