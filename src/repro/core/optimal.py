"""Exact optimal schedulers for small instances (test/benchmark oracles).

``T_opt`` is strongly NP-complete, but tiny instances can be solved exactly,
which lets the benchmarks report *true* approximation ratios instead of
ratios against lower bounds:

* :func:`optimal_makespan_fixed_allocation` — with allocations fixed, the
  problem is a multi-resource RCPSP.  Every optimal schedule is an *active*
  schedule, and the serial schedule-generation scheme (SGS) enumerated over
  all precedence-feasible job permutations generates all active schedules;
  we branch-and-bound over permutations with critical-path/area pruning.
* :func:`optimal_makespan` — additionally minimizes over the (Pareto)
  candidate allocation combinations.

Complexities are factorial/exponential by design; both functions refuse
instances beyond a configurable size.
"""

from __future__ import annotations

from itertools import product
from typing import Hashable, Mapping

from repro.dag.paths import bottom_levels
from repro.instance.instance import Instance
from repro.jobs.candidates import CandidateStrategy
from repro.resources.vector import ResourceVector
from repro.sim.schedule import Schedule, ScheduledJob

__all__ = ["optimal_makespan_fixed_allocation", "optimal_makespan"]

JobId = Hashable


def _earliest_start(
    placed: list[ScheduledJob],
    est: float,
    duration: float,
    alloc: ResourceVector,
    caps: ResourceVector,
    d: int,
) -> float:
    """Earliest ``t >= est`` at which ``alloc`` fits for ``duration``
    alongside ``placed``.

    Resource availability only increases at completion times, so candidate
    starts are ``est`` and placed finish times after it.  Feasibility over
    the window ``[t, t + duration)`` is checked at ``t`` and at every placed
    job's start inside the window (the only points where usage can rise).
    """
    candidates = sorted({est} | {p.finish for p in placed if p.finish > est})
    eps = 1e-12
    for t in candidates:
        end = t + duration
        ok = True
        for probe in [t] + [p.start for p in placed if t < p.start < end - eps]:
            usage = [0] * d
            for p in placed:
                if p.start <= probe + eps and probe < p.finish - eps:
                    for r in range(d):
                        usage[r] += p.alloc[r]
            if any(usage[r] + alloc[r] > caps[r] for r in range(d)):
                ok = False
                break
        if ok:
            return t
    # after every placed job finishes there is always room
    return max((p.finish for p in placed), default=est)


def optimal_makespan_fixed_allocation(
    instance: Instance,
    allocation: Mapping[JobId, ResourceVector],
    *,
    max_jobs: int = 9,
) -> tuple[float, Schedule]:
    """Exact minimum makespan for fixed allocations (branch and bound).

    Raises ``ValueError`` beyond ``max_jobs`` jobs (factorial search).
    """
    if instance.n > max_jobs:
        raise ValueError(f"exact search limited to {max_jobs} jobs, got {instance.n}")
    instance.validate_allocation_map(allocation)
    if instance.n == 0:
        return 0.0, Schedule(instance=instance, placements={})

    dag = instance.dag
    caps = instance.pool.capacities
    d = instance.d
    times = {j: instance.time(j, allocation[j]) for j in instance.jobs}
    blevel = bottom_levels(dag, times)
    # area floor: remaining work per type / capacity
    best: dict = {"makespan": float("inf"), "placed": None}

    def lower_bound(placed: list[ScheduledJob], remaining: set) -> float:
        cur = max((p.finish for p in placed), default=0.0)
        cp = 0.0
        for j in remaining:
            est = max(
                (p.finish for p in placed if p.job_id in dag_pred_cache[j]), default=0.0
            )
            cp = max(cp, est + blevel[j])
        return max(cur, cp)

    dag_pred_cache = {j: set(dag.predecessors(j)) for j in instance.jobs}

    def dfs(placed: list[ScheduledJob], done: dict[JobId, float], remaining: set) -> None:
        if not remaining:
            mk = max(p.finish for p in placed)
            if mk < best["makespan"] - 1e-12:
                best["makespan"] = mk
                best["placed"] = list(placed)
            return
        if lower_bound(placed, remaining) >= best["makespan"] - 1e-12:
            return
        # eligible: all predecessors already placed
        eligible = [j for j in remaining if dag_pred_cache[j] <= set(done)]
        # heuristic order: largest bottom level first (finds good incumbents early)
        eligible.sort(key=lambda j: -blevel[j])
        for j in eligible:
            est = max((done[p] for p in dag_pred_cache[j]), default=0.0)
            start = _earliest_start(placed, est, times[j], allocation[j], caps, d)
            sj = ScheduledJob(job_id=j, start=start, time=times[j], alloc=allocation[j])
            placed.append(sj)
            done[j] = sj.finish
            remaining.remove(j)
            dfs(placed, done, remaining)
            remaining.add(j)
            del done[j]
            placed.pop()

    dfs([], {}, set(instance.jobs))
    placements = {p.job_id: p for p in best["placed"]}
    schedule = Schedule(instance=instance, placements=placements)
    schedule.validate()
    return best["makespan"], schedule


def optimal_makespan(
    instance: Instance,
    strategy: CandidateStrategy | None = None,
    *,
    max_jobs: int = 6,
    max_combinations: int = 200_000,
) -> tuple[float, Schedule]:
    """Exact ``T_opt`` over the candidate allocation set (tiny instances).

    Minimizes :func:`optimal_makespan_fixed_allocation` over every
    combination of the *raw* candidate allocations — NOT the Eq. (2)
    Pareto frontier.  Dominance on ``(time, average area)`` is safe for the
    lower-bound functional ``L`` (Lemma 2) but not for the makespan itself:
    a dominating allocation may demand more of some resource type and pack
    strictly worse, so ``T_opt`` can require a dominated allocation.
    Refuses instances whose search space exceeds the limits.
    """
    if instance.n > max_jobs:
        raise ValueError(f"exact search limited to {max_jobs} jobs, got {instance.n}")
    from repro.jobs.candidates import candidates_for_job, geometric_grid

    strat = strategy if strategy is not None else geometric_grid
    candidates = {
        j: candidates_for_job(instance.jobs[j], instance.pool, strat)
        for j in instance.jobs
    }
    jobs = list(instance.jobs)
    combos = 1
    for j in jobs:
        combos *= len(candidates[j])
        if combos > max_combinations:
            raise ValueError(f"allocation search space exceeds {max_combinations}")
    if not jobs:
        return 0.0, Schedule(instance=instance, placements={})

    best_mk = float("inf")
    best_sched: Schedule | None = None
    for combo in product(*(candidates[j] for j in jobs)):
        alloc = dict(zip(jobs, combo))
        # cheap prune: L(p) is a lower bound on this combo's makespan
        if instance.lower_bound_functional(alloc) >= best_mk - 1e-12:
            continue
        mk, sched = optimal_makespan_fixed_allocation(instance, alloc, max_jobs=max_jobs)
        if mk < best_mk - 1e-12:
            best_mk, best_sched = mk, sched
    assert best_sched is not None
    return best_mk, best_sched
