"""Phase 2 — the extended multi-resource list scheduler (Algorithm 2).

Given a fixed resource allocation ``p``, jobs are started greedily: whenever
a job completes (or at time 0), every newly ready job joins the queue, and
the queue is scanned in priority order, starting **every** job whose
allocation fits the currently available amount of *every* resource type
(the scan does not stop at the first job that does not fit — exactly the
``for each job j ∈ Q`` loop of Algorithm 2).

Priorities.  The paper proves the approximation ratio for *any* queue order;
better orders help in practice (Section 4.2.1) and the distinction between
*local* priorities (functions of the job alone) and *global* ones (functions
of the precedence graph, e.g. bottom level) is the crux of Theorem 6.  The
:class:`PriorityRule` factories below cover both families; benchmarks
``bench_ablation_priority`` and ``bench_figure2_lower_bound`` exercise them.
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping, NamedTuple

import numpy as np

from repro.dag.paths import bottom_levels
from repro.engine.dispatch import drive_priority_schedule, priority_loop
from repro.instance.instance import Instance
from repro.resources.vector import ResourceVector
from repro.sim.schedule import Schedule, ScheduledJob
from repro.util.rng import ensure_rng

__all__ = [
    "PriorityRule",
    "fifo_priority",
    "lpt_priority",
    "spt_priority",
    "random_priority",
    "bottom_level_priority",
    "explicit_priority",
    "ScheduleLog",
    "list_schedule",
    "list_schedule_log",
    "portfolio_list_schedule",
]

JobId = Hashable

#: A priority rule maps (instance, allocation, times) to a per-job sort key;
#: *smaller keys start first*.  A rule may additionally carry an
#: ``as_array`` attribute — ``as_array(instance, allocation, times_vec)``
#: returning a 1-D key array aligned with the topological order — which the
#: scheduler uses instead of the dict form: a stable argsort of the array
#: realizes exactly the ``(key, topological index)`` order of the dict
#: path, without building ``n`` python key objects per run.
PriorityRule = Callable[
    [Instance, Mapping[JobId, ResourceVector], Mapping[JobId, float]],
    dict[JobId, object],
]


def _array_form(fn):
    """Attach ``fn`` to a rule as its vectorized key form (see PriorityRule)."""

    def attach(rule):
        rule.as_array = fn
        return rule

    return attach


@_array_form(lambda instance, allocation, times_vec: np.arange(len(times_vec)))
def fifo_priority(instance: Instance, allocation, times) -> dict[JobId, object]:
    """Queue-insertion order (topological index): the paper's default."""
    return {j: i for i, j in enumerate(instance.dag.topological_order())}


@_array_form(lambda instance, allocation, times_vec: -times_vec)
def lpt_priority(instance: Instance, allocation, times) -> dict[JobId, object]:
    """Longest processing time first (local)."""
    return {j: (-times[j], i) for i, j in enumerate(instance.dag.topological_order())}


@_array_form(lambda instance, allocation, times_vec: times_vec)
def spt_priority(instance: Instance, allocation, times) -> dict[JobId, object]:
    """Shortest processing time first (local)."""
    return {j: (times[j], i) for i, j in enumerate(instance.dag.topological_order())}


def random_priority(seed: int | np.random.Generator | None = None) -> PriorityRule:
    """A fixed random permutation of the jobs (local)."""

    def rule(instance: Instance, allocation, times) -> dict[JobId, object]:
        rng = ensure_rng(seed)
        order = instance.dag.topological_order()
        perm = rng.permutation(len(order))
        return {j: int(perm[i]) for i, j in enumerate(order)}

    def rule_array(instance, allocation, times_vec) -> np.ndarray:
        rng = ensure_rng(seed)
        return rng.permutation(len(times_vec))

    rule.as_array = rule_array
    return rule


def _bottom_level_keys(instance, allocation, times_vec) -> np.ndarray:
    from repro.instance.compiled import bottom_levels_array, compile_dag

    return -bottom_levels_array(compile_dag(instance.dag), times_vec)


@_array_form(_bottom_level_keys)
def bottom_level_priority(instance: Instance, allocation, times) -> dict[JobId, object]:
    """Critical-path-aware (global): larger bottom level starts first."""
    b = bottom_levels(instance.dag, times)
    return {j: (-b[j], i) for i, j in enumerate(instance.dag.topological_order())}


def explicit_priority(keys: Mapping[JobId, object]) -> PriorityRule:
    """Use the given per-job keys verbatim (adversarial constructions)."""

    def rule(instance: Instance, allocation, times) -> dict[JobId, object]:
        return dict(keys)

    return rule


def list_schedule(
    instance: Instance,
    allocation: Mapping[JobId, ResourceVector],
    priority: PriorityRule = fifo_priority,
    *,
    on_event: Callable[[str, JobId, float, float | None], None] | None = None,
    backend: "str | object | None" = None,
) -> Schedule:
    """Run Algorithm 2 and return the resulting (valid) schedule.

    ``allocation`` must cover every job and fit within the pool's capacities
    (guaranteed by Phase 1; validated here).  Deterministic for a fixed
    priority rule.  The event loop — virtual time, completion batching,
    vectorized resource accounting, release gating for online arrivals —
    lives in :mod:`repro.engine`; this function contributes only the
    priority keys and collects the placements.

    ``on_event("start"|"finish", job, time, duration_or_None)`` streams
    dispatch events as virtual time advances (``repro schedule --follow``);
    leaving it ``None`` keeps the hot loop free of per-completion callbacks.

    ``backend`` picks the dispatch backend for the packed hot loop (a
    registry name or backend object, see :mod:`repro.engine.backends`);
    ``None`` resolves CLI > ``REPRO_BACKEND`` > default.  The schedule is
    identical whichever backend executes — only the speed differs.
    """
    alloc_mat = instance.validate_allocation_map(allocation)
    as_array = getattr(priority, "as_array", None)
    if as_array is not None:
        ci = instance.compiled()
        times_vec = np.fromiter(
            (instance.time(j, allocation[j]) for j in ci.order),
            dtype=np.float64,
            count=ci.n,
        )
        keys: object = as_array(instance, allocation, times_vec)
        durations: object = times_vec
    else:
        times = {j: instance.time(j, allocation[j]) for j in instance.jobs}
        keys = priority(instance, allocation, times)
        durations = times

    placements: dict[JobId, ScheduledJob] = {}

    if on_event is None:
        def on_start(j: JobId, start: float, duration: float) -> None:
            placements[j] = ScheduledJob(job_id=j, start=start, time=duration,
                                         alloc=allocation[j])

        on_complete = None
    else:
        def on_start(j: JobId, start: float, duration: float) -> None:
            placements[j] = ScheduledJob(job_id=j, start=start, time=duration,
                                         alloc=allocation[j])
            on_event("start", j, start, duration)

        def on_complete(j: JobId, now: float) -> None:
            on_event("finish", j, now, None)
            return None

    drive_priority_schedule(instance, allocation, keys, durations, on_start,
                            on_complete=on_complete, alloc_mat=alloc_mat,
                            backend=backend)

    if len(placements) != len(instance.jobs):  # pragma: no cover - invariant
        raise RuntimeError("deadlock: ready jobs cannot fit an empty platform")
    return Schedule(instance=instance, placements=placements)


class ScheduleLog(NamedTuple):
    """Array-native result of one list-scheduling run.

    The same schedule :func:`list_schedule` produces, kept as arrays: no
    per-job placement object or dict entry is materialized, so the cost
    per job does not grow with the resident working set — the form the
    million-job scaling benchmark measures, and the natural input for
    array-level analysis or export.  ``to_schedule`` materializes the
    classic object form when needed (identical event for event).
    """

    #: job ids by topological index (the compiled instance's order)
    order: "tuple"
    #: topological index of each started job, in dispatch order
    job_index: np.ndarray
    #: start time of each started job, in dispatch order
    start: np.ndarray
    #: execution time by topological index
    duration: np.ndarray
    makespan: float

    def to_schedule(self, instance: Instance, allocation) -> Schedule:
        """Materialize the classic placement-object :class:`Schedule`."""
        order = self.order
        dur = self.duration
        placements: dict[JobId, ScheduledJob] = {}
        for k, i in enumerate(self.job_index.tolist()):
            j = order[i]
            placements[j] = ScheduledJob(
                job_id=j, start=float(self.start[k]), time=float(dur[i]),
                alloc=allocation[j],
            )
        return Schedule(instance=instance, placements=placements)


def list_schedule_log(
    instance: Instance,
    allocation: Mapping[JobId, ResourceVector],
    priority: PriorityRule = fifo_priority,
    *,
    backend: "str | object | None" = None,
) -> ScheduleLog:
    """Algorithm 2 with array output: the start log instead of a Schedule.

    Event-for-event identical to :func:`list_schedule` (same engine, same
    discipline); the loop runs in start-log mode (``on_start=None``), so
    no python callback fires and no placement objects are built — the
    compiled backend emits the log natively.  Use this for large ``n``
    where materializing a million ``ScheduledJob`` records costs more
    than the scheduling itself.
    """
    alloc_mat = instance.validate_allocation_map(allocation)
    as_array = getattr(priority, "as_array", None)
    if as_array is not None:
        ci = instance.compiled()
        times_vec = np.fromiter(
            (instance.time(j, allocation[j]) for j in ci.order),
            dtype=np.float64,
            count=ci.n,
        )
        keys: object = as_array(instance, allocation, times_vec)
        durations: object = times_vec
    else:
        ci = instance.compiled()
        times = {j: instance.time(j, allocation[j]) for j in instance.jobs}
        keys = priority(instance, allocation, times)
        durations = times
        times_vec = np.fromiter(
            (times[j] for j in ci.order), dtype=np.float64, count=ci.n
        )

    loop = priority_loop(
        instance, allocation, keys, durations, None,
        alloc_mat=alloc_mat, backend=backend,
    )
    loop.run()
    out_i, out_t = loop.start_log()
    if out_i.size != len(instance.jobs):  # pragma: no cover - invariant
        raise RuntimeError("deadlock: ready jobs cannot fit an empty platform")
    return ScheduleLog(
        order=ci.order,
        job_index=out_i.copy(),
        start=out_t.copy(),
        duration=times_vec,
        makespan=float(loop.now),
    )


def portfolio_list_schedule(
    instance: Instance,
    allocation: Mapping[JobId, ResourceVector],
    rules: Mapping[str, PriorityRule] | None = None,
    backend: "str | object | None" = None,
) -> tuple[Schedule, str]:
    """Run Algorithm 2 under several priority rules, keep the best schedule.

    Every candidate inherits the approximation guarantee (the proofs hold
    for *any* queue order), so the portfolio can only improve the constant.
    Returns ``(schedule, winning_rule_name)``.

    Tie-breaking contract: **the first rule (in ``rules`` iteration order)
    wins ties** — a later rule replaces the incumbent only when its makespan
    is strictly better by more than the 1e-12 tolerance.  Downstream
    experiments key on the winner's name, so this is load-bearing and
    guarded by a regression test (``tests/test_list_scheduler.py``).
    """
    if rules is None:
        rules = {
            "bottom_level": bottom_level_priority,
            "fifo": fifo_priority,
            "lpt": lpt_priority,
            "random": random_priority(0),
        }
    if not rules:
        raise ValueError("portfolio needs at least one priority rule")
    best: tuple[float, Schedule, str] | None = None
    for name, rule in rules.items():
        sched = list_schedule(instance, allocation, rule, backend=backend)
        # strict improvement required: earlier rules keep ties
        if best is None or sched.makespan < best[0] - 1e-12:
            best = (sched.makespan, sched, name)
    assert best is not None
    return best[1], best[2]
