"""Alternative roundings of the fractional DTCT solution (ablation study).

Phase 1's deterministic ρ-quantile rounding (Lemma 3) is what the proofs
use, but other roundings of the same fractional solution are natural and
worth comparing empirically:

* :func:`randomized_rounding` — sample each job's candidate from its
  fractional distribution; in expectation both the time and the cost of
  every job equal their fractional values, so ``E[C] <= C_frac`` per path
  and ``E[A] = A_frac`` — but without the per-job worst-case guarantee;
  repeated trials keep the sample minimizing ``L(p')``.
* :func:`best_quantile_rounding` — sweep ρ over a grid and keep the rounded
  allocation minimizing ``L(p')`` (still inherits Lemma 3's guarantee for
  the *chosen* ρ, and can only improve on any single choice).

Both produce drop-in replacements for Step 2's output; the
``bench_ablation_rounding`` benchmark compares them end-to-end.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.core.dtct import FractionalSolution, round_fractional, solve_dtct_lp
from repro.instance.instance import Instance
from repro.jobs.profiles import ProfileEntry
from repro.resources.vector import ResourceVector
from repro.util.rng import ensure_rng

__all__ = ["randomized_rounding", "best_quantile_rounding"]

JobId = Hashable


def randomized_rounding(
    instance: Instance,
    table: Mapping[JobId, Sequence[ProfileEntry]],
    solution: FractionalSolution,
    *,
    trials: int = 16,
    seed: int | np.random.Generator | None = None,
) -> dict[JobId, ResourceVector]:
    """Sample candidates from the fractional distribution, keep the best trial.

    "Best" = smallest ``L(p') = max(A(p'), C(p'))``, the quantity the second
    phase's analysis consumes.  Deterministic for a fixed seed.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    rng = ensure_rng(seed)
    jobs = list(solution.fractions)
    best_alloc: dict[JobId, ResourceVector] | None = None
    best_l = float("inf")
    for _ in range(trials):
        alloc: dict[JobId, ResourceVector] = {}
        for j in jobs:
            x = solution.fractions[j]
            k = int(rng.choice(len(x), p=x / x.sum()))
            alloc[j] = table[j][k].alloc
        l = instance.lower_bound_functional(alloc)
        if l < best_l:
            best_l, best_alloc = l, alloc
    assert best_alloc is not None
    return best_alloc


def best_quantile_rounding(
    instance: Instance,
    table: Mapping[JobId, Sequence[ProfileEntry]],
    solution: FractionalSolution,
    *,
    rhos: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
) -> tuple[dict[JobId, ResourceVector], float]:
    """Quantile rounding swept over ρ; returns (allocation, chosen ρ).

    Each candidate allocation satisfies Lemma 3 for its own ρ, so the
    returned one satisfies it for the returned ρ.
    """
    if not rhos:
        raise ValueError("rhos must be non-empty")
    best: tuple[float, dict[JobId, ResourceVector], float] | None = None
    for rho in rhos:
        alloc = round_fractional(table, solution, rho)
        l = instance.lower_bound_functional(alloc)
        if best is None or l < best[0]:
            best = (l, alloc, rho)
    assert best is not None
    return best[1], best[2]


def compare_roundings(
    instance: Instance,
    *,
    rho: float,
    trials: int = 16,
    seed: int = 0,
) -> dict[str, float]:
    """Evaluate ``L(p')`` of the three roundings on one instance (ablation
    helper; returns the values keyed by rounding name)."""
    table = instance.candidate_table()
    solution = solve_dtct_lp(instance, table)
    quantile = round_fractional(table, solution, rho)
    randomized = randomized_rounding(instance, table, solution, trials=trials, seed=seed)
    swept, swept_rho = best_quantile_rounding(instance, table, solution)
    return {
        "lp_bound": solution.lower_bound,
        "quantile": instance.lower_bound_functional(quantile),
        "randomized": instance.lower_bound_functional(randomized),
        "best_quantile": instance.lower_bound_functional(swept),
        "best_quantile_rho": swept_rho,
    }
