"""FPTAS resource allocation for series-parallel graphs and trees (Lemma 7).

Adapted from Lepère, Trystram, Woeginger [26] to multiple resource types by
first applying the Eq. (2) dominance filter.  The scheme:

* guess a target ``X`` for the lower-bound functional ``L``;
* discretize average areas in units of ``εX/n`` and run a dynamic program
  over the SP decomposition tree computing, for every discretized area
  budget ``b``, the minimum achievable critical-path length ``F(b)``:

  - leaf (job): fastest candidate whose discretized area fits ``b``;
  - series composition: ``F(b) = min_{b1+b2=b} F_left(b1) + F_right(b2)``;
  - parallel composition: ``F(b) = min_{b1+b2=b} max(F_left(b1), F_right(b2))``;

* ``X`` is feasible when some budget ``b`` has ``F(b) <= X`` and
  ``b·unit <= (1+ε')X`` — any ``X >= L_min`` passes, because the optimal
  allocation's rounded-up area exceeds the true one by at most ``n`` units;
* binary search ``X`` down to relative precision ``ε'``.

With the internal ``ε' = ε/3`` both error sources compose to at most
``(1+ε'/1)(1+ε') <= 1+ε`` for ``ε <= 1``, i.e. the returned allocation
satisfies ``L(p') <= (1+ε)·L_min`` — Lemma 7's guarantee (restricted to the
enumerated candidate set).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.dag.sp import SPLeaf, SPNode, SPParallel, SPSeries
from repro.instance.instance import Instance
from repro.jobs.candidates import CandidateStrategy
from repro.jobs.profiles import ProfileEntry
from repro.resources.vector import ResourceVector

__all__ = ["SPAllocation", "sp_fptas_allocation"]

JobId = Hashable


@dataclass(frozen=True)
class SPAllocation:
    """FPTAS result: allocation with ``L(p') <= (1+ε)·L_min``."""

    allocation: dict[JobId, ResourceVector]
    l_value: float
    target: float
    epsilon: float


@dataclass
class _NodeDP:
    """DP table of one SP node: F over budgets, with reconstruction info."""

    f: np.ndarray           # min critical path per budget
    choice: np.ndarray      # leaf: candidate index; internal: left budget
    node: SPNode
    left: "_NodeDP | None" = None
    right: "_NodeDP | None" = None


def _leaf_dp(entries: Sequence[ProfileEntry], unit: float, bmax: int, node: SPLeaf) -> _NodeDP:
    f = np.full(bmax + 1, np.inf)
    choice = np.full(bmax + 1, -1, dtype=np.int32)
    # entries: time strictly increasing, area strictly decreasing, so the
    # discretized areas are non-increasing; for budget b the best (fastest)
    # feasible entry is the first whose discretized area fits.
    prev_da = bmax + 1
    for k, e in enumerate(entries):
        da = int(math.ceil(e.area / unit - 1e-12))
        if da >= prev_da:
            continue  # cannot improve any budget the previous entry covered
        hi = min(prev_da, bmax + 1)
        if da <= bmax and da < hi:
            f[da:hi] = e.time
            choice[da:hi] = k
        prev_da = da
        if da == 0:
            break
    return _NodeDP(f=f, choice=choice, node=node)


def _combine(left: _NodeDP, right: _NodeDP, node: SPNode, bmax: int, mode: str) -> _NodeDP:
    f = np.full(bmax + 1, np.inf)
    choice = np.full(bmax + 1, -1, dtype=np.int32)
    lf, rf = left.f, right.f
    for b1 in range(bmax + 1):
        v1 = lf[b1]
        if not np.isfinite(v1):
            continue
        seg = rf[: bmax + 1 - b1]
        cand = v1 + seg if mode == "series" else np.maximum(v1, seg)
        tgt = slice(b1, bmax + 1)
        better = cand < f[tgt]
        if better.any():
            f[tgt] = np.where(better, cand, f[tgt])
            choice[tgt] = np.where(better, b1, choice[tgt])
    return _NodeDP(f=f, choice=choice, node=node, left=left, right=right)


def _build_dp(
    node: SPNode,
    table: Mapping[JobId, Sequence[ProfileEntry]],
    unit: float,
    bmax: int,
) -> _NodeDP:
    if isinstance(node, SPLeaf):
        return _leaf_dp(table[node.job], unit, bmax, node)
    if isinstance(node, (SPSeries, SPParallel)):
        left = _build_dp(node.left, table, unit, bmax)
        right = _build_dp(node.right, table, unit, bmax)
        mode = "series" if isinstance(node, SPSeries) else "parallel"
        return _combine(left, right, node, bmax, mode)
    raise TypeError(f"unknown SP node {node!r}")


def _reconstruct(
    dp: _NodeDP,
    b: int,
    table: Mapping[JobId, Sequence[ProfileEntry]],
    out: dict[JobId, ResourceVector],
) -> None:
    if isinstance(dp.node, SPLeaf):
        k = int(dp.choice[b])
        if k < 0:  # pragma: no cover - guarded by feasibility check
            raise RuntimeError("reconstruction hit an infeasible budget")
        out[dp.node.job] = table[dp.node.job][k].alloc
        return
    b1 = int(dp.choice[b])
    if b1 < 0:  # pragma: no cover - guarded by feasibility check
        raise RuntimeError("reconstruction hit an infeasible budget")
    _reconstruct(dp.left, b1, table, out)
    _reconstruct(dp.right, b - b1, table, out)


def sp_fptas_allocation(
    instance: Instance,
    sp_tree: SPNode,
    epsilon: float = 0.3,
    strategy: CandidateStrategy | None = None,
) -> SPAllocation:
    """Compute an allocation with ``L(p') <= (1+ε)·L_min`` (Lemma 7).

    ``sp_tree`` must decompose exactly the instance's job set (its
    materialized constraints may be a superset of the DAG's — e.g. a tree's
    SP-tree implies the same schedules).
    """
    if epsilon <= 0 or epsilon > 1:
        raise ValueError(f"ε must lie in (0, 1], got {epsilon}")
    leaf_jobs = list(sp_tree.leaves())
    if set(leaf_jobs) != set(instance.jobs):
        raise ValueError("SP tree leaves must match the instance's job ids")

    table = instance.candidate_table(strategy)
    n = len(leaf_jobs)
    eps_in = epsilon / 3.0

    # bounds on L_min
    lo = max(
        max(table[j][0].time for j in leaf_jobs),       # some job runs at full tilt
        sum(table[j][-1].area for j in leaf_jobs),      # total area at minimum
    )
    alloc_fast = {j: table[j][0].alloc for j in leaf_jobs}
    hi = instance.lower_bound_functional(alloc_fast)
    hi = max(hi, lo)

    def solve_for(x: float) -> tuple[bool, float, int, _NodeDP]:
        unit = eps_in * x / n
        bmax = int(math.ceil((1.0 + eps_in) * x / unit)) + 1
        dp = _build_dp(sp_tree, table, unit, bmax)
        best_b, best_val = -1, np.inf
        for b in range(bmax + 1):
            if np.isfinite(dp.f[b]) and dp.f[b] <= x * (1 + 1e-12) and b * unit <= (1.0 + eps_in) * x * (1 + 1e-12):
                val = max(dp.f[b], b * unit)
                if val < best_val:
                    best_val, best_b = val, b
        return best_b >= 0, unit, best_b, dp

    # binary search on X (log scale); hi is always feasible
    feas_hi = solve_for(hi)
    if not feas_hi[0]:  # pragma: no cover - hi >= L_min is feasible by construction
        raise RuntimeError("FPTAS upper bound unexpectedly infeasible")
    best_x, best = hi, feas_hi
    lo_x = lo
    while hi / lo_x > 1.0 + eps_in:
        mid = math.sqrt(lo_x * hi)
        res = solve_for(mid)
        if res[0]:
            hi, best_x, best = mid, mid, res
        else:
            lo_x = mid

    _, unit, b, dp = best
    allocation: dict[JobId, ResourceVector] = {}
    _reconstruct(dp, b, table, allocation)
    return SPAllocation(
        allocation=allocation,
        l_value=instance.lower_bound_functional(allocation),
        target=best_x,
        epsilon=epsilon,
    )
