"""The named-benchmark registry: one front door for every benchmark.

Mirrors :mod:`repro.registry` (the scheduler registry) so the CLI, CI and
the pytest wrappers under ``benchmarks/`` all resolve benchmarks the same
way — "give me benchmark *name* and run it under this config" — without
hard-coding imports of every suite module.  A suite module registers its
benchmark::

    from repro.bench.registry import register_benchmark

    @register_benchmark("engine", kind="engine")
    def engine_benchmark(config: BenchConfig) -> BenchPlan:
        ...

and callers resolve it::

    from repro.bench.registry import get_benchmark

    plan = get_benchmark("engine").build(BenchConfig(quick=True))

Every registered factory takes a :class:`repro.bench.core.BenchConfig`
and returns a :class:`repro.bench.core.BenchPlan`.  Registration is
import-driven; :func:`_load_builtin_benchmarks` lazily imports
:mod:`repro.bench.suites`, which defines the built-in specs (one per
``benchmarks/bench_*.py`` wrapper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.bench.core import BenchConfig, BenchPlan

__all__ = [
    "BenchmarkSpec",
    "register_benchmark",
    "get_benchmark",
    "available_benchmarks",
    "benchmark_specs",
]

#: ``kind`` buckets benchmarks the way the scheduler registry buckets
#: schedulers: ``"engine"`` (throughput of the dispatch core), ``"paper"``
#: (regenerates a displayed result), ``"ablation"`` and ``"extension"``.
_VALID_KINDS = ("engine", "paper", "ablation", "extension")


@dataclass(frozen=True)
class BenchmarkSpec:
    """Registry entry: the plan factory plus the metadata the CLI lists."""

    name: str
    factory: Callable[[BenchConfig], BenchPlan]
    kind: str
    description: str = ""

    def build(self, config: BenchConfig | None = None) -> BenchPlan:
        """Expand the benchmark into its cases under ``config``."""
        return self.factory(config if config is not None else BenchConfig())


_REGISTRY: dict[str, BenchmarkSpec] = {}


def register_benchmark(
    name: str,
    *,
    kind: str = "paper",
    description: str | None = None,
) -> Callable[[Callable[[BenchConfig], BenchPlan]], Callable[[BenchConfig], BenchPlan]]:
    """Decorator adding a benchmark factory to the registry.

    The name must be unique; ``description`` defaults to the factory's
    first docstring line.
    """
    if kind not in _VALID_KINDS:
        raise ValueError(f"kind must be one of {_VALID_KINDS}, got {kind!r}")

    def deco(fn: Callable[[BenchConfig], BenchPlan]) -> Callable[[BenchConfig], BenchPlan]:
        if name in _REGISTRY:
            raise ValueError(f"benchmark {name!r} is already registered")
        desc = description
        if desc is None:
            desc = (fn.__doc__ or "").strip().splitlines()[0] if fn.__doc__ else ""
        _REGISTRY[name] = BenchmarkSpec(name=name, factory=fn, kind=kind, description=desc)
        return fn

    return deco


def _load_builtin_benchmarks() -> None:
    """Import the suite package that registers the built-in benchmarks."""
    import repro.bench.suites  # noqa: F401


def get_benchmark(name: str) -> BenchmarkSpec:
    """Resolve a registered benchmark by name.

    Raises ``KeyError`` listing the registered names when unknown.
    """
    _load_builtin_benchmarks()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from None


def available_benchmarks(*, kind: str | None = None) -> list[str]:
    """Registered benchmark names (registration order), optionally filtered."""
    return [s.name for s in benchmark_specs(kind=kind)]


def benchmark_specs(*, kind: str | None = None) -> Iterator[BenchmarkSpec]:
    """Iterate registry entries (registration order), optionally filtered."""
    _load_builtin_benchmarks()
    return iter([s for s in _REGISTRY.values() if kind is None or s.kind == kind])
