"""Benchmark case model and the shared timing discipline.

A *benchmark* (one registered spec, see :mod:`repro.bench.registry`)
expands into a :class:`BenchPlan`: a list of :class:`BenchCase` bodies to
time plus optional cross-case hooks.  The runner owns everything the old
``benchmarks/bench_*.py`` scripts hand-rolled:

* **timing** — each case body runs ``warmup`` untimed rounds, then
  ``repeats`` timed rounds; the recorded figure is the **median** (all
  rounds are kept in the emitted JSON so the spread stays visible);
* **metrics** — a case may derive metrics (jobs/s, ratios) from its
  return value and median seconds;
* **rows** — a case may emit paper-style result rows (list of dicts);
  they land in the JSON document and every text table is rendered from
  them (:func:`repro.bench.schema.render_text`), so tables and JSON can
  never disagree;
* **checks** — the shape assertions the old scripts made are recorded as
  named pass/fail checks instead of bare ``assert``s, with access to the
  in-memory case values (for e.g. event-for-event schedule equality);
* **derived** — benchmark-level metrics computed across cases (e.g. the
  compiled-vs-reference speedup the CI gate watches).

Everything is deterministic in the configured seed except wall-clock
timings, which is exactly the split :mod:`repro.bench.compare` gates on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from statistics import median
from typing import Any, Callable, Iterable, Mapping, Sequence

__all__ = [
    "BenchCase",
    "BenchConfig",
    "BenchPlan",
    "CaseResult",
    "CheckResult",
    "Checker",
    "Gate",
    "Table",
    "jobs_per_sec",
    "run_plan",
    "table_from_cases",
]


@dataclass(frozen=True)
class BenchConfig:
    """Knobs every benchmark factory receives.

    ``quick`` selects the reduced CI configuration (smaller workloads,
    throughput gates relaxed); ``seed`` offsets every workload seed so a
    sweep can be replayed on fresh instances; ``backend`` names the
    dispatch backend the engine suites run under (resolved by the CLI,
    recorded in the document so baselines never compare across
    backends).
    """

    quick: bool = False
    seed: int = 0
    backend: str = "python"


@dataclass(frozen=True)
class BenchCase:
    """One timed body: ``fn()`` returns a value used by metrics/rows/checks."""

    name: str
    fn: Callable[[], Any]
    #: timed rounds; the recorded ``seconds`` is their median
    repeats: int = 1
    #: untimed rounds before the clock starts
    warmup: int = 0
    #: ``metrics(value, median_seconds) -> {name: float}``
    metrics: Callable[[Any, float], Mapping[str, float]] | None = None
    #: ``rows(value) -> [{...}, ...]`` — paper-style result rows
    rows: Callable[[Any], Sequence[Mapping[str, Any]]] | None = None


@dataclass
class CaseResult:
    """A timed case: the serializable record plus the in-memory value."""

    name: str
    seconds: float
    seconds_all: list[float]
    repeats: int
    warmup: int
    metrics: dict[str, float]
    rows: list[dict[str, Any]] | None
    #: the case body's return value — available to checks/derived hooks,
    #: never serialized
    value: Any = None

    def to_record(self) -> dict[str, Any]:
        """The JSON-facing view (drops ``value``)."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "seconds_all": list(self.seconds_all),
            "repeats": self.repeats,
            "warmup": self.warmup,
            "metrics": dict(self.metrics),
            "rows": None if self.rows is None else [dict(r) for r in self.rows],
        }


@dataclass(frozen=True)
class CheckResult:
    """One recorded shape assertion."""

    name: str
    ok: bool
    detail: str = ""

    def to_record(self) -> dict[str, Any]:
        return {"name": self.name, "ok": self.ok, "detail": self.detail}


@dataclass(frozen=True)
class Gate:
    """A metric :mod:`repro.bench.compare` is allowed to *fail* on.

    Only gated metrics drive the regression exit code — everything else in
    the document is compared informationally.  Gates therefore name
    machine-relative or deterministic quantities (speedup ratios, schedule
    quality), never absolute wall-clock, which would trip on any hardware
    change.  ``direction`` says which way is better; ``max_regression`` is
    the tolerated fractional move the wrong way (0.30 = fail past 30%).
    """

    metric: str
    direction: str = "higher"
    max_regression: float = 0.30
    #: ``None`` gates a benchmark-level ``derived`` metric; a case name
    #: gates that case's metric
    case: str | None = None

    def __post_init__(self) -> None:
        if self.direction not in ("higher", "lower"):
            raise ValueError(f"direction must be 'higher' or 'lower', got {self.direction!r}")
        if not 0.0 <= self.max_regression:
            raise ValueError("max_regression must be >= 0")

    @property
    def key(self) -> str:
        """Display key: ``derived:<metric>`` or ``case:<case>:<metric>``."""
        if self.case is None:
            return f"derived:{self.metric}"
        return f"case:{self.case}:{self.metric}"

    def to_record(self) -> dict[str, Any]:
        return {
            "metric": self.metric,
            "case": self.case,
            "direction": self.direction,
            "max_regression": self.max_regression,
        }


@dataclass
class Table:
    """One rendered result table, stored in the JSON document.

    ``benchmarks/results/<name>.txt`` is *rendered from this record*
    (:func:`repro.bench.schema.render_table`), so the text artifact and the
    JSON can never disagree.  ``columns`` maps row keys to header labels
    (defaults to the keys of the first row); ``preamble``/``footer`` carry
    the prose some benchmarks wrap around the grid (Table 1's summary,
    the Theorem 6 footnote).
    """

    name: str
    title: str
    rows: list[dict[str, Any]]
    columns: Sequence[tuple[str, str]] | None = None
    precision: int = 3
    preamble: str = ""
    footer: str = ""

    def to_record(self) -> dict[str, Any]:
        cols = self.columns
        if cols is None:
            cols = [(k, k) for k in (self.rows[0] if self.rows else {})]
        return {
            "name": self.name,
            "title": self.title,
            "columns": [[k, label] for k, label in cols],
            "rows": [dict(r) for r in self.rows],
            "precision": self.precision,
            "preamble": self.preamble,
            "footer": self.footer,
        }


@dataclass
class BenchPlan:
    """What a benchmark factory returns: cases plus cross-case hooks."""

    cases: list[BenchCase]
    #: ``checks(by_name) -> iterable of CheckResult`` where ``by_name`` maps
    #: case name -> CaseResult (values included)
    checks: Callable[[dict[str, CaseResult]], Iterable[CheckResult]] | None = None
    #: ``derived(by_name) -> {metric: float}`` — benchmark-level metrics
    derived: Callable[[dict[str, CaseResult]], Mapping[str, float]] | None = None
    #: ``tables(by_name) -> iterable of Table`` — the result tables this
    #: benchmark emits (see :func:`table_from_cases` for the common shape)
    tables: Callable[[dict[str, CaseResult]], Iterable[Table]] | None = None
    #: the metrics ``--compare`` may fail on (see :class:`Gate`)
    gates: Sequence[Gate] = ()


@dataclass
class Checker:
    """Collects :class:`CheckResult`s; ``check()`` is a recorded assert."""

    results: list[CheckResult] = field(default_factory=list)

    def check(self, name: str, ok: bool, detail: str = "") -> bool:
        self.results.append(CheckResult(name=name, ok=bool(ok), detail=detail))
        return bool(ok)


def jobs_per_sec(n: int) -> Callable[[Any, float], Mapping[str, float]]:
    """The standard throughput metric hook for an ``n``-job workload."""

    def metrics(value: Any, seconds: float) -> Mapping[str, float]:
        return {"jobs_per_sec": n / seconds}

    return metrics


def table_from_cases(
    name: str,
    title: str,
    *,
    precision: int = 3,
    preamble: str = "",
    footer: str = "",
    columns: Sequence[tuple[str, str]] | None = None,
) -> Callable[[dict[str, CaseResult]], Iterable[Table]]:
    """A ``tables`` hook concatenating every case's rows into one table.

    The common single-table shape: the sweep case(s) emit paper-style rows
    and the table is just their concatenation in case order.
    """

    def tables(by_name: dict[str, CaseResult]) -> Iterable[Table]:
        rows: list[dict[str, Any]] = []
        for result in by_name.values():
            if result.rows:
                rows.extend(result.rows)
        return [
            Table(
                name=name,
                title=title,
                rows=rows,
                columns=columns,
                precision=precision,
                preamble=preamble,
                footer=footer,
            )
        ]

    return tables


def time_case(case: BenchCase) -> CaseResult:
    """Run one case under the shared warmup/repeat/median discipline."""
    for _ in range(case.warmup):
        case.fn()
    times: list[float] = []
    value: Any = None
    for _ in range(max(1, case.repeats)):
        t0 = time.perf_counter()
        value = case.fn()
        times.append(time.perf_counter() - t0)
    seconds = float(median(times))
    metrics = dict(case.metrics(value, seconds)) if case.metrics is not None else {}
    rows = None
    if case.rows is not None:
        rows = [dict(r) for r in case.rows(value)]
    return CaseResult(
        name=case.name,
        seconds=seconds,
        seconds_all=[float(t) for t in times],
        repeats=max(1, case.repeats),
        warmup=case.warmup,
        metrics=metrics,
        rows=rows,
        value=value,
    )


def run_plan(plan: BenchPlan) -> tuple[dict[str, CaseResult], list[CheckResult], dict[str, float]]:
    """Time every case in order, then evaluate checks and derived metrics.

    Case names must be unique within a plan (they key the compare step).
    """
    by_name: dict[str, CaseResult] = {}
    for case in plan.cases:
        if case.name in by_name:
            raise ValueError(f"duplicate case name {case.name!r} in plan")
        by_name[case.name] = time_case(case)
    checks = list(plan.checks(by_name)) if plan.checks is not None else []
    derived = dict(plan.derived(by_name)) if plan.derived is not None else {}
    return by_name, checks, derived
