"""The shared benchmark driver: expand, time, record.

One front door for the CLI, CI and the pytest wrappers under
``benchmarks/``::

    from repro.bench.core import BenchConfig
    from repro.bench.runner import run_benchmarks

    records = run_benchmarks(["engine", "scaling"], BenchConfig(quick=True))
    doc = build_document(config, records)

:func:`run_spec` owns what every old script hand-rolled: plan expansion
under the config, warmup/repeat/median timing per case, check and derived
evaluation, and serialization to the schema record.  :func:`run_benchmarks`
fans whole benchmarks out over a process pool via
:func:`repro.experiments.parallel.map_parallel` — the unit is one
registered benchmark (its cases share built workloads and its checks need
the in-memory case values), order is preserved, and ``workers=1`` (the
default, and what CI uses) keeps timings contention-free.
"""

from __future__ import annotations

import time
from typing import Any

from repro.bench.core import BenchConfig, run_plan
from repro.bench.registry import BenchmarkSpec, get_benchmark
from repro.experiments.parallel import map_parallel

__all__ = ["failed_checks", "run_benchmarks", "run_spec"]


def run_spec(spec: BenchmarkSpec, config: BenchConfig | None = None) -> dict[str, Any]:
    """Run one benchmark end to end; returns its schema record."""
    config = config if config is not None else BenchConfig()
    t0 = time.perf_counter()
    plan = spec.build(config)
    by_name, checks, derived = run_plan(plan)
    tables = list(plan.tables(by_name)) if plan.tables is not None else []
    seconds_total = time.perf_counter() - t0
    return {
        "name": spec.name,
        "kind": spec.kind,
        "description": spec.description,
        "seconds_total": seconds_total,
        "cases": [result.to_record() for result in by_name.values()],
        "checks": [check.to_record() for check in checks],
        "derived": derived,
        "gates": [gate.to_record() for gate in plan.gates],
        "tables": [table.to_record() for table in tables],
    }


def _run_benchmark_job(job: tuple[str, BenchConfig]) -> dict[str, Any]:
    """Module-level worker body (must be picklable for the process pool)."""
    name, config = job
    return run_spec(get_benchmark(name), config)


def run_benchmarks(
    names: list[str],
    config: BenchConfig | None = None,
    *,
    workers: int | None = 1,
    progress=None,
) -> list[dict[str, Any]]:
    """Run the named benchmarks, optionally over a process pool.

    ``workers=1`` (default) runs serially in-process and calls
    ``progress(i, total, name)`` before each benchmark; ``workers>1`` or
    ``None`` (auto) trades timing fidelity for wall-clock by fanning the
    benchmarks out with :func:`map_parallel`.
    """
    config = config if config is not None else BenchConfig()
    for name in names:
        get_benchmark(name)  # fail fast on unknown names, before any timing
    if workers == 1:
        records = []
        for i, name in enumerate(names):
            if progress is not None:
                progress(i, len(names), name)
            records.append(run_spec(get_benchmark(name), config))
        return records
    return map_parallel(_run_benchmark_job, [(n, config) for n in names], workers=workers)


def failed_checks(records: list[dict[str, Any]]) -> list[tuple[str, dict[str, Any]]]:
    """Every failed check across the run, as (benchmark, check) pairs."""
    return [
        (record["name"], check)
        for record in records
        for check in record["checks"]
        if not check["ok"]
    ]
