"""Deterministic workload construction shared by the benchmark suites.

The old ``benchmarks/bench_*.py`` scripts each hand-rolled instance
building; the two recipes they actually used live here, both seeded and
reproducible bit-for-bit:

* :func:`rigid_layered` — rigid jobs (one fixed candidate per job) on a
  layered random DAG.  This is the engine-throughput workload: no
  candidate enumeration, so the timed loop is the dispatch core itself.
* :func:`family_instance` — a named workload family from
  :data:`repro.experiments.workloads.WORKLOAD_FAMILIES`, i.e. exactly the
  builders the conformance fuzzer sweeps
  (:func:`repro.conformance.fuzz.build_case_instance` uses the same
  path), optionally with Poisson release times.

Both are pure functions of their arguments — the determinism the
``--compare`` split relies on (workloads and schedules reproduce exactly;
only wall-clock varies between runs).
"""

from __future__ import annotations

import numpy as np

from repro.dag.generators import layered_random
from repro.experiments.workloads import WORKLOAD_FAMILIES, random_instance
from repro.instance.instance import Instance, make_instance, with_poisson_arrivals
from repro.resources.pool import ResourcePool
from repro.resources.vector import ResourceVector

__all__ = ["WORKLOAD_FAMILIES", "family_instance", "rigid_layered"]


def rigid_layered(
    layers: int,
    width: int,
    *,
    d: int = 4,
    capacity: int = 24,
    seed: int = 0,
    edge_prob: float | None = None,
) -> tuple[Instance, dict]:
    """Rigid jobs on a ``layers x width`` layered DAG.

    Demands are uniform in ``[1, 8]`` per type, durations in
    ``[0.5, 4.0]``.  ``edge_prob=None`` keeps the expected in-degree ~8
    regardless of width (edge count linear in n — the large-n scaling
    recipe); pass an explicit probability for a fixed-density graph (the
    engine race uses 0.15).  Returns ``(instance, allocation_map)``.
    """
    rng = np.random.default_rng(seed)
    p = min(0.5, 8.0 / width) if edge_prob is None else edge_prob
    dag = layered_random(layers, width, p=p, seed=rng)
    order = dag.topological_order()
    allocs = {j: ResourceVector(rng.integers(1, 9, size=d)) for j in order}
    durations = {j: float(rng.uniform(0.5, 4.0)) for j in order}
    pool = ResourcePool.uniform(d, capacity)

    def factory(j):
        t = durations[j]
        return lambda a: t

    inst = make_instance(dag, pool, factory, candidates_factory=lambda j: (allocs[j],))
    return inst, dict(allocs)


def family_instance(
    family: str,
    n: int,
    *,
    d: int,
    capacity: int,
    seed: int = 0,
    arrival_rate: float | None = None,
) -> Instance:
    """One instance of a named workload family (the fuzzer's builders)."""
    if family not in WORKLOAD_FAMILIES:
        raise KeyError(
            f"unknown family {family!r}; available: {', '.join(WORKLOAD_FAMILIES)}"
        )
    pool = ResourcePool.uniform(d, capacity)
    inst = random_instance(family, n, pool, seed=seed).instance
    if arrival_rate is not None:
        inst = with_poisson_arrivals(inst, arrival_rate, seed=seed)
    return inst
