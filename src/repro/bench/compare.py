"""Diff two benchmark documents: the regression gate behind ``--compare``.

Two kinds of entries come out of a comparison:

* **gated deltas** — metrics a benchmark explicitly declared as
  :class:`repro.bench.core.Gate`\\ s: machine-relative ratios (the
  compiled-vs-reference speedup) or deterministic schedule-quality
  numbers.  A gated metric that moves the wrong way by more than the
  gate's ``max_regression`` is a **regression** and fails the run; one
  that moves the right way by the same margin is an **improvement**;
  anything else is **ok**.
* **informational deltas** — every case's wall-clock and every shared
  non-gated metric.  Reported (so the perf trajectory stays visible in
  CI logs) but never failing: absolute timings move with the hardware.

Gates come from the *current* document — they are the code's contract,
so a PR that adds a gate starts enforcing it immediately and a PR that
retires one stops.  Benchmarks present on only one side are listed as
``new``/``missing``, never failed: the committed baseline is regenerated
whenever the benchmark set changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "CompareReport",
    "Delta",
    "compare_documents",
]

#: informational deltas smaller than this are elided from the summary
_NOISE_FLOOR = 0.02


@dataclass(frozen=True)
class Delta:
    """One compared metric."""

    benchmark: str
    key: str  #: ``derived:<metric>``, ``case:<case>:<metric>`` or ``case:<case>:seconds``
    baseline: float
    current: float
    #: "regression" | "improvement" | "ok" for gated metrics; "info" otherwise
    status: str
    direction: str = "higher"
    max_regression: float | None = None

    @property
    def change(self) -> float:
        """Signed fractional change, positive = metric went up."""
        if self.baseline == 0:
            return float("inf") if self.current > 0 else 0.0
        return self.current / self.baseline - 1.0

    def describe(self) -> str:
        arrow = "+" if self.change >= 0 else ""
        gate = (
            f" (gate: {self.direction} is better, fail past {self.max_regression:.0%})"
            if self.max_regression is not None
            else ""
        )
        return (
            f"{self.benchmark} {self.key}: {self.baseline:.6g} -> {self.current:.6g} "
            f"({arrow}{self.change:.1%}){gate}"
        )


@dataclass
class CompareReport:
    """Everything ``--compare`` found; ``ok`` drives the exit code."""

    gated: list[Delta] = field(default_factory=list)
    info: list[Delta] = field(default_factory=list)
    new_benchmarks: list[str] = field(default_factory=list)
    missing_benchmarks: list[str] = field(default_factory=list)
    #: set when the two documents were produced under different configs
    #: (quick vs full, or different seeds) — gated metrics then compare
    #: different workloads; the CLI refuses such baselines outright
    config_mismatch: str | None = None

    @property
    def regressions(self) -> list[Delta]:
        return [d for d in self.gated if d.status == "regression"]

    @property
    def improvements(self) -> list[Delta]:
        return [d for d in self.gated if d.status == "improvement"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        lines = [
            f"compare: {len(self.gated)} gated metric(s), "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s)"
        ]
        if self.config_mismatch:
            lines.append(f"  WARNING: {self.config_mismatch}")
        for d in self.gated:
            lines.append(f"  [{d.status.upper()}] {d.describe()}")
        noisy = [d for d in self.info if abs(d.change) >= _NOISE_FLOOR]
        if noisy:
            lines.append(f"  informational (never gated, +-{_NOISE_FLOOR:.0%} floor):")
            for d in sorted(noisy, key=lambda d: -abs(d.change)):
                lines.append(f"    {d.describe()}")
        if self.new_benchmarks:
            lines.append(f"  new benchmarks (not in baseline): {', '.join(self.new_benchmarks)}")
        if self.missing_benchmarks:
            lines.append(
                f"  missing benchmarks (baseline only): {', '.join(self.missing_benchmarks)}"
            )
        return "\n".join(lines)


def _classify(current: float, baseline: float, direction: str, tolerance: float) -> str:
    if baseline == 0:
        return "ok"
    change = current / baseline - 1.0
    worse = -change if direction == "higher" else change
    if worse > tolerance:
        return "regression"
    if -worse > tolerance:
        return "improvement"
    return "ok"


def _resolve(record: Mapping[str, Any], gate: Mapping[str, Any]) -> float | None:
    if gate["case"] is None:
        return record["derived"].get(gate["metric"])
    for case in record["cases"]:
        if case["name"] == gate["case"]:
            return case["metrics"].get(gate["metric"])
    return None


def _gate_key(gate: Mapping[str, Any]) -> str:
    if gate["case"] is None:
        return f"derived:{gate['metric']}"
    return f"case:{gate['case']}:{gate['metric']}"


def compare_documents(
    current: Mapping[str, Any], baseline: Mapping[str, Any]
) -> CompareReport:
    """Compare ``current`` against ``baseline`` (both validated documents)."""
    report = CompareReport()
    if current["config"] != baseline["config"]:
        report.config_mismatch = (
            f"config mismatch: current {current['config']} vs baseline "
            f"{baseline['config']} — gated metrics compare different workloads"
        )
    base_by_name = {r["name"]: r for r in baseline["benchmarks"]}
    cur_names = set()

    for record in current["benchmarks"]:
        name = record["name"]
        cur_names.add(name)
        base = base_by_name.get(name)
        if base is None:
            report.new_benchmarks.append(name)
            continue

        gated_keys = set()
        for gate in record["gates"]:
            cur_value = _resolve(record, gate)
            base_value = _resolve(base, gate)
            if cur_value is None or base_value is None:
                # a gate the baseline predates: informational until the
                # baseline is regenerated
                continue
            gated_keys.add(_gate_key(gate))
            report.gated.append(
                Delta(
                    benchmark=name,
                    key=_gate_key(gate),
                    baseline=float(base_value),
                    current=float(cur_value),
                    status=_classify(
                        float(cur_value),
                        float(base_value),
                        gate["direction"],
                        float(gate["max_regression"]),
                    ),
                    direction=gate["direction"],
                    max_regression=float(gate["max_regression"]),
                )
            )

        # informational: wall-clock per case plus shared non-gated metrics
        base_cases = {c["name"]: c for c in base["cases"]}
        for case in record["cases"]:
            bcase = base_cases.get(case["name"])
            if bcase is None:
                continue
            report.info.append(
                Delta(
                    benchmark=name,
                    key=f"case:{case['name']}:seconds",
                    baseline=float(bcase["seconds"]),
                    current=float(case["seconds"]),
                    status="info",
                    direction="lower",
                )
            )
            for metric, value in case["metrics"].items():
                key = f"case:{case['name']}:{metric}"
                if key in gated_keys or metric not in bcase["metrics"]:
                    continue
                report.info.append(
                    Delta(
                        benchmark=name,
                        key=key,
                        baseline=float(bcase["metrics"][metric]),
                        current=float(value),
                        status="info",
                    )
                )
        for metric, value in record["derived"].items():
            key = f"derived:{metric}"
            if key in gated_keys or metric not in base["derived"]:
                continue
            report.info.append(
                Delta(
                    benchmark=name,
                    key=key,
                    baseline=float(base["derived"][metric]),
                    current=float(value),
                    status="info",
                )
            )

    report.missing_benchmarks = [n for n in base_by_name if n not in cur_names]
    return report
