"""Extension benchmarks: beyond the paper's displayed results.

Ported from ``bench_extended.py`` (capacity precondition, FPTAS epsilon,
candidate strategies — each its own spec, matching its own result table)
and ``bench_malleable.py`` (the He et al. malleable relaxation).
"""

from __future__ import annotations

from statistics import mean

from repro.bench.core import (
    BenchCase,
    BenchConfig,
    BenchPlan,
    Checker,
    table_from_cases,
)
from repro.bench.registry import register_benchmark


@register_benchmark(
    "capacity_sweep",
    kind="extension",
    description="Capacity precondition: where P_min >= 1/mu^2 starts to hold",
)
def capacity_benchmark(config: BenchConfig) -> BenchPlan:
    """Ratio vs platform capacity around the precondition threshold (d=2)."""
    from repro.experiments.extended import capacity_sweep

    def checks(by_name):
        c = Checker()
        rows = by_name["sweep"].value
        c.check(
            "bound_holds_under_precondition",
            all(
                r["max_ratio"] <= r["proven"] + 1e-9
                for r in rows
                if r["pmin_precondition"]
            ),
            "the proven bound must hold whenever the precondition holds",
        )
        c.check("ratios_at_least_one", all(r["mean_ratio"] >= 1.0 - 1e-9 for r in rows))
        return c.results

    return BenchPlan(
        cases=[
            BenchCase(
                name="sweep",
                fn=lambda: capacity_sweep(
                    d=2, capacities=(2, 4, 7, 16, 32), n=20, seeds=(0, 1)
                ),
                rows=lambda rows: rows,
            )
        ],
        checks=checks,
        tables=table_from_cases(
            "capacity_sweep",
            "Capacity sweep: P_min >= 1/mu^2 ~ 7 precondition (d=2)",
        ),
    )


@register_benchmark(
    "epsilon_sweep",
    kind="extension",
    description="FPTAS epsilon: solution quality vs runtime on SP workloads",
)
def epsilon_benchmark(config: BenchConfig) -> BenchPlan:
    """Tighter epsilon must never end worse and must cost more time."""
    from repro.experiments.extended import epsilon_sweep

    def checks(by_name):
        c = Checker()
        rows = by_name["sweep"].value
        vals = [r["l_over_lp"] for r in rows]
        c.check(
            "tightest_at_least_as_good",
            vals[-1] <= vals[0] + 1e-9,
            "the tightest epsilon must match or beat the loosest",
        )
        c.check("above_lp", all(r["l_over_lp"] >= 1.0 - 1e-6 for r in rows))
        runtimes = [r["mean_seconds"] for r in rows]
        c.check(
            "cost_grows_with_tightness",
            runtimes[-1] >= runtimes[0],
            "DP budget levels scale with n/epsilon",
        )
        return c.results

    return BenchPlan(
        cases=[
            BenchCase(
                name="sweep",
                fn=lambda: epsilon_sweep(epsilons=(1.0, 0.5, 0.25), n=12, seeds=(0, 1)),
                rows=lambda rows: rows,
            )
        ],
        checks=checks,
        tables=table_from_cases(
            "epsilon_sweep",
            "FPTAS epsilon sweep (SP workloads): quality vs runtime",
            precision=4,
        ),
    )


@register_benchmark(
    "strategy_sweep",
    kind="extension",
    description="Candidate strategies: schedule quality vs LP size",
)
def strategy_benchmark(config: BenchConfig) -> BenchPlan:
    """Geometric grid vs full frontier: bounded quality loss, much smaller LP."""
    from repro.experiments.extended import strategy_sweep

    def checks(by_name):
        c = Checker()
        by_strategy = {r["strategy"]: r for r in by_name["sweep"].value}
        c.check(
            "geometric_quality_bounded",
            by_strategy["geometric"]["mean_makespan"]
            <= by_strategy["full"]["mean_makespan"] * 1.2,
            "geometric loses at most 20% quality vs the full frontier",
        )
        c.check(
            "geometric_smaller_lp",
            by_strategy["geometric"]["mean_frontier_size"]
            <= by_strategy["full"]["mean_frontier_size"],
        )
        return c.results

    return BenchPlan(
        cases=[
            BenchCase(
                name="sweep",
                fn=lambda: strategy_sweep(d=2, capacity=16, n=16, seeds=(0, 1, 2)),
                rows=lambda rows: rows,
            )
        ],
        checks=checks,
        tables=table_from_cases(
            "strategy_sweep", "Candidate strategy sweep: quality vs LP size", precision=4
        ),
    )


@register_benchmark(
    "malleable",
    kind="extension",
    description="Moldable (ours) vs the malleable relaxation (He et al. [21])",
)
def malleable_benchmark(config: BenchConfig) -> BenchPlan:
    """What the moldable restriction costs against per-step reshaping."""
    from repro.core.two_phase import MoldableScheduler
    from repro.experiments.workloads import random_instance
    from repro.malleable import malleable_list_schedule, moldable_to_malleable
    from repro.resources.pool import ResourcePool

    seeds = (0, 1, 2, 3)

    def run():
        pool = ResourcePool.uniform(2, 8)
        rows = []
        for seed in seeds:
            wl = random_instance("layered", 16, pool, seed=seed, work_range=(1.0, 20.0))
            mold = MoldableScheduler(allocator="lp").schedule(wl.instance)
            mold.schedule.validate()
            mall_inst = moldable_to_malleable(wl.instance)
            mall = malleable_list_schedule(mall_inst)
            mall.validate()
            lb = mall_inst.lower_bound()
            rows.append(
                {
                    "seed": seed,
                    "moldable_makespan": mold.makespan,
                    "malleable_makespan": mall.makespan,
                    "malleable_lb": lb,
                    "malleable_ratio": mall.makespan / lb,
                    "d_plus_1": mall_inst.d + 1,
                }
            )
        return rows

    def checks(by_name):
        c = Checker()
        rows = by_name["sweep"].value
        c.check(
            "he_guarantee_holds",
            all(r["malleable_ratio"] <= r["d_plus_1"] + 1e-9 for r in rows),
            "He et al.'s (d+1) guarantee on the malleable schedule",
        )
        c.check(
            "relaxation_competitive",
            mean(r["malleable_makespan"] for r in rows)
            <= mean(r["moldable_makespan"] for r in rows) * 1.5,
        )
        return c.results

    return BenchPlan(
        cases=[BenchCase(name="sweep", fn=run, rows=lambda rows: rows)],
        checks=checks,
        tables=table_from_cases(
            "malleable", "Moldable (ours) vs malleable relaxation (He et al. [21])"
        ),
    )
