"""Service recovery benchmark: crash-restart cost of the durable session.

The open-loop Poisson client of the ``service`` benchmark drives a
*durable* :class:`~repro.service.journal.JournaledSession` (write-ahead
journal + periodic snapshots, ``fsync=False`` — what is measured is the
journal/replay machinery, not the disk) and is killed ~60% of the way
through the stream, right after a journaled chunk, leaving a snapshot
plus a journal suffix on disk — the artifact set a supervised
``repro serve`` worker restarts from.  Three timed drivers then complete
the same workload:

``rerun:scratch``
    the no-durability baseline: a plain session replays the entire
    stream from zero — what a crash costs without a journal;
``recover:replay``
    restore the snapshot, replay the journal suffix, and finish the
    remaining ~40% of the stream (the supervised-restart path; the
    recovered RNG cursor continues the client's arrival draws exactly);
``durable:open_loop``
    the full stream through the journaled session, no crash — the
    steady-state overhead of write-ahead journaling itself.

Every driver's final schedule is asserted identical event for event to
the plain uninterrupted run and strict-validated before timing counts.

Gated metrics, both machine-relative: ``recovery_vs_rerun`` — recovery
time as a fraction of rerunning from scratch (*lower* is better; replay
loads the snapshot instead of re-scheduling the completed prefix) — and
``durable_vs_plain`` — the journaled stream's slowdown over the plain
session (lower is better; dominated not by the journal appends, one
JSON line per chunk verb, but by the full session snapshot + rotation
every ``CHECKPOINT_EVERY`` records that bounds the journal's length).
Absolute recovery jobs/s is reported informationally.
"""

from __future__ import annotations

import os
import tempfile

from repro.bench.core import BenchCase, BenchConfig, BenchPlan, Checker, Gate, Table
from repro.bench.registry import register_benchmark
from repro.bench.suites.service import (
    ARRIVAL_RATE_FULL,
    ARRIVAL_RATE_QUICK,
    CAPACITY,
    CHUNK,
    COMPACT_MIN_ROWS_FULL,
    COMPACT_MIN_ROWS_QUICK,
    D,
    _arrivals,
    _drive_open_loop,
)
from repro.bench.workloads import rigid_layered
from repro.instance.instance import with_release_times

#: Snapshot after this many journaled records (2 per chunk: submit +
#: advance).  Coprime with the per-chunk record count, so the kill
#: points of both configs (6 and 19 chunks: 12 and 38 records) fall
#: mid-interval and a journal suffix is always left to replay on top of
#: the snapshot — the ``replayed >= 1`` check enforces it.
CHECKPOINT_EVERY = 5


def _drive_durable(
    journal_path: str,
    snapshot_path: str,
    capacities,
    specs,
    seed: int,
    rate: float,
    min_rows: int,
    *,
    stop_at: "int | None" = None,
):
    """The open-loop client through a journaled session.

    ``stop_at`` kills the client at that chunk boundary — the journal and
    snapshot are left exactly as a SIGKILLed worker would leave them (no
    final drain, no trailing checkpoint).  Returns the journaled session.
    """
    from repro.service.journal import JournaledSession
    from repro.service.session import SchedulingSession

    session = SchedulingSession(capacities, seed=seed, compact_min_rows=min_rows)
    js = JournaledSession(
        session, journal_path, snapshot_path,
        checkpoint_every=CHECKPOINT_EVERY, fsync=False,
    )
    t = 0.0
    n = len(specs)
    for k in range(0, n, CHUNK):
        if stop_at is not None and k >= stop_at:
            js.close()
            return js
        chunk = specs[k:k + CHUNK]
        for g in session.rng.exponential(1.0 / rate, size=len(chunk)).tolist():
            t += g
        js.submit(chunk)
        js.advance(t, events=False)
    js.drain()
    js.close()
    return js


def _recover_and_finish(journal_path, snapshot_path, specs, rate, resume_at):
    """The supervised-restart path: snapshot + journal replay, then the
    client finishes the stream.  ``checkpoint=False`` and plain-session
    verbs afterwards keep the on-disk artifacts untouched, so every timed
    repeat replays the identical recovery.  Returns the journaled session
    (its ``.session`` holds the completed schedule)."""
    from repro.service.journal import JournaledSession

    js = JournaledSession.recover(
        journal_path, snapshot_path, fsync=False, checkpoint=False
    )
    session = js.session
    t = session.now  # the last journaled advance target = last arrival
    n = len(specs)
    for k in range(resume_at, n, CHUNK):
        chunk = specs[k:k + CHUNK]
        for g in session.rng.exponential(1.0 / rate, size=len(chunk)).tolist():
            t += g
        session.submit(chunk)
        session.advance(t, events=False)
    session.drain()
    js.close()
    return js


@register_benchmark(
    "service_recovery",
    kind="extension",
    description="Durable-session crash recovery (snapshot + journal replay) "
    "vs rerunning from scratch, plus steady-state journaling overhead",
)
def service_recovery_benchmark(config: BenchConfig) -> BenchPlan:
    from repro.conformance.fuzz import service_specs

    # the quick stream is bigger than the service benchmark's (the gated
    # quantity is a ratio of two runs that must stay well above timer
    # noise on a busy CI host)
    layers, width = (8, 80) if config.quick else (10, 200)
    rate = ARRIVAL_RATE_QUICK if config.quick else ARRIVAL_RATE_FULL
    min_rows = COMPACT_MIN_ROWS_QUICK if config.quick else COMPACT_MIN_ROWS_FULL
    inst, alloc = rigid_layered(
        layers, width, d=D, capacity=CAPACITY, seed=config.seed, edge_prob=0.15
    )
    order = inst.dag.topological_order()
    arrivals = _arrivals(order, config.seed, rate)
    online = with_release_times(inst, arrivals)
    specs = service_specs(online, alloc)
    capacities = inst.pool.capacities
    n = inst.n
    repeats = 5
    # kill at the first chunk boundary past 60% of the stream
    stop_at = -(-int(n * 0.6) // CHUNK) * CHUNK

    # the crash artifacts every `recover:replay` repeat restarts from,
    # produced once (untimed) by killing the durable client mid-stream
    workdir = tempfile.mkdtemp(prefix="repro-bench-recovery-")
    journal_path = os.path.join(workdir, "journal.jsonl")
    snapshot_path = os.path.join(workdir, "snapshot.json")
    _drive_durable(
        journal_path, snapshot_path, capacities, specs, config.seed, rate,
        min_rows, stop_at=stop_at,
    )
    # the durable no-crash driver needs its own scratch paths per repeat
    fresh = os.path.join(workdir, "fresh")
    os.mkdir(fresh)

    def durable_full():
        for name in os.listdir(fresh):
            os.unlink(os.path.join(fresh, name))
        return _drive_durable(
            os.path.join(fresh, "journal.jsonl"),
            os.path.join(fresh, "snapshot.json"),
            capacities, specs, config.seed, rate, min_rows,
        )

    cases = [
        BenchCase(
            name="rerun:scratch",
            fn=lambda: _drive_open_loop(capacities, specs, config.seed, rate, min_rows),
            repeats=repeats,
            warmup=1,
            metrics=lambda value, seconds: {"jobs_per_sec": n / seconds},
        ),
        BenchCase(
            name="recover:replay",
            fn=lambda: _recover_and_finish(
                journal_path, snapshot_path, specs, rate, stop_at
            ),
            repeats=repeats,
            warmup=1,
            metrics=lambda value, seconds: {"jobs_per_sec": n / seconds},
        ),
        BenchCase(
            name="durable:open_loop",
            fn=durable_full,
            repeats=repeats,
            warmup=1,
            metrics=lambda value, seconds: {"jobs_per_sec": n / seconds},
        ),
    ]

    def checks(by_name):
        from repro.conformance.fuzz import portable_events

        c = Checker()
        baseline = by_name["rerun:scratch"].value
        ref = portable_events(baseline.to_schedule(), reprify=False)
        recovered = by_name["recover:replay"].value
        c.check(
            "recover:restored_snapshot_and_replayed_journal",
            recovered.recovered and recovered.replayed >= 1,
            f"recovered={recovered.recovered} replayed={recovered.replayed}",
        )
        c.check(
            "recover:no_duplicate_admissions",
            recovered.deduped == 0,
            f"deduped={recovered.deduped}",
        )
        for label in ("recover:replay", "durable:open_loop"):
            session = by_name[label].value.session
            sched = session.to_schedule()
            c.check(
                f"{label}:identical_vs_uninterrupted",
                portable_events(sched, reprify=False) == ref,
                "crash recovery must converge on the uninterrupted schedule "
                "event for event",
            )
            c.check(
                f"{label}:complete",
                len(sched.placements) == n,
                f"completed {len(sched.placements)} of {n}",
            )
            try:
                session.validate()
                c.check(f"{label}:strict_valid", True)
            except Exception as exc:
                c.check(f"{label}:strict_valid", False, str(exc))
        return c.results

    def derived(by_name):
        rerun = by_name["rerun:scratch"]
        recover = by_name["recover:replay"]
        durable = by_name["durable:open_loop"]
        return {
            "recovery_throughput": recover.metrics["jobs_per_sec"],
            "recovery_vs_rerun": recover.seconds / rerun.seconds,
            "durable_vs_plain": durable.seconds / rerun.seconds,
        }

    def tables(by_name):
        rows = [
            {
                "driver": result.name,
                "seconds": result.seconds,
                "jobs_per_sec": result.metrics["jobs_per_sec"],
            }
            for result in by_name.values()
        ]
        return [
            Table(
                name="service_recovery",
                title=(
                    f"Durable-session crash recovery ({layers}x{width} rigid "
                    f"layered DAG, d={D}, kill at job {stop_at}/{n}, "
                    f"checkpoint every {CHECKPOINT_EVERY} records)"
                ),
                rows=rows,
                precision=4,
                footer=(
                    "All drivers asserted identical event for event to the "
                    "uninterrupted run; recover:replay restores the snapshot "
                    "and replays the journal suffix a SIGKILLed worker left "
                    "behind, then finishes the remaining stream."
                ),
            )
        ]

    return BenchPlan(
        cases=cases,
        checks=checks,
        derived=derived,
        tables=tables,
        # both ratios are machine-relative (same host, same process);
        # recovery_vs_rerun moves with replay cost, durable_vs_plain with
        # journaling overhead — 'lower' is better for both
        gates=[
            Gate("recovery_vs_rerun", direction="lower", max_regression=0.30),
            Gate("durable_vs_plain", direction="lower", max_regression=0.30),
        ],
    )
