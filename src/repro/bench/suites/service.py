"""Service benchmark: sustained online-session throughput vs the batch engine.

An open-loop Poisson client submits a rigid layered workload to a live
:class:`~repro.service.session.SchedulingSession` — draw a chunk of
inter-arrival times from the session RNG, submit the chunk, advance
virtual time to its last arrival, repeat, drain — while the same job set
with the same arrival times runs through the batch compiled engine
(:func:`~repro.core.list_scheduler.list_schedule`).  The client is
submission-order-faithful (every job is submitted at or before its
release, and releases gate starts), so the two schedules must be
identical event for event; the benchmark asserts that, plus strict
validity and that the session compacted mid-stream, before timing
anything.

The arrival rate is calibrated just under the workload's service rate
(~0.95 utilization), the regime a long-lived scheduling service actually
runs in: jobs flow through steadily, the live row count stays bounded,
and periodic compaction genuinely archives finished work mid-stream
rather than after the fact.

The gated metric is ``session_vs_batch`` — the session's sustained jobs/s
as a fraction of the batch engine's on the identical workload.  It is
machine-relative (both sides run on the same host in the same process),
so CI can gate it across hardware; the absolute ``service_throughput``
jobs/s figure is reported informationally.  A third case replays the
stream with a checkpoint → restore round trip at a chunk boundary past
the halfway point — the client's remaining arrivals are drawn from the
*restored* session RNG, pinning the checkpoint's exact-resume guarantee
(scheduler state and client stream both) under benchmark load; its ratio
is reported as ``session_vs_batch_checkpointed``.  The round trip goes
through the in-memory checkpoint document and the hot restore path
(``strict=False``: the stored ready queue is loaded directly, nothing is
re-verified) — JSON (de)serialization of the same document is covered by
the checkpoint tests, and the identity check here confirms the hot
restore was exact.

A fourth case replays the identical stream with a
:class:`~repro.obs.MetricsRegistry` bound to the session — the
observability overhead budget.  Its ratio is gated as
``session_vs_batch_metrics_on`` and the suite additionally checks the
instrumented run costs at most 5% over the uninstrumented one.  A
separate informational case drives the same workload through a
:class:`~repro.service.frontend.ServiceFrontend` (the full protocol
path, instrumentation always on there) and reports per-op p50/p95/p99
request latency from the front-end's own histograms into
``BENCH_service.json``.
"""

from __future__ import annotations

import numpy as np

from repro.bench.core import BenchCase, BenchConfig, BenchPlan, Checker, Gate, Table
from repro.bench.registry import register_benchmark
from repro.bench.workloads import rigid_layered
from repro.core.list_scheduler import fifo_priority, list_schedule
from repro.instance.instance import with_release_times

D = 4
CAPACITY = 24
#: Jobs per client round trip: one RNG draw, one submit, one advance.
CHUNK = 64
#: Poisson arrival rate (jobs/s of virtual time) per config, calibrated
#: to ~0.95 of the measured batch service rate (quick 6x40 completes at
#: ~1.93 jobs/s, full 10x200 at ~2.08) so the session runs at stable
#: high utilization instead of an ever-growing backlog.
ARRIVAL_RATE_QUICK = 1.8
ARRIVAL_RATE_FULL = 2.0
#: Session compaction floor per config — low enough that the stream
#: compacts mid-run (quick keeps ~100 live rows, full ~500).
COMPACT_MIN_ROWS_QUICK = 96
COMPACT_MIN_ROWS_FULL = 512


def _arrivals(order, seed: int, rate: float) -> dict:
    """Cumulative exponential inter-arrivals in topological order — the
    exact draws the open-loop client makes from the session RNG (batched
    ``Generator.exponential`` draws are stream-identical to sequential
    scalar draws)."""
    rng = np.random.default_rng(seed)
    t = 0.0
    out = {}
    for j in order:
        t += float(rng.exponential(1.0 / rate))
        out[j] = t
    return out


def _drive_open_loop(
    capacities,
    specs,
    seed: int,
    rate: float,
    min_rows: int,
    *,
    restore_at: int | None = None,
    with_metrics: bool = False,
):
    """The open-loop Poisson client: batch-submit a chunk, advance, repeat.

    Inter-arrival times come from the session RNG (seeded like
    :func:`_arrivals`), one vectorized draw per chunk.  Submitting a chunk
    ahead of its arrivals is still submission-order-faithful: the specs
    carry the arrival times as releases, and releases gate starts, so the
    event stream matches the one-job-at-a-time client exactly.  Advancing
    with ``events=False`` polls the counters without materializing a
    protocol dict per event, the embedded-client mode.  With
    ``restore_at``, the session round-trips through the in-memory
    checkpoint document and a hot restore (``strict=False``) at that
    chunk boundary.  ``with_metrics`` binds a fresh registry to the
    session — the observability-overhead configuration.
    """
    from repro.service.checkpoint import checkpoint_session, restore_session
    from repro.service.session import SchedulingSession

    session = SchedulingSession(capacities, seed=seed, compact_min_rows=min_rows)
    if with_metrics:
        from repro.obs import MetricsRegistry

        session.bind_metrics(MetricsRegistry())
    t = 0.0
    n = len(specs)
    for k in range(0, n, CHUNK):
        if restore_at is not None and k == restore_at:
            session = restore_session(checkpoint_session(session), strict=False)
        chunk = specs[k:k + CHUNK]
        for g in session.rng.exponential(1.0 / rate, size=len(chunk)).tolist():
            t += g
        session.submit(chunk)
        session.advance(t, events=False)
    session.drain()
    return session


#: The per-op request-latency percentiles the frontend case reports.
_LATENCY_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def _drive_frontend(capacities, specs, seed: int, rate: float, min_rows: int):
    """The same open-loop client through the full protocol path.

    Every chunk goes through :meth:`ServiceFrontend.handle_request` as a
    wire-shaped ``submit``/``advance`` (then one ``drain``), so the
    front-end's always-on request-latency histograms fill with realistic
    per-op samples; the caller reads the percentiles out of
    ``frontend.metrics``.  Throughput here is informational — it pays
    JSON-shaped payload lowering the embedded client doesn't.
    """
    from repro.service.frontend import ServiceFrontend
    from repro.service.session import SchedulingSession

    session = SchedulingSession(capacities, seed=seed, compact_min_rows=min_rows)
    frontend = ServiceFrontend(session, batch_size=len(specs) or 1,
                               batch_interval=3600.0)
    t = 0.0
    n = len(specs)
    for k in range(0, n, CHUNK):
        chunk = specs[k:k + CHUNK]
        for g in session.rng.exponential(1.0 / rate, size=len(chunk)).tolist():
            t += g
        resp = frontend.handle_request(
            {"op": "submit", "jobs": [s.to_dict() for s in chunk]}
        )
        assert resp["ok"], resp
        resp = frontend.handle_request({"op": "advance", "until": t, "events": False})
        assert resp["ok"], resp
    resp = frontend.handle_request({"op": "drain"})
    assert resp["ok"], resp
    return frontend


def _frontend_latency_metrics(frontend) -> dict:
    """``latency_<op>_<pN>`` seconds from the front-end's histograms."""
    hist = frontend.metrics.get("repro_request_latency_seconds")
    out = {}
    for (op,), bound in hist.items():
        for name, q in _LATENCY_QUANTILES:
            out[f"latency_{op}_{name}"] = bound.quantile(q)
    return out


@register_benchmark(
    "service",
    kind="extension",
    description="Online-session throughput under a Poisson open-loop client "
    "vs the batch compiled engine",
)
def service_benchmark(config: BenchConfig) -> BenchPlan:
    """Session vs batch on an identical Poisson-arrival rigid workload."""
    from repro.conformance.fuzz import service_specs

    layers, width = (6, 40) if config.quick else (10, 200)
    rate = ARRIVAL_RATE_QUICK if config.quick else ARRIVAL_RATE_FULL
    min_rows = COMPACT_MIN_ROWS_QUICK if config.quick else COMPACT_MIN_ROWS_FULL
    inst, alloc = rigid_layered(
        layers, width, d=D, capacity=CAPACITY, seed=config.seed, edge_prob=0.15
    )
    order = inst.dag.topological_order()
    arrivals = _arrivals(order, config.seed, rate)
    online = with_release_times(inst, arrivals)
    # the shared (instance, allocation) -> JobSpec lowering the conformance
    # service family uses; releases come from the online instance
    specs = service_specs(online, alloc)
    capacities = inst.pool.capacities
    n = inst.n
    repeats = 5
    # restore at the first chunk boundary past the halfway point
    restore_at = ((n // 2 + CHUNK - 1) // CHUNK) * CHUNK

    cases = [
        BenchCase(
            name="batch:compiled",
            fn=lambda: list_schedule(online, alloc, fifo_priority),
            repeats=repeats,
            warmup=1,
            metrics=lambda value, seconds: {"jobs_per_sec": n / seconds},
        ),
        BenchCase(
            name="session:open_loop",
            fn=lambda: _drive_open_loop(capacities, specs, config.seed, rate, min_rows),
            repeats=repeats,
            warmup=1,
            metrics=lambda value, seconds: {"jobs_per_sec": n / seconds},
        ),
        BenchCase(
            name="session:checkpointed",
            fn=lambda: _drive_open_loop(
                capacities, specs, config.seed, rate, min_rows,
                restore_at=restore_at,
            ),
            repeats=repeats,
            warmup=1,
            metrics=lambda value, seconds: {"jobs_per_sec": n / seconds},
        ),
        BenchCase(
            name="session:metrics_on",
            fn=lambda: _drive_open_loop(
                capacities, specs, config.seed, rate, min_rows,
                with_metrics=True,
            ),
            repeats=repeats,
            warmup=1,
            metrics=lambda value, seconds: {"jobs_per_sec": n / seconds},
        ),
        BenchCase(
            name="frontend:protocol",
            fn=lambda: _drive_frontend(capacities, specs, config.seed, rate,
                                       min_rows),
            repeats=repeats,
            warmup=1,
            metrics=lambda value, seconds: {"jobs_per_sec": n / seconds},
        ),
    ]

    def checks(by_name):
        from repro.conformance.fuzz import portable_events

        c = Checker()
        batch = by_name["batch:compiled"].value
        for label in ("session:open_loop", "session:checkpointed",
                      "session:metrics_on"):
            session = by_name[label].value
            sched = session.to_schedule()
            c.check(
                f"{label}:identical_vs_batch",
                portable_events(sched, reprify=False)
                == portable_events(batch, reprify=True),
                "faithful session must reproduce the batch schedule event "
                "for event",
            )
            try:
                session.validate()
                c.check(f"{label}:strict_valid", True)
            except Exception as exc:
                c.check(f"{label}:strict_valid", False, str(exc))
            c.check(
                f"{label}:complete",
                len(sched.placements) == n,
                f"completed {len(sched.placements)} of {n}",
            )
            c.check(
                f"{label}:compacted",
                session.compactions >= 1,
                "session must compact at least once under benchmark load "
                f"(compactions={session.compactions})",
            )
        # ≤5% relative, with a 5ms absolute floor so quick-config runs
        # (whole stream ~3ms) don't fail on scheduler timer noise — at
        # full scale the relative bound is what binds
        plain = by_name["session:open_loop"].seconds
        instrumented = by_name["session:metrics_on"].seconds
        c.check(
            "metrics_overhead_le_5pct",
            instrumented <= 1.05 * plain + 0.005,
            f"metrics-on run took {instrumented:.4f}s vs {plain:.4f}s "
            f"uninstrumented ({instrumented / plain - 1.0:+.1%})",
        )
        return c.results

    def derived(by_name):
        batch = by_name["batch:compiled"]
        session = by_name["session:open_loop"]
        ckpt = by_name["session:checkpointed"]
        instrumented = by_name["session:metrics_on"]
        out = {
            "service_throughput": session.metrics["jobs_per_sec"],
            "session_vs_batch": batch.seconds / session.seconds,
            "session_vs_batch_checkpointed": batch.seconds / ckpt.seconds,
            "session_vs_batch_metrics_on": batch.seconds / instrumented.seconds,
        }
        # informational: per-op request latency through the full protocol
        out.update(_frontend_latency_metrics(by_name["frontend:protocol"].value))
        return out

    def tables(by_name):
        rows = [
            {
                "driver": result.name,
                "seconds": result.seconds,
                "jobs_per_sec": result.metrics["jobs_per_sec"],
            }
            for result in by_name.values()
        ]
        return [
            Table(
                name="service",
                title=(
                    f"Online session vs batch engine ({layers}x{width} rigid "
                    f"layered DAG, d={D}, Poisson rate {rate:g}, ~0.95 "
                    "utilization)"
                ),
                rows=rows,
                precision=4,
                footer=(
                    "Schedules asserted identical event for event, through "
                    "mid-stream compaction; the checkpointed driver restores "
                    "from the in-memory checkpoint document (scheduler state "
                    "+ client RNG) via the strict=False hot path.  The "
                    "metrics_on driver runs the same open loop with a bound "
                    "metrics registry (overhead gated at 5%); the frontend "
                    "driver goes through the full ServiceFrontend protocol "
                    "and feeds the per-op latency percentiles."
                ),
            )
        ]

    return BenchPlan(
        cases=cases,
        checks=checks,
        derived=derived,
        tables=tables,
        # the session runs the same array-native dispatch as the batch
        # loop and batch-lowers whole chunks, so the ratio sits close to
        # 1 and is steadier across hosts than the old python-tuple
        # dispatch was — gate both ratios tightly
        gates=[
            Gate("session_vs_batch", direction="higher", max_regression=0.20),
            Gate(
                "session_vs_batch_checkpointed",
                direction="higher",
                max_regression=0.20,
            ),
            Gate(
                "session_vs_batch_metrics_on",
                direction="higher",
                max_regression=0.20,
            ),
        ],
    )


# ----------------------------------------------------------------------
# sharded service: aggregate jobs/s vs worker count
# ----------------------------------------------------------------------
#: Jobs per timed round (one submit/flush/drain cycle through the router).
SHARDED_JOBS_QUICK = 160
SHARDED_JOBS_FULL = 480
#: Jobs per submit op — sized to the router batch so every submit
#: auto-flushes and the wire stays pipelined.
SHARDED_CHUNK = 16
SHARDED_WORKERS_QUICK = (1, 2, 4)
SHARDED_WORKERS_FULL = (1, 2, 4, 8)


class _ShardedService:
    """One ``repro serve --workers N`` process plus its typed client.

    Spawned lazily on the first round so the untimed warmup absorbs
    process startup and the shard ping; timed rounds measure pure
    steady-state protocol + scheduling throughput.  Tenants are placed
    explicitly, two per shard, so every worker carries an equal share
    regardless of hash luck.
    """

    def __init__(self, workers: int, jobs_per_round: int, seed: int) -> None:
        self.workers = workers
        self.jobs_per_round = jobs_per_round
        self.seed = seed
        self.tenants = [f"t{i}" for i in range(2 * workers)]
        self.client = None
        self.rounds = 0
        self.completed_total = 0

    def _start(self) -> None:
        import sys

        from repro.service import ServiceClient

        shard_map = ",".join(
            f"t{i}={i // 2}" for i in range(2 * self.workers)
        )
        self.client = ServiceClient.launch([
            sys.executable, "-m", "repro", "serve",
            "--workers", str(self.workers),
            "--shard-policy", "explicit", "--shard-map", shard_map,
            "--shard-deadline", "60",
            "--capacities", "8",
            "--batch-size", str(SHARDED_CHUNK), "--max-pending", "4096",
            "--seed", str(self.seed),
        ])

    def run_round(self) -> "_ShardedService":
        if self.client is None:
            self._start()
        try:
            prefix = f"r{self.rounds}"
            jobs = [
                {
                    "id": f"{prefix}-j{j:04d}",
                    "demand": [1 + j % 4],
                    "duration": 1.0 + (j % 3) * 0.5,
                    "tenant": self.tenants[j % len(self.tenants)],
                }
                for j in range(self.jobs_per_round)
            ]
            admitted = 0
            for k in range(0, len(jobs), SHARDED_CHUNK):
                resp = self.client.submit(jobs[k:k + SHARDED_CHUNK])
                admitted += len(resp.get("admitted", ()))
            admitted += len(self.client.flush().get("admitted", ()))
            drain = self.client.drain()
            if admitted != len(jobs) or drain["completed"] < len(jobs):
                raise RuntimeError(
                    f"round lost jobs: admitted {admitted}, "
                    f"drained {drain['completed']} of {len(jobs)}"
                )
            self.rounds += 1
            self.completed_total += len(jobs)
            return self
        except Exception:
            self.close()
            raise

    def close(self) -> dict:
        """Shut the service down; returns {stats, valid, returncode}."""
        if self.client is None:
            return {}
        client, self.client = self.client, None
        try:
            stats = client.stats()
            valid = client.validate().get("valid", False)
            client.shutdown()
        finally:
            client.close()
        return {
            "stats": stats,
            "valid": valid,
            "returncode": client.transport.proc.returncode,
        }


@register_benchmark(
    "service_sharded",
    kind="extension",
    description="Aggregate sharded-service throughput vs worker count "
    "(routing tier + N supervised worker processes)",
)
def service_sharded_benchmark(config: BenchConfig) -> BenchPlan:
    """Aggregate jobs/s through ``repro serve --workers N`` as N grows."""
    import os

    worker_counts = SHARDED_WORKERS_QUICK if config.quick else SHARDED_WORKERS_FULL
    jobs_per_round = SHARDED_JOBS_QUICK if config.quick else SHARDED_JOBS_FULL
    repeats = 3 if config.quick else 5
    services = {
        w: _ShardedService(w, jobs_per_round, config.seed) for w in worker_counts
    }

    cases = [
        BenchCase(
            name=f"workers:{w}",
            fn=services[w].run_round,
            repeats=repeats,
            warmup=1,  # the warmup round spawns the router + workers
            metrics=lambda value, seconds: {
                "jobs_per_sec": value.jobs_per_round / seconds
            },
        )
        for w in worker_counts
    ]

    def checks(by_name):
        c = Checker()
        for w in worker_counts:
            service = by_name[f"workers:{w}"].value
            expected = service.completed_total
            final = service.close()
            stats = final.get("stats", {})
            c.check(
                f"workers:{w}:valid",
                final.get("valid", False),
                "every shard must strict-validate its final schedule",
            )
            c.check(
                f"workers:{w}:workers",
                stats.get("workers") == w,
                f"stats reports {stats.get('workers')} workers",
            )
            per_shard = sum(
                s.get("completed", 0) for s in stats.get("shards", {}).values()
            )
            c.check(
                f"workers:{w}:conservation",
                stats.get("completed") == expected and per_shard == expected,
                f"completed {stats.get('completed')} (shards sum {per_shard}) "
                f"of {expected} submitted",
            )
            c.check(
                f"workers:{w}:clean_exit",
                final.get("returncode") == 0,
                f"router exited {final.get('returncode')}",
            )
        ncpu = os.cpu_count() or 1
        jps1 = by_name["workers:1"].metrics["jobs_per_sec"]
        jps4 = by_name["workers:4"].metrics["jobs_per_sec"]
        scaling = jps4 / (4.0 * jps1) if jps1 else 0.0
        if ncpu >= 4:
            c.check(
                "scaling_4w_at_least_0.7_linear",
                scaling >= 0.7,
                f"4-worker aggregate is {scaling:.2f}x linear "
                f"({jps4:.1f} vs 1-worker {jps1:.1f} jobs/s)",
            )
        else:
            c.check(
                "scaling_4w_at_least_0.7_linear",
                True,
                f"skipped: {ncpu} cpus (scaling measured {scaling:.2f}x linear)",
            )
        return c.results

    def derived(by_name):
        out = {}
        for w in worker_counts:
            out[f"sharded_throughput_{w}w"] = by_name[f"workers:{w}"].metrics[
                "jobs_per_sec"
            ]
        jps1 = out["sharded_throughput_1w"]
        out["sharded_scaling_4w"] = (
            out["sharded_throughput_4w"] / (4.0 * jps1) if jps1 else 0.0
        )
        return out

    def tables(by_name):
        jps1 = by_name["workers:1"].metrics["jobs_per_sec"]
        rows = [
            {
                "workers": w,
                "seconds": by_name[f"workers:{w}"].seconds,
                "jobs_per_sec": by_name[f"workers:{w}"].metrics["jobs_per_sec"],
                "speedup_vs_1w": (
                    by_name[f"workers:{w}"].metrics["jobs_per_sec"] / jps1
                    if jps1
                    else 0.0
                ),
            }
            for w in worker_counts
        ]
        import os

        return [
            Table(
                name="service_sharded",
                title=(
                    f"Sharded service aggregate throughput "
                    f"({jobs_per_round} jobs/round over two tenants per "
                    f"shard, explicit placement, {os.cpu_count()} cpus)"
                ),
                rows=rows,
                precision=4,
                footer=(
                    "Each worker count is one live `repro serve --workers N` "
                    "process tree (router + N supervised workers) driven over "
                    "TCP by the typed client; spawn cost is absorbed by the "
                    "untimed warmup round.  Job conservation and per-shard "
                    "strict validity are asserted at teardown."
                ),
            )
        ]

    return BenchPlan(
        cases=cases,
        checks=checks,
        derived=derived,
        tables=tables,
        # scaling is machine-relative (same host, same process tree), so
        # CI can gate it across hardware; absolute jobs/s is informational
        gates=[Gate("sharded_scaling_4w", direction="higher", max_regression=0.30)],
    )
