"""Service benchmark: sustained online-session throughput vs the batch engine.

An open-loop Poisson client submits a rigid layered workload to a live
:class:`~repro.service.session.SchedulingSession` — advance virtual time
to the next arrival, submit, repeat, drain — while the same job set with
the same arrival times runs through the batch compiled engine
(:func:`~repro.core.list_scheduler.list_schedule`).  Because the client is
submission-order-faithful (each job is submitted at its release), the two
schedules must be identical event for event; the benchmark asserts that,
plus strict validity, before timing anything.

The gated metric is ``session_vs_batch`` — the session's sustained jobs/s
as a fraction of the batch engine's on the identical workload.  It is
machine-relative (both sides run on the same host in the same process),
so CI can gate it across hardware; the absolute ``service_throughput``
jobs/s figure is reported informationally.  A third case replays the
stream with a checkpoint → JSON → restore round-trip at the halfway
point — the client's remaining arrivals are drawn from the *restored*
session RNG, pinning the checkpoint's exact-resume guarantee (scheduler
state and client stream both) under benchmark load.
"""

from __future__ import annotations

import json

import numpy as np

from repro.bench.core import BenchCase, BenchConfig, BenchPlan, Checker, Gate, Table
from repro.bench.registry import register_benchmark
from repro.bench.workloads import rigid_layered
from repro.core.list_scheduler import fifo_priority, list_schedule
from repro.instance.instance import with_release_times

D = 4
CAPACITY = 24
ARRIVAL_RATE = 200.0


def _arrivals(order, seed: int) -> dict:
    """Cumulative exponential inter-arrivals in topological order — the
    exact draws the open-loop client makes from the session RNG."""
    rng = np.random.default_rng(seed)
    t = 0.0
    out = {}
    for j in order:
        t += float(rng.exponential(1.0 / ARRIVAL_RATE))
        out[j] = t
    return out


def _drive_open_loop(capacities, specs, seed: int):
    """The open-loop Poisson client: advance to each arrival, submit, drain.

    Inter-arrival times are drawn from the session RNG (seeded like
    :func:`_arrivals`), so a checkpointed client resumes the same stream.
    """
    from repro.service.session import SchedulingSession

    session = SchedulingSession(capacities, seed=seed)
    t = 0.0
    for spec in specs:
        t += float(session.rng.exponential(1.0 / ARRIVAL_RATE))
        session.advance(t)
        session.submit([spec])
    session.drain()
    return session


def _drive_with_checkpoint(capacities, specs, seed: int):
    """The same client, checkpoint → JSON → restored at the halfway point."""
    from repro.service.checkpoint import checkpoint_session, restore_session
    from repro.service.session import SchedulingSession

    session = SchedulingSession(capacities, seed=seed)
    half = len(specs) // 2
    t = 0.0
    for k, spec in enumerate(specs):
        if k == half:
            session = restore_session(json.loads(json.dumps(checkpoint_session(session))))
        t += float(session.rng.exponential(1.0 / ARRIVAL_RATE))
        session.advance(t)
        session.submit([spec])
    session.drain()
    return session


@register_benchmark(
    "service",
    kind="extension",
    description="Online-session throughput under a Poisson open-loop client "
    "vs the batch compiled engine",
)
def service_benchmark(config: BenchConfig) -> BenchPlan:
    """Session vs batch on an identical Poisson-arrival rigid workload."""
    from repro.conformance.fuzz import service_specs

    layers, width = (6, 40) if config.quick else (10, 200)
    inst, alloc = rigid_layered(
        layers, width, d=D, capacity=CAPACITY, seed=config.seed, edge_prob=0.15
    )
    order = inst.dag.topological_order()
    arrivals = _arrivals(order, config.seed)
    online = with_release_times(inst, arrivals)
    # the shared (instance, allocation) -> JobSpec lowering the conformance
    # service family uses; releases come from the online instance
    specs = service_specs(online, alloc)
    capacities = inst.pool.capacities
    n = inst.n
    repeats = 3

    cases = [
        BenchCase(
            name="batch:compiled",
            fn=lambda: list_schedule(online, alloc, fifo_priority),
            repeats=repeats,
            warmup=1,
            metrics=lambda value, seconds: {"jobs_per_sec": n / seconds},
        ),
        BenchCase(
            name="session:open_loop",
            fn=lambda: _drive_open_loop(capacities, specs, config.seed),
            repeats=repeats,
            warmup=1,
            metrics=lambda value, seconds: {"jobs_per_sec": n / seconds},
        ),
        BenchCase(
            name="session:checkpointed",
            fn=lambda: _drive_with_checkpoint(capacities, specs, config.seed),
            repeats=1,
            warmup=0,
            metrics=lambda value, seconds: {"jobs_per_sec": n / seconds},
        ),
    ]

    def checks(by_name):
        from repro.conformance.fuzz import portable_events

        c = Checker()
        batch = by_name["batch:compiled"].value
        for label in ("session:open_loop", "session:checkpointed"):
            session = by_name[label].value
            sched = session.to_schedule()
            c.check(
                f"{label}:identical_vs_batch",
                portable_events(sched, reprify=False)
                == portable_events(batch, reprify=True),
                "faithful session must reproduce the batch schedule event "
                "for event",
            )
            try:
                session.validate()
                c.check(f"{label}:strict_valid", True)
            except Exception as exc:
                c.check(f"{label}:strict_valid", False, str(exc))
            c.check(
                f"{label}:complete",
                len(sched.placements) == n,
                f"completed {len(sched.placements)} of {n}",
            )
        return c.results

    def derived(by_name):
        batch = by_name["batch:compiled"]
        session = by_name["session:open_loop"]
        return {
            "service_throughput": session.metrics["jobs_per_sec"],
            "session_vs_batch": batch.seconds / session.seconds,
        }

    def tables(by_name):
        rows = [
            {
                "driver": result.name,
                "seconds": result.seconds,
                "jobs_per_sec": result.metrics["jobs_per_sec"],
            }
            for result in by_name.values()
        ]
        return [
            Table(
                name="service",
                title=(
                    f"Online session vs batch engine ({layers}x{width} rigid "
                    f"layered DAG, d={D}, Poisson rate {ARRIVAL_RATE:g})"
                ),
                rows=rows,
                precision=4,
                footer=(
                    "Schedules asserted identical event for event; the "
                    "checkpointed driver restores mid-stream from a JSON "
                    "snapshot (scheduler state + client RNG)."
                ),
            )
        ]

    return BenchPlan(
        cases=cases,
        checks=checks,
        derived=derived,
        tables=tables,
        # the ratio pits python-tuple dispatch against the SWAR batch loop,
        # whose relative speed swings more across hosts than the engine
        # benchmark's like-for-like ratio — gate with extra headroom so CI
        # catches real regressions (2x+) without flaking on runner noise
        gates=[Gate("session_vs_batch", direction="higher", max_regression=0.50)],
    )
