"""Service benchmark: sustained online-session throughput vs the batch engine.

An open-loop Poisson client submits a rigid layered workload to a live
:class:`~repro.service.session.SchedulingSession` — draw a chunk of
inter-arrival times from the session RNG, submit the chunk, advance
virtual time to its last arrival, repeat, drain — while the same job set
with the same arrival times runs through the batch compiled engine
(:func:`~repro.core.list_scheduler.list_schedule`).  The client is
submission-order-faithful (every job is submitted at or before its
release, and releases gate starts), so the two schedules must be
identical event for event; the benchmark asserts that, plus strict
validity and that the session compacted mid-stream, before timing
anything.

The arrival rate is calibrated just under the workload's service rate
(~0.95 utilization), the regime a long-lived scheduling service actually
runs in: jobs flow through steadily, the live row count stays bounded,
and periodic compaction genuinely archives finished work mid-stream
rather than after the fact.

The gated metric is ``session_vs_batch`` — the session's sustained jobs/s
as a fraction of the batch engine's on the identical workload.  It is
machine-relative (both sides run on the same host in the same process),
so CI can gate it across hardware; the absolute ``service_throughput``
jobs/s figure is reported informationally.  A third case replays the
stream with a checkpoint → restore round trip at a chunk boundary past
the halfway point — the client's remaining arrivals are drawn from the
*restored* session RNG, pinning the checkpoint's exact-resume guarantee
(scheduler state and client stream both) under benchmark load; its ratio
is reported as ``session_vs_batch_checkpointed``.  The round trip goes
through the in-memory checkpoint document and the hot restore path
(``strict=False``: the stored ready queue is loaded directly, nothing is
re-verified) — JSON (de)serialization of the same document is covered by
the checkpoint tests, and the identity check here confirms the hot
restore was exact.
"""

from __future__ import annotations

import numpy as np

from repro.bench.core import BenchCase, BenchConfig, BenchPlan, Checker, Gate, Table
from repro.bench.registry import register_benchmark
from repro.bench.workloads import rigid_layered
from repro.core.list_scheduler import fifo_priority, list_schedule
from repro.instance.instance import with_release_times

D = 4
CAPACITY = 24
#: Jobs per client round trip: one RNG draw, one submit, one advance.
CHUNK = 64
#: Poisson arrival rate (jobs/s of virtual time) per config, calibrated
#: to ~0.95 of the measured batch service rate (quick 6x40 completes at
#: ~1.93 jobs/s, full 10x200 at ~2.08) so the session runs at stable
#: high utilization instead of an ever-growing backlog.
ARRIVAL_RATE_QUICK = 1.8
ARRIVAL_RATE_FULL = 2.0
#: Session compaction floor per config — low enough that the stream
#: compacts mid-run (quick keeps ~100 live rows, full ~500).
COMPACT_MIN_ROWS_QUICK = 96
COMPACT_MIN_ROWS_FULL = 512


def _arrivals(order, seed: int, rate: float) -> dict:
    """Cumulative exponential inter-arrivals in topological order — the
    exact draws the open-loop client makes from the session RNG (batched
    ``Generator.exponential`` draws are stream-identical to sequential
    scalar draws)."""
    rng = np.random.default_rng(seed)
    t = 0.0
    out = {}
    for j in order:
        t += float(rng.exponential(1.0 / rate))
        out[j] = t
    return out


def _drive_open_loop(
    capacities,
    specs,
    seed: int,
    rate: float,
    min_rows: int,
    *,
    restore_at: int | None = None,
):
    """The open-loop Poisson client: batch-submit a chunk, advance, repeat.

    Inter-arrival times come from the session RNG (seeded like
    :func:`_arrivals`), one vectorized draw per chunk.  Submitting a chunk
    ahead of its arrivals is still submission-order-faithful: the specs
    carry the arrival times as releases, and releases gate starts, so the
    event stream matches the one-job-at-a-time client exactly.  Advancing
    with ``events=False`` polls the counters without materializing a
    protocol dict per event, the embedded-client mode.  With
    ``restore_at``, the session round-trips through the in-memory
    checkpoint document and a hot restore (``strict=False``) at that
    chunk boundary.
    """
    from repro.service.checkpoint import checkpoint_session, restore_session
    from repro.service.session import SchedulingSession

    session = SchedulingSession(capacities, seed=seed, compact_min_rows=min_rows)
    t = 0.0
    n = len(specs)
    for k in range(0, n, CHUNK):
        if restore_at is not None and k == restore_at:
            session = restore_session(checkpoint_session(session), strict=False)
        chunk = specs[k:k + CHUNK]
        for g in session.rng.exponential(1.0 / rate, size=len(chunk)).tolist():
            t += g
        session.submit(chunk)
        session.advance(t, events=False)
    session.drain()
    return session


@register_benchmark(
    "service",
    kind="extension",
    description="Online-session throughput under a Poisson open-loop client "
    "vs the batch compiled engine",
)
def service_benchmark(config: BenchConfig) -> BenchPlan:
    """Session vs batch on an identical Poisson-arrival rigid workload."""
    from repro.conformance.fuzz import service_specs

    layers, width = (6, 40) if config.quick else (10, 200)
    rate = ARRIVAL_RATE_QUICK if config.quick else ARRIVAL_RATE_FULL
    min_rows = COMPACT_MIN_ROWS_QUICK if config.quick else COMPACT_MIN_ROWS_FULL
    inst, alloc = rigid_layered(
        layers, width, d=D, capacity=CAPACITY, seed=config.seed, edge_prob=0.15
    )
    order = inst.dag.topological_order()
    arrivals = _arrivals(order, config.seed, rate)
    online = with_release_times(inst, arrivals)
    # the shared (instance, allocation) -> JobSpec lowering the conformance
    # service family uses; releases come from the online instance
    specs = service_specs(online, alloc)
    capacities = inst.pool.capacities
    n = inst.n
    repeats = 5
    # restore at the first chunk boundary past the halfway point
    restore_at = ((n // 2 + CHUNK - 1) // CHUNK) * CHUNK

    cases = [
        BenchCase(
            name="batch:compiled",
            fn=lambda: list_schedule(online, alloc, fifo_priority),
            repeats=repeats,
            warmup=1,
            metrics=lambda value, seconds: {"jobs_per_sec": n / seconds},
        ),
        BenchCase(
            name="session:open_loop",
            fn=lambda: _drive_open_loop(capacities, specs, config.seed, rate, min_rows),
            repeats=repeats,
            warmup=1,
            metrics=lambda value, seconds: {"jobs_per_sec": n / seconds},
        ),
        BenchCase(
            name="session:checkpointed",
            fn=lambda: _drive_open_loop(
                capacities, specs, config.seed, rate, min_rows,
                restore_at=restore_at,
            ),
            repeats=repeats,
            warmup=1,
            metrics=lambda value, seconds: {"jobs_per_sec": n / seconds},
        ),
    ]

    def checks(by_name):
        from repro.conformance.fuzz import portable_events

        c = Checker()
        batch = by_name["batch:compiled"].value
        for label in ("session:open_loop", "session:checkpointed"):
            session = by_name[label].value
            sched = session.to_schedule()
            c.check(
                f"{label}:identical_vs_batch",
                portable_events(sched, reprify=False)
                == portable_events(batch, reprify=True),
                "faithful session must reproduce the batch schedule event "
                "for event",
            )
            try:
                session.validate()
                c.check(f"{label}:strict_valid", True)
            except Exception as exc:
                c.check(f"{label}:strict_valid", False, str(exc))
            c.check(
                f"{label}:complete",
                len(sched.placements) == n,
                f"completed {len(sched.placements)} of {n}",
            )
            c.check(
                f"{label}:compacted",
                session.compactions >= 1,
                "session must compact at least once under benchmark load "
                f"(compactions={session.compactions})",
            )
        return c.results

    def derived(by_name):
        batch = by_name["batch:compiled"]
        session = by_name["session:open_loop"]
        ckpt = by_name["session:checkpointed"]
        return {
            "service_throughput": session.metrics["jobs_per_sec"],
            "session_vs_batch": batch.seconds / session.seconds,
            "session_vs_batch_checkpointed": batch.seconds / ckpt.seconds,
        }

    def tables(by_name):
        rows = [
            {
                "driver": result.name,
                "seconds": result.seconds,
                "jobs_per_sec": result.metrics["jobs_per_sec"],
            }
            for result in by_name.values()
        ]
        return [
            Table(
                name="service",
                title=(
                    f"Online session vs batch engine ({layers}x{width} rigid "
                    f"layered DAG, d={D}, Poisson rate {rate:g}, ~0.95 "
                    "utilization)"
                ),
                rows=rows,
                precision=4,
                footer=(
                    "Schedules asserted identical event for event, through "
                    "mid-stream compaction; the checkpointed driver restores "
                    "from the in-memory checkpoint document (scheduler state "
                    "+ client RNG) via the strict=False hot path."
                ),
            )
        ]

    return BenchPlan(
        cases=cases,
        checks=checks,
        derived=derived,
        tables=tables,
        # the session runs the same array-native dispatch as the batch
        # loop and batch-lowers whole chunks, so the ratio sits close to
        # 1 and is steadier across hosts than the old python-tuple
        # dispatch was — gate both ratios tightly
        gates=[
            Gate("session_vs_batch", direction="higher", max_regression=0.20),
            Gate(
                "session_vs_batch_checkpointed",
                direction="higher",
                max_regression=0.20,
            ),
        ],
    )
