"""Built-in benchmark specs: one registered benchmark per result artifact.

Importing this package registers every built-in benchmark (the registry's
:func:`repro.bench.registry._load_builtin_benchmarks` does so lazily).
Each ``benchmarks/bench_*.py`` pytest wrapper maps onto one or more specs
here; the mapping is asserted by ``tests/test_bench_harness.py``.
"""

from repro.bench.suites import (  # noqa: F401
    ablations,
    engine,
    extensions,
    paper,
    recovery,
    service,
)
