"""Ablation benchmarks: the design knobs around the theorem-optimal point.

Ported from ``bench_ablation_mu_rho.py``, ``bench_ablation_priority.py``
and ``bench_ablation_rounding.py`` (whose robustness sweep is its own
spec here, matching its own result table).
"""

from __future__ import annotations

from statistics import mean

from repro.bench.core import (
    BenchCase,
    BenchConfig,
    BenchPlan,
    Checker,
    Table,
    table_from_cases,
)
from repro.bench.registry import register_benchmark

_PRIORITY_RULES = ("fifo", "lpt", "spt", "random", "bottom_level")


@register_benchmark(
    "ablation_mu_rho",
    kind="ablation",
    description="Sensitivity of the measured ratio to the (mu, rho) parameters",
)
def mu_rho_benchmark(config: BenchConfig) -> BenchPlan:
    """Map the practical landscape around the theorem-optimal point at d=3."""
    from repro.core import theory
    from repro.experiments.sweeps import mu_rho_ablation

    d = 3
    mus = (0.15, 0.25, round(theory.MU_A, 3), 0.45)
    rhos = (0.2, round(theory.theorem1_rho(d), 3), 0.5, 0.7)

    def checks(by_name):
        c = Checker()
        rows = by_name["sweep"].value
        c.check("row_count", len(rows) == len(mus) * len(rhos))
        best = min(r["mean_ratio"] for r in rows)
        theorem_row = next(
            r
            for r in rows
            if r["mu"] == round(theory.MU_A, 3)
            and r["rho"] == round(theory.theorem1_rho(d), 3)
        )
        c.check(
            "theorem_point_not_pathological",
            theorem_row["mean_ratio"] <= best * 1.5,
            "the theorem-optimal (mu*, rho*) must stay within 50% of the "
            "best swept configuration",
        )
        c.check("ratios_at_least_one", all(r["mean_ratio"] >= 1.0 - 1e-9 for r in rows))

        def own_bound(r):
            f = (
                theory.f_bound(d, r["mu"], r["rho"])
                if r["mu"] >= theory.MU_A - 1e-9
                else float("inf")
            )
            g = (
                theory.g_bound(d, r["mu"], r["rho"])
                if r["mu"] <= theory.MU_A + 1e-9
                else float("inf")
            )
            return max(f, g)

        c.check(
            "own_proven_factors_hold",
            all(r["max_ratio"] <= own_bound(r) + 1e-9 for r in rows),
        )
        return c.results

    return BenchPlan(
        cases=[
            BenchCase(
                name="sweep",
                fn=lambda: mu_rho_ablation(d=d, n=24, mus=mus, rhos=rhos, seeds=(0, 1, 2)),
                rows=lambda rows: rows,
            )
        ],
        checks=checks,
        tables=table_from_cases(
            "ablation_mu_rho",
            f"Ablation: µ/ρ sensitivity at d={d} "
            f"(theorem point µ={mus[2]}, ρ={rhos[1]})",
        ),
    )


@register_benchmark(
    "ablation_priority",
    kind="ablation",
    description="Phase 2 queue orders: local vs global priorities (Theorem 6 gap)",
)
def priority_benchmark(config: BenchConfig) -> BenchPlan:
    """Random-workload priority sweep plus the adversarial Theorem 6 family."""
    from repro.experiments.sweeps import priority_ablation, theorem6_sweep

    def checks(by_name):
        c = Checker()
        rows = by_name["sweep"].value
        c.check(
            "ratios_at_least_one",
            all(r[rule] >= 1.0 - 1e-9 for r in rows for rule in _PRIORITY_RULES),
        )
        c.check(
            "global_competitive_with_local",
            all(
                r["bottom_level"]
                <= min(r[k] for k in ("fifo", "lpt", "spt", "random")) * 1.15
                for r in rows
            ),
            "the informed (global) priority must stay within 15% of the "
            "best local rule",
        )
        t6 = by_name["theorem6"].value[0]
        c.check(
            "adversarial_gap_visible",
            t6["T_adversarial"] / t6["T_informed"] > 3.5,
            "the d=4 family must exhibit most of its factor-d gap",
        )
        return c.results

    def tables(by_name):
        t6 = by_name["theorem6"].value[0]
        footer = (
            f"Theorem 6 family (d=4, M=48): adversarial local order "
            f"{t6['T_adversarial']:g} vs informed {t6['T_informed']:g} "
            f"-> gap {t6['measured_ratio']:.3f}"
        )
        return [
            Table(
                name="ablation_priority",
                title="Ablation: Phase 2 priority rules (mean ratio vs LP bound)",
                rows=by_name["sweep"].rows or [],
                footer=footer,
            )
        ]

    return BenchPlan(
        cases=[
            BenchCase(
                name="sweep",
                fn=lambda: priority_ablation(
                    d=3, n=30, seeds=(0, 1, 2), families=("layered", "cholesky")
                ),
                rows=lambda rows: rows,
            ),
            BenchCase(
                name="theorem6",
                fn=lambda: theorem6_sweep(d_values=(4,), m_values=(48,)),
            ),
        ],
        checks=checks,
        tables=tables,
    )


@register_benchmark(
    "ablation_rounding",
    kind="ablation",
    description="DTCT rounding strategies: quantile vs randomized vs swept rho",
)
def rounding_benchmark(config: BenchConfig) -> BenchPlan:
    """L(p') per rounding strategy on the same fractional solutions (d=2)."""
    from repro.core import theory
    from repro.core.rounding import compare_roundings
    from repro.experiments.workloads import random_instance
    from repro.resources.pool import ResourcePool

    d = 2
    seeds = (0, 1, 2, 3)

    def run():
        pool = ResourcePool.uniform(d, 16)
        rho = theory.theorem1_rho(d)
        out = []
        for seed in seeds:
            wl = random_instance("layered", 20, pool, seed=seed)
            res = compare_roundings(wl.instance, rho=rho, trials=16, seed=seed)
            out.append({"seed": seed, **res})
        return out

    def checks(by_name):
        c = Checker()
        rows = by_name["sweep"].value
        c.check(
            "above_lp_bound",
            all(
                r[key] >= r["lp_bound"] / (1 + 1e-6)
                for r in rows
                for key in ("quantile", "randomized", "best_quantile")
            ),
        )
        c.check(
            "swept_never_worse_per_seed",
            all(r["best_quantile"] <= r["quantile"] + 1e-12 for r in rows),
        )
        c.check(
            "swept_never_worse_aggregate",
            mean(r["best_quantile"] for r in rows)
            <= mean(r["quantile"] for r in rows) + 1e-12,
        )
        return c.results

    return BenchPlan(
        cases=[BenchCase(name="sweep", fn=run, rows=lambda rows: rows)],
        checks=checks,
        tables=table_from_cases(
            "ablation_rounding",
            "Ablation: DTCT rounding strategies, L(p') vs LP bound",
            precision=4,
        ),
    )


@register_benchmark(
    "robustness",
    kind="ablation",
    description="Allocation on noisy estimates, execution with true times",
)
def robustness_benchmark(config: BenchConfig) -> BenchPlan:
    """Ratio degradation as estimate noise grows (d=2)."""
    from repro.experiments.robustness import robustness_sweep

    def checks(by_name):
        c = Checker()
        rows = by_name["sweep"].value
        c.check(
            "noiseless_within_bound",
            rows[0]["max_ratio"] <= rows[0]["proven_noiseless"] + 1e-9,
        )
        c.check("ratios_at_least_one", all(r["mean_ratio"] >= 1.0 - 1e-9 for r in rows))
        return c.results

    return BenchPlan(
        cases=[
            BenchCase(
                name="sweep",
                fn=lambda: robustness_sweep(
                    noise_levels=(0.0, 0.1, 0.3, 0.6), d=2, n=20, seeds=(0, 1)
                ),
                rows=lambda rows: rows,
            )
        ],
        checks=checks,
        tables=table_from_cases(
            "robustness",
            "Robustness: allocation on noisy estimates, execution with true times",
        ),
    )
