"""Paper-result benchmarks: every displayed figure/table regenerated.

Each spec reproduces one of the paper's displayed results, ports the old
script's shape assertions as recorded checks, and emits the result rows
as an embedded table (the committed ``benchmarks/results/*.txt`` file is
rendered from it).  Schedule-quality means are deterministic in the
pinned seed sets, so the gated ones compare exactly across runs.
"""

from __future__ import annotations

import math
from statistics import mean

from repro.bench.core import (
    BenchCase,
    BenchConfig,
    BenchPlan,
    Checker,
    Gate,
    table_from_cases,
)
from repro.bench.registry import register_benchmark

_SIM_A_FAMILIES = ("layered", "cholesky", "forkjoin", "outtree")
_SIM_A_BASELINES = ("min_area", "min_time", "balanced", "tetris", "heft")


def _approx(a: float, b: float, rel: float = 1e-6, abs_tol: float = 1e-12) -> bool:
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_tol)


@register_benchmark(
    "table1",
    kind="paper",
    description="Table 1: proven ratios per precedence class + empirical verification",
)
def table1_benchmark(config: BenchConfig) -> BenchPlan:
    """Proven-ratio summary cross-checked on random instances per class."""
    from repro.experiments.table1 import empirical_check, table1_text

    d_check = (1, 2, 3)

    def run():
        out = []
        for d in d_check:
            out.extend(empirical_check(d, n=18, seeds=(0, 1), capacity=12))
        return out

    def checks(by_name):
        c = Checker()
        rows = by_name["verify"].value
        c.check("row_count", len(rows) == 3 * len(d_check))
        c.check(
            "within_proven_bounds",
            all(r["within_bound"] for r in rows),
            "a measured ratio breached its proven bound",
        )
        c.check(
            "ratios_at_least_one",
            all(r["worst_empirical"] >= 1.0 - 1e-9 for r in rows),
        )
        return c.results

    return BenchPlan(
        cases=[BenchCase(name="verify", fn=run, rows=lambda rows: rows)],
        checks=checks,
        tables=table_from_cases(
            "table1",
            "Empirical verification (ratios vs certified lower bounds)",
            preamble=table1_text((1, 2, 3, 4, 8, 22, 50)),
        ),
    )


@register_benchmark(
    "figure1",
    kind="paper",
    description="Figure 1: Theorem 2 estimated vs actual ratio vs Theorem 1",
)
def figure1_benchmark(config: BenchConfig) -> BenchPlan:
    """The three ratio series for 22 <= d <= 50 (pure theory, no scheduling)."""
    from repro.core import theory

    d_min, d_max = 22, 50

    def checks(by_name):
        c = Checker()
        rows = by_name["rows"].value
        c.check("d_range", [r["d"] for r in rows] == list(range(d_min, d_max + 1)))
        c.check(
            "estimate_below_theorem1",
            all(r["theorem2_actual"] < r["theorem1"] for r in rows),
        )
        c.check(
            "estimate_hugs_actual",
            all(
                _approx(r["theorem2_estimate"], r["theorem2_actual"], rel=0.02)
                and r["theorem2_estimate"] >= r["theorem2_actual"] - 1e-9
                for r in rows
            ),
            "the closed-form estimate must stay within 2% above the actual curve",
        )
        gaps = [r["theorem1"] - r["theorem2_actual"] for r in rows]
        c.check("gap_widens_with_d", gaps[-1] > gaps[0])
        return c.results

    return BenchPlan(
        cases=[
            BenchCase(
                name="rows",
                fn=lambda: theory.figure1_rows(d_min, d_max),
                rows=lambda rows: rows,
            )
        ],
        checks=checks,
        tables=table_from_cases(
            "figure1",
            f"Figure 1: approximation ratios for {d_min} <= d <= {d_max}",
            precision=4,
            columns=[
                ("d", "d"),
                ("theorem2_actual", "Thm2 actual"),
                ("theorem2_estimate", "Thm2 estimate"),
                ("theorem1", "Thm1 ratio"),
                ("mu_star", "mu*"),
            ],
        ),
    )


@register_benchmark(
    "figure2_lower_bound",
    kind="paper",
    description="Figure 2 / Theorem 6: the local-priority list-scheduling lower bound",
)
def figure2_benchmark(config: BenchConfig) -> BenchPlan:
    """Adversarial vs informed priorities on the reconstructed tree family."""
    from repro.experiments.sweeps import theorem6_sweep

    d_values = (2, 3, 4, 5, 6)
    m_values = (12, 24, 48, 96)

    def checks(by_name):
        c = Checker()
        rows = by_name["sweep"].value
        c.check(
            "closed_forms_match",
            all(
                _approx(r["T_informed"], r["M"] + r["d"] - 1)
                and _approx(r["T_adversarial"], r["M"] * r["d"])
                and _approx(r["measured_ratio"], r["closed_form_ratio"])
                for r in rows
            ),
            "measured makespans must match the closed forms exactly",
        )
        c.check("ratio_below_d", all(r["measured_ratio"] < r["d"] for r in rows))
        by_d: dict[int, list[float]] = {}
        for r in rows:
            by_d.setdefault(r["d"], []).append(r["measured_ratio"])
        c.check(
            "ratio_monotone_in_M",
            all(ratios == sorted(ratios) for ratios in by_d.values()),
        )
        c.check(
            "ratio_approaches_d",
            all(ratios[-1] > d * 0.94 for d, ratios in by_d.items()),
            "at M=96 the ratio must land within 6% of d",
        )
        return c.results

    return BenchPlan(
        cases=[
            BenchCase(
                name="sweep",
                fn=lambda: theorem6_sweep(d_values=d_values, m_values=m_values),
                rows=lambda rows: rows,
            )
        ],
        checks=checks,
        tables=table_from_cases(
            "figure2_lower_bound",
            "Figure 2 / Theorem 6: local list scheduling forced to ratio -> d",
        ),
    )


@register_benchmark(
    "sim_ratio_vs_d",
    kind="paper",
    description="Sim-A: makespan/lower-bound ratio vs d, ours vs baselines",
)
def sim_a_benchmark(config: BenchConfig) -> BenchPlan:
    """Graph families x d in {1..4}: ours vs every fixed-allocation baseline."""
    from repro.experiments.sweeps import algorithm_comparison

    d_values = (1, 2, 3, 4)

    def checks(by_name):
        c = Checker()
        rows = by_name["sweep"].value
        c.check("row_count", len(rows) == len(_SIM_A_FAMILIES) * len(d_values))
        c.check(
            "within_proven_bounds",
            all(1.0 - 1e-9 <= r["ours"] <= r["proven"] + 1e-9 for r in rows),
        )
        ours_mean = mean(r["ours"] for r in rows)
        c.check(
            "beats_fixed_baselines",
            all(
                ours_mean <= mean(r[b] for r in rows) + 1e-9
                for b in ("min_area", "min_time", "balanced")
            ),
            "ours must win on average against every fixed baseline",
        )
        best_dyn = min(mean(r[b] for r in rows) for b in ("tetris", "heft"))
        c.check(
            "competitive_with_dynamic",
            ours_mean <= best_dyn * 1.25,
            "ours must stay within 25% of the best dynamic heuristic",
        )
        return c.results

    def derived(by_name):
        rows = by_name["sweep"].value
        return {
            "ours_mean_ratio": mean(r["ours"] for r in rows),
            "best_baseline_mean_ratio": min(
                mean(r[b] for r in rows) for b in _SIM_A_BASELINES
            ),
        }

    return BenchPlan(
        cases=[
            BenchCase(
                name="sweep",
                fn=lambda: algorithm_comparison(
                    families=_SIM_A_FAMILIES,
                    d_values=d_values,
                    n=24,
                    capacity=16,
                    seeds=(0, 1, 2),
                ),
                rows=lambda rows: rows,
            )
        ],
        checks=checks,
        derived=derived,
        tables=table_from_cases(
            "sim_ratio_vs_d",
            "Sim-A: mean makespan/LB ratio per graph family and d "
            f"(baselines: {', '.join(_SIM_A_BASELINES)})",
        ),
        gates=[Gate("ours_mean_ratio", direction="lower", max_regression=0.05)],
    )


@register_benchmark(
    "sim_independent",
    kind="paper",
    description="Sim-B: independent jobs, ours (Theorem 5) vs Sun et al. [36]",
)
def sim_b_benchmark(config: BenchConfig) -> BenchPlan:
    """Independent-job ratios against the exact L_min (Lemma 8)."""
    from repro.experiments.sweeps import independent_comparison

    d_values = (1, 2, 3, 4)

    def checks(by_name):
        c = Checker()
        rows = by_name["sweep"].value
        c.check("d_order", [r["d"] for r in rows] == list(d_values))
        c.check(
            "within_proven_bounds",
            all(
                r["ours"] <= r["proven_ours"] + 1e-9
                and r["sun_list"] <= r["proven_sun_list"] + 1e-9
                and r["sun_shelf"] <= r["proven_sun_shelf"] + 1e-9
                for r in rows
            ),
        )
        c.check(
            "list_beats_shelf",
            mean(r["ours"] for r in rows) <= mean(r["sun_shelf"] for r in rows) + 1e-9,
            "list packing must dominate pack-by-shelves on average",
        )
        return c.results

    def derived(by_name):
        rows = by_name["sweep"].value
        return {"ours_mean_ratio": mean(r["ours"] for r in rows)}

    return BenchPlan(
        cases=[
            BenchCase(
                name="sweep",
                fn=lambda: independent_comparison(
                    d_values=d_values, n=32, capacity=16, seeds=(0, 1, 2, 3)
                ),
                rows=lambda rows: rows,
            )
        ],
        checks=checks,
        derived=derived,
        tables=table_from_cases(
            "sim_independent", "Sim-B: independent jobs, mean ratio vs exact L_min"
        ),
        gates=[Gate("ours_mean_ratio", direction="lower", max_regression=0.05)],
    )


@register_benchmark(
    "workflow_study",
    kind="paper",
    description="Pegasus-shaped real workflows: ratio vs LP bound per workflow",
)
def workflow_benchmark(config: BenchConfig) -> BenchPlan:
    """Montage/CyberShake/Epigenomics/LIGO structures at d=2."""
    from repro.experiments.workflow_study import workflow_comparison

    def checks(by_name):
        c = Checker()
        rows = by_name["sweep"].value
        c.check(
            "workflow_set",
            {r["workflow"] for r in rows}
            == {"montage", "cybershake", "epigenomics", "ligo"},
        )
        c.check(
            "within_proven_bounds",
            all(1.0 - 1e-9 <= r["ours"] <= r["proven"] + 1e-9 for r in rows),
        )
        ours_mean = mean(r["ours"] for r in rows)
        c.check(
            "beats_fixed_baselines",
            all(
                ours_mean <= mean(r[b] for r in rows) + 1e-9
                for b in ("min_area", "min_time", "balanced")
            ),
        )
        return c.results

    def derived(by_name):
        return {"ours_mean_ratio": mean(r["ours"] for r in by_name["sweep"].value)}

    return BenchPlan(
        cases=[
            BenchCase(
                name="sweep",
                fn=lambda: workflow_comparison(d=2, capacity=16),
                rows=lambda rows: rows,
            )
        ],
        checks=checks,
        derived=derived,
        tables=table_from_cases(
            "workflow_study", "Pegasus workflow study (d=2): ratio vs LP bound"
        ),
        gates=[Gate("ours_mean_ratio", direction="lower", max_regression=0.05)],
    )


@register_benchmark(
    "true_ratio",
    kind="paper",
    description="True ratios T/T_opt against the exact branch-and-bound optimum",
)
def true_ratio_benchmark(config: BenchConfig) -> BenchPlan:
    """Tiny instances where T_opt is exactly computable."""
    from repro.experiments.extended import true_ratio_study

    def checks(by_name):
        c = Checker()
        rows = by_name["sweep"].value
        c.check(
            "ratio_bounds",
            all(
                1.0 - 1e-9 <= r["mean_true_ratio"]
                and r["max_true_ratio"] <= r["proven"] + 1e-9
                for r in rows
            ),
        )
        c.check(
            "lb_ratio_overstates",
            all(r["mean_lb_ratio"] >= r["mean_true_ratio"] - 1e-9 for r in rows),
            "the lower-bound ratio must over-state the true one",
        )
        c.check(
            "far_from_worst_case",
            all(r["mean_true_ratio"] <= 0.6 * r["proven"] for r in rows),
        )
        return c.results

    return BenchPlan(
        cases=[
            BenchCase(
                name="sweep",
                fn=lambda: true_ratio_study(
                    d_values=(1, 2), n=4, capacity=3, seeds=(0, 1, 2, 3, 4)
                ),
                rows=lambda rows: rows,
            )
        ],
        checks=checks,
        tables=table_from_cases(
            "true_ratio", "True ratios T/T_opt (exact oracle, tiny instances)"
        ),
    )
